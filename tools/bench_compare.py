#!/usr/bin/env python3
"""Compare two google-benchmark JSON exports and fail on regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold FRAC]
                     [--min-speedup X] [--higher-better REGEX]

Exits non-zero (loudly) when any benchmark present in both files regressed
by more than --threshold (default 0.15 = +15% real_time). Benchmarks only
present on one side are reported but never fail the gate, so adding or
retiring a benchmark does not require touching the baseline in the same
commit.

Refreshing the committed baseline (see DESIGN.md §8):
    ./build/bench/bench_micro_kernels --benchmark_format=json \
        > bench/baselines/micro_kernels.json
Baselines are machine-specific; compare like with like. Sub-microsecond
kernels can swing ~10% from binary layout alone, hence the generous default
threshold — the gate exists to catch algorithmic regressions, not noise.
"""

import argparse
import json
import re
import sys

_THREADS_RE = re.compile(r"^(?P<stem>.+)/threads=(?P<t>[^/]+)$")


def derive_speedups(benchmarks):
    """Speedup rows from ``/threads=`` pairs: t(threads=1) / t(threads=K).

    For every benchmark family that was measured both at threads=1 and at
    some other thread count (``threads=hw`` is the machine-portable
    hardware-concurrency label written by bench_scale_sessions), emit a
    higher-is-better ``<stem>/speedup@threads=K`` row. A speedup that
    *drops* versus the baseline means the sharded engine stopped scaling —
    exactly the regression the multi-thread baseline row exists to catch.
    """
    by_stem = {}
    for name, t in benchmarks.items():
        m = _THREADS_RE.match(name)
        if m:
            by_stem.setdefault(m.group("stem"), {})[m.group("t")] = t
    out = {}
    for stem, runs in by_stem.items():
        t1 = runs.get("1")
        if t1 is None or t1 <= 0:
            continue
        for label, tk in runs.items():
            if label == "1" or tk <= 0:
                continue
            out[f"{stem}/speedup@threads={label}"] = t1 / tk
    return out


def load_benchmarks(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = float(bench["real_time"])
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline benchmark JSON")
    parser.add_argument("current", help="current benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="max tolerated real_time regression as a fraction (default 0.15)",
    )
    parser.add_argument(
        "--higher-better",
        default=None,
        metavar="REGEX",
        help="rows whose name matches this regex carry a higher-is-better "
        "value (e.g. QoE scores): the gate flips and a *drop* beyond the "
        "threshold fails; drops are normalized by |baseline| since such "
        "scores may be negative",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="absolute floor for every current speedup@threads row (off by "
        "default; single-core machines alias threads=hw to the serial run, "
        "so their speedups sit at ~1.0x and any floor above that would "
        "always fail there)",
    )
    args = parser.parse_args()

    hb_re = re.compile(args.higher_better) if args.higher_better else None
    try:
        baseline = load_benchmarks(args.baseline)
        current = load_benchmarks(args.current)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"bench_compare: malformed input: {exc!r}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"bench_compare: no benchmarks in baseline {args.baseline}",
              file=sys.stderr)
        return 2
    if not current:
        print(f"bench_compare: no benchmarks in current {args.current}",
              file=sys.stderr)
        return 2

    regressions = []
    width = max(len(name) for name in sorted(set(baseline) | set(current)))
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  {'delta':>8}")
    for name in baseline:
        if name not in current:
            print(f"{name:<{width}}  {baseline[name]:>12.1f}  {'absent':>12}  {'-':>8}")
            continue
        base, cur = baseline[name], current[name]
        if hb_re is not None and hb_re.search(name):
            delta = (cur - base) / abs(base) if abs(base) > 1e-12 else 0.0
            regressed = -delta > args.threshold
        else:
            delta = (cur - base) / base if base > 0 else 0.0
            regressed = delta > args.threshold
        flag = "  <-- REGRESSION" if regressed else ""
        print(f"{name:<{width}}  {base:>12.1f}  {cur:>12.1f}  {delta:>+7.1%}{flag}")
        if regressed:
            regressions.append((name, delta))
    for name in current:
        if name not in baseline:
            print(f"{name:<{width}}  {'absent':>12}  {current[name]:>12.1f}  {'new':>8}")

    # Derived speedup rows (higher is better): the gate flips — a speedup
    # *loss* beyond the threshold fails.
    sp_base = derive_speedups(baseline)
    sp_cur = derive_speedups(current)
    if sp_base or sp_cur:
        swidth = max(len(n) for n in sorted(set(sp_base) | set(sp_cur)))
        print()
        for name in sorted(set(sp_base) | set(sp_cur)):
            if name not in sp_base or name not in sp_cur:
                side = sp_base.get(name, sp_cur.get(name))
                print(f"{name:<{swidth}}  {side:>11.2f}x  (one side only)")
                continue
            base, cur = sp_base[name], sp_cur[name]
            loss = (base - cur) / base if base > 0 else 0.0
            flag = "  <-- REGRESSION" if loss > args.threshold else ""
            print(f"{name:<{swidth}}  {base:>11.2f}x  {cur:>11.2f}x  {-loss:>+7.1%}{flag}")
            if loss > args.threshold:
                regressions.append((name, -loss))
        if args.min_speedup is not None:
            for name, cur in sorted(sp_cur.items()):
                if cur < args.min_speedup:
                    print(f"{name}: {cur:.2f}x below --min-speedup "
                          f"{args.min_speedup:.2f}x  <-- REGRESSION")
                    regressions.append((name, cur - args.min_speedup))

    if regressions:
        print(
            f"\nbench_compare: FAIL — {len(regressions)} benchmark(s) regressed "
            f"more than {args.threshold:.0%}:",
            file=sys.stderr,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\nbench_compare: OK — no regression beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
