#!/usr/bin/env python3
"""Sperke cross-TU architecture & shard-isolation analyzer (DESIGN.md §16).

The line-level lint (tools/sperke_lint.py) checks facts visible in one
line of one file. This pass checks the *cross-file* contracts that keep
every reproduced figure a pure function of its seeds:

  layering            The ``#include`` graph of ``src/`` must respect the
                      declared module-layering DAG (``LAYERS`` below).
                      A back-edge or an include of an undeclared module
                      fails, naming the offending edge and — when the
                      reverse dependency already exists — the include
                      cycle it would create. ``--dot`` / ``--markdown``
                      emit the observed dependency graph as a report.
  shared-state        Shards share no mutable state (DESIGN.md §9): any
                      namespace-scope mutable global, non-``constexpr``
                      function-local ``static`` (dynamic initialization
                      included — that is why ``static const std::vector``
                      counts), mutable ``static`` data member, or
                      ``thread_local`` anywhere in ``src/`` must carry a
                      ``// sperke-analyze: shared(<why it is race-free /
                      deterministic>)`` annotation on its own or the
                      preceding line, or the build fails.
  telemetry-contract  The telemetry schema is an API: every metric/SLO
                      name referenced by ``tools/report.py`` or a
                      backtick-quoted name in ``DESIGN.md`` must match a
                      name registered in ``src``/``bench``/``examples``
                      (dynamic name parts — ``"abr." + name + ".plans"``
                      — register as wildcards, and ``<r>``-style
                      placeholders in references match them). Every row
                      in ``bench/baselines/*.json`` must still be backed
                      by its bench source: the baseline file must map to
                      ``bench/bench_<stem>.cpp`` and every non-numeric
                      row-name segment must still occur in that source or
                      in ``src/`` (config-driven segments such as ABR
                      policy names live there). Orphaned baselines and
                      unregistered references both fail.
  stale-suppression   Suppressions must not rot: a ``sperke-lint:
                      allow(<rule>)`` comment that no longer suppresses a
                      lint finding, or a ``sperke-analyze: shared(...)``
                      annotation that no longer annotates a shared-state
                      finding, is itself an error.

The shared-state scanner is a heuristic C++ scope tracker, not a parser:
it classifies every brace as namespace / class / function-block /
initializer from the text preceding it, which is exact for this
repository's house style. Declarations that initialize a namespace-scope
variable with constructor parentheses (``static Foo x(1);``) read as
function declarations — use ``=`` or brace initialization, which the
style already does.

Usage:
    sperke_analyze.py [--root DIR] [--dot FILE] [--markdown FILE]
                      [--list-rules] [--self-test]
"""

import argparse
import json
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import sperke_lint  # noqa: E402  (sibling module: blanking + lint re-run)

RULES = (
    "layering",
    "shared-state",
    "telemetry-contract",
    "stale-suppression",
)

# ---- Declared module-layering DAG ----------------------------------------
# Key: module (directory under src/). Value: modules its headers and TUs may
# #include directly. The relation is intentionally explicit rather than
# rank-derived so a reviewer can diff exactly which edge a PR opens. It must
# be acyclic (checked at startup) and mirrors the architecture stack:
#
#   util -> {sim,geo} -> {obs,media} -> {net,hmp} -> {abr,player} -> core
#        -> {mp,live} -> cdn -> engine
LAYERS = {
    "util": set(),
    "sim": {"util"},
    "geo": {"util"},
    "obs": {"sim", "util"},
    "media": {"geo", "sim", "util"},
    "net": {"media", "sim", "util"},
    "hmp": {"geo", "media", "sim", "util"},
    "abr": {"geo", "media", "obs", "sim", "util"},
    "player": {"geo", "hmp", "media", "sim", "util"},
    "core": {"abr", "geo", "hmp", "media", "net", "obs", "sim", "util"},
    "mp": {"abr", "core", "geo", "hmp", "media", "net", "obs", "sim",
           "util"},
    "live": {"abr", "core", "geo", "hmp", "media", "net", "obs", "sim",
             "util"},
    "cdn": {"hmp", "media", "net", "obs", "sim", "util"},
    "engine": {"abr", "cdn", "core", "geo", "hmp", "live", "media", "mp",
               "net", "obs", "player", "sim", "util"},
}

INCLUDE_RE = re.compile(r'#include\s+"([^"]+)"')

SHARED_RE = re.compile(r"sperke-analyze:\s*shared\(([^)]*)\)")

# Metric registration sites (same convention as the lint's metric-name
# rule): member access into one of the MetricsRegistry instrument
# factories, scanned in src/, bench/ and examples/.
METRIC_REG_RE = re.compile(r"[.>](counter|gauge|histogram)\s*\(")
METRIC_REG_DIRS = ("src", "bench", "examples")

# A telemetry reference: dotted lowercase name, optionally with <r>-style
# placeholders for dynamic segments.
METRIC_REF_RE = re.compile(r"[a-z0-9_]+(?:\.(?:[a-z0-9_]+|<[a-z_]+>))+")
# Dotted tokens that are file names, not metric names.
FILE_EXT_RE = re.compile(
    r"\.(cpp|h|py|sh|md|json|jsonl|csv|html|yml|yaml|txt|dot)$")

NUMERIC_SEGMENT_RE = re.compile(r"[0-9.]+")


def innermost_scopes(blanked, positions):
    """Innermost scope kind ('ns'|'class'|'block'|'init') at each position.

    Walks the blanked text once, classifying every ``{`` by the statement
    head preceding it. File scope reads as 'ns'.
    """
    positions = sorted(set(positions))
    result = {}
    stack = []
    pi = 0
    for i, c in enumerate(blanked):
        while pi < len(positions) and positions[pi] <= i:
            result[positions[pi]] = stack[-1] if stack else "ns"
            pi += 1
        if c == "{":
            stack.append(classify_brace(blanked, i))
        elif c == "}" and stack:
            stack.pop()
    for p in positions[pi:]:
        result[p] = stack[-1] if stack else "ns"
    return result


def classify_brace(blanked, brace_pos):
    """Classify the scope a ``{`` at brace_pos opens."""
    start = brace_pos - 1
    while start >= 0 and blanked[start] not in ";{}":
        start -= 1
    head = blanked[start + 1:brace_pos].strip()
    if not head or head[-1] in "=,([{" or re.search(r"\breturn$", head):
        return "init"
    if re.search(r"\bnamespace\b", head):
        return "ns"
    # Drop (...) and <...> groups so parameter types and template
    # parameter lists cannot smuggle in a class-key.
    flat = re.sub(r"\([^()]*\)|<[^<>]*>", "", head)
    if re.search(r"\b(class|struct|union|enum)\b", flat):
        return "class"
    return "block"


def declaration_at(blanked, start):
    """Text of the declaration starting at ``start`` and whether it is a
    function declaration (first top-level ``(`` before any ``=``/``{``).

    ``<`` opens a nesting level only when it reads as a template argument
    list (directly after an identifier that is not ``operator``), so
    comparison expressions in initializers cannot unbalance the scan.
    """
    depth = 0
    is_function = None
    i = start
    while i < len(blanked):
        c = blanked[i]
        if c in "([":
            if c == "(" and depth == 0 and is_function is None:
                is_function = True
            depth += 1
        elif c == "<":
            prev = blanked[start:i].rstrip()
            if (prev and (prev[-1].isalnum() or prev[-1] in "_:")
                    and not prev.endswith("operator")):
                depth += 1
        elif c in ")>]":
            if not (c == ">" and i > 0 and blanked[i - 1] == "-"):
                depth = max(0, depth - 1)
        elif depth == 0:
            if c == "=" and is_function is None:
                is_function = False
            elif c == "{":
                if is_function is None:
                    is_function = False
                break
            elif c == ";":
                break
        i += 1
    return blanked[start:i], bool(is_function)


class Analyzer:
    def __init__(self, root):
        self.root = pathlib.Path(root)
        self.findings = []
        self.consumed_shared = set()  # (relpath, comment lineno)
        self.module_edges = {}  # module -> set(module) actually included

    def report(self, path, lineno, rule, message):
        rel = path.relative_to(self.root) if path.is_absolute() else path
        self.findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    # ---- rule: layering --------------------------------------------------

    def check_layer_dag_acyclic(self):
        """The declared DAG itself must be well-formed and acyclic."""
        for mod, deps in sorted(LAYERS.items()):
            for dep in sorted(deps):
                if dep not in LAYERS:
                    self.report(pathlib.Path("tools/sperke_analyze.py"), 1,
                                "layering",
                                f"declared dependency {mod} -> {dep} names "
                                "an unknown module")
        # Kahn's algorithm over the declared edges.
        indeg = {m: 0 for m in LAYERS}
        for deps in LAYERS.values():
            for dep in deps:
                if dep in indeg:
                    indeg[dep] += 1
        queue = sorted(m for m, d in indeg.items() if d == 0)
        seen = 0
        while queue:
            mod = queue.pop()
            seen += 1
            for dep in sorted(LAYERS[mod]):
                if dep in indeg:
                    indeg[dep] -= 1
                    if indeg[dep] == 0:
                        queue.append(dep)
        if seen != len(LAYERS):
            cyclic = sorted(m for m, d in indeg.items() if d > 0)
            self.report(pathlib.Path("tools/sperke_analyze.py"), 1,
                        "layering",
                        f"declared layering DAG has a cycle through {cyclic}")

    def dag_path(self, src, dst):
        """A dependency path src -> ... -> dst through the declared DAG,
        or None. Used to show the cycle a back-edge would close."""
        parent = {src: None}
        queue = [src]
        while queue:
            mod = queue.pop(0)
            if mod == dst:
                path = []
                while mod is not None:
                    path.append(mod)
                    mod = parent[mod]
                return list(reversed(path))
            for dep in sorted(LAYERS.get(mod, ())):
                if dep not in parent:
                    parent[dep] = mod
                    queue.append(dep)
        return None

    def check_layering(self, path, raw, blanked):
        parts = path.relative_to(self.root).parts
        if parts[0] != "src" or len(parts) < 3:
            return
        module = parts[1]
        if module not in LAYERS:
            self.report(path, 1, "layering",
                        f"src/{module}/ is not declared in the layering DAG "
                        "(add it to LAYERS in tools/sperke_analyze.py)")
            return
        # Include paths are string literals, which blanking erases — match
        # on the raw text, but only where the #include token survived
        # blanking (commented-out includes do not count as edges).
        for m in INCLUDE_RE.finditer(raw):
            if blanked[m.start():m.start() + 8] != "#include":
                continue
            lineno = blanked.count("\n", 0, m.start()) + 1
            target = m.group(1).split("/")[0]
            if "/" not in m.group(1):
                self.report(path, lineno, "layering",
                            f'include "{m.group(1)}" is not module-qualified '
                            "(house style: #include \"<module>/<file>\")")
                continue
            if target == module:
                continue
            self.module_edges.setdefault(module, set()).add(target)
            if target not in LAYERS:
                self.report(path, lineno, "layering",
                            f'include "{m.group(1)}" names undeclared module '
                            f"{target}")
                continue
            if target not in LAYERS[module]:
                allowed = ", ".join(sorted(LAYERS[module])) or "(none)"
                msg = (f'back-edge include "{m.group(1)}": module {module} '
                       f"may not depend on {target} (allowed: {allowed})")
                cycle = self.dag_path(target, module)
                if cycle:
                    msg += ("; this closes the include cycle "
                            + " -> ".join([module] + cycle))
                self.report(path, lineno, "layering", msg)

    # ---- rule: shared-state ----------------------------------------------

    def annotated_shared(self, raw_lines, lineno, relpath):
        """True if the finding on raw line ``lineno`` carries a shared()
        annotation (same or preceding line) with a non-empty reason."""
        for probe in (lineno, lineno - 1):
            if 1 <= probe <= len(raw_lines):
                m = SHARED_RE.search(raw_lines[probe - 1])
                if m:
                    if not m.group(1).strip():
                        self.report(pathlib.Path(relpath), probe,
                                    "shared-state",
                                    "shared() annotation with an empty "
                                    "reason — say why it is race-free/"
                                    "deterministic")
                    self.consumed_shared.add((relpath, probe))
                    return True
        return False

    def check_shared_state(self, path, raw, blanked):
        parts = path.relative_to(self.root).parts
        if parts[0] != "src":
            return
        relpath = str(path.relative_to(self.root))
        raw_lines = raw.splitlines()
        matches = [m for m in re.finditer(r"\bthread_local\b|\bstatic\b",
                                          blanked)]
        scopes = innermost_scopes(blanked, [m.start() for m in matches])
        reported_lines = set()

        for m in matches:
            scope = scopes[m.start()]
            if scope == "init":
                continue
            lineno = blanked.count("\n", 0, m.start()) + 1
            if lineno in reported_lines:
                continue
            decl, is_function = declaration_at(blanked, m.start())
            is_tl = "thread_local" in decl
            is_constexpr = re.search(r"\bconstexpr\b", decl) is not None
            is_const = is_constexpr or re.search(r"\bconst\b", decl)
            if is_tl:
                what = ("thread_local — per-thread state is invisible to "
                        "the shard-isolation merge; annotate why results "
                        "stay thread-count-invariant")
            elif scope == "block":
                if is_function:
                    continue
                if is_constexpr:
                    continue
                what = ("function-local static with dynamic initialization "
                        "— make it constexpr (std::array/string_view) or "
                        "annotate")
            else:  # 'ns' or 'class'
                if is_function or is_const:
                    continue
                where = ("namespace-scope" if scope == "ns"
                         else "static data member")
                what = (f"mutable {where} global — shards must not share "
                        "mutable state; move it into per-shard/session "
                        "objects or annotate")
            if self.annotated_shared(raw_lines, lineno, relpath):
                reported_lines.add(lineno)
                continue
            reported_lines.add(lineno)
            self.report(path, lineno, "shared-state",
                        what + " (// sperke-analyze: shared(<reason>))")

        self.check_ns_scope_globals(path, raw, blanked, raw_lines, relpath)

    def check_ns_scope_globals(self, path, raw, blanked, raw_lines, relpath):
        """Mutable namespace-scope variables declared *without* static.

        Reassembles the namespace-scope statement stream (contents of
        class/function bodies elided, braced initializers kept) and flags
        variable-shaped statements that are neither const nor constexpr.
        """
        stack = []
        stmt_chars = []
        stmt_start = None

        def flush(end_pos, terminated):
            nonlocal stmt_chars, stmt_start
            text = "".join(stmt_chars).strip()
            start = stmt_start
            stmt_chars, stmt_start = [], None
            if not terminated or not text or start is None:
                return
            self.check_ns_statement(path, text, start, raw_lines, relpath)

        i = 0
        n = len(blanked)
        while i < n:
            at_ns = not stack or stack[-1] == "ns"
            c = blanked[i]
            if c == "{":
                kind = classify_brace(blanked, i)
                if at_ns and kind == "init" and stmt_chars:
                    # Keep brace initializers inside the statement, elided.
                    depth = 1
                    j = i + 1
                    while j < n and depth:
                        if blanked[j] == "{":
                            depth += 1
                        elif blanked[j] == "}":
                            depth -= 1
                        j += 1
                    stmt_chars.append("{}")
                    i = j
                    continue
                if at_ns:
                    flush(i, terminated=False)  # function/class head
                stack.append(kind)
            elif c == "}":
                if stack:
                    stack.pop()
                if not stack or stack[-1] == "ns":
                    stmt_chars, stmt_start = [], None
            elif at_ns:
                if c == ";":
                    flush(i, terminated=True)
                elif c == "\n" and stmt_chars and stmt_chars[0] == "#":
                    stmt_chars, stmt_start = [], None  # preprocessor line
                else:
                    if stmt_start is None and not c.isspace():
                        stmt_start = i
                    if stmt_start is not None:
                        stmt_chars.append(c)
            i += 1

    NS_SKIP_RE = re.compile(
        r"^\s*(#|using\b|typedef\b|namespace\b|template\b|extern\b|"
        r"friend\b|static_assert\b|class\b|struct\b|union\b|enum\b|"
        r"public:|private:|protected:)")

    def check_ns_statement(self, path, text, start_pos, raw_lines, relpath):
        if self.NS_SKIP_RE.search(text):
            return
        if re.search(r"\bstatic\b|\bthread_local\b", text):
            return  # handled by the static/thread_local pass
        decl, is_function = declaration_at(text, 0)
        if is_function:
            return
        if re.search(r"\bconstexpr\b|\bconst\b", decl):
            return
        # A variable declaration needs at least a type and a name.
        if not re.search(r"[A-Za-z_][\w:<>,&*\s]*\s[A-Za-z_]\w*\s*(=|\{|$)",
                         decl.strip()):
            return
        # start_pos indexes the blanked text of the whole file; recover the
        # line from a prefix count over the statement's first character.
        blanked_prefix = self.blanked_by_file[path][:start_pos]
        lineno = blanked_prefix.count("\n") + 1
        if self.annotated_shared(raw_lines, lineno, relpath):
            return
        self.report(path, lineno, "shared-state",
                    "mutable namespace-scope global — shards must not share "
                    "mutable state; move it into per-shard/session objects "
                    "or annotate (// sperke-analyze: shared(<reason>))")

    # ---- rule: telemetry-contract ----------------------------------------

    def registered_patterns(self):
        """Metric-name patterns registered in src/bench/examples.

        A registration whose argument mixes literals and expressions
        yields a wildcard pattern: ``"abr." + name + ".plans"`` registers
        ``abr.*.plans``.
        """
        patterns = set()
        for path, blanked in sorted(self.blanked_by_file.items()):
            if path.relative_to(self.root).parts[0] not in METRIC_REG_DIRS:
                continue
            raw = self.raw_by_file[path]
            for m in METRIC_REG_RE.finditer(blanked):
                # The name is the first argument only: stop at the matching
                # close paren or the first top-level comma (histogram
                # registrations pass bucket bounds after the name).
                depth = 1
                i = m.end()
                arg_end = i
                while arg_end < len(blanked):
                    c = blanked[arg_end]
                    if c in "({":
                        depth += 1
                    elif c in ")}":
                        depth -= 1
                        if depth == 0:
                            break
                    elif c == "," and depth == 1:
                        break
                    arg_end += 1
                pieces = []
                pos = i
                while pos < arg_end:
                    if blanked[pos] == '"':
                        close = blanked.find('"', pos + 1)
                        if close < 0 or close > arg_end:
                            break
                        pieces.append(("lit", raw[pos + 1:close]))
                        pos = close + 1
                    else:
                        if not blanked[pos].isspace() and blanked[pos] != "+":
                            if not pieces or pieces[-1][0] != "dyn":
                                pieces.append(("dyn", ""))
                        pos += 1
                if not any(kind == "lit" for kind, _ in pieces):
                    continue  # fully dynamic: metric-name lint territory
                pattern = "".join("*" if kind == "dyn" else lit
                                  for kind, lit in pieces)
                patterns.add(pattern)
        return patterns

    @staticmethod
    def reference_matches(ref, patterns):
        probe = re.sub(r"<[a-z_]+>", "0", ref)
        for pattern in patterns:
            regex = ".+".join(re.escape(part)
                              for part in pattern.split("*"))
            if re.fullmatch(regex, probe):
                return True
        return False

    def check_telemetry_contract(self):
        patterns = self.registered_patterns()
        # Telemetry namespaces we can vouch for: the first dotted segment
        # of every registered pattern with a literal head. References
        # rooted elsewhere (qoe.*, spec.*, file names) are not metric
        # names and stay out of scope.
        roots = set()
        for p in patterns:
            head = p.split(".")[0].split("*")[0]
            if head:
                roots.add(head)

        def check_ref(path, lineno, ref, where):
            if FILE_EXT_RE.search(ref):
                return
            if ref.split(".")[0] not in roots:
                return  # not a telemetry namespace (qoe.*, spec.*, ...)
            if not self.reference_matches(ref, patterns):
                self.report(path, lineno, "telemetry-contract",
                            f'{where} references metric/SLO name "{ref}" '
                            "but no registration in src/bench/examples "
                            "produces it (renamed without updating the "
                            "reference?)")

        # DESIGN.md: backtick-quoted metric names.
        design = self.root / "DESIGN.md"
        if design.is_file():
            text = design.read_text(encoding="utf-8", errors="replace")
            for m in re.finditer(r"`([^`\n]+)`", text):
                token = m.group(1)
                if METRIC_REF_RE.fullmatch(token):
                    lineno = text.count("\n", 0, m.start()) + 1
                    check_ref(design, lineno, token, "DESIGN.md")

        # tools/report.py: quoted metric names.
        report_py = self.root / "tools" / "report.py"
        if report_py.is_file():
            text = report_py.read_text(encoding="utf-8", errors="replace")
            for m in re.finditer(r"""["']([a-z0-9_.]+)["']""", text):
                token = m.group(1)
                if METRIC_REF_RE.fullmatch(token):
                    lineno = text.count("\n", 0, m.start()) + 1
                    check_ref(report_py, lineno, token, "tools/report.py")

        self.check_baselines()

    def check_baselines(self):
        """Every committed baseline row must be backed by bench source."""
        baseline_dir = self.root / "bench" / "baselines"
        if not baseline_dir.is_dir():
            return
        src_corpus = None
        for path in sorted(baseline_dir.glob("*.json")):
            bench_src = self.root / "bench" / f"bench_{path.stem}.cpp"
            if not bench_src.is_file():
                self.report(path, 1, "telemetry-contract",
                            f"orphaned baseline: no bench/bench_{path.stem}"
                            ".cpp produces it")
                continue
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as err:
                self.report(path, 1, "telemetry-contract",
                            f"unparseable baseline JSON: {err}")
                continue
            bench_text = bench_src.read_text(encoding="utf-8",
                                             errors="replace")
            for bench in doc.get("benchmarks", []):
                name = bench.get("name", "")
                for segment in name.split("/"):
                    key = segment.split("=")[0]
                    if not key or NUMERIC_SEGMENT_RE.fullmatch(key):
                        continue
                    if key in bench_text:
                        continue
                    if src_corpus is None:
                        src_corpus = "\n".join(
                            self.raw_by_file[p]
                            for p in sorted(self.raw_by_file)
                            if p.relative_to(self.root).parts[0] == "src")
                    if key not in src_corpus:
                        self.report(
                            path, 1, "telemetry-contract",
                            f'orphaned baseline row "{name}": segment '
                            f'"{key}" occurs neither in '
                            f"bench/bench_{path.stem}.cpp nor in src/ "
                            "(renamed without refreshing the baseline?)")

    # ---- rule: stale-suppression -----------------------------------------

    def check_stale_suppressions(self):
        lint = sperke_lint.Linter(self.root)
        lint.run()
        for path in lint.cxx_files():
            raw = path.read_text(encoding="utf-8", errors="replace")
            rel = str(path.relative_to(self.root))
            for lineno, line in enumerate(raw.splitlines(), start=1):
                m = sperke_lint.ALLOW_RE.search(line)
                if m:
                    for rule in [r.strip() for r in m.group(1).split(",")]:
                        if (rel, lineno, rule) not in lint.used_allows:
                            self.report(
                                path, lineno, "stale-suppression",
                                f"sperke-lint: allow({rule}) no longer "
                                "suppresses any finding — delete it")
                parts = path.relative_to(self.root).parts
                if parts[0] == "src" and SHARED_RE.search(line):
                    if (rel, lineno) not in self.consumed_shared:
                        self.report(
                            path, lineno, "stale-suppression",
                            "sperke-analyze: shared(...) no longer "
                            "annotates a shared-state finding — delete it")

    # ---- reports ---------------------------------------------------------

    def dependency_dot(self):
        lines = ["digraph sperke_layers {", "  rankdir=BT;",
                 "  node [shape=box, fontname=\"monospace\"];"]
        for mod in sorted(LAYERS):
            lines.append(f"  {mod};")
        for mod in sorted(self.module_edges):
            for dep in sorted(self.module_edges[mod]):
                style = ("" if dep in LAYERS.get(mod, set())
                         else " [color=red, penwidth=2]")
                lines.append(f"  {mod} -> {dep}{style};")
        lines.append("}")
        return "\n".join(lines) + "\n"

    def dependency_markdown(self):
        lines = ["# Module dependency report (tools/sperke_analyze.py)",
                 "",
                 "Arrows read \"may include\"; *observed* lists the direct",
                 "`#include` edges actually present in `src/`.",
                 "",
                 "| module | observed deps | allowed deps |",
                 "|---|---|---|"]
        for mod in sorted(LAYERS):
            observed = ", ".join(sorted(self.module_edges.get(mod, set())))
            allowed = ", ".join(sorted(LAYERS[mod]))
            lines.append(f"| {mod} | {observed or '—'} | {allowed or '—'} |")
        return "\n".join(lines) + "\n"

    # ---- driver ----------------------------------------------------------

    def run(self):
        lint_helper = sperke_lint.Linter(self.root)
        files = lint_helper.cxx_files()
        self.raw_by_file = {}
        self.blanked_by_file = {}
        for path in files:
            raw = path.read_text(encoding="utf-8", errors="replace")
            self.raw_by_file[path] = raw
            self.blanked_by_file[path] = (
                sperke_lint.blank_comments_and_strings(raw))

        self.check_layer_dag_acyclic()
        for path in files:
            self.check_layering(path, self.raw_by_file[path],
                                self.blanked_by_file[path])
            self.check_shared_state(path, self.raw_by_file[path],
                                    self.blanked_by_file[path])
        self.check_telemetry_contract()
        self.check_stale_suppressions()
        self.findings.sort()
        return self.findings, len(files)


def self_test():
    """Positive and negative cases per rule on a synthetic tree
    (ctest analyze-selftest, mirroring the lint's harness)."""
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)

        def put(rel, text):
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(text, encoding="utf-8")

        # layering: a util -> core back-edge (closes a cycle, core already
        # depends on util), an undeclared-module include, and legal
        # downward/same-module includes.
        put("src/util/bad_layer.h",
            "#pragma once\n#include \"core/session.h\"\n")
        put("src/core/ok_layer.h",
            "#pragma once\n#include <vector>\n"
            "#include \"util/check.h\"\n#include \"core/buffer.h\"\n")
        put("src/net/bad_module.h",
            "#pragma once\n#include \"vendor/zlib.h\"\n")

        # shared-state: every flavor, annotated and not.
        put("src/core/bad_static.cpp",
            "namespace sperke::core {\n"
            "int answer() {\n"
            "  static int calls = 0;\n"
            "  return ++calls;\n"
            "}\n"
            "const std::vector<std::string>& names() {\n"
            "  static const std::vector<std::string> kNames = {\"a\"};\n"
            "  return kNames;\n"
            "}\n"
            "}  // namespace sperke::core\n")
        put("src/core/bad_tl.cpp",
            "namespace sperke::core {\n"
            "thread_local int scratch_size = 0;\n"
            "}\n")
        put("src/core/bad_global.cpp",
            "namespace {\n"
            "std::uint64_t g_total = 0;\n"
            "}  // namespace\n")
        put("src/geo/ok_shared.cpp",
            "#include <array>\n"
            "namespace sperke::geo {\n"
            "constexpr double kPi = 3.14159;\n"
            "const std::array<int, 2> kDims = {8, 12};\n"
            "int lookup(int i) {\n"
            "  static constexpr std::array<int, 2> kTable = {1, 2};\n"
            "  // sperke-analyze: shared(per-thread scratch; never escapes)\n"
            "  thread_local std::vector<int> scratch;\n"
            "  scratch.clear();\n"
            "  return kTable[i % 2] + kPi;\n"
            "}\n"
            "struct Grid {\n"
            "  static int area(int w, int h);\n"
            "  static constexpr int kCols = 12;\n"
            "};\n"
            "}  // namespace sperke::geo\n")

        # telemetry-contract: one good and one orphaned DESIGN reference,
        # one good and one orphaned baseline row.
        put("src/obs/reg.cpp",
            "void wire(MetricsRegistry& m, const std::string& policy) {\n"
            "  m.counter(\"cdn.edge.hits\");\n"
            "  m.counter(\"abr.\" + policy + \".plans\");\n"
            "}\n")
        put("DESIGN.md",
            "Counters: `cdn.edge.hits`, `abr.<name>.plans` are exported;\n"
            "`cdn.edge.bytes_served` was renamed away.\n"
            "Fields such as `spec.shards` and files like `t.json` are\n"
            "not metric names.\n")
        put("bench/bench_widget.cpp",
            "// rows: Widget/users=8/hit_rate\n"
            "const char* kRow = \"Widget/hit_rate\";\n"
            "const char* kUsers = \"users\";\n")
        put("bench/baselines/widget.json", json.dumps({"benchmarks": [
            {"name": "Widget/users=8/hit_rate", "real_time": 1.0},
            {"name": "Widget/users=8/renamed_metric", "real_time": 2.0},
        ]}))
        put("bench/baselines/retired.json",
            json.dumps({"benchmarks": [{"name": "Gone/x", "real_time": 1.0}]}))

        # stale-suppression: one consumed allow (steady_clock in src/ is a
        # wall-clock finding), one stale allow, one stale shared().
        put("src/sim/ok_allow.cpp",
            "void tick() {\n"
            "  auto t = std::chrono::steady_clock::now();"
            "  // sperke-lint: allow(wall-clock)\n"
            "  (void)t;\n"
            "}\n")
        put("src/sim/stale_allow.cpp",
            "int pure() {\n"
            "  return 4;  // sperke-lint: allow(ambient-entropy)\n"
            "}\n")
        put("src/sim/stale_shared.cpp",
            "int also_pure() {\n"
            "  // sperke-analyze: shared(left behind after a refactor)\n"
            "  return 5;\n"
            "}\n")

        analyzer = Analyzer(root)
        findings, _ = analyzer.run()

        expected = {
            "layering": [
                "src/net/bad_module.h:2:",
                "src/util/bad_layer.h:2:",
            ],
            "shared-state": [
                "src/core/bad_global.cpp:2:",
                "src/core/bad_static.cpp:3:",
                "src/core/bad_static.cpp:7:",
                "src/core/bad_tl.cpp:2:",
            ],
            "telemetry-contract": [
                "DESIGN.md:2:",
                "bench/baselines/retired.json:1:",
                "bench/baselines/widget.json:1:",
            ],
            "stale-suppression": [
                "src/sim/stale_allow.cpp:2:",
                "src/sim/stale_shared.cpp:2:",
            ],
        }
        ok = True
        for rule, want in expected.items():
            got = sorted(f.split(" ")[0] for f in findings
                         if f"[{rule}]" in f)
            if got != want:
                print(f"sperke_analyze: SELF-TEST FAIL — {rule} findings "
                      f"{got} != {want}", file=sys.stderr)
                ok = False
        if not ok:
            for f in findings:
                print(f"  {f}", file=sys.stderr)
            return 1
        # The back-edge message must show the cycle it closes.
        back_edge = [f for f in findings if "bad_layer" in f][0]
        if "cycle" not in back_edge:
            print("sperke_analyze: SELF-TEST FAIL — back-edge finding "
                  f"lacks the cycle path: {back_edge}", file=sys.stderr)
            return 1
        # Reports render and carry the observed edges.
        dot = analyzer.dependency_dot()
        md = analyzer.dependency_markdown()
        if "util -> core" not in dot or "color=red" not in dot:
            print("sperke_analyze: SELF-TEST FAIL — DOT report misses the "
                  "back-edge", file=sys.stderr)
            return 1
        if "| util | core |" not in md:
            print("sperke_analyze: SELF-TEST FAIL — markdown report misses "
                  "the observed util -> core edge", file=sys.stderr)
            return 1
    print("sperke_analyze: self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run the analyzer's own rule tests and exit")
    parser.add_argument("--dot", metavar="FILE",
                        help="write the observed module graph as DOT")
    parser.add_argument("--markdown", metavar="FILE",
                        help="write the module dependency table as markdown")
    args = parser.parse_args()
    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0
    if args.self_test:
        return self_test()

    analyzer = Analyzer(args.root)
    findings, nfiles = analyzer.run()
    if args.dot:
        pathlib.Path(args.dot).write_text(analyzer.dependency_dot(),
                                          encoding="utf-8")
    if args.markdown:
        pathlib.Path(args.markdown).write_text(analyzer.dependency_markdown(),
                                               encoding="utf-8")
    for finding in findings:
        print(finding)
    if findings:
        print(f"\nsperke_analyze: FAIL — {len(findings)} finding(s) "
              f"across {nfiles} files", file=sys.stderr)
        return 1
    print(f"sperke_analyze: OK — {nfiles} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
