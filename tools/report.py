#!/usr/bin/env python3
"""Self-contained HTML run report for Sperke observability exports.

Takes the artifacts a traced run writes — the sampled time series CSV
(obs::write_timeseries_csv), the SLO rollup CSV (obs::write_slo_csv) and
the event timeline JSONL (obs::write_trace_jsonl) — and renders one static
HTML page: an inline-SVG chart per series, the SLO table with breached
rows highlighted, and the top-N slowest fetch spans reconstructed from the
causal request ids. Pure stdlib, no network, deterministic: the same
inputs always produce byte-identical HTML (the property ``--check``
asserts, which is why it can run as a ctest gate on machines with nothing
installed but Python).

Usage:
    report.py [--series S.csv] [--slo S.csv] [--trace T.jsonl]
              [--top N] [-o report.html]
    report.py --check       # self-test on synthetic inputs, exit 0 on OK

Example:
    ./vod_streaming --trace /tmp/run.json
    tools/report.py --series /tmp/run.json.series.csv \\
                    --trace /tmp/run.json.jsonl -o /tmp/report.html
"""

import argparse
import csv
import html
import io
import json
import sys

CHART_W = 640
CHART_H = 96
PAD = 8


def fmt(v):
    """Shortest stable decimal for report text (mirrors C++ %.12g)."""
    return f"{v:.12g}"


# ---- input parsing --------------------------------------------------------

def read_series(fp):
    """timeseries CSV -> ordered list of {name, kind, points:[(t_s, value)]}.

    Counters chart their per-interval delta, gauges the sample, histograms
    the interval p99 bound (the SLO-relevant tail).
    """
    out = []
    index = {}
    for row in csv.DictReader(fp):
        name, kind = row["name"], row["kind"]
        if name not in index:
            index[name] = len(out)
            out.append({"name": name, "kind": kind, "points": []})
        value = row["value"] if kind in ("counter", "gauge") else row["p99"]
        out[index[name]]["points"].append((float(row["t_s"]), float(value)))
    return out


def read_slo(fp):
    return list(csv.DictReader(fp))


def read_trace(fp):
    return [json.loads(line) for line in fp if line.strip()]


def top_spans(events, top_n):
    """Slowest closed fetch spans, via the causal request ids.

    Dispatch/completion pairs match on args.request when the producer
    assigned an id, falling back to the (tile, chunk, quality) cell for
    untraced events — the same pairing rule as obs::write_chrome_trace.
    """
    open_spans = {}
    spans = []
    for e in events:
        args = e["args"]
        rid = args.get("request", 0)
        key = ("r", rid) if rid else ("c", args["tile"], args["chunk"],
                                      args["quality"])
        if e["event"] == "FetchDispatched":
            open_spans[key] = e
        elif e["event"] in ("FetchDone", "FetchDropped"):
            begin = open_spans.pop(key, None)
            if begin is None:
                continue
            spans.append({
                "name": ("FetchDropped" if e["event"] == "FetchDropped"
                         else "FetchRetry" if args.get("parent", 0)
                         else "Fetch"),
                "start_s": begin["ts_us"] / 1e6,
                "dur_ms": (e["ts_us"] - begin["ts_us"]) / 1e3,
                "tile": args["tile"],
                "chunk": args["chunk"],
                "quality": args["quality"],
                "bytes": args["bytes"],
                "request": rid,
                "parent": args.get("parent", 0),
            })
    # Slowest first; (start, request) tie-break keeps the order total.
    spans.sort(key=lambda s: (-s["dur_ms"], s["start_s"], s["request"]))
    return spans[:top_n]


# ---- rendering ------------------------------------------------------------

def svg_chart(points):
    ys = [y for _, y in points]
    lo, hi = min(ys), max(ys)
    span = (hi - lo) or 1.0
    xs = [x for x, _ in points]
    xspan = (xs[-1] - xs[0]) or 1.0
    coords = " ".join(
        f"{PAD + (x - xs[0]) / xspan * (CHART_W - 2 * PAD):.1f},"
        f"{CHART_H - PAD - (y - lo) / span * (CHART_H - 2 * PAD):.1f}"
        for x, y in points)
    return (
        f'<svg width="{CHART_W}" height="{CHART_H}" '
        f'viewBox="0 0 {CHART_W} {CHART_H}">'
        f'<rect width="{CHART_W}" height="{CHART_H}" fill="#fafafa"/>'
        f'<polyline points="{coords}" fill="none" stroke="#2458a0" '
        'stroke-width="1.5"/>'
        f'<text x="{PAD}" y="12" font-size="10" fill="#666">{fmt(hi)}</text>'
        f'<text x="{PAD}" y="{CHART_H - 2}" font-size="10" fill="#666">'
        f'{fmt(lo)}</text></svg>')


def render(series, slos, spans):
    out = io.StringIO()
    w = out.write
    w("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
      "<title>Sperke run report</title><style>\n"
      "body{font:14px/1.4 sans-serif;margin:24px;color:#222}\n"
      "table{border-collapse:collapse;margin:8px 0}\n"
      "td,th{border:1px solid #ccc;padding:3px 8px;text-align:right}\n"
      "th,td:first-child{text-align:left}\n"
      "tr.breached{background:#fde8e8}\n"
      "h2{margin-top:28px}\n"
      ".series{margin:12px 0}\n"
      "</style></head><body>\n<h1>Sperke run report</h1>\n")

    w("<h2>SLOs</h2>\n")
    if slos:
        w("<table><tr><th>slo</th><th>evaluated</th><th>breached</th>"
          "<th>breaches</th><th>budget burn %</th><th>at end</th>"
          "<th>last signal</th></tr>\n")
        for row in slos:
            evaluated = int(row["evaluated_intervals"])
            breached = int(row["breached_intervals"])
            burn = 100.0 * breached / evaluated if evaluated else 0.0
            at_end = row["breached_at_end"] not in ("0", "false", "")
            w(f'<tr class="{"breached" if at_end else "ok"}">'
              f"<td>{html.escape(row['name'])}</td><td>{evaluated}</td>"
              f"<td>{breached}</td><td>{int(row['breach_events'])}</td>"
              f"<td>{burn:.1f}</td>"
              f"<td>{'BREACHED' if at_end else 'ok'}</td>"
              f"<td>{fmt(float(row['last_signal']))}</td></tr>\n")
        w("</table>\n")
    else:
        w("<p>No SLO rollup supplied.</p>\n")

    w("<h2>Slowest fetch spans</h2>\n")
    if spans:
        w("<table><tr><th>span</th><th>start s</th><th>dur ms</th>"
          "<th>tile</th><th>chunk</th><th>quality</th><th>bytes</th>"
          "<th>request</th><th>parent</th></tr>\n")
        for s in spans:
            w(f"<tr><td>{html.escape(s['name'])}</td>"
              f"<td>{s['start_s']:.3f}</td><td>{s['dur_ms']:.2f}</td>"
              f"<td>{s['tile']}</td><td>{s['chunk']}</td>"
              f"<td>{s['quality']}</td><td>{s['bytes']}</td>"
              f"<td>{s['request']}</td><td>{s['parent']}</td></tr>\n")
        w("</table>\n")
    else:
        w("<p>No trace supplied.</p>\n")

    w("<h2>Time series</h2>\n")
    if series:
        for s in series:
            label = (f"{s['name']} ({s['kind']}"
                     f"{', p99' if s['kind'] == 'histogram' else ''})")
            w(f'<div class="series"><div>{html.escape(label)}</div>'
              f"{svg_chart(s['points'])}</div>\n")
    else:
        w("<p>No time series supplied.</p>\n")

    w("</body></html>\n")
    return out.getvalue()


# ---- self-test ------------------------------------------------------------

SYNTH_SERIES = """\
name,kind,interval,t_s,value,count,sum,p50,p90,p99
session.stalled,gauge,0,0.5,0,,,,,
session.stalled,gauge,1,1,1,,,,,
session.stalled,gauge,2,1.5,0,,,,,
fetch.bytes,counter,0,0.5,1000,,,,,
fetch.bytes,counter,1,1,0,,,,,
fetch.bytes,counter,2,1.5,2500,,,,,
fetch.latency_s,histogram,0,0.5,,3,0.21,0.05,0.1,0.1
fetch.latency_s,histogram,1,1,,0,0,0,0,0
fetch.latency_s,histogram,2,1.5,,1,0.4,0.5,0.5,0.5
"""

SYNTH_SLO = """\
name,evaluated_intervals,breached_intervals,breach_events,breached_at_end,last_signal
vod.stall_ratio,3,1,1,0,0
fetch.p99,3,3,1,1,0.5
"""

SYNTH_TRACE_EVENTS = [
    {"event": "FetchDispatched", "ts_us": 0,
     "args": {"tile": 1, "chunk": 0, "quality": 2, "bytes": 0,
              "request": 1, "parent": 0}},
    {"event": "FetchDispatched", "ts_us": 100,
     "args": {"tile": 2, "chunk": 0, "quality": 1, "bytes": 0,
              "request": 2, "parent": 0}},
    {"event": "FetchDone", "ts_us": 90_000,
     "args": {"tile": 1, "chunk": 0, "quality": 2, "bytes": 4000,
              "request": 1, "parent": 0}},
    # Retry of request 1 dispatched under a new id, linked by parent.
    {"event": "FetchDispatched", "ts_us": 95_000,
     "args": {"tile": 1, "chunk": 0, "quality": 0, "bytes": 0,
              "request": 3, "parent": 1}},
    {"event": "FetchDone", "ts_us": 300_000,
     "args": {"tile": 1, "chunk": 0, "quality": 0, "bytes": 900,
              "request": 3, "parent": 1}},
    {"event": "FetchDropped", "ts_us": 50_000,
     "args": {"tile": 2, "chunk": 0, "quality": 1, "bytes": 0,
              "request": 2, "parent": 0}},
    # Untraced event (request 0): pairs on the chunk cell.
    {"event": "FetchDispatched", "ts_us": 1000,
     "args": {"tile": 9, "chunk": 4, "quality": 1, "bytes": 0,
              "request": 0, "parent": 0}},
    {"event": "FetchDone", "ts_us": 2000,
     "args": {"tile": 9, "chunk": 4, "quality": 1, "bytes": 100,
              "request": 0, "parent": 0}},
    # Completion without a dispatch: must be skipped, not crash.
    {"event": "FetchDone", "ts_us": 5000,
     "args": {"tile": 8, "chunk": 8, "quality": 0, "bytes": 1,
              "request": 77, "parent": 0}},
]


def self_check():
    series = read_series(io.StringIO(SYNTH_SERIES))
    slos = read_slo(io.StringIO(SYNTH_SLO))
    trace_jsonl = "".join(json.dumps(e) + "\n" for e in SYNTH_TRACE_EVENTS)
    events = read_trace(io.StringIO(trace_jsonl))
    spans = top_spans(events, 3)

    assert [s["name"] for s in series] == [
        "session.stalled", "fetch.bytes", "fetch.latency_s"], series
    assert all(len(s["points"]) == 3 for s in series), series
    assert series[2]["points"][2][1] == 0.5, "histogram charts its p99"

    assert len(spans) == 3, spans
    assert [s["name"] for s in spans] == ["FetchRetry", "Fetch",
                                          "FetchDropped"], spans
    assert spans[0]["request"] == 3 and spans[0]["parent"] == 1, spans
    assert abs(spans[0]["dur_ms"] - 205.0) < 1e-9, spans
    assert top_spans(events, 10)[-1]["request"] == 0, "cell-keyed span kept"

    page = render(series, slos, spans)
    assert page == render(series, slos, spans), "render is not deterministic"
    assert page.count('class="breached"') == 1, "one SLO breached at end"
    assert "fetch.latency_s" in page and "<svg" in page, page[:200]

    empty = render([], [], [])
    assert empty == render([], [], []), "empty render is not deterministic"
    assert "No time series supplied" in empty
    print("report.py --check: OK")


# ---- main -----------------------------------------------------------------

def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--series", help="timeseries CSV (write_timeseries_csv)")
    parser.add_argument("--slo", help="SLO rollup CSV (write_slo_csv)")
    parser.add_argument("--trace", help="trace JSONL (write_trace_jsonl)")
    parser.add_argument("--top", type=int, default=20,
                        help="slowest spans to list (default 20)")
    parser.add_argument("-o", "--output", default="report.html")
    parser.add_argument("--check", action="store_true",
                        help="self-test on synthetic inputs and exit")
    args = parser.parse_args()

    if args.check:
        self_check()
        return 0
    if not (args.series or args.slo or args.trace):
        parser.error("nothing to report: pass --series, --slo or --trace "
                     "(or --check)")

    series, slos, spans = [], [], []
    if args.series:
        with open(args.series, newline="") as fp:
            series = read_series(fp)
    if args.slo:
        with open(args.slo, newline="") as fp:
            slos = read_slo(fp)
    if args.trace:
        with open(args.trace) as fp:
            spans = top_spans(read_trace(fp), args.top)

    with open(args.output, "w") as fp:
        fp.write(render(series, slos, spans))
    print(f"wrote {args.output}: {len(series)} series, {len(slos)} SLOs, "
          f"{len(spans)} spans")
    return 0


if __name__ == "__main__":
    sys.exit(main())
