#!/usr/bin/env python3
"""Sperke determinism & hygiene lint (DESIGN.md §11).

Every figure this repo reproduces depends on the simulation being a pure
function of its seeds. This lint is the machine check for the conventions
that keep it that way. It scans ``src/``, ``tests/``, ``bench/``,
``examples/`` and ``tools/`` and fails (exit 1) on:

  wall-clock          Wall-clock time APIs (``std::chrono::system_clock``,
                      ``time()``, ``gettimeofday``, ...) anywhere, and
                      ``steady_clock`` inside ``src/`` (monotonic wall
                      timing is legitimate in benches, never in the
                      simulation itself — sim code uses ``sim::Time``).
  ambient-entropy     ``std::random_device``, bare ``rand()``/``srand()``,
                      ``std::random_shuffle``. All randomness must flow
                      through an explicitly seeded ``sperke::Rng``.
  unordered-iteration Iteration over an ``unordered_map``/``unordered_set``
                      whose loop body feeds an output path (metrics,
                      traces, exporters, ``merge_from``, CSV/stream
                      writes). Hash-order is not deterministic across
                      libstdc++ versions; ordered containers or sorted
                      snapshots are.
  catch-all           ``catch (...)`` that swallows without logging,
                      capturing (``std::current_exception``) or
                      rethrowing. Silent swallows turn invariant
                      violations into wrong numbers.
  include-hygiene     Public headers under ``src/`` that use a std
                      vocabulary type without directly including its
                      canonical header (transitive-include reliance; the
                      compile-in-isolation side is tests/headers_compile).
  header-guard        Headers missing ``#pragma once``.
  abr-factory         Direct construction of a concrete tile-ABR policy
                      (``SperkeVra``, ``KnapsackVra``, ``ConsistencyVra``,
                      ``FullPanoramaVra``) outside ``src/abr/``. Product
                      code and benches must go through ``abr::make_policy``
                      so every policy stays selectable by name (the arena
                      contract). ``tests/`` and ``tools/`` are exempt —
                      unit tests exercise the concrete classes directly.
  link-construction   Direct construction of ``net::Link`` in ``src/``
                      outside ``src/net/`` and ``src/cdn/``. Product code
                      fetches through the ``net::ChunkSource`` seam
                      (``cdn::Topology`` hands out sources), so links are
                      wired by the net/cdn layers only. References,
                      pointers and ``net::LinkConfig`` stay fair game;
                      ``tests/``/``bench/``/``examples/`` build link
                      fixtures directly and are out of scope.
  metric-name         Metric registration sites (``.counter(`` /
                      ``.gauge(`` / ``.histogram(`` in ``src``, ``bench``
                      and ``examples``) whose name is not a string literal
                      matching ``[a-z0-9_.]+``. Metric and SLO names share
                      one style rule (obs/slo.h); literal names keep the
                      exported CSV/series schema greppable. ``tests/`` is
                      exempt so hostile-name escaping tests can exist.
  format-basics       Tabs, trailing whitespace, CRLF line endings,
                      missing final newline. The floor below
                      ``format-check`` (clang-format, when installed).

Suppress a finding with a trailing or preceding-line comment::

    std::chrono::steady_clock::now();  // sperke-lint: allow(wall-clock)

Suppressions are themselves audited: ``tools/sperke_analyze.py`` re-runs
this lint and fails on any ``allow(<rule>)`` comment that no longer
matches a finding (the ``stale-suppression`` rule), so suppressions
cannot outlive the code they excuse. ``Linter.used_allows`` records the
``(path, line, rule)`` of every comment that actually suppressed
something, which is what that audit consumes.

``--fix`` rewrites the mechanical ``format-basics`` findings in place
(CRLF endings, tab characters, trailing whitespace, missing final
newline) and is idempotent — a second pass changes nothing. Tabs are
replaced with two spaces even inside string literals: the rule bans the
raw character everywhere (``"\t"`` escapes are the idiom for tab data).

Usage:
    sperke_lint.py [--root DIR] [--list-rules] [--self-test] [--fix]
"""

import argparse
import pathlib
import re
import sys

SCAN_DIRS = ("src", "tests", "bench", "examples", "tools")
CXX_SUFFIXES = {".cpp", ".h"}

ALLOW_RE = re.compile(r"sperke-lint:\s*allow\(([a-z\-, ]+)\)")

# Wall-clock APIs that are never acceptable: they make output depend on
# when (or where) the process ran.
WALL_CLOCK_RE = re.compile(
    r"std::chrono::system_clock|\bsystem_clock\b|\bgettimeofday\b"
    r"|\bclock_gettime\b|\bstd::time\s*\(|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"
    r"|\blocaltime\b|\bgmtime\b|\bstrftime\b"
)
# steady_clock is monotonic, so it is fine for *measuring* a bench's wall
# speed — but simulation code must advance sim::Time, never read a clock.
STEADY_CLOCK_RE = re.compile(r"\bsteady_clock\b")

ENTROPY_RE = re.compile(
    r"std::random_device|\brandom_device\b|(?<![\w:])s?rand\s*\("
    r"|std::random_shuffle|\brandom_shuffle\b"
)

CATCH_ALL_RE = re.compile(r"catch\s*\(\s*\.\.\.\s*\)")
CATCH_HANDLED_RE = re.compile(
    r"current_exception|rethrow_exception|\bthrow\s*;|SPERKE_LOG_|log_message|FAIL\(\)"
)

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;{}]*>\s+(\w+)\s*[;{=]"
)
SINK_RE = re.compile(
    r"\bobserve\s*\(|\bcounter\s*\(|\bgauge\s*\(|\bhistogram\s*\(|merge_from"
    r"|\btrace\b|\bexport\w*\s*\(|\brecord\w*\s*\(|write_row|\bcsv\b|<<"
)

# Metric registration calls: member access (``.`` or ``->``) into one of
# the three MetricsRegistry instrument factories. Runs on blanked text
# (length-preserving), so the name literal is recovered from the raw text
# at the same indices.
METRIC_REG_RE = re.compile(r"[.>](counter|gauge|histogram)\s*\(")
METRIC_NAME_RE = re.compile(r"[a-z0-9_.]+\Z")
METRIC_NAME_DIRS = ("src", "bench", "examples")

# std vocabulary types headers must include directly (IWYU-lite). The map is
# deliberately small: high-signal types whose canonical header is unambiguous.
STD_NEEDS = {
    "std::shared_ptr": "memory",
    "std::unique_ptr": "memory",
    "std::weak_ptr": "memory",
    "std::make_shared": "memory",
    "std::make_unique": "memory",
    "std::string_view": "string_view",
    "std::string": "string",
    "std::vector": "vector",
    "std::map": "map",
    "std::set": "set",
    "std::unordered_map": "unordered_map",
    "std::unordered_set": "unordered_set",
    "std::function": "functional",
    "std::optional": "optional",
    "std::span": "span",
    "std::deque": "deque",
    "std::array": "array",
    "std::pair": "utility",
    "std::move": "utility",
    "std::atomic": "atomic",
    "std::mutex": "mutex",
    "std::jthread": "thread",
    "std::int64_t": "cstdint",
    "std::uint64_t": "cstdint",
    "std::int32_t": "cstdint",
    "std::uint32_t": "cstdint",
    "std::uint8_t": "cstdint",
    "std::size_t": "cstddef",
}
# string_view also exports std::string? No — but <string> provides
# std::string_view's header transitively on libstdc++; require the direct
# include anyway, except these pragmatic equivalences:
PROVIDES = {
    "cstddef": {"cstddef", "cstdio", "cstdlib", "cstring", "ctime"},
}

RULES = (
    "wall-clock",
    "ambient-entropy",
    "unordered-iteration",
    "catch-all",
    "include-hygiene",
    "header-guard",
    "abr-factory",
    "link-construction",
    "metric-name",
    "format-basics",
)

# Concrete tile-ABR policy classes; only src/abr/ itself (and tests/tools)
# may name them — everything else goes through abr::make_policy.
ABR_CONCRETE_RE = re.compile(
    r"\b(SperkeVra|KnapsackVra|ConsistencyVra|FullPanoramaVra)\b(?!Config)"
)
ABR_FACTORY_DIRS = ("src", "bench", "examples")

# Direct net::Link construction: owning smart-pointer factories, bare new,
# or a stack/member instance (``net::Link name(...)`` / ``{...}``). The
# trailing [({] keeps ``net::Link&`` parameters, ``net::Link*`` pointers
# and ``net::LinkConfig``/``net::LinkSource`` out of the net.
LINK_CONSTRUCT_RE = re.compile(
    r"make_unique<\s*net::Link\s*>|make_shared<\s*net::Link\s*>"
    r"|\bnew\s+net::Link\b|\bnet::Link\s+\w+\s*[({]"
)
LINK_EXEMPT_SUBDIRS = ("net", "cdn")


def blank_comments_and_strings(text):
    """Replace comment/string contents with spaces, preserving line structure.

    Keeps ``sperke-lint`` allow-comments findable by scanning the raw text
    separately; everything rule-matching runs on the blanked text so that
    documentation mentioning ``system_clock`` does not trip the lint.
    """
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "str"
                out.append('"')
                i += 1
                continue
            if c == "'":
                mode = "chr"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif mode in ("str", "chr"):
            quote = '"' if mode == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = "code"
                out.append(quote)
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


class Linter:
    def __init__(self, root):
        self.root = pathlib.Path(root)
        self.findings = []
        self.unordered_names = set()
        # (relative path, comment line, rule) of every allow() comment that
        # suppressed at least one finding — consumed by sperke_analyze's
        # stale-suppression audit.
        self.used_allows = set()

    def report(self, path, lineno, rule, message, raw_lines):
        # sperke-lint: allow(<rule>) on the offending or preceding line.
        rel = path.relative_to(self.root)
        for probe in (lineno, lineno - 1):
            if 1 <= probe <= len(raw_lines):
                m = ALLOW_RE.search(raw_lines[probe - 1])
                if m and rule in [r.strip() for r in m.group(1).split(",")]:
                    self.used_allows.add((str(rel), probe, rule))
                    return
        self.findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    def cxx_files(self):
        files = []
        for d in SCAN_DIRS:
            base = self.root / d
            if not base.is_dir():
                continue
            files.extend(
                p for p in sorted(base.rglob("*")) if p.suffix in CXX_SUFFIXES
            )
        return files

    def collect_unordered_decls(self, blanked_by_file):
        for text in blanked_by_file.values():
            for m in UNORDERED_DECL_RE.finditer(text):
                self.unordered_names.add(m.group(1))

    def loop_extent(self, lines, start, col=0):
        """Lines of the block starting at `start` (0-based), by braces.

        `col` skips text before the construct on the first line, so a
        leading ``}`` (as in ``} catch (...) {``) does not end the extent
        before it begins.
        """
        depth = 0
        opened = False
        end = start
        for j in range(start, min(start + 60, len(lines))):
            segment = lines[j][col:] if j == start else lines[j]
            depth += segment.count("{") - segment.count("}")
            if "{" in segment:
                opened = True
            end = j
            if opened and depth <= 0:
                break
        return lines[start : end + 1]

    def check_file(self, path, raw, blanked):
        raw_lines = raw.splitlines()
        lines = blanked.splitlines()
        in_src = "src" in path.relative_to(self.root).parts[:1]
        is_header = path.suffix == ".h"

        for idx, line in enumerate(lines, start=1):
            if WALL_CLOCK_RE.search(line):
                self.report(
                    path, idx, "wall-clock",
                    "wall-clock API; simulation output must be a pure "
                    "function of seeds (use sim::Time)", raw_lines,
                )
            elif in_src and STEADY_CLOCK_RE.search(line):
                self.report(
                    path, idx, "wall-clock",
                    "steady_clock inside src/; monotonic wall timing is for "
                    "benches only — sim code advances sim::Time", raw_lines,
                )
            if ENTROPY_RE.search(line):
                self.report(
                    path, idx, "ambient-entropy",
                    "ambient entropy source; use an explicitly seeded "
                    "sperke::Rng", raw_lines,
                )

        # catch-all swallows.
        for idx, line in enumerate(lines, start=1):
            m = CATCH_ALL_RE.search(line)
            if m:
                body = "\n".join(self.loop_extent(lines, idx - 1, m.start()))
                if not CATCH_HANDLED_RE.search(body):
                    self.report(
                        path, idx, "catch-all",
                        "catch (...) that neither logs, captures nor "
                        "rethrows — silent swallows corrupt results",
                        raw_lines,
                    )

        # unordered iteration feeding an output path.
        if self.unordered_names:
            names = "|".join(re.escape(n) for n in sorted(self.unordered_names))
            range_for = re.compile(
                r"for\s*\([^;)]*:\s*(?:\w+(?:\.|->))?(" + names + r")\s*\)"
            )
            iter_for = re.compile(
                r"for\s*\([^;]*=\s*(?:\w+(?:\.|->))?(" + names + r")\.(?:c?begin)\s*\("
            )
            for idx, line in enumerate(lines, start=1):
                if range_for.search(line) or iter_for.search(line):
                    body = "\n".join(self.loop_extent(lines, idx - 1))
                    if SINK_RE.search(body):
                        self.report(
                            path, idx, "unordered-iteration",
                            "iterating a hash container into an output path "
                            "(metrics/trace/export/merge); hash order is not "
                            "deterministic — use an ordered container or "
                            "sort a snapshot first", raw_lines,
                        )

        if path.relative_to(self.root).parts[0] in METRIC_NAME_DIRS:
            self.check_metric_names(path, raw, blanked, raw_lines)

        self.check_abr_factory(path, blanked, raw_lines)
        self.check_link_construction(path, blanked, raw_lines)

        if is_header:
            if "#pragma once" not in raw:
                self.report(
                    path, 1, "header-guard", "header missing #pragma once",
                    raw_lines,
                )
            if in_src:
                self.check_include_hygiene(path, blanked, raw_lines)

        self.check_format_basics(path, raw, raw_lines)

    def check_metric_names(self, path, raw, blanked, raw_lines):
        """Metric names must be well-formed string literals where registered.

        ``blank_comments_and_strings`` is length-preserving, so the literal's
        characters sit at the same indices in ``raw`` as its (blanked-out)
        placeholder does in ``blanked``.
        """
        for m in METRIC_REG_RE.finditer(blanked):
            lineno = blanked.count("\n", 0, m.start()) + 1
            i = m.end()
            while i < len(blanked) and blanked[i] in " \t\n":
                i += 1
            if i >= len(blanked) or blanked[i] != '"':
                self.report(
                    path, lineno, "metric-name",
                    f"{m.group(1)}() registration without a string-literal "
                    "name; pass the name as a literal so exported schemas "
                    "stay greppable (or allow(metric-name) for deliberately "
                    "dynamic names)", raw_lines,
                )
                continue
            j = blanked.find('"', i + 1)
            if j < 0:
                continue
            name = raw[i + 1 : j]
            if not METRIC_NAME_RE.fullmatch(name):
                self.report(
                    path, lineno, "metric-name",
                    f'metric name "{name}" violates [a-z0-9_.]+ (the shared '
                    "metric/SLO name rule, obs/slo.h)", raw_lines,
                )

    def check_abr_factory(self, path, blanked, raw_lines):
        """Concrete tile-ABR classes are an abr/-internal detail.

        Outside ``src/abr/`` (and the exempt ``tests``/``tools`` trees),
        naming ``SperkeVra`` & co. directly bypasses ``abr::make_policy`` —
        the config-name dispatch the arena bench and mixed-population
        worlds rely on. ``*Config`` structs stay fair game: they are the
        factory's own parameter surface.
        """
        parts = path.relative_to(self.root).parts
        if parts[0] not in ABR_FACTORY_DIRS:
            return
        if parts[0] == "src" and len(parts) > 1 and parts[1] == "abr":
            return
        for idx, line in enumerate(blanked.splitlines(), start=1):
            m = ABR_CONCRETE_RE.search(line)
            if m:
                self.report(
                    path, idx, "abr-factory",
                    f"direct use of {m.group(1)} outside src/abr/; construct "
                    "tile-ABR policies via abr::make_policy so they stay "
                    "selectable by name", raw_lines,
                )

    def check_link_construction(self, path, blanked, raw_lines):
        """Links are wired by src/net and src/cdn; everyone else fetches.

        Since the ChunkSource redesign (DESIGN.md §15), product code takes
        a ``net::ChunkSource&`` (or asks ``cdn::Topology`` for one) instead
        of owning a ``net::Link``. Direct construction elsewhere in
        ``src/`` reopens the seam the CDN tier sits behind. Test/bench/
        example trees build link fixtures on purpose and are out of scope.
        """
        parts = path.relative_to(self.root).parts
        if parts[0] != "src":
            return
        if len(parts) > 1 and parts[1] in LINK_EXEMPT_SUBDIRS:
            return
        for idx, line in enumerate(blanked.splitlines(), start=1):
            if LINK_CONSTRUCT_RE.search(line):
                self.report(
                    path, idx, "link-construction",
                    "direct net::Link construction outside src/net//src/cdn; "
                    "fetch through a net::ChunkSource (cdn::Topology hands "
                    "them out) so the CDN tier stays in the path",
                    raw_lines,
                )

    def check_include_hygiene(self, path, blanked, raw_lines):
        included = set(re.findall(r'#include <([^>]+)>', blanked))
        for token, header in sorted(STD_NEEDS.items()):
            if header in included:
                continue
            if any(p in included for p in PROVIDES.get(header, ())):
                continue
            m = re.search(re.escape(token) + r"\b", blanked)
            if m:
                lineno = blanked.count("\n", 0, m.start()) + 1
                self.report(
                    path, lineno, "include-hygiene",
                    f"uses {token} without directly including <{header}> "
                    "(transitive-include reliance)", raw_lines,
                )

    def check_format_basics(self, path, raw, raw_lines):
        if "\r" in raw:
            self.report(path, 1, "format-basics", "CRLF line endings",
                        raw_lines)
        if raw and not raw.endswith("\n"):
            self.report(path, len(raw_lines), "format-basics",
                        "missing final newline", raw_lines)
        for idx, line in enumerate(raw_lines, start=1):
            if "\t" in line:
                self.report(path, idx, "format-basics",
                            "tab character (indent with spaces)", raw_lines)
            if line != line.rstrip():
                self.report(path, idx, "format-basics",
                            "trailing whitespace", raw_lines)

    def run(self):
        files = self.cxx_files()
        blanked_by_file = {}
        raw_by_file = {}
        for path in files:
            raw = path.read_text(encoding="utf-8", errors="replace")
            raw_by_file[path] = raw
            blanked_by_file[path] = blank_comments_and_strings(raw)
        self.collect_unordered_decls(blanked_by_file)
        for path in files:
            self.check_file(path, raw_by_file[path], blanked_by_file[path])
        return self.findings, len(files)


def fix_format_basics(root):
    """Rewrite the mechanical format-basics findings in place (``--fix``).

    CRLF → LF, tab → two spaces, trailing whitespace stripped, final
    newline appended. Returns the repo-relative paths of changed files;
    idempotent by construction (every rewrite is a fixed point).
    """
    linter = Linter(root)
    changed = []
    for path in linter.cxx_files():
        raw = path.read_text(encoding="utf-8", errors="replace")
        text = raw.replace("\r\n", "\n").replace("\r", "\n")
        text = text.replace("\t", "  ")
        text = "\n".join(line.rstrip() for line in text.split("\n"))
        if text and not text.endswith("\n"):
            text += "\n"
        if text != raw:
            path.write_text(text, encoding="utf-8")
            changed.append(str(path.relative_to(linter.root)))
    return changed


def self_test():
    """Exercise the factory rules on a synthetic tree (ctest lint-selftest).

    abr-factory: violation in src/ and bench/, the src/abr/ and tests/
    scope exemptions, ``*Config`` structs staying legal, comment mentions
    not firing (blanked text), and allow-comment suppression.

    link-construction: make_unique and stack-instance violations in src/,
    the src/net//src/cdn exemptions, tests/ being out of scope,
    references/LinkConfig not firing, and allow-comment suppression.
    """
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)

        def put(rel, text):
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(text, encoding="utf-8")

        put("src/core/bad.cpp", "abr::SperkeVra vra(video, cfg);\n")
        put("bench/bad.cpp", "abr::FullPanoramaVra vra(video, {});\n")
        put("src/abr/ok.cpp", "SperkeVra vra(video, cfg);\n")
        put("tests/ok_test.cpp", "abr::KnapsackVra vra(video, {});\n")
        put("examples/ok_config.cpp",
            "// SperkeVra is built by the factory from this.\n"
            "abr::SperkeVraConfig cfg;\n")
        put("examples/ok_allowed.cpp",
            "// sperke-lint: allow(abr-factory)\n"
            "abr::ConsistencyVra vra(video, {});\n")

        put("src/engine/bad_link.cpp",
            "links_.push_back(std::make_unique<net::Link>(sim, cfg));\n")
        put("src/core/bad_link.cpp", "net::Link link(simulator, config);\n")
        put("src/net/ok_link.cpp",
            "auto l = std::make_unique<net::Link>(sim, cfg);\n")
        put("src/cdn/ok_link.cpp", "net::Link backhaul{sim, cfg};\n")
        put("tests/ok_link_test.cpp", "net::Link link(sim, cfg);\n")
        put("src/mp/ok_link_ref.cpp",
            "net::LinkConfig cfg;\n"
            "net::Link& link = topology.access_link(0);\n"
            "void wire(net::Link* l);\n")
        put("src/live/ok_link_allowed.cpp",
            "// sperke-lint: allow(link-construction)\n"
            "uplink_ = std::make_unique<net::Link>(sim, cfg);\n")

        findings, _ = Linter(root).run()
        for rule, expected in (
            ("abr-factory", ["bench/bad.cpp:1:", "src/core/bad.cpp:1:"]),
            ("link-construction",
             ["src/core/bad_link.cpp:1:", "src/engine/bad_link.cpp:1:"]),
        ):
            got = sorted(
                f.split(" ")[0] for f in findings if f"[{rule}]" in f
            )
            if got != expected:
                print(f"sperke_lint: SELF-TEST FAIL — {rule} findings "
                      f"{got} != {expected}", file=sys.stderr)
                for f in findings:
                    print(f"  {f}", file=sys.stderr)
                return 1

        # --fix: every mechanical format-basics finding is rewritten, the
        # result is clean, and a second pass is a no-op (idempotence).
        put("src/util/messy.cpp", "int a;\t\nint b; \r\nint c;")
        changed = fix_format_basics(root)
        if changed != ["src/util/messy.cpp"]:
            print(f"sperke_lint: SELF-TEST FAIL — --fix changed {changed}, "
                  "expected exactly src/util/messy.cpp", file=sys.stderr)
            return 1
        fixed = (root / "src/util/messy.cpp").read_text(encoding="utf-8")
        if fixed != "int a;\nint b;\nint c;\n":
            print("sperke_lint: SELF-TEST FAIL — --fix produced "
                  f"{fixed!r}", file=sys.stderr)
            return 1
        if fix_format_basics(root) != []:
            print("sperke_lint: SELF-TEST FAIL — --fix is not idempotent",
                  file=sys.stderr)
            return 1
        refindings, _ = Linter(root).run()
        if any("[format-basics]" in f and "messy" in f for f in refindings):
            print("sperke_lint: SELF-TEST FAIL — format-basics findings "
                  "survive --fix", file=sys.stderr)
            return 1
    print("sperke_lint: self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run the lint's own rule tests and exit")
    parser.add_argument("--fix", action="store_true",
                        help="rewrite mechanical format-basics findings "
                        "(CRLF, tabs, trailing whitespace, final newline) "
                        "in place, then exit")
    args = parser.parse_args()
    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0
    if args.self_test:
        return self_test()
    if args.fix:
        changed = fix_format_basics(args.root)
        for rel in changed:
            print(f"fixed {rel}")
        print(f"sperke_lint: --fix rewrote {len(changed)} file(s)")
        return 0

    linter = Linter(args.root)
    findings, nfiles = linter.run()
    for finding in findings:
        print(finding)
    if findings:
        print(f"\nsperke_lint: FAIL — {len(findings)} finding(s) "
              f"across {nfiles} files", file=sys.stderr)
        return 1
    print(f"sperke_lint: OK — {nfiles} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
