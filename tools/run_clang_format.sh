#!/usr/bin/env bash
# format-check gate (DESIGN.md §11): clang-format in dry-run mode over the
# C++ tree — reports diffs, changes nothing. Exits 77 ("skipped" to ctest)
# when clang-format is not installed; tools/sperke_lint.py's format-basics
# rule (tabs, trailing whitespace, CRLF, final newline) is the always-on
# floor beneath this gate.
set -u

fmt=""
for candidate in clang-format clang-format-2{1,0} clang-format-1{9,8,7,6,5,4}; do
  if command -v "$candidate" > /dev/null 2>&1; then
    fmt="$candidate"
    break
  fi
done
if [ -z "$fmt" ]; then
  echo "format-check: SKIPPED — clang-format not found on PATH" >&2
  exit 77
fi

files=$(find src tests bench examples -name '*.cpp' -o -name '*.h' | sort)
echo "format-check: $fmt --dry-run over $(echo "$files" | wc -l) files"
# shellcheck disable=SC2086
"$fmt" --dry-run --Werror $files
status=$?
if [ $status -eq 0 ]; then
  echo "format-check: OK"
else
  echo "format-check: FAIL — run: $fmt -i <files>" >&2
fi
exit $status
