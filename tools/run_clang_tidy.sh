#!/usr/bin/env bash
# tidy-check gate (DESIGN.md §11): clang-tidy over every src/ translation
# unit with warnings promoted to errors. Exits 77 ("skipped" to ctest)
# when no clang-tidy binary is installed, so minimal containers stay green
# while any toolchain that has the tool enforces the full check set.
#
# Usage: run_clang_tidy.sh [BUILD_DIR]   (default: ./build)
set -u

build_dir="${1:-build}"

tidy=""
for candidate in clang-tidy clang-tidy-2{1,0} clang-tidy-1{9,8,7,6,5,4}; do
  if command -v "$candidate" > /dev/null 2>&1; then
    tidy="$candidate"
    break
  fi
done
if [ -z "$tidy" ]; then
  echo "tidy-check: SKIPPED — clang-tidy not found on PATH" >&2
  exit 77
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "tidy-check: no $build_dir/compile_commands.json" \
       "(configure with the default preset first)" >&2
  exit 1
fi

files=$(find src -name '*.cpp' | sort)
echo "tidy-check: $tidy over $(echo "$files" | wc -l) files"
# shellcheck disable=SC2086
"$tidy" -p "$build_dir" --quiet --warnings-as-errors='*' $files
status=$?
if [ $status -eq 0 ]; then
  echo "tidy-check: OK"
else
  echo "tidy-check: FAIL" >&2
fi
exit $status
