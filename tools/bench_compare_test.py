#!/usr/bin/env python3
"""Unit tests for bench_compare.py (ctest: bench-compare-test).

bench_compare gates every perf-sensitive PR (DESIGN.md §8) but was itself
untested. These tests drive the real CLI through subprocess — the same
surface verify_all.sh and the bench goldens use — covering the plain
regression gate, the --higher-better flip, derived speedup rows,
--min-speedup floors, and the malformed-baseline error paths.

Stdlib-only; run directly or via ctest -R bench-compare-test.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

TOOL = pathlib.Path(__file__).resolve().parent / "bench_compare.py"


def bench_doc(rows):
    """google-benchmark JSON with one iteration row per (name, real_time)."""
    return {
        "benchmarks": [
            {"name": name, "run_type": "iteration", "real_time": rt}
            for name, rt in rows.items()
        ]
    }


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="bench_compare_test_")
        self.addCleanup(self._tmp.cleanup)
        self.tmp = pathlib.Path(self._tmp.name)

    def write(self, name, doc):
        path = self.tmp / name
        if isinstance(doc, str):
            path.write_text(doc, encoding="utf-8")
        else:
            path.write_text(json.dumps(doc), encoding="utf-8")
        return str(path)

    def run_tool(self, baseline, current, *extra):
        return subprocess.run(
            [sys.executable, str(TOOL), baseline, current, *extra],
            capture_output=True,
            text=True,
            check=False,
        )

    # ------------------------------------------------------------- basic gate

    def test_identical_ok(self):
        base = self.write("base.json", bench_doc({"BM_widget": 100.0}))
        cur = self.write("cur.json", bench_doc({"BM_widget": 100.0}))
        proc = self.run_tool(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("bench_compare: OK", proc.stdout)

    def test_regression_beyond_threshold_fails(self):
        base = self.write("base.json", bench_doc({"BM_widget": 100.0}))
        cur = self.write("cur.json", bench_doc({"BM_widget": 130.0}))
        proc = self.run_tool(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("REGRESSION", proc.stdout)
        self.assertIn("BM_widget", proc.stderr)

    def test_threshold_flag_widens_gate(self):
        base = self.write("base.json", bench_doc({"BM_widget": 100.0}))
        cur = self.write("cur.json", bench_doc({"BM_widget": 130.0}))
        proc = self.run_tool(base, cur, "--threshold", "0.5")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_improvement_and_one_sided_rows_pass(self):
        # Rows present on only one side are reported but never gate.
        base = self.write(
            "base.json", bench_doc({"BM_widget": 100.0, "BM_retired": 50.0})
        )
        cur = self.write(
            "cur.json", bench_doc({"BM_widget": 50.0, "BM_new": 10.0})
        )
        proc = self.run_tool(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("absent", proc.stdout)
        self.assertIn("new", proc.stdout)

    def test_aggregate_rows_skipped(self):
        doc = bench_doc({"BM_widget": 100.0})
        doc["benchmarks"].append(
            {"name": "BM_widget_mean", "run_type": "aggregate",
             "real_time": 999.0}
        )
        base = self.write("base.json", doc)
        cur = self.write("cur.json", bench_doc({"BM_widget": 100.0}))
        proc = self.run_tool(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("BM_widget_mean", proc.stdout)

    # ---------------------------------------------------------- higher-better

    def test_higher_better_drop_fails(self):
        base = self.write("base.json", bench_doc({"arena/qoe_score": 10.0}))
        cur = self.write("cur.json", bench_doc({"arena/qoe_score": 8.0}))
        proc = self.run_tool(base, cur, "--higher-better", "qoe")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("arena/qoe_score", proc.stderr)

    def test_higher_better_rise_passes(self):
        # A big rise would fail the default lower-is-better gate; the flag
        # must flip the direction for matching rows.
        base = self.write("base.json", bench_doc({"arena/qoe_score": 10.0}))
        cur = self.write("cur.json", bench_doc({"arena/qoe_score": 20.0}))
        proc = self.run_tool(base, cur, "--higher-better", "qoe")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_higher_better_negative_baseline_normalized_by_abs(self):
        # QoE scores can be negative: -2.0 -> -2.5 is a 25% drop relative
        # to |baseline| and must fail at the default 15% threshold.
        base = self.write("base.json", bench_doc({"arena/qoe_score": -2.0}))
        cur = self.write("cur.json", bench_doc({"arena/qoe_score": -2.5}))
        proc = self.run_tool(base, cur, "--higher-better", "qoe")
        self.assertEqual(proc.returncode, 1)

    def test_higher_better_regex_scopes_the_flip(self):
        # Non-matching rows keep the lower-is-better gate.
        base = self.write(
            "base.json",
            bench_doc({"arena/qoe_score": 10.0, "BM_widget": 100.0}),
        )
        cur = self.write(
            "cur.json",
            bench_doc({"arena/qoe_score": 10.0, "BM_widget": 130.0}),
        )
        proc = self.run_tool(base, cur, "--higher-better", "qoe")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("BM_widget", proc.stderr)
        self.assertNotIn("qoe_score", proc.stderr)

    # -------------------------------------------------------- derived speedups

    def test_speedup_loss_fails(self):
        base = self.write(
            "base.json",
            bench_doc({"BM_scale/threads=1": 80.0, "BM_scale/threads=hw": 10.0}),
        )
        cur = self.write(
            "cur.json",
            bench_doc({"BM_scale/threads=1": 80.0, "BM_scale/threads=hw": 40.0}),
        )
        proc = self.run_tool(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("speedup@threads=hw", proc.stderr)

    def test_min_speedup_floor(self):
        rows = {"BM_scale/threads=1": 80.0, "BM_scale/threads=hw": 60.0}
        base = self.write("base.json", bench_doc(rows))
        cur = self.write("cur.json", bench_doc(rows))
        # Current speedup is 80/60 = 1.33x: passes a 1.2x floor ...
        proc = self.run_tool(base, cur, "--min-speedup", "1.2")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        # ... and fails a 2.0x one, even with zero drift vs. the baseline.
        proc = self.run_tool(base, cur, "--min-speedup", "2.0")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("below --min-speedup", proc.stdout)

    # ------------------------------------------------------------ error paths

    def test_invalid_json_baseline_exits_2(self):
        base = self.write("base.json", "{not json")
        cur = self.write("cur.json", bench_doc({"BM_widget": 100.0}))
        proc = self.run_tool(base, cur)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("malformed input", proc.stderr)

    def test_row_missing_real_time_exits_2(self):
        base = self.write(
            "base.json",
            {"benchmarks": [{"name": "BM_widget", "run_type": "iteration"}]},
        )
        cur = self.write("cur.json", bench_doc({"BM_widget": 100.0}))
        proc = self.run_tool(base, cur)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("malformed input", proc.stderr)

    def test_missing_file_exits_2(self):
        cur = self.write("cur.json", bench_doc({"BM_widget": 100.0}))
        proc = self.run_tool(str(self.tmp / "nope.json"), cur)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("malformed input", proc.stderr)

    def test_empty_benchmarks_exits_2(self):
        base = self.write("base.json", {"benchmarks": []})
        cur = self.write("cur.json", bench_doc({"BM_widget": 100.0}))
        proc = self.run_tool(base, cur)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("no benchmarks", proc.stderr)


if __name__ == "__main__":
    unittest.main()
