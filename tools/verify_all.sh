#!/usr/bin/env bash
# Run every correctness gate the repo has, in rough order of cost:
#
#   1. sperke_lint (determinism/style lint over src, tests, bench, tools)
#      + sperke_analyze (layering DAG, shared-state audit, telemetry
#      contract, stale suppressions — see DESIGN.md §16)
#      + report.py --check (the HTML report generator's self-test)
#      + bench_compare_test.py (the perf gate's own unit tests)
#   2. clang-format / clang-tidy (skipped cleanly when the tools are absent)
#   3. default preset:  build + full ctest suite, then the deterministic
#      QoE gates (fault-recovery sweep + ABR arena league table) — these
#      are bit-stable simulations, safe to compare on any machine
#   4. check preset:    build with SPERKE_DCHECKs live + full ctest suite
#   5. sanitize preset: ASan/UBSan build + full ctest suite
#   6. tsan preset:     TSan build + the threaded engine determinism tests
#
# Any failure aborts the run (set -e); a tool probe that exits 77 is
# reported as SKIPPED and does not fail the gate. Usage:
#
#   tools/verify_all.sh            # everything
#   tools/verify_all.sh --fast     # lint + format/tidy + default preset only
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
elif [[ $# -gt 0 ]]; then
  echo "usage: tools/verify_all.sh [--fast]" >&2
  exit 2
fi

JOBS="$(nproc 2>/dev/null || echo 4)"
step() { printf '\n=== %s ===\n' "$*"; }

# Gates that probe for an optional tool exit 77 when it is missing; treat
# that as a skip, anything else nonzero as a failure.
run_optional() {
  local label="$1"
  shift
  local status=0
  "$@" || status=$?
  if [[ $status -eq 77 ]]; then
    echo "$label: SKIPPED (tool not available)"
  elif [[ $status -ne 0 ]]; then
    echo "$label: FAILED (exit $status)" >&2
    exit "$status"
  fi
}

step "sperke_lint"
python3 tools/sperke_lint.py --self-test
python3 tools/sperke_lint.py

step "sperke_analyze"
python3 tools/sperke_analyze.py --self-test
python3 tools/sperke_analyze.py

step "report.py self-check"
python3 tools/report.py --check

step "bench_compare unit tests"
python3 tools/bench_compare_test.py

step "clang-format (check only)"
run_optional "format-check" tools/run_clang_format.sh

step "default preset: build + test"
cmake --preset default >/dev/null
cmake --build --preset default -j "$JOBS"
ctest --preset default --output-on-failure

step "deterministic QoE gates: fault-recovery + ABR arena + CDN baselines"
cmake --build --preset default --target fault-recovery-check
cmake --build --preset default --target arena-check
cmake --build --preset default --target cdn-check

step "clang-tidy"
run_optional "tidy-check" tools/run_clang_tidy.sh build

if [[ $FAST -eq 1 ]]; then
  step "fast mode: skipping check/sanitize/tsan presets"
  exit 0
fi

step "check preset: build + test with SPERKE_DCHECKs live"
cmake --preset check >/dev/null
cmake --build --preset check -j "$JOBS"
ctest --preset check --output-on-failure

step "sanitize preset: ASan/UBSan build + test"
cmake --preset sanitize >/dev/null
cmake --build --preset sanitize -j "$JOBS"
ctest --preset sanitize --output-on-failure

step "tsan preset: engine determinism under ThreadSanitizer"
cmake --preset tsan >/dev/null
cmake --build --preset tsan --target engine_test -j "$JOBS"
./build-tsan/tests/engine_test --gtest_filter='EngineDeterminism.*:Engine.*'

step "all gates passed"
