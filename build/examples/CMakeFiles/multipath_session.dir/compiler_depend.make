# Empty compiler generated dependencies file for multipath_session.
# This may be replaced when dependencies are built.
