file(REMOVE_RECURSE
  "CMakeFiles/multipath_session.dir/multipath_session.cpp.o"
  "CMakeFiles/multipath_session.dir/multipath_session.cpp.o.d"
  "multipath_session"
  "multipath_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipath_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
