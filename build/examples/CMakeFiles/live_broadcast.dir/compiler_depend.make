# Empty compiler generated dependencies file for live_broadcast.
# This may be replaced when dependencies are built.
