# Empty compiler generated dependencies file for vod_streaming.
# This may be replaced when dependencies are built.
