file(REMOVE_RECURSE
  "CMakeFiles/vod_streaming.dir/vod_streaming.cpp.o"
  "CMakeFiles/vod_streaming.dir/vod_streaming.cpp.o.d"
  "vod_streaming"
  "vod_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
