file(REMOVE_RECURSE
  "CMakeFiles/live_test.dir/live_test.cpp.o"
  "CMakeFiles/live_test.dir/live_test.cpp.o.d"
  "live_test"
  "live_test.pdb"
  "live_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
