# Empty dependencies file for live_test.
# This may be replaced when dependencies are built.
