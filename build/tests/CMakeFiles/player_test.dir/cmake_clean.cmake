file(REMOVE_RECURSE
  "CMakeFiles/player_test.dir/player_test.cpp.o"
  "CMakeFiles/player_test.dir/player_test.cpp.o.d"
  "player_test"
  "player_test.pdb"
  "player_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/player_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
