# Empty compiler generated dependencies file for tiled_live_test.
# This may be replaced when dependencies are built.
