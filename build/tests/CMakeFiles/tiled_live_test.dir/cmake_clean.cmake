file(REMOVE_RECURSE
  "CMakeFiles/tiled_live_test.dir/tiled_live_test.cpp.o"
  "CMakeFiles/tiled_live_test.dir/tiled_live_test.cpp.o.d"
  "tiled_live_test"
  "tiled_live_test.pdb"
  "tiled_live_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiled_live_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
