file(REMOVE_RECURSE
  "CMakeFiles/hmp_test.dir/hmp_test.cpp.o"
  "CMakeFiles/hmp_test.dir/hmp_test.cpp.o.d"
  "hmp_test"
  "hmp_test.pdb"
  "hmp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
