# Empty compiler generated dependencies file for hmp_test.
# This may be replaced when dependencies are built.
