
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mp_test.cpp" "tests/CMakeFiles/mp_test.dir/mp_test.cpp.o" "gcc" "tests/CMakeFiles/mp_test.dir/mp_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mp/CMakeFiles/sperke_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/live/CMakeFiles/sperke_live.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sperke_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sperke_net.dir/DependInfo.cmake"
  "/root/repo/build/src/abr/CMakeFiles/sperke_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/player/CMakeFiles/sperke_player.dir/DependInfo.cmake"
  "/root/repo/build/src/hmp/CMakeFiles/sperke_hmp.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/sperke_media.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sperke_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sperke_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sperke_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
