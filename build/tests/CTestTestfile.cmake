# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/media_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/hmp_test[1]_include.cmake")
include("/root/repo/build/tests/abr_test[1]_include.cmake")
include("/root/repo/build/tests/mp_test[1]_include.cmake")
include("/root/repo/build/tests/live_test[1]_include.cmake")
include("/root/repo/build/tests/player_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/tiled_live_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
