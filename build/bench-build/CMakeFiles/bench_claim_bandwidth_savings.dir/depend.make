# Empty dependencies file for bench_claim_bandwidth_savings.
# This may be replaced when dependencies are built.
