file(REMOVE_RECURSE
  "../bench/bench_claim_bandwidth_savings"
  "../bench/bench_claim_bandwidth_savings.pdb"
  "CMakeFiles/bench_claim_bandwidth_savings.dir/bench_claim_bandwidth_savings.cpp.o"
  "CMakeFiles/bench_claim_bandwidth_savings.dir/bench_claim_bandwidth_savings.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_bandwidth_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
