file(REMOVE_RECURSE
  "../bench/bench_crowd_live_hmp"
  "../bench/bench_crowd_live_hmp.pdb"
  "CMakeFiles/bench_crowd_live_hmp.dir/bench_crowd_live_hmp.cpp.o"
  "CMakeFiles/bench_crowd_live_hmp.dir/bench_crowd_live_hmp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crowd_live_hmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
