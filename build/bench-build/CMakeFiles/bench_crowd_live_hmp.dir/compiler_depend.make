# Empty compiler generated dependencies file for bench_crowd_live_hmp.
# This may be replaced when dependencies are built.
