# Empty dependencies file for bench_spatial_fallback.
# This may be replaced when dependencies are built.
