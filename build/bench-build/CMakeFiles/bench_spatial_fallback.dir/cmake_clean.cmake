file(REMOVE_RECURSE
  "../bench/bench_spatial_fallback"
  "../bench/bench_spatial_fallback.pdb"
  "CMakeFiles/bench_spatial_fallback.dir/bench_spatial_fallback.cpp.o"
  "CMakeFiles/bench_spatial_fallback.dir/bench_spatial_fallback.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spatial_fallback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
