# Empty dependencies file for bench_svc_upgrade.
# This may be replaced when dependencies are built.
