file(REMOVE_RECURSE
  "../bench/bench_svc_upgrade"
  "../bench/bench_svc_upgrade.pdb"
  "CMakeFiles/bench_svc_upgrade.dir/bench_svc_upgrade.cpp.o"
  "CMakeFiles/bench_svc_upgrade.dir/bench_svc_upgrade.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_svc_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
