file(REMOVE_RECURSE
  "../bench/bench_table1_priorities"
  "../bench/bench_table1_priorities.pdb"
  "CMakeFiles/bench_table1_priorities.dir/bench_table1_priorities.cpp.o"
  "CMakeFiles/bench_table1_priorities.dir/bench_table1_priorities.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_priorities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
