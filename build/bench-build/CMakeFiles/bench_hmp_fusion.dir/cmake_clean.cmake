file(REMOVE_RECURSE
  "../bench/bench_hmp_fusion"
  "../bench/bench_hmp_fusion.pdb"
  "CMakeFiles/bench_hmp_fusion.dir/bench_hmp_fusion.cpp.o"
  "CMakeFiles/bench_hmp_fusion.dir/bench_hmp_fusion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hmp_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
