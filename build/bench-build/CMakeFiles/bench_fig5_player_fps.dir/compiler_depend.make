# Empty compiler generated dependencies file for bench_fig5_player_fps.
# This may be replaced when dependencies are built.
