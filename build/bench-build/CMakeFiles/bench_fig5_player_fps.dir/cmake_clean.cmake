file(REMOVE_RECURSE
  "../bench/bench_fig5_player_fps"
  "../bench/bench_fig5_player_fps.pdb"
  "CMakeFiles/bench_fig5_player_fps.dir/bench_fig5_player_fps.cpp.o"
  "CMakeFiles/bench_fig5_player_fps.dir/bench_fig5_player_fps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_player_fps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
