# Empty dependencies file for sperke_player.
# This may be replaced when dependencies are built.
