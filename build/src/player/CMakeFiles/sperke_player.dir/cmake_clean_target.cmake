file(REMOVE_RECURSE
  "libsperke_player.a"
)
