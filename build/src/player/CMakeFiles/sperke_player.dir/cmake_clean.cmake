file(REMOVE_RECURSE
  "CMakeFiles/sperke_player.dir/decoder_model.cpp.o"
  "CMakeFiles/sperke_player.dir/decoder_model.cpp.o.d"
  "CMakeFiles/sperke_player.dir/pipeline.cpp.o"
  "CMakeFiles/sperke_player.dir/pipeline.cpp.o.d"
  "libsperke_player.a"
  "libsperke_player.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperke_player.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
