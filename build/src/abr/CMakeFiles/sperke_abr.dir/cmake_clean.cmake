file(REMOVE_RECURSE
  "CMakeFiles/sperke_abr.dir/oos.cpp.o"
  "CMakeFiles/sperke_abr.dir/oos.cpp.o.d"
  "CMakeFiles/sperke_abr.dir/qoe.cpp.o"
  "CMakeFiles/sperke_abr.dir/qoe.cpp.o.d"
  "CMakeFiles/sperke_abr.dir/regular_vra.cpp.o"
  "CMakeFiles/sperke_abr.dir/regular_vra.cpp.o.d"
  "CMakeFiles/sperke_abr.dir/sperke_vra.cpp.o"
  "CMakeFiles/sperke_abr.dir/sperke_vra.cpp.o.d"
  "libsperke_abr.a"
  "libsperke_abr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperke_abr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
