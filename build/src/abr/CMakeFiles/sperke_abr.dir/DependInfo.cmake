
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abr/oos.cpp" "src/abr/CMakeFiles/sperke_abr.dir/oos.cpp.o" "gcc" "src/abr/CMakeFiles/sperke_abr.dir/oos.cpp.o.d"
  "/root/repo/src/abr/qoe.cpp" "src/abr/CMakeFiles/sperke_abr.dir/qoe.cpp.o" "gcc" "src/abr/CMakeFiles/sperke_abr.dir/qoe.cpp.o.d"
  "/root/repo/src/abr/regular_vra.cpp" "src/abr/CMakeFiles/sperke_abr.dir/regular_vra.cpp.o" "gcc" "src/abr/CMakeFiles/sperke_abr.dir/regular_vra.cpp.o.d"
  "/root/repo/src/abr/sperke_vra.cpp" "src/abr/CMakeFiles/sperke_abr.dir/sperke_vra.cpp.o" "gcc" "src/abr/CMakeFiles/sperke_abr.dir/sperke_vra.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sperke_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sperke_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sperke_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/sperke_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
