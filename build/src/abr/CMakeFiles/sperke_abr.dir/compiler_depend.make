# Empty compiler generated dependencies file for sperke_abr.
# This may be replaced when dependencies are built.
