file(REMOVE_RECURSE
  "libsperke_abr.a"
)
