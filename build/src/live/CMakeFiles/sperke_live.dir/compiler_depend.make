# Empty compiler generated dependencies file for sperke_live.
# This may be replaced when dependencies are built.
