file(REMOVE_RECURSE
  "libsperke_live.a"
)
