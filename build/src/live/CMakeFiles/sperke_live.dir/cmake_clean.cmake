file(REMOVE_RECURSE
  "CMakeFiles/sperke_live.dir/broadcast.cpp.o"
  "CMakeFiles/sperke_live.dir/broadcast.cpp.o.d"
  "CMakeFiles/sperke_live.dir/crowd.cpp.o"
  "CMakeFiles/sperke_live.dir/crowd.cpp.o.d"
  "CMakeFiles/sperke_live.dir/platform.cpp.o"
  "CMakeFiles/sperke_live.dir/platform.cpp.o.d"
  "CMakeFiles/sperke_live.dir/tiled_viewer.cpp.o"
  "CMakeFiles/sperke_live.dir/tiled_viewer.cpp.o.d"
  "CMakeFiles/sperke_live.dir/upload_vra.cpp.o"
  "CMakeFiles/sperke_live.dir/upload_vra.cpp.o.d"
  "libsperke_live.a"
  "libsperke_live.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperke_live.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
