# Empty dependencies file for sperke_util.
# This may be replaced when dependencies are built.
