file(REMOVE_RECURSE
  "CMakeFiles/sperke_util.dir/csv.cpp.o"
  "CMakeFiles/sperke_util.dir/csv.cpp.o.d"
  "CMakeFiles/sperke_util.dir/log.cpp.o"
  "CMakeFiles/sperke_util.dir/log.cpp.o.d"
  "CMakeFiles/sperke_util.dir/stats.cpp.o"
  "CMakeFiles/sperke_util.dir/stats.cpp.o.d"
  "CMakeFiles/sperke_util.dir/table.cpp.o"
  "CMakeFiles/sperke_util.dir/table.cpp.o.d"
  "libsperke_util.a"
  "libsperke_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperke_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
