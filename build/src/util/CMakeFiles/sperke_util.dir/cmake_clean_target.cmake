file(REMOVE_RECURSE
  "libsperke_util.a"
)
