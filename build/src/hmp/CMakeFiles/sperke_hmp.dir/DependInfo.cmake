
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hmp/accuracy.cpp" "src/hmp/CMakeFiles/sperke_hmp.dir/accuracy.cpp.o" "gcc" "src/hmp/CMakeFiles/sperke_hmp.dir/accuracy.cpp.o.d"
  "/root/repo/src/hmp/fusion.cpp" "src/hmp/CMakeFiles/sperke_hmp.dir/fusion.cpp.o" "gcc" "src/hmp/CMakeFiles/sperke_hmp.dir/fusion.cpp.o.d"
  "/root/repo/src/hmp/head_trace.cpp" "src/hmp/CMakeFiles/sperke_hmp.dir/head_trace.cpp.o" "gcc" "src/hmp/CMakeFiles/sperke_hmp.dir/head_trace.cpp.o.d"
  "/root/repo/src/hmp/heatmap.cpp" "src/hmp/CMakeFiles/sperke_hmp.dir/heatmap.cpp.o" "gcc" "src/hmp/CMakeFiles/sperke_hmp.dir/heatmap.cpp.o.d"
  "/root/repo/src/hmp/predictor.cpp" "src/hmp/CMakeFiles/sperke_hmp.dir/predictor.cpp.o" "gcc" "src/hmp/CMakeFiles/sperke_hmp.dir/predictor.cpp.o.d"
  "/root/repo/src/hmp/user_model.cpp" "src/hmp/CMakeFiles/sperke_hmp.dir/user_model.cpp.o" "gcc" "src/hmp/CMakeFiles/sperke_hmp.dir/user_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sperke_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sperke_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sperke_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/sperke_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
