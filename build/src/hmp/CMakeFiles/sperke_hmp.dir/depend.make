# Empty dependencies file for sperke_hmp.
# This may be replaced when dependencies are built.
