file(REMOVE_RECURSE
  "CMakeFiles/sperke_hmp.dir/accuracy.cpp.o"
  "CMakeFiles/sperke_hmp.dir/accuracy.cpp.o.d"
  "CMakeFiles/sperke_hmp.dir/fusion.cpp.o"
  "CMakeFiles/sperke_hmp.dir/fusion.cpp.o.d"
  "CMakeFiles/sperke_hmp.dir/head_trace.cpp.o"
  "CMakeFiles/sperke_hmp.dir/head_trace.cpp.o.d"
  "CMakeFiles/sperke_hmp.dir/heatmap.cpp.o"
  "CMakeFiles/sperke_hmp.dir/heatmap.cpp.o.d"
  "CMakeFiles/sperke_hmp.dir/predictor.cpp.o"
  "CMakeFiles/sperke_hmp.dir/predictor.cpp.o.d"
  "CMakeFiles/sperke_hmp.dir/user_model.cpp.o"
  "CMakeFiles/sperke_hmp.dir/user_model.cpp.o.d"
  "libsperke_hmp.a"
  "libsperke_hmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperke_hmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
