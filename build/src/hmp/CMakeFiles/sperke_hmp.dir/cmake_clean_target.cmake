file(REMOVE_RECURSE
  "libsperke_hmp.a"
)
