file(REMOVE_RECURSE
  "CMakeFiles/sperke_media.dir/content_store.cpp.o"
  "CMakeFiles/sperke_media.dir/content_store.cpp.o.d"
  "CMakeFiles/sperke_media.dir/manifest.cpp.o"
  "CMakeFiles/sperke_media.dir/manifest.cpp.o.d"
  "CMakeFiles/sperke_media.dir/mpd.cpp.o"
  "CMakeFiles/sperke_media.dir/mpd.cpp.o.d"
  "CMakeFiles/sperke_media.dir/quality_ladder.cpp.o"
  "CMakeFiles/sperke_media.dir/quality_ladder.cpp.o.d"
  "CMakeFiles/sperke_media.dir/video_model.cpp.o"
  "CMakeFiles/sperke_media.dir/video_model.cpp.o.d"
  "libsperke_media.a"
  "libsperke_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperke_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
