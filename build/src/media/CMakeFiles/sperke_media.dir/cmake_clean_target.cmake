file(REMOVE_RECURSE
  "libsperke_media.a"
)
