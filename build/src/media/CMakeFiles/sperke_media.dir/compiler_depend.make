# Empty compiler generated dependencies file for sperke_media.
# This may be replaced when dependencies are built.
