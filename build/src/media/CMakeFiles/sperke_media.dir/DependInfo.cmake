
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/content_store.cpp" "src/media/CMakeFiles/sperke_media.dir/content_store.cpp.o" "gcc" "src/media/CMakeFiles/sperke_media.dir/content_store.cpp.o.d"
  "/root/repo/src/media/manifest.cpp" "src/media/CMakeFiles/sperke_media.dir/manifest.cpp.o" "gcc" "src/media/CMakeFiles/sperke_media.dir/manifest.cpp.o.d"
  "/root/repo/src/media/mpd.cpp" "src/media/CMakeFiles/sperke_media.dir/mpd.cpp.o" "gcc" "src/media/CMakeFiles/sperke_media.dir/mpd.cpp.o.d"
  "/root/repo/src/media/quality_ladder.cpp" "src/media/CMakeFiles/sperke_media.dir/quality_ladder.cpp.o" "gcc" "src/media/CMakeFiles/sperke_media.dir/quality_ladder.cpp.o.d"
  "/root/repo/src/media/video_model.cpp" "src/media/CMakeFiles/sperke_media.dir/video_model.cpp.o" "gcc" "src/media/CMakeFiles/sperke_media.dir/video_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sperke_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sperke_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sperke_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
