# Empty dependencies file for sperke_net.
# This may be replaced when dependencies are built.
