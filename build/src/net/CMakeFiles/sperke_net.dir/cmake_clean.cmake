file(REMOVE_RECURSE
  "CMakeFiles/sperke_net.dir/bandwidth_trace.cpp.o"
  "CMakeFiles/sperke_net.dir/bandwidth_trace.cpp.o.d"
  "CMakeFiles/sperke_net.dir/link.cpp.o"
  "CMakeFiles/sperke_net.dir/link.cpp.o.d"
  "CMakeFiles/sperke_net.dir/throughput_estimator.cpp.o"
  "CMakeFiles/sperke_net.dir/throughput_estimator.cpp.o.d"
  "libsperke_net.a"
  "libsperke_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperke_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
