file(REMOVE_RECURSE
  "libsperke_net.a"
)
