# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("geo")
subdirs("media")
subdirs("net")
subdirs("hmp")
subdirs("abr")
subdirs("core")
subdirs("mp")
subdirs("live")
subdirs("player")
