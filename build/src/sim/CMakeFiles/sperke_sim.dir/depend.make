# Empty dependencies file for sperke_sim.
# This may be replaced when dependencies are built.
