file(REMOVE_RECURSE
  "CMakeFiles/sperke_sim.dir/periodic.cpp.o"
  "CMakeFiles/sperke_sim.dir/periodic.cpp.o.d"
  "CMakeFiles/sperke_sim.dir/simulator.cpp.o"
  "CMakeFiles/sperke_sim.dir/simulator.cpp.o.d"
  "libsperke_sim.a"
  "libsperke_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperke_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
