file(REMOVE_RECURSE
  "libsperke_sim.a"
)
