file(REMOVE_RECURSE
  "libsperke_mp.a"
)
