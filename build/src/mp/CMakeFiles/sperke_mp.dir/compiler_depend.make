# Empty compiler generated dependencies file for sperke_mp.
# This may be replaced when dependencies are built.
