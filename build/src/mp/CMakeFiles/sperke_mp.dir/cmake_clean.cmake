file(REMOVE_RECURSE
  "CMakeFiles/sperke_mp.dir/multipath.cpp.o"
  "CMakeFiles/sperke_mp.dir/multipath.cpp.o.d"
  "CMakeFiles/sperke_mp.dir/priority.cpp.o"
  "CMakeFiles/sperke_mp.dir/priority.cpp.o.d"
  "libsperke_mp.a"
  "libsperke_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperke_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
