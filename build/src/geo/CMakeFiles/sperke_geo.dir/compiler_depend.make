# Empty compiler generated dependencies file for sperke_geo.
# This may be replaced when dependencies are built.
