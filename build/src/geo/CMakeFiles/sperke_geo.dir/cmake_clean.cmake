file(REMOVE_RECURSE
  "CMakeFiles/sperke_geo.dir/orientation.cpp.o"
  "CMakeFiles/sperke_geo.dir/orientation.cpp.o.d"
  "CMakeFiles/sperke_geo.dir/projection.cpp.o"
  "CMakeFiles/sperke_geo.dir/projection.cpp.o.d"
  "CMakeFiles/sperke_geo.dir/tile_grid.cpp.o"
  "CMakeFiles/sperke_geo.dir/tile_grid.cpp.o.d"
  "CMakeFiles/sperke_geo.dir/visibility.cpp.o"
  "CMakeFiles/sperke_geo.dir/visibility.cpp.o.d"
  "libsperke_geo.a"
  "libsperke_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperke_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
