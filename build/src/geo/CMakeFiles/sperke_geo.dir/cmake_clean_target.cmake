file(REMOVE_RECURSE
  "libsperke_geo.a"
)
