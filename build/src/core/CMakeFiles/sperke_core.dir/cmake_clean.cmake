file(REMOVE_RECURSE
  "CMakeFiles/sperke_core.dir/buffer.cpp.o"
  "CMakeFiles/sperke_core.dir/buffer.cpp.o.d"
  "CMakeFiles/sperke_core.dir/session.cpp.o"
  "CMakeFiles/sperke_core.dir/session.cpp.o.d"
  "CMakeFiles/sperke_core.dir/transport.cpp.o"
  "CMakeFiles/sperke_core.dir/transport.cpp.o.d"
  "libsperke_core.a"
  "libsperke_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperke_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
