# Empty compiler generated dependencies file for sperke_core.
# This may be replaced when dependencies are built.
