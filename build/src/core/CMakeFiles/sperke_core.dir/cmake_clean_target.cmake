file(REMOVE_RECURSE
  "libsperke_core.a"
)
