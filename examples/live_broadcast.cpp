// Live 360° broadcast walkthrough (§3.4): measure the end-to-end latency of
// the three platform models under a chosen network condition, then show how
// the paper's broadcaster-side *spatial fallback* responds as the uplink
// collapses during a concert-style event.
//
//   $ ./live_broadcast [up_kbps] [down_kbps]   (0 = unconstrained)
#include <cstdlib>
#include <iostream>

#include "live/broadcast.h"
#include "live/platform.h"
#include "live/upload_vra.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sperke;
  using namespace sperke::live;

  NetworkConditions network;
  network.up_kbps = argc > 1 ? std::atof(argv[1]) : 0.0;
  network.down_kbps = argc > 2 ? std::atof(argv[2]) : 0.0;

  std::cout << "Live 360 broadcast, condition: " << network.label() << "\n\n";
  TextTable table({"Platform", "E2E latency s", "Displayed kbps",
                   "Broadcaster drops", "Rebuffers", "Catch-up skips"});
  for (const auto& platform : {PlatformProfile::facebook(),
                               PlatformProfile::periscope(),
                               PlatformProfile::youtube()}) {
    LiveBroadcastSession::Config cfg;
    cfg.platform = platform;
    cfg.network = network;
    const auto result = LiveBroadcastSession(cfg).run();
    table.add_row({platform.name, TextTable::num(result.mean_e2e_latency_s, 1),
                   TextTable::num(result.mean_displayed_kbps, 0),
                   std::to_string(result.segments_dropped_at_broadcaster),
                   std::to_string(result.viewer_rebuffer_events),
                   std::to_string(result.viewer_catchup_skips)});
  }
  std::cout << table.str() << '\n';

  // Broadcaster-side spatial fallback during an uplink collapse: the
  // uploaded horizon shrinks before the quality does (concert: audience
  // gaze concentrated within sigma = 45 deg of the stage).
  std::cout << "Spatial fallback during an uplink collapse (target 4 Mbps, "
               "stage interest sigma = 45 deg):\n";
  SpatialFallbackPolicy spatial(4000.0, 120.0);
  QualityAdaptivePolicy quality(4000.0, 250.0);
  TextTable fb({"Uplink kbps", "Horizon deg", "Upload kbps",
                "Viewer utility (spatial)", "Viewer utility (quality-drop)"});
  for (double capacity : {4000.0, 2500.0, 1200.0, 600.0}) {
    const auto d = spatial.decide(capacity);
    fb.add_row({TextTable::num(capacity, 0), TextTable::num(d.horizon_deg, 0),
                TextTable::num(d.upload_kbps, 0),
                TextTable::num(expected_viewer_utility(d, 4000.0, 45.0), 3),
                TextTable::num(
                    expected_viewer_utility(quality.decide(capacity), 4000.0, 45.0),
                    3)});
  }
  std::cout << fb.str();
  return 0;
}
