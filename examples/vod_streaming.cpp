// On-demand 360° streaming walkthrough: the scenario the paper's intro
// motivates — a commuter watching a 4K-class panoramic video over a
// fluctuating cellular link. Compares the FoV-agnostic status quo with
// three Sperke configurations and prints a per-chunk quality strip.
//
// Each scenario is described as an engine::WorldSpec (one session, one
// cellular link) and run through engine::ShardedEngine — the same
// declarative path the scale bench and the integration tests use.
//
//   $ ./vod_streaming [mean_kbps] [--trace <path>]    (default 12000)
//
// With --trace, the flagship "FoV-guided, SVC upgrades" session writes its
// full timeline as Chrome trace_event JSON to <path> (open it in
// chrome://tracing or https://ui.perfetto.dev), the same timeline as
// line-delimited JSON to <path>.jsonl (for jq and tools/report.py), its
// metrics to <path>.metrics.csv, and its 1 s sampled time series to
// <path>.series.csv.
#include <cstdlib>
#include <exception>
#include <iostream>
#include <memory>
#include <string>
#include <utility>

#include "engine/engine.h"
#include "engine/world.h"
#include "net/link.h"
#include "obs/export.h"
#include "obs/timeseries.h"
#include "util/table.h"

namespace {

using namespace sperke;

struct Scenario {
  std::string label;
  core::PlannerMode planner = core::PlannerMode::kFovGuided;
  abr::EncodingMode mode = abr::EncodingMode::kSvc;
};

struct RunOutput {
  core::SessionReport report;
  std::unique_ptr<obs::Telemetry> telemetry;  // set only when traced
  obs::TimeSeriesStore series;                // sampled only when traced
};

RunOutput run(const Scenario& scenario, double mean_kbps, bool traced) {
  engine::WorldSpec spec;
  spec.video.duration_s = 90.0;
  spec.video.tile_rows = 4;
  spec.video.tile_cols = 6;
  spec.video.seed = 2;

  spec.trace_template.duration_s = 300.0;
  spec.trace_template.profile = hmp::UserProfile::adult();
  spec.trace_template.attractors = hmp::default_attractors(300.0, 9);
  spec.trace_template.seed = 17;
  spec.trace_pool = 1;

  spec.link.name = "cellular";
  spec.link.bandwidth =
      net::BandwidthTrace::random_walk(mean_kbps, 0.35, 1.0, 400.0, 11, 1'000.0);
  spec.link.rtt = sim::milliseconds(45);
  spec.transport_max_concurrent = 12;

  spec.sessions = 1;
  spec.session.planner = scenario.planner;
  spec.session.abr.sperke.mode = scenario.mode;
  spec.horizon = sim::seconds(900.0);
  spec.shards = 1;
  spec.session_telemetry = traced;
  spec.monitor = traced;
  if (traced) spec.sample_period = sim::seconds(1.0);

  engine::EngineResult result = engine::run_world(std::move(spec));
  RunOutput out;
  out.report = std::move(result.reports.front());
  if (traced) {
    out.telemetry = std::move(result.shard_telemetry.front());
    out.series = std::move(result.series);
  }
  return out;
}

// Render a 0..1 utility series as a coarse text strip.
std::string quality_strip(const std::vector<double>& utilities) {
  static const char* glyphs = " .:-=+*#";
  std::string out;
  for (double u : utilities) {
    const int idx = std::min(7, static_cast<int>(u * 8.0));
    out += glyphs[idx];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double mean_kbps = 12'000.0;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::cerr << "usage: vod_streaming [mean_kbps] [--trace <path>]\n";
        return 2;
      }
      trace_path = argv[++i];
    } else {
      mean_kbps = std::atof(arg.c_str());
    }
  }

  std::cout << "VOD 360 streaming over a fluctuating ~" << mean_kbps / 1000.0
            << " Mbps cellular link (90 s video)\n\n";

  const Scenario scenarios[] = {
      {"FoV-agnostic (YouTube-style)", core::PlannerMode::kFovAgnostic,
       abr::EncodingMode::kAvcNoUpgrade},
      {"FoV-guided, AVC (no upgrades)", core::PlannerMode::kFovGuided,
       abr::EncodingMode::kAvcNoUpgrade},
      {"FoV-guided, SVC upgrades", core::PlannerMode::kFovGuided,
       abr::EncodingMode::kSvc},
      {"FoV-guided, hybrid SVC/AVC", core::PlannerMode::kFovGuided,
       abr::EncodingMode::kHybrid},
  };
  TextTable table({"Configuration", "Utility", "Stall s", "MB", "Waste %",
                   "Upgrades", "Score"});
  std::unique_ptr<obs::Telemetry> telemetry;
  obs::TimeSeriesStore series;
  for (const Scenario& scenario : scenarios) {
    // Trace the flagship Sperke configuration only: one session = one
    // coherent timeline.
    const bool traced = !trace_path.empty() && scenario.mode == abr::EncodingMode::kSvc &&
                        scenario.planner == core::PlannerMode::kFovGuided;
    RunOutput out = run(scenario, mean_kbps, traced);
    if (traced) {
      telemetry = std::move(out.telemetry);
      series = std::move(out.series);
    }
    const core::SessionReport& report = out.report;
    table.add_row(
        {scenario.label, TextTable::num(report.qoe.mean_viewport_utility, 3),
         TextTable::num(report.qoe.stall_seconds, 2),
         TextTable::num(report.qoe.bytes_downloaded / 1e6, 1),
         TextTable::num(100.0 * report.qoe.bytes_wasted /
                            std::max<std::int64_t>(1, report.qoe.bytes_downloaded),
                        1),
         std::to_string(report.upgrades), TextTable::num(report.qoe.score, 1)});
    std::cout << "  " << scenario.label << "\n  viewport quality over time: |"
              << quality_strip(report.viewport_utility_per_chunk) << "|\n\n";
  }
  std::cout << table.str();
  if (!trace_path.empty() && telemetry != nullptr) {
    try {
      obs::dump_chrome_trace(trace_path, *telemetry);
      obs::dump_trace_jsonl(trace_path + ".jsonl", *telemetry);
      obs::dump_metrics_csv(trace_path + ".metrics.csv", *telemetry);
      obs::dump_timeseries_csv(trace_path + ".series.csv", series);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << '\n';
      return 1;
    }
    std::cout << "\nWrote " << telemetry->trace().size() << " trace events to "
              << trace_path << " (open in chrome://tracing or ui.perfetto.dev)\n"
              << "plus " << trace_path << ".jsonl, " << trace_path
              << ".metrics.csv, and " << trace_path << ".series.csv\n";
  }
  return 0;
}
