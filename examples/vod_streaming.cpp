// On-demand 360° streaming walkthrough: the scenario the paper's intro
// motivates — a commuter watching a 4K-class panoramic video over a
// fluctuating cellular link. Compares the FoV-agnostic status quo with
// three Sperke configurations and prints a per-chunk quality strip.
//
//   $ ./vod_streaming [mean_kbps] [--trace <path>]    (default 12000)
//
// With --trace, the flagship "FoV-guided, SVC upgrades" session writes its
// full timeline as Chrome trace_event JSON to <path> (open it in
// chrome://tracing or https://ui.perfetto.dev) and its metrics to
// <path>.metrics.csv.
#include <cstdlib>
#include <exception>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "core/session.h"
#include "core/transport.h"
#include "hmp/head_trace.h"
#include "net/link.h"
#include "obs/export.h"
#include "obs/sim_monitor.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"
#include "util/table.h"

namespace {

using namespace sperke;

struct Scenario {
  std::string label;
  core::PlannerMode planner = core::PlannerMode::kFovGuided;
  abr::EncodingMode mode = abr::EncodingMode::kSvc;
};

core::SessionReport run(const Scenario& scenario, double mean_kbps,
                        const std::shared_ptr<media::VideoModel>& video,
                        const hmp::HeadTrace& head,
                        obs::Telemetry* telemetry = nullptr) {
  sim::Simulator simulator;
  net::Link link(simulator,
                 net::LinkConfig{.name = "cellular",
                                 .bandwidth = net::BandwidthTrace::random_walk(
                                     mean_kbps, 0.35, 1.0, 400.0, 11, 1'000.0),
                                 .rtt = sim::milliseconds(45)});
  core::SingleLinkTransport transport(link, 12, telemetry);
  core::SessionConfig config;
  config.planner = scenario.planner;
  config.vra.mode = scenario.mode;
  config.telemetry = telemetry;
  core::StreamingSession session(simulator, video, transport, head, config);
  std::optional<obs::SimMonitor> monitor;
  if (telemetry != nullptr) monitor.emplace(simulator, *telemetry);
  session.start();
  simulator.run_until(sim::seconds(900.0));
  return session.report();
}

// Render a 0..1 utility series as a coarse text strip.
std::string quality_strip(const std::vector<double>& utilities) {
  static const char* glyphs = " .:-=+*#";
  std::string out;
  for (double u : utilities) {
    const int idx = std::min(7, static_cast<int>(u * 8.0));
    out += glyphs[idx];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double mean_kbps = 12'000.0;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::cerr << "usage: vod_streaming [mean_kbps] [--trace <path>]\n";
        return 2;
      }
      trace_path = argv[++i];
    } else {
      mean_kbps = std::atof(arg.c_str());
    }
  }

  media::VideoModelConfig video_cfg;
  video_cfg.duration_s = 90.0;
  video_cfg.tile_rows = 4;
  video_cfg.tile_cols = 6;
  video_cfg.seed = 2;
  auto video = std::make_shared<media::VideoModel>(video_cfg);

  hmp::HeadTraceConfig trace_cfg;
  trace_cfg.duration_s = 300.0;
  trace_cfg.profile = hmp::UserProfile::adult();
  trace_cfg.attractors = hmp::default_attractors(300.0, 9);
  trace_cfg.seed = 17;
  const hmp::HeadTrace head = hmp::generate_head_trace(trace_cfg);

  std::cout << "VOD 360 streaming over a fluctuating ~" << mean_kbps / 1000.0
            << " Mbps cellular link (90 s video)\n\n";

  const Scenario scenarios[] = {
      {"FoV-agnostic (YouTube-style)", core::PlannerMode::kFovAgnostic,
       abr::EncodingMode::kAvcNoUpgrade},
      {"FoV-guided, AVC (no upgrades)", core::PlannerMode::kFovGuided,
       abr::EncodingMode::kAvcNoUpgrade},
      {"FoV-guided, SVC upgrades", core::PlannerMode::kFovGuided,
       abr::EncodingMode::kSvc},
      {"FoV-guided, hybrid SVC/AVC", core::PlannerMode::kFovGuided,
       abr::EncodingMode::kHybrid},
  };
  TextTable table({"Configuration", "Utility", "Stall s", "MB", "Waste %",
                   "Upgrades", "Score"});
  obs::Telemetry telemetry;
  for (const Scenario& scenario : scenarios) {
    // Trace the flagship Sperke configuration only: one session = one
    // coherent timeline.
    const bool traced = !trace_path.empty() && scenario.mode == abr::EncodingMode::kSvc &&
                        scenario.planner == core::PlannerMode::kFovGuided;
    const auto report =
        run(scenario, mean_kbps, video, head, traced ? &telemetry : nullptr);
    table.add_row(
        {scenario.label, TextTable::num(report.qoe.mean_viewport_utility, 3),
         TextTable::num(report.qoe.stall_seconds, 2),
         TextTable::num(report.qoe.bytes_downloaded / 1e6, 1),
         TextTable::num(100.0 * report.qoe.bytes_wasted /
                            std::max<std::int64_t>(1, report.qoe.bytes_downloaded),
                        1),
         std::to_string(report.upgrades), TextTable::num(report.qoe.score, 1)});
    std::cout << "  " << scenario.label << "\n  viewport quality over time: |"
              << quality_strip(report.viewport_utility_per_chunk) << "|\n\n";
  }
  std::cout << table.str();
  if (!trace_path.empty()) {
    try {
      obs::dump_chrome_trace(trace_path, telemetry);
      obs::dump_metrics_csv(trace_path + ".metrics.csv", telemetry);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << '\n';
      return 1;
    }
    std::cout << "\nWrote " << telemetry.trace().size() << " trace events to "
              << trace_path << " (open in chrome://tracing or ui.perfetto.dev)\n"
              << "and metrics to " << trace_path << ".metrics.csv\n";
  }
  return 0;
}
