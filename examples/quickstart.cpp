// Quickstart: stream one synthetic 360° video through a Sperke session and
// print the QoE report.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the public API:
//   1. synthesize a tiled 360° video (media::VideoModel),
//   2. synthesize a viewer's head movement (hmp::generate_head_trace),
//   3. build a network link + transport (net::Link, core::SingleLinkTransport),
//   4. run the FoV-guided adaptive session (core::StreamingSession).
#include <iostream>

#include "core/session.h"
#include "core/transport.h"
#include "hmp/head_trace.h"
#include "media/manifest.h"
#include "net/link.h"
#include "sim/simulator.h"
#include "util/table.h"

int main() {
  using namespace sperke;

  // 1. The video: 60 s, 4x6 equirectangular tiles, 1 s chunks, 5 qualities.
  media::VideoModelConfig video_cfg;
  video_cfg.duration_s = 60.0;
  video_cfg.tile_rows = 4;
  video_cfg.tile_cols = 6;
  video_cfg.seed = 1;
  auto video = std::make_shared<media::VideoModel>(video_cfg);
  std::cout << media::Manifest(video).describe() << '\n';

  // 2. The viewer: an adult following the video's regions of interest.
  hmp::HeadTraceConfig trace_cfg;
  trace_cfg.duration_s = 120.0;
  trace_cfg.profile = hmp::UserProfile::adult();
  trace_cfg.attractors = hmp::default_attractors(120.0, 7);
  trace_cfg.seed = 42;
  const hmp::HeadTrace head = hmp::generate_head_trace(trace_cfg);

  // 3. The network: a 12 Mbps LTE-like link with 40 ms RTT.
  sim::Simulator simulator;
  net::Link link(simulator,
                 net::LinkConfig{.name = "lte",
                                 .bandwidth = net::BandwidthTrace::random_walk(
                                     12'000.0, 0.3, 1.0, 300.0, 3),
                                 .rtt = sim::milliseconds(40), .faults = {}});
  core::SingleLinkTransport transport(link, {.max_concurrent = 8, .recovery = {}});

  // 4. The session: FoV-guided, SVC incremental upgrades, LR head prediction.
  core::SessionConfig session_cfg;
  session_cfg.abr.sperke.mode = abr::EncodingMode::kSvc;
  core::StreamingSession session(simulator, video, transport, head, session_cfg);
  session.start();
  simulator.run_until(sim::seconds(600.0));

  const core::SessionReport report = session.report();
  TextTable table({"Metric", "Value"});
  table.add_row({"Chunks played", std::to_string(report.qoe.chunks_played)});
  table.add_row({"Mean viewport utility",
                 TextTable::num(report.qoe.mean_viewport_utility, 3)});
  table.add_row({"Startup delay (s)",
                 TextTable::num(sim::to_seconds(report.startup_delay), 2)});
  table.add_row({"Stalls", std::to_string(report.qoe.stall_events) + " (" +
                               TextTable::num(report.qoe.stall_seconds, 2) + " s)"});
  table.add_row({"Downloaded (MB)",
                 TextTable::num(report.qoe.bytes_downloaded / 1e6, 1)});
  table.add_row({"Wasted (MB)", TextTable::num(report.qoe.bytes_wasted / 1e6, 1)});
  table.add_row({"Incremental upgrades", std::to_string(report.upgrades)});
  table.add_row({"Urgent fetches", std::to_string(report.urgent_fetches)});
  table.add_row({"QoE score", TextTable::num(report.qoe.score, 1)});
  std::cout << table.str();
  return report.completed ? 0 : 1;
}
