// Multipath 360° streaming walkthrough (§3.3): one session over WiFi + LTE,
// comparing MPTCP-style content-agnostic splitting with the content-aware
// scheduler that maps Table 1's priority classes onto paths.
//
//   $ ./multipath_session [scheduler]   (minrtt | round-robin | content-aware)
#include <cstring>
#include <iostream>
#include <memory>

#include "core/session.h"
#include "hmp/head_trace.h"
#include "mp/multipath.h"
#include "net/link.h"
#include "sim/simulator.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sperke;
  const char* scheduler_name = argc > 1 ? argv[1] : "content-aware";

  media::VideoModelConfig video_cfg;
  video_cfg.duration_s = 60.0;
  video_cfg.seed = 3;
  auto video = std::make_shared<media::VideoModel>(video_cfg);

  hmp::HeadTraceConfig trace_cfg;
  trace_cfg.duration_s = 240.0;
  trace_cfg.attractors = hmp::default_attractors(240.0, 5);
  trace_cfg.seed = 23;
  const hmp::HeadTrace head = hmp::generate_head_trace(trace_cfg);

  sim::Simulator simulator;
  // WiFi: fast but periodically collapsing (walking between rooms).
  net::Link wifi(simulator,
                 net::LinkConfig{.name = "wifi",
                                 .bandwidth = net::BandwidthTrace::markov_two_state(
                                     16'000.0, 2'000.0, 14.0, 4.0, 400.0, 7),
                                 .rtt = sim::milliseconds(18), .faults = {}});
  // LTE: steadier but slower, lossy and with a longer RTT.
  net::Link lte(simulator,
                net::LinkConfig{.name = "lte",
                                .bandwidth = net::BandwidthTrace::constant(7'000.0),
                                .rtt = sim::milliseconds(55),
                                .loss_rate = 0.003, .faults = {}});
  mp::MultipathTransport transport(simulator, {&wifi, &lte},
                                   mp::make_path_scheduler(scheduler_name));

  core::StreamingSession session(simulator, video, transport, head,
                                 core::SessionConfig{});
  session.start();
  simulator.run_until(sim::seconds(900.0));

  const auto report = session.report();
  const auto& stats = transport.stats();
  std::cout << "Multipath 360 session, scheduler = " << scheduler_name << "\n\n";
  TextTable table({"Metric", "Value"});
  table.add_row({"Chunks played", std::to_string(report.qoe.chunks_played)});
  table.add_row({"Mean viewport utility",
                 TextTable::num(report.qoe.mean_viewport_utility, 3)});
  table.add_row({"Stall seconds", TextTable::num(report.qoe.stall_seconds, 2)});
  table.add_row({"QoE score", TextTable::num(report.qoe.score, 1)});
  table.add_row({"WiFi bytes (MB)",
                 TextTable::num(stats.bytes_per_path[0] / 1e6, 1)});
  table.add_row({"LTE bytes (MB)",
                 TextTable::num(stats.bytes_per_path[1] / 1e6, 1)});
  table.add_row({"Best-effort OOS drops",
                 std::to_string(stats.dropped_best_effort)});
  std::cout << table.str() << '\n';

  std::cout << "Table 1 priority classes observed:\n";
  TextTable classes({"Class", "Requests"});
  const char* names[4] = {"FoV / urgent", "OOS / urgent", "FoV / regular",
                          "OOS / regular"};
  for (int rank = 0; rank < 4; ++rank) {
    classes.add_row({names[rank],
                     std::to_string(stats.class_counts[static_cast<std::size_t>(rank)])});
  }
  std::cout << classes.str();
  return 0;
}
