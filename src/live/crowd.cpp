#include "live/crowd.h"

#include <algorithm>
#include <stdexcept>

namespace sperke::live {

LiveCrowdHmp::LiveCrowdHmp(int tile_count, media::ChunkIndex chunk_count)
    : tile_count_(tile_count), chunk_count_(chunk_count) {
  if (tile_count <= 0 || chunk_count <= 0) {
    throw std::invalid_argument("LiveCrowdHmp: non-positive dims");
  }
  events_.resize(static_cast<std::size_t>(chunk_count));
}

void LiveCrowdHmp::record(media::ChunkIndex chunk,
                          std::span<const geo::TileId> visible, sim::Time when) {
  if (chunk < 0 || chunk >= chunk_count_) {
    throw std::out_of_range("LiveCrowdHmp: chunk out of range");
  }
  for (geo::TileId tile : visible) {
    if (tile < 0 || tile >= tile_count_) {
      throw std::out_of_range("LiveCrowdHmp: tile out of range");
    }
  }
  Event event;
  event.when = when;
  event.tiles.assign(visible.begin(), visible.end());
  auto& list = events_[static_cast<std::size_t>(chunk)];
  // Records usually arrive in time order; keep the list sorted regardless.
  const auto pos = std::upper_bound(
      list.begin(), list.end(), when,
      [](sim::Time value, const Event& e) { return value < e.when; });
  list.insert(pos, std::move(event));
}

std::vector<double> LiveCrowdHmp::probabilities(media::ChunkIndex chunk,
                                                sim::Time when) const {
  if (chunk < 0 || chunk >= chunk_count_) {
    throw std::out_of_range("LiveCrowdHmp: chunk out of range");
  }
  std::vector<double> counts(static_cast<std::size_t>(tile_count_), 1.0);  // Laplace
  double total = static_cast<double>(tile_count_);
  for (const Event& event : events_[static_cast<std::size_t>(chunk)]) {
    if (event.when > when) break;
    for (geo::TileId tile : event.tiles) {
      counts[static_cast<std::size_t>(tile)] += 1.0;
      total += 1.0;
    }
  }
  for (double& c : counts) c /= total;
  return counts;
}

int LiveCrowdHmp::observations(media::ChunkIndex chunk, sim::Time when) const {
  if (chunk < 0 || chunk >= chunk_count_) {
    throw std::out_of_range("LiveCrowdHmp: chunk out of range");
  }
  int n = 0;
  for (const Event& event : events_[static_cast<std::size_t>(chunk)]) {
    if (event.when > when) break;
    ++n;
  }
  return n;
}

}  // namespace sperke::live
