// Commercial live-360° platform models (§3.4.1).
//
// Substitutes for the Facebook / YouTube / Periscope production backends
// (DESIGN.md §4): each profile encodes the *protocol structure* the paper
// measured — RTMP upload everywhere, DASH pull on Facebook/YouTube, RTMP
// push on Periscope, no upload rate adaptation, server-side transcoding to
// a ladder — plus buffering parameters calibrated so the unconstrained row
// of Table 2 lands near the measured base latencies (9.2 / 12.4 / 22.2 s).
// The constrained rows are then *predicted* by the pipeline mechanics.
#pragma once

#include <string>
#include <vector>

#include "sim/time.h"

namespace sperke::live {

enum class Delivery {
  kDashPull,  // viewer polls an MPD and fetches segments over HTTPS
  kRtmpPush,  // server pushes the stream to the viewer
};

struct PlatformProfile {
  std::string name;

  // Broadcaster side (upload path, RTMP over TCP). The stream is uploaded
  // continuously at upload_kbps; the encoder keeps at most
  // broadcaster_queue_mbits of unsent data before dropping new segments.
  double upload_kbps = 4000.0;        // fixed: no upload rate adaptation
  double segment_s = 2.0;             // packaging granularity
  double broadcaster_queue_mbits = 8.0;

  // Ingest server.
  sim::Duration transcode_delay{sim::seconds(2.0)};
  std::vector<double> ladder_kbps;    // download ladder (e.g. 720p/1080p)

  // Distribution / viewer player.
  Delivery delivery = Delivery::kDashPull;
  sim::Duration mpd_poll_period{sim::seconds(1.0)};
  int viewer_buffer_segments = 2;     // buffered before playback starts
  // Push fan-out backlog (RTMP push): segments queued for a slow viewer
  // before the server starts dropping (frame-drop behaviour).
  int push_max_backlog = 7;
  // Pull viewers jump to the live edge when they fall further behind than
  // this ("skip to live"); 0 disables catch-up.
  double viewer_max_behind_s = 0.0;
  // Viewers start with an optimistic throughput estimate (their last
  // session on a good network), the source of switch-down transients.
  double initial_downlink_estimate_kbps = 6000.0;

  [[nodiscard]] static PlatformProfile facebook();
  [[nodiscard]] static PlatformProfile youtube();
  [[nodiscard]] static PlatformProfile periscope();
};

// One row of Table 2's network-condition axis. 0 = unconstrained.
struct NetworkConditions {
  double up_kbps = 0.0;
  double down_kbps = 0.0;

  [[nodiscard]] std::string label() const;
};

// The five rows of Table 2, in paper order.
[[nodiscard]] std::vector<NetworkConditions> table2_conditions();

}  // namespace sperke::live
