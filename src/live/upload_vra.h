// Broadcaster-side upload rate adaptation for live 360° (§3.4.2).
//
// When the uplink degrades, the measured platforms simply stall or drop
// frames (no adaptation). The paper proposes two smarter options, and this
// module implements all three for comparison:
//   * FixedQualityPolicy    — the status quo: full 360°, fixed bitrate;
//   * QualityAdaptivePolicy — full 360°, bitrate squeezed into capacity;
//   * SpatialFallbackPolicy — the paper's novel option: keep pixel quality
//     constant and shrink the uploaded *horizon* (e.g. 360° -> 180°),
//     exploiting that for concerts/sports the horizon of interest is
//     narrower than 360°.
//
// The expected-viewer-utility helper scores a decision against a viewer
// population whose gaze concentrates around the event center (Gaussian in
// yaw): out-of-horizon views see nothing; in-horizon views see quality
// proportional to per-degree bitrate density.
#pragma once

#include <memory>
#include <string_view>

namespace sperke::live {

struct UploadDecision {
  double horizon_deg = 360.0;  // uploaded yaw span, centered on the event
  double upload_kbps = 4000.0;
};

class UploadPolicy {
 public:
  virtual ~UploadPolicy() = default;
  // Decide the next segment's horizon and bitrate from the current uplink
  // capacity estimate.
  [[nodiscard]] virtual UploadDecision decide(double capacity_kbps) const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

class FixedQualityPolicy final : public UploadPolicy {
 public:
  explicit FixedQualityPolicy(double target_kbps);
  [[nodiscard]] UploadDecision decide(double capacity_kbps) const override;
  [[nodiscard]] std::string_view name() const override { return "fixed"; }

 private:
  double target_kbps_;
};

class QualityAdaptivePolicy final : public UploadPolicy {
 public:
  QualityAdaptivePolicy(double target_kbps, double min_kbps, double safety = 0.9);
  [[nodiscard]] UploadDecision decide(double capacity_kbps) const override;
  [[nodiscard]] std::string_view name() const override { return "quality-adaptive"; }

 private:
  double target_kbps_;
  double min_kbps_;
  double safety_;
};

class SpatialFallbackPolicy final : public UploadPolicy {
 public:
  // `min_horizon_deg` is the lower bound of the span (§3.4.2: "wider than
  // the concert's stage"), obtained from broadcaster hints / crowd HMP.
  SpatialFallbackPolicy(double target_kbps, double min_horizon_deg,
                        double safety = 0.9);
  [[nodiscard]] UploadDecision decide(double capacity_kbps) const override;
  [[nodiscard]] std::string_view name() const override { return "spatial-fallback"; }

 private:
  double target_kbps_;
  double min_horizon_deg_;
  double safety_;
};

// P(viewer gaze falls inside the uploaded horizon), gaze yaw ~ N(0, sigma).
[[nodiscard]] double horizon_coverage_probability(double horizon_deg,
                                                  double interest_sigma_deg);

// Perceived quality in [0,1] of a per-degree bitrate density, relative to
// the full-quality target density (logarithmic, floor at 1/16th density).
[[nodiscard]] double density_utility(double kbps_per_deg, double target_kbps_per_deg);

// Expected viewer utility of a decision: coverage x in-horizon quality.
[[nodiscard]] double expected_viewer_utility(const UploadDecision& decision,
                                             double target_kbps,
                                             double interest_sigma_deg);

}  // namespace sperke::live
