#include "live/platform.h"

#include <sstream>

namespace sperke::live {

// Profile constants are calibrated against the unconstrained row of the
// paper's Table 2 (FB 9.2 s / Periscope 12.4 s / YouTube 22.2 s) plus the
// structural findings of §3.4.1; the throttled rows are *predicted* by the
// pipeline mechanics, not fitted per cell.

PlatformProfile PlatformProfile::facebook() {
  PlatformProfile p;
  p.name = "Facebook";
  p.upload_kbps = 2100.0;   // measured-RTMP-like 1080p bitrate
  p.segment_s = 2.0;
  p.broadcaster_queue_mbits = 3.0;  // small encoder queue: drop early
  p.transcode_delay = sim::seconds(2.2);
  p.ladder_kbps = {1500.0, 4000.0};  // 720p / 1080p (§3.4.1)
  p.delivery = Delivery::kDashPull;
  p.mpd_poll_period = sim::seconds(1.0);
  p.viewer_buffer_segments = 3;
  p.viewer_max_behind_s = 35.0;
  p.initial_downlink_estimate_kbps = 2500.0;
  return p;
}

PlatformProfile PlatformProfile::youtube() {
  PlatformProfile p;
  p.name = "YouTube";
  p.upload_kbps = 900.0;
  p.segment_s = 5.0;
  p.broadcaster_queue_mbits = 1.2;  // drops rather than queue long segments
  p.transcode_delay = sim::seconds(6.3);
  // Six rungs, 144p..1080p (§3.4.1).
  p.ladder_kbps = {200.0, 400.0, 800.0, 1500.0, 2500.0, 4000.0};
  p.delivery = Delivery::kDashPull;
  p.mpd_poll_period = sim::seconds(2.5);
  p.viewer_buffer_segments = 3;
  p.viewer_max_behind_s = 30.0;
  p.initial_downlink_estimate_kbps = 2000.0;
  return p;
}

PlatformProfile PlatformProfile::periscope() {
  PlatformProfile p;
  p.name = "Periscope";
  p.upload_kbps = 3000.0;
  p.segment_s = 1.0;
  p.broadcaster_queue_mbits = 15.0;  // deep encoder queue: latency over drops
  p.transcode_delay = sim::seconds(1.5);
  p.ladder_kbps = {1800.0};  // push: no download adaptation observed
  p.delivery = Delivery::kRtmpPush;
  p.viewer_buffer_segments = 11;
  p.push_max_backlog = 60;  // deep per-viewer queue: lag instead of dropping
  return p;
}

std::string NetworkConditions::label() const {
  std::ostringstream os;
  auto fmt = [&](double kbps) -> std::string {
    if (kbps <= 0.0) return "No limit";
    std::ostringstream v;
    v << kbps / 1000.0 << "Mbps";
    return v.str();
  };
  os << fmt(up_kbps) << " up / " << fmt(down_kbps) << " down";
  return os.str();
}

std::vector<NetworkConditions> table2_conditions() {
  return {
      {0.0, 0.0},     // No limit / No limit
      {2000.0, 0.0},  // 2 Mbps up
      {0.0, 2000.0},  // 2 Mbps down
      {500.0, 0.0},   // 0.5 Mbps up
      {0.0, 500.0},   // 0.5 Mbps down
  };
}

}  // namespace sperke::live
