#include "live/broadcast.h"

#include <algorithm>
#include <stdexcept>

namespace sperke::live {

LiveBroadcastSession::LiveBroadcastSession(Config config)
    : config_(std::move(config)) {
  if (config_.platform.ladder_kbps.empty()) {
    throw std::invalid_argument("LiveBroadcastSession: empty ladder");
  }
  if (config_.platform.segment_s <= 0.0) {
    throw std::invalid_argument("LiveBroadcastSession: bad segment length");
  }
  const double up = config_.network.up_kbps > 0.0 ? config_.network.up_kbps
                                                  : config_.unconstrained_kbps;
  const double down = config_.network.down_kbps > 0.0
                          ? config_.network.down_kbps
                          : config_.unconstrained_kbps;
  // The broadcaster's physical first-mile pipes, not a chunk-fetch path —
  // no CDN tier sits on them. sperke-lint: allow(link-construction)
  uplink_ = std::make_unique<net::Link>(
      simulator_, net::LinkConfig{.name = "uplink",
                                  .bandwidth = net::BandwidthTrace::constant(up),
                                  .rtt = config_.link_rtt,
                                  .loss_rate = 0.0,
                                  .faults = config_.uplink_faults});
  // sperke-lint: allow(link-construction)
  downlink_ = std::make_unique<net::Link>(
      simulator_, net::LinkConfig{.name = "downlink",
                                  .bandwidth = net::BandwidthTrace::constant(down),
                                  .rtt = config_.link_rtt,
                                  .loss_rate = 0.0,
                                  .faults = config_.downlink_faults});
  downlink_est_kbps_ = config_.platform.initial_downlink_estimate_kbps;
  if (config_.telemetry != nullptr) {
    obs::MetricsRegistry& m = config_.telemetry->metrics();
    e2e_latency_s_metric_ = &m.histogram(
        "live.e2e_latency_s", {2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 45.0, 60.0, 90.0});
    displayed_metric_ = &m.counter("live.segments_displayed");
    dropped_metric_ = &m.counter("live.segments_dropped_at_broadcaster");
    rebuffers_metric_ = &m.counter("live.viewer_rebuffer_events");
    catchup_skips_metric_ = &m.counter("live.viewer_catchup_skips");
  }
}

void LiveBroadcastSession::record_trace(const obs::TraceEvent& event) {
  if (config_.telemetry != nullptr) config_.telemetry->trace().record(event);
}

LiveSessionResult LiveBroadcastSession::run() {
  const sim::Duration seg = sim::seconds(config_.platform.segment_s);
  // First segment completes capture one segment length in.
  sim::PeriodicTask capture(simulator_, seg, seg, [this] { capture_segment(); });
  std::optional<sim::PeriodicTask> poll;
  if (config_.platform.delivery == Delivery::kDashPull) {
    poll.emplace(simulator_, config_.platform.mpd_poll_period,
                 [this] { viewer_poll(); });
  }
  simulator_.run_until(config_.broadcast_length +
                       sim::seconds(60.0));  // drain the tail
  capture.stop();
  if (poll) poll->stop();

  LiveSessionResult result;
  result.segments_displayed = static_cast<int>(latencies_s_.size());
  if (!latencies_s_.empty()) {
    result.mean_e2e_latency_s = mean_of(latencies_s_);
    result.stddev_e2e_latency_s = stddev_of(latencies_s_);
  }
  result.segments_dropped_at_broadcaster = dropped_;
  result.viewer_rebuffer_events = rebuffers_;
  result.viewer_catchup_skips = catchup_skips_;
  result.mean_uploaded_kbps = uploaded_kbps_.mean();
  result.mean_uploaded_horizon_deg =
      uploaded_horizon_deg_.count() > 0 ? uploaded_horizon_deg_.mean() : 360.0;
  result.mean_displayed_kbps = displayed_kbps_.mean();
  return result;
}

void LiveBroadcastSession::capture_segment() {
  if (simulator_.now() > config_.broadcast_length) return;
  const double seg_s = config_.platform.segment_s;
  // Broadcaster-side upload VRA (§3.4.2), when configured; the status-quo
  // platforms upload at a fixed bitrate and full 360°.
  double upload_kbps = config_.platform.upload_kbps;
  double horizon_deg = 360.0;
  if (config_.upload_policy != nullptr) {
    const UploadDecision decision =
        config_.upload_policy->decide(uplink_->capacity_kbps_now());
    upload_kbps = decision.upload_kbps;
    horizon_deg = decision.horizon_deg;
  }
  uploaded_kbps_.add(upload_kbps);
  uploaded_horizon_deg_.add(horizon_deg);

  Segment segment;
  segment.index = next_capture_index_++;
  segment.capture_start = simulator_.now() - sim::seconds(seg_s);
  segment.bytes = static_cast<std::int64_t>(upload_kbps * 1000.0 / 8.0 * seg_s);

  // Continuous RTMP upload (fluid model): while this segment was being
  // captured, the uplink drained up to capacity x segment_s of the stream;
  // only the excess joins the encoder's queue.
  const double cap_kbps = uplink_->capacity_kbps_now();
  const double seg_kbits = upload_kbps * seg_s;
  upload_backlog_kbits_ =
      std::max(0.0, upload_backlog_kbits_ - cap_kbps * seg_s);
  // No upload rate adaptation (§3.4.1): while the queue still holds more
  // than its bound of *older* data, the encoder drops the new segment.
  if (upload_backlog_kbits_ >
      config_.platform.broadcaster_queue_mbits * 1000.0) {
    ++dropped_;
    if (config_.telemetry != nullptr) {
      dropped_metric_->increment();
      record_trace({.type = obs::TraceEventType::kSegmentDropped,
                    .ts = simulator_.now(),
                    .chunk = segment.index,
                    .bytes = segment.bytes});
    }
    return;
  }
  upload_backlog_kbits_ += seg_kbits;
  record_trace({.type = obs::TraceEventType::kSegmentCaptured,
                .ts = simulator_.now(),
                .chunk = segment.index,
                .bytes = segment.bytes,
                .value = upload_kbps});
  const double upload_delay_s =
      cap_kbps > 0.0 ? upload_backlog_kbits_ / cap_kbps : 1e9;
  simulator_.schedule_after(
      sim::seconds(upload_delay_s) + uplink_->rtt() +
          config_.platform.transcode_delay,
      [this, segment] { on_segment_ingested(segment); });
}

void LiveBroadcastSession::on_segment_ingested(Segment segment) {
  available_.emplace(segment.index, segment);
  if (config_.platform.delivery == Delivery::kRtmpPush) server_push();
}

void LiveBroadcastSession::server_push() {
  if (pushing_) return;
  // RTMP fan-out to a slow viewer: when too many segments queue up behind
  // the viewer's socket, the server drops the oldest (frame dropping).
  int latest = -1;
  for (const auto& [index, seg] : available_) latest = std::max(latest, index);
  if (latest >= 0 && latest - push_next_ > config_.platform.push_max_backlog) {
    push_next_ = latest - config_.platform.push_max_backlog;
  }
  const auto it = available_.find(push_next_);
  if (it == available_.end()) {
    // The broadcaster may have dropped this index entirely; skip over gaps
    // that can no longer arrive.
    if (!available_.empty() && latest >= push_next_) {
      for (const auto& [index, seg] : available_) {
        if (index >= push_next_) {
          push_next_ = index;
          break;
        }
      }
      server_push();
    }
    return;
  }
  pushing_ = true;
  const Segment segment = it->second;
  const double rung = config_.platform.ladder_kbps.back();
  const auto bytes = static_cast<std::int64_t>(rung * 1000.0 / 8.0 *
                                               config_.platform.segment_s);
  ++push_next_;
  downlink_->start_transfer(bytes, [this, segment, rung](const net::TransferResult& r) {
    pushing_ = false;
    if (!r.completed()) {
      // Push failed mid-flight: retry from this segment (the backlog cap in
      // the next round decides whether it is still worth pushing).
      push_next_ = std::min(push_next_, segment.index);
      server_push();
      return;
    }
    viewer_buffer_.emplace(segment.index, std::make_pair(segment, rung));
    viewer_play_loop();
    server_push();
  });
}

void LiveBroadcastSession::viewer_poll() {
  // MPD refresh: learn about newly available segments.
  int max_index = -1;
  for (const auto& [index, seg] : available_) max_index = std::max(max_index, index);
  if (max_index >= viewer_known_) {
    viewer_known_ = max_index + 1;
    viewer_maybe_request();
  }
}

void LiveBroadcastSession::viewer_maybe_request() {
  if (viewer_fetching_ || config_.platform.delivery != Delivery::kDashPull) return;
  // "Skip to live": a pull viewer that has fallen too far behind the live
  // edge jumps forward instead of fetching stale segments.
  if (config_.platform.viewer_max_behind_s > 0.0) {
    int latest = -1;
    for (const auto& [index, seg] : available_) latest = std::max(latest, index);
    const double behind_s =
        (latest - viewer_next_fetch_) * config_.platform.segment_s;
    if (latest >= 0 && behind_s > config_.platform.viewer_max_behind_s) {
      viewer_next_fetch_ =
          std::max(viewer_next_fetch_,
                   latest - config_.platform.viewer_buffer_segments);
      ++catchup_skips_;
      if (config_.telemetry != nullptr) catchup_skips_metric_->increment();
    }
  }
  // Sequential fetch of the next needed segment, if announced & available.
  while (viewer_next_fetch_ < viewer_known_ &&
         !available_.contains(viewer_next_fetch_)) {
    // Dropped at the broadcaster: skip the gap.
    bool exists_later = false;
    for (const auto& [index, seg] : available_) {
      if (index > viewer_next_fetch_) exists_later = true;
    }
    if (!exists_later) return;
    ++viewer_next_fetch_;
  }
  const auto it = available_.find(viewer_next_fetch_);
  if (it == available_.end()) return;
  const Segment segment = it->second;

  // DASH rate adaptation on the download path (§3.4.1): highest rung that
  // fits a safety-discounted estimate.
  double rung = config_.platform.ladder_kbps.front();
  for (double level : config_.platform.ladder_kbps) {
    if (level <= 0.8 * downlink_est_kbps_) rung = std::max(rung, level);
  }
  const auto bytes = static_cast<std::int64_t>(rung * 1000.0 / 8.0 *
                                               config_.platform.segment_s);
  viewer_fetching_ = true;
  ++viewer_next_fetch_;
  const sim::Time started = simulator_.now();
  downlink_->start_transfer(bytes, [this, segment, rung, bytes,
                                    started](const net::TransferResult& r) {
    viewer_fetching_ = false;
    if (!r.completed()) {
      // Fetch failed: re-request from this segment (skip-to-live in the
      // next round decides whether it is still worth fetching).
      viewer_next_fetch_ = std::min(viewer_next_fetch_, segment.index);
      viewer_maybe_request();
      return;
    }
    const double secs = sim::to_seconds(r.time - started);
    if (secs > 0.0) {
      const double sample = static_cast<double>(bytes) * 8.0 / secs / 1000.0;
      downlink_est_kbps_ = 0.4 * sample + 0.6 * downlink_est_kbps_;
    }
    viewer_buffer_.emplace(segment.index, std::make_pair(segment, rung));
    viewer_play_loop();
    viewer_maybe_request();
  });
}

void LiveBroadcastSession::viewer_play_loop() {
  if (viewer_playing_) return;
  // (Re-)buffering: wait until the buffer holds its target, or — when
  // arrivals are too slow to ever fill it — until a wall-clock timer at
  // twice the target expires and playback proceeds with what is there.
  if (static_cast<int>(viewer_buffer_.size()) <
          config_.platform.viewer_buffer_segments &&
      !viewer_force_start_) {
    if (!viewer_prebuffer_timer_armed_ && !viewer_buffer_.empty()) {
      viewer_prebuffer_timer_armed_ = true;
      simulator_.schedule_after(
          sim::seconds(2.0 * config_.platform.viewer_buffer_segments *
                       config_.platform.segment_s),
          [this] {
            viewer_force_start_ = true;
            viewer_play_loop();
          });
    }
    return;
  }
  // Skip over segments that will never arrive (dropped upstream).
  if (!viewer_buffer_.empty() &&
      viewer_buffer_.begin()->first > viewer_play_next_) {
    viewer_play_next_ = viewer_buffer_.begin()->first;
  }
  const auto it = viewer_buffer_.find(viewer_play_next_);
  if (it == viewer_buffer_.end()) {
    // Starved at a boundary: count a rebuffer event and re-enter
    // buffering (players re-accumulate their target before resuming).
    if (!viewer_waiting_ && !latencies_s_.empty()) {
      ++rebuffers_;
      if (config_.telemetry != nullptr) rebuffers_metric_->increment();
    }
    viewer_waiting_ = true;
    viewer_force_start_ = false;
    viewer_prebuffer_timer_armed_ = false;
    return;
  }
  viewer_waiting_ = false;
  viewer_playing_ = true;
  const Segment segment = it->second.first;
  const double rung = it->second.second;
  viewer_buffer_.erase(it);
  ++viewer_play_next_;

  // Display starts now; record the E2E latency of the first frame.
  const double latency = sim::to_seconds(simulator_.now() - segment.capture_start);
  if (simulator_.now() >= config_.measure_from &&
      simulator_.now() <= config_.measure_to) {
    latencies_s_.push_back(latency);
    displayed_kbps_.add(rung);
    if (config_.telemetry != nullptr) {
      e2e_latency_s_metric_->observe(latency);
      // Mirrors LiveSessionResult.segments_displayed (window only).
      displayed_metric_->increment();
    }
  }
  if (config_.telemetry != nullptr) {
    record_trace({.type = obs::TraceEventType::kSegmentDisplayed,
                  .ts = simulator_.now(),
                  .chunk = segment.index,
                  .quality = static_cast<std::int32_t>(rung),
                  .value = latency});
  }
  simulator_.schedule_after(sim::seconds(config_.platform.segment_s), [this] {
    viewer_playing_ = false;
    viewer_play_loop();
  });
}

}  // namespace sperke::live
