// Tiled FoV-guided *live* viewing (§3.4.2's endpoint): the Sperke VOD
// machinery applied to a live stream, where chunks appear at the ingest
// edge as the event unfolds and playback deadlines are wall-clock-hard —
// a chunk that is not ready when its deadline arrives is skipped (or shown
// with blank tiles), never rebuffered.
//
// Several TiledLiveSession instances can share one simulator, one video
// (the live content) and one LiveCrowdHmp: low-latency viewers' displayed
// tiles become, in wall-clock order, the crowd prior that high-latency
// viewers use for FoV-guided prefetch — the paper's crowd-sourced live HMP
// made end-to-end.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "abr/factory.h"
#include "abr/qoe.h"
#include "core/buffer.h"
#include "core/transport.h"
#include "hmp/fusion.h"
#include "live/crowd.h"
#include "obs/telemetry.h"
#include "sim/periodic.h"
#include "sim/simulator.h"

namespace sperke::live {

struct TiledLiveConfig {
  // The viewer plays chunk i at wall time chunk_start(i) + e2e_target.
  // Must leave room for ingest_delay plus at least one chunk of fetching.
  double e2e_target_s = 8.0;
  // Capture + upload + transcode pipeline: chunk i becomes fetchable at
  // wall time chunk_end(i) + ingest_delay.
  sim::Duration ingest_delay{sim::seconds(3.0)};
  geo::Viewport viewport{100.0, 90.0};
  // Tile-ABR policy (name + per-policy params), built via abr::make_policy.
  abr::TileAbrConfig abr;
  std::string predictor = "linear-regression";
  double head_sample_hz = 25.0;
  sim::Duration upgrade_scan_period{sim::milliseconds(250)};
  bool enable_upgrades = true;
  // Blend weight of the live crowd prior mirrors hmp::FusionConfig.
  double crowd_tau_s = 1.5;
  double crowd_grace_s = 0.5;
  // Delay before this viewer's own displayed tiles reach the crowd map.
  sim::Duration crowd_report_delay{sim::milliseconds(300)};
  abr::QoeWeights qoe;
  // Telemetry sink (not owned; must outlive the session). Null = disabled.
  // When set, fetch dispatch/done events carry causal request ids so blank
  // re-requests nest under the fetch they replace in the exported trace.
  obs::Telemetry* telemetry = nullptr;
  // Graceful degradation on fetch failures (DESIGN.md §10): re-request a
  // failed FoV tile at the base quality tier while its live deadline still
  // stands. Off by default (byte-identical without faults).
  bool fetch_recovery = false;
};

struct TiledLiveReport {
  abr::QoeSummary qoe;
  int chunks_played = 0;      // displayed (possibly with blanks)
  int chunks_skipped = 0;     // nothing displayable at the deadline
  double mean_blank_fraction = 0.0;
  int fetches = 0;
  int upgrades = 0;
  int fetch_failures = 0;    // fetches that timed out / failed outright
  int degraded_retries = 0;  // failed FoV fetches re-issued at base tier
  bool finished = false;
};

class TiledLiveSession {
 public:
  // `crowd` (optional) is both read (prefetch prior) and written (this
  // viewer's displayed tiles, after crowd_report_delay). All referenced
  // objects must outlive the session.
  TiledLiveSession(sim::Simulator& simulator,
                   std::shared_ptr<const media::VideoModel> video,
                   core::ChunkTransport& transport,
                   const hmp::HeadTrace& head_trace, TiledLiveConfig config,
                   LiveCrowdHmp* crowd = nullptr);

  void start();

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] TiledLiveReport report() const;

 private:
  [[nodiscard]] sim::Time availability_of(media::ChunkIndex index) const;
  [[nodiscard]] sim::Time deadline_of(media::ChunkIndex index) const;
  [[nodiscard]] sim::Time content_now() const;

  void observe_head();
  [[nodiscard]] std::vector<double> fused_probabilities(media::ChunkIndex index,
                                                        sim::Duration horizon) const;
  void plan_chunk(media::ChunkIndex index);
  void dispatch(const media::ChunkAddress& address, abr::SpatialClass spatial,
                sim::Time deadline, bool is_upgrade,
                std::int64_t parent_request_id = 0);
  void play_chunk(media::ChunkIndex index);
  void scan_upgrades();
  void finish();

  sim::Simulator& simulator_;
  std::shared_ptr<const media::VideoModel> video_;
  core::ChunkTransport& transport_;
  const hmp::HeadTrace& head_trace_;
  TiledLiveConfig config_;
  LiveCrowdHmp* crowd_;
  hmp::FusionPredictor fusion_;
  core::PlaybackBuffer buffer_;
  std::unique_ptr<abr::TileAbrPolicy> policy_;
  abr::QoeTracker qoe_;

  bool started_ = false;
  bool finished_ = false;
  media::ChunkIndex next_play_ = 0;
  media::QualityLevel last_fov_quality_ = 0;
  std::map<media::ChunkIndex, media::QualityLevel> plan_quality_;
  std::set<media::ChunkAddress> in_flight_;
  sim::Time last_observed_{sim::Duration{-1}};

  int chunks_played_ = 0;
  int chunks_skipped_ = 0;
  double blank_sum_ = 0.0;
  int fetches_ = 0;
  int upgrades_ = 0;
  int fetch_failures_ = 0;
  int degraded_retries_ = 0;

  std::optional<sim::PeriodicTask> head_task_;
  std::optional<sim::PeriodicTask> upgrade_task_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sperke::live
