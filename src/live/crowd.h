// Crowd-sourced HMP for live 360° video (§3.4.2).
//
// Viewers of the same live stream experience very different E2E latencies
// (Table 2); a viewer who is N seconds behind the live edge can use the
// head movements that *low-latency* viewers already performed on the exact
// content they are about to watch. LiveCrowdHmp is the time-aware heatmap:
// every record is stamped with the wall time it became knowable, and
// queries only see records from the past.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geo/tile_grid.h"
#include "media/chunk.h"
#include "sim/time.h"

namespace sperke::live {

class LiveCrowdHmp {
 public:
  LiveCrowdHmp(int tile_count, media::ChunkIndex chunk_count);

  // A viewer displayed `visible` tiles of `chunk`; knowable from `when`
  // (their display time plus the reporting delay).
  void record(media::ChunkIndex chunk, std::span<const geo::TileId> visible,
              sim::Time when);

  // Laplace-smoothed tile probabilities for `chunk`, using only records
  // with timestamp <= `when`. Sums to 1.
  [[nodiscard]] std::vector<double> probabilities(media::ChunkIndex chunk,
                                                  sim::Time when) const;

  // Number of view records usable at `when`.
  [[nodiscard]] int observations(media::ChunkIndex chunk, sim::Time when) const;

  [[nodiscard]] int tile_count() const { return tile_count_; }
  [[nodiscard]] media::ChunkIndex chunk_count() const { return chunk_count_; }

 private:
  struct Event {
    sim::Time when{sim::kTimeZero};
    std::vector<geo::TileId> tiles;
  };

  int tile_count_;
  media::ChunkIndex chunk_count_;
  std::vector<std::vector<Event>> events_;  // per chunk, time-ordered
};

}  // namespace sperke::live
