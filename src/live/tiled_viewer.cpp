#include "live/tiled_viewer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sperke::live {

TiledLiveSession::TiledLiveSession(sim::Simulator& simulator,
                                   std::shared_ptr<const media::VideoModel> video,
                                   core::ChunkTransport& transport,
                                   const hmp::HeadTrace& head_trace,
                                   TiledLiveConfig config, LiveCrowdHmp* crowd)
    : simulator_(simulator),
      video_(std::move(video)),
      transport_(transport),
      head_trace_(head_trace),
      config_(std::move(config)),
      crowd_(crowd),
      fusion_(video_->geometry_ptr(), config_.viewport,
              hmp::make_orientation_predictor(config_.predictor),
              /*crowd=*/nullptr, {}, {}),
      buffer_(video_),
      policy_(abr::make_policy(video_, config_.abr)),
      qoe_(config_.qoe) {
  const double min_latency = sim::to_seconds(config_.ingest_delay) +
                             sim::to_seconds(video_->chunk_duration());
  if (config_.e2e_target_s < min_latency) {
    throw std::invalid_argument(
        "TiledLiveSession: e2e target below ingest + one chunk");
  }
  if (crowd_ != nullptr && crowd_->tile_count() != video_->tile_count()) {
    throw std::invalid_argument("TiledLiveSession: crowd/grid mismatch");
  }
}

sim::Time TiledLiveSession::availability_of(media::ChunkIndex index) const {
  return video_->chunk_start_time(index) + video_->chunk_duration() +
         config_.ingest_delay;
}

sim::Time TiledLiveSession::deadline_of(media::ChunkIndex index) const {
  return video_->chunk_start_time(index) + sim::seconds(config_.e2e_target_s);
}

sim::Time TiledLiveSession::content_now() const {
  const sim::Time now = simulator_.now();
  const auto latency = sim::seconds(config_.e2e_target_s);
  return now > latency ? now - latency : sim::kTimeZero;
}

void TiledLiveSession::start() {
  if (started_) throw std::logic_error("TiledLiveSession already started");
  started_ = true;
  observe_head();
  head_task_.emplace(simulator_, sim::seconds(1.0 / config_.head_sample_hz),
                     [this] { observe_head(); });
  if (config_.enable_upgrades && policy_->upgrade_window() > sim::Duration{0}) {
    upgrade_task_.emplace(simulator_, config_.upgrade_scan_period,
                          [this] { scan_upgrades(); });
  }
  // Plan each chunk the moment it becomes available at the ingest edge,
  // and play it at its wall-clock deadline.
  for (media::ChunkIndex index = 0; index < video_->chunk_count(); ++index) {
    simulator_.schedule_at(availability_of(index), [this, index, alive = alive_] {
      if (*alive && !finished_) plan_chunk(index);
    });
    simulator_.schedule_at(deadline_of(index), [this, index, alive = alive_] {
      if (*alive && !finished_) play_chunk(index);
    });
  }
}

void TiledLiveSession::observe_head() {
  if (finished_) return;
  const sim::Time t = content_now();
  if (t <= last_observed_) return;
  last_observed_ = t;
  fusion_.observe({t, head_trace_.orientation_at(t)});
}

std::vector<double> TiledLiveSession::fused_probabilities(
    media::ChunkIndex index, sim::Duration horizon) const {
  // Motion + context from the offline fusion machinery...
  std::vector<double> probs = fusion_.tile_probabilities(horizon, index);
  if (crowd_ == nullptr) return probs;
  // ...blended with the *time-gated* live crowd snapshot: only what other
  // viewers have already displayed (and reported) by now is usable.
  if (crowd_->observations(index, simulator_.now()) <= 0) return probs;
  const auto crowd_probs = crowd_->probabilities(index, simulator_.now());
  const double h = std::max(0.0, sim::to_seconds(horizon));
  const double w =
      std::exp(-std::max(0.0, h - config_.crowd_grace_s) / config_.crowd_tau_s);
  double total = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    probs[i] = w * probs[i] + (1.0 - w) * crowd_probs[i];
    total += probs[i];
  }
  for (double& p : probs) p /= total;
  return probs;
}

void TiledLiveSession::plan_chunk(media::ChunkIndex index) {
  const sim::Duration horizon =
      video_->chunk_start_time(index) - content_now();
  const auto probs = fused_probabilities(index, horizon);
  // FoV set: top-probability tiles, sized by the motion-predicted viewport
  // (same policy as the VOD planner).
  const geo::Orientation predicted = fusion_.predict_orientation(horizon);
  const auto motion_fov =
      video_->geometry().visible_tiles(predicted, config_.viewport);
  std::vector<geo::TileId> order(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    order[i] = static_cast<geo::TileId>(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](geo::TileId a, geo::TileId b) {
    return probs[static_cast<std::size_t>(a)] > probs[static_cast<std::size_t>(b)];
  });
  order.resize(std::min(order.size(), motion_fov.size()));
  std::sort(order.begin(), order.end());

  const sim::Duration buffer_level = deadline_of(index) - simulator_.now();
  const auto plan =
      policy_->plan_chunk(index, order, probs, transport_.estimated_kbps(),
                          buffer_level, last_fov_quality_);
  plan_quality_[index] = plan.fov_quality;
  last_fov_quality_ = plan.fov_quality;
  for (const auto& fetch : plan.fetches) {
    dispatch(fetch.address, fetch.spatial, deadline_of(index), false);
  }
}

void TiledLiveSession::dispatch(const media::ChunkAddress& address,
                                abr::SpatialClass spatial, sim::Time deadline,
                                bool is_upgrade,
                                std::int64_t parent_request_id) {
  if (buffer_.contains(address) || in_flight_.contains(address)) return;
  if (address.key.index < next_play_) return;  // already played: pointless
  in_flight_.insert(address);
  ++fetches_;
  if (is_upgrade) ++upgrades_;
  core::ChunkRequest request;
  request.id = net::to_chunk_id(address);
  request.bytes = video_->size_bytes(address);
  request.spatial = spatial;
  request.urgent = (deadline - simulator_.now()) < video_->chunk_duration();
  request.deadline = deadline;
  if (config_.telemetry != nullptr) {
    request.request_id = config_.telemetry->next_request_id();
    config_.telemetry->trace().record(
        {.type = obs::TraceEventType::kFetchDispatched,
         .ts = simulator_.now(),
         .tile = address.key.tile,
         .chunk = address.key.index,
         .quality = address.level,
         .bytes = request.bytes,
         .urgent = request.urgent,
         .request = request.request_id,
         .parent = parent_request_id});
  }
  request.parent_id = parent_request_id;
  const std::int64_t request_id = request.request_id;
  request.on_done = [this, alive = alive_, address, spatial, deadline,
                     request_id, parent_request_id](sim::Time finished_at,
                                                    core::FetchOutcome outcome) {
    if (!*alive) return;
    in_flight_.erase(address);
    if (finished_) return;
    if (config_.telemetry != nullptr) {
      config_.telemetry->trace().record(
          {.type = core::delivered(outcome) ? obs::TraceEventType::kFetchDone
                                            : obs::TraceEventType::kFetchDropped,
           .ts = finished_at,
           .tile = address.key.tile,
           .chunk = address.key.index,
           .quality = address.level,
           .bytes = core::delivered(outcome) ? video_->size_bytes(address) : 0,
           .request = request_id,
           .parent = parent_request_id});
    }
    if (core::delivered(outcome)) {
      const std::int64_t bytes = video_->size_bytes(address);
      qoe_.record_downloaded(bytes);
      if (address.key.index < next_play_) {
        qoe_.record_wasted(bytes);  // arrived after its live deadline
      } else {
        buffer_.add(address);
      }
      return;
    }
    if (outcome == core::FetchOutcome::kDropped) return;  // best-effort loss
    // Injected-fault loss (timed out / failed after retries).
    ++fetch_failures_;
    if (config_.fetch_recovery && spatial == abr::SpatialClass::kFov &&
        address.key.index >= next_play_ && deadline > simulator_.now()) {
      // Live degradation: a base-tier tile on time beats a blank tile. The
      // blank re-request cites the failed request as its causal parent.
      const media::ChunkAddress fallback{address.key,
                                         policy_->base_tier_encoding(), 0};
      if (!buffer_.contains(fallback) && !in_flight_.contains(fallback)) {
        ++degraded_retries_;
        dispatch(fallback, abr::SpatialClass::kFov, deadline, false,
                 request_id);
      }
    }
  };
  transport_.fetch(std::move(request));
}

void TiledLiveSession::play_chunk(media::ChunkIndex index) {
  next_play_ = index + 1;
  const auto visible = video_->geometry().visible_tiles(
      head_trace_.orientation_at(video_->chunk_start_time(index)),
      config_.viewport);

  int shown = 0;
  double utility_sum = 0.0;
  std::vector<geo::TileId> displayed;
  for (geo::TileId tile : visible) {
    const media::ChunkKey key{tile, index};
    const media::QualityLevel q = buffer_.displayable_quality(key);
    if (q >= 0) {
      ++shown;
      utility_sum += video_->ladder().utility(q);
      displayed.push_back(tile);
    }
  }
  if (shown == 0) {
    // Live semantics: nothing to show -> the chunk is skipped outright.
    ++chunks_skipped_;
    qoe_.record_skip();
  } else {
    const double blank =
        1.0 - static_cast<double>(shown) / static_cast<double>(visible.size());
    qoe_.record_played_chunk(utility_sum / static_cast<double>(visible.size()),
                             blank);
    ++chunks_played_;
    blank_sum_ += blank;
    if (crowd_ != nullptr) {
      // Report what this viewer actually watched; other (higher-latency)
      // viewers can use it once the report lands.
      const sim::Time when = simulator_.now() + config_.crowd_report_delay;
      simulator_.schedule_at(when, [this, index, displayed, when,
                                    alive = alive_] {
        if (*alive) crowd_->record(index, displayed, when);
      });
    }
  }

  // Waste accounting for this chunk's cells.
  std::vector<char> is_visible(static_cast<std::size_t>(video_->tile_count()), 0);
  for (geo::TileId tile : visible) is_visible[static_cast<std::size_t>(tile)] = 1;
  for (geo::TileId tile = 0; tile < video_->tile_count(); ++tile) {
    const media::ChunkKey key{tile, index};
    const std::int64_t held = buffer_.cell_bytes(key);
    if (held == 0) continue;
    std::int64_t used = 0;
    if (is_visible[static_cast<std::size_t>(tile)]) {
      used = buffer_.cell_bytes_used(key, buffer_.displayable_quality(key));
    }
    qoe_.record_wasted(held - used);
  }
  buffer_.evict_before(index + 1);

  if (index + 1 >= video_->chunk_count()) finish();
}

void TiledLiveSession::scan_upgrades() {
  if (finished_) return;
  const double est = transport_.estimated_kbps();
  for (media::ChunkIndex index = next_play_;
       index < video_->chunk_count(); ++index) {
    if (availability_of(index) > simulator_.now()) break;  // not ingested yet
    const sim::Duration slack = deadline_of(index) - simulator_.now();
    if (slack <= sim::Duration{0}) continue;
    const sim::Duration horizon =
        video_->chunk_start_time(index) - content_now();
    const auto probs = fused_probabilities(index, horizon);
    const auto target_it = plan_quality_.find(index);
    if (target_it == plan_quality_.end()) continue;
    const auto visible = video_->geometry().visible_tiles(
        fusion_.predict_orientation(horizon), config_.viewport);
    for (geo::TileId tile : visible) {
      const media::ChunkKey key{tile, index};
      const media::QualityLevel current = buffer_.displayable_quality(key);
      if (current >= target_it->second) continue;
      const auto decision = policy_->consider_upgrade(
          key, current, buffer_.svc_contiguous_quality(key), target_it->second,
          probs[static_cast<std::size_t>(tile)], slack, est);
      if (!decision.upgrade) continue;
      for (const auto& address : decision.fetches) {
        dispatch(address, abr::SpatialClass::kFov, deadline_of(index),
                 /*is_upgrade=*/current >= 0);
      }
    }
  }
}

void TiledLiveSession::finish() {
  if (finished_) return;
  finished_ = true;
  if (head_task_) head_task_->stop();
  if (upgrade_task_) upgrade_task_->stop();
}

TiledLiveReport TiledLiveSession::report() const {
  TiledLiveReport out;
  out.qoe = qoe_.summary();
  out.chunks_played = chunks_played_;
  out.chunks_skipped = chunks_skipped_;
  out.mean_blank_fraction =
      chunks_played_ > 0 ? blank_sum_ / chunks_played_ : 0.0;
  out.fetches = fetches_;
  out.upgrades = upgrades_;
  out.fetch_failures = fetch_failures_;
  out.degraded_retries = degraded_retries_;
  out.finished = finished_;
  return out;
}

}  // namespace sperke::live
