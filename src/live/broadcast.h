// Live 360° broadcast pipeline (§3.4): broadcaster -> ingest server ->
// viewers, with per-entity buffering, the source of the end-to-end latency
// the paper measures with its clock-camera method (Table 2).
//
// The broadcaster uploads fixed-quality segments over RTMP/TCP (no upload
// rate adaptation, as measured); when the uplink cannot keep up, its
// backlog grows until the encoder starts dropping segments. The ingest
// server transcodes into the platform ladder and either serves DASH pulls
// or pushes the stream. The viewer buffers, adapts (DASH only), plays in
// real time, and records the E2E latency of every displayed segment.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "live/platform.h"
#include "live/upload_vra.h"
#include "net/link.h"
#include "obs/telemetry.h"
#include "sim/periodic.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace sperke::live {

struct Segment {
  int index = 0;
  sim::Time capture_start{sim::kTimeZero};  // when the first frame was captured
  std::int64_t bytes = 0;                   // at broadcast (upload) quality
};

struct LiveSessionResult {
  double mean_e2e_latency_s = 0.0;   // over segments displayed in the window
  double stddev_e2e_latency_s = 0.0;
  int segments_displayed = 0;
  int segments_dropped_at_broadcaster = 0;
  int viewer_rebuffer_events = 0;
  int viewer_catchup_skips = 0;  // "skip to live" jumps by the pull viewer
  double mean_displayed_kbps = 0.0;  // download rung actually watched
  // With an upload policy: what the broadcaster actually sent.
  double mean_uploaded_kbps = 0.0;
  double mean_uploaded_horizon_deg = 360.0;
};

class LiveBroadcastSession {
 public:
  struct Config {
    PlatformProfile platform;
    NetworkConditions network;
    sim::Duration broadcast_length{sim::seconds(150.0)};
    // Latency is averaged over segments whose display starts inside
    // [measure_from, measure_to] — past startup transients, like the
    // paper's repeated clock readings.
    sim::Duration measure_from{sim::seconds(40.0)};
    sim::Duration measure_to{sim::seconds(140.0)};
    double unconstrained_kbps = 50'000.0;  // "No limit" rows
    sim::Duration link_rtt{sim::milliseconds(30)};
    // Optional broadcaster-side upload VRA (§3.4.2). The measured platforms
    // have none (null); with one, each segment's bitrate/horizon follows
    // policy->decide(uplink capacity). Not owned; must outlive the session.
    const UploadPolicy* upload_policy = nullptr;
    // Fault schedules (DESIGN.md §10). An uplink disruption collapses the
    // capacity the upload VRA reads, triggering its spatial fallback; a
    // downlink fault fails the in-flight segment transfer, which the
    // server/viewer retries from the same segment index.
    net::FaultPlan uplink_faults;
    net::FaultPlan downlink_faults;
    // Telemetry sink (not owned; must outlive the session). Null = disabled.
    obs::Telemetry* telemetry = nullptr;
  };

  explicit LiveBroadcastSession(Config config);

  // Runs the whole broadcast to completion and reports.
  [[nodiscard]] LiveSessionResult run();

 private:
  void capture_segment();
  void on_segment_ingested(Segment segment);
  void viewer_poll();
  void viewer_maybe_request();
  void server_push();
  void viewer_play_loop();

  Config config_;
  sim::Simulator simulator_;
  std::unique_ptr<net::Link> uplink_;
  std::unique_ptr<net::Link> downlink_;

  // Broadcaster state. The RTMP upload is a continuous stream: a segment's
  // bytes drain while it is being captured, so only the *excess* over the
  // uplink capacity accumulates in the encoder queue (fluid model).
  int next_capture_index_ = 0;
  double upload_backlog_kbits_ = 0.0;
  int dropped_ = 0;

  // Ingest state: segments ready for distribution.
  std::map<int, Segment> available_;
  int push_next_ = 0;      // next segment index to push (RTMP push)
  bool pushing_ = false;

  // Viewer state.
  int viewer_known_ = 0;       // segments the viewer has heard of (pull)
  int viewer_next_fetch_ = 0;  // next segment to request
  bool viewer_fetching_ = false;
  std::map<int, std::pair<Segment, double>> viewer_buffer_;  // + rung kbps
  bool viewer_playing_ = false;
  bool viewer_prebuffer_timer_armed_ = false;
  bool viewer_force_start_ = false;  // prebuffer timer expired: play with what we have
  int viewer_play_next_ = 0;
  double downlink_est_kbps_ = 0.0;
  int rebuffers_ = 0;
  int catchup_skips_ = 0;
  bool viewer_waiting_ = false;  // at a boundary with an empty buffer

  // Measurements.
  std::vector<double> latencies_s_;
  RunningStats displayed_kbps_;
  RunningStats uploaded_kbps_;
  RunningStats uploaded_horizon_deg_;

  void record_trace(const obs::TraceEvent& event);

  // Telemetry handles (null without a sink). live.e2e_latency_s mirrors
  // latencies_s_ (measurement window only); the counters mirror the
  // corresponding LiveSessionResult fields.
  obs::Histogram* e2e_latency_s_metric_ = nullptr;
  obs::Counter* displayed_metric_ = nullptr;
  obs::Counter* dropped_metric_ = nullptr;
  obs::Counter* rebuffers_metric_ = nullptr;
  obs::Counter* catchup_skips_metric_ = nullptr;
};

}  // namespace sperke::live
