#include "live/upload_vra.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sperke::live {

FixedQualityPolicy::FixedQualityPolicy(double target_kbps)
    : target_kbps_(target_kbps) {
  if (target_kbps <= 0.0) throw std::invalid_argument("FixedQuality: bad target");
}

UploadDecision FixedQualityPolicy::decide(double) const {
  return {360.0, target_kbps_};
}

QualityAdaptivePolicy::QualityAdaptivePolicy(double target_kbps, double min_kbps,
                                             double safety)
    : target_kbps_(target_kbps), min_kbps_(min_kbps), safety_(safety) {
  if (target_kbps <= 0.0 || min_kbps <= 0.0 || min_kbps > target_kbps) {
    throw std::invalid_argument("QualityAdaptive: bad bitrates");
  }
  if (safety <= 0.0 || safety > 1.0) throw std::invalid_argument("QualityAdaptive: bad safety");
}

UploadDecision QualityAdaptivePolicy::decide(double capacity_kbps) const {
  const double kbps =
      std::clamp(capacity_kbps * safety_, min_kbps_, target_kbps_);
  return {360.0, kbps};
}

SpatialFallbackPolicy::SpatialFallbackPolicy(double target_kbps,
                                             double min_horizon_deg, double safety)
    : target_kbps_(target_kbps),
      min_horizon_deg_(min_horizon_deg),
      safety_(safety) {
  if (target_kbps <= 0.0) throw std::invalid_argument("SpatialFallback: bad target");
  if (min_horizon_deg <= 0.0 || min_horizon_deg > 360.0) {
    throw std::invalid_argument("SpatialFallback: bad min horizon");
  }
  if (safety <= 0.0 || safety > 1.0) throw std::invalid_argument("SpatialFallback: bad safety");
}

UploadDecision SpatialFallbackPolicy::decide(double capacity_kbps) const {
  // Hold per-degree density at the target and shrink the horizon to fit;
  // below the minimum horizon, degrade quality instead (last resort).
  const double budget = capacity_kbps * safety_;
  double horizon = std::clamp(360.0 * budget / target_kbps_, min_horizon_deg_, 360.0);
  double kbps = target_kbps_ * horizon / 360.0;
  if (kbps > budget) kbps = std::max(budget, 1.0);  // pinned at min horizon
  return {horizon, std::min(kbps, target_kbps_)};
}

double horizon_coverage_probability(double horizon_deg, double interest_sigma_deg) {
  if (horizon_deg <= 0.0) return 0.0;
  if (horizon_deg >= 360.0) return 1.0;
  if (interest_sigma_deg <= 0.0) return 1.0;  // everyone stares at the center
  // Gaze yaw ~ N(0, sigma); coverage = P(|yaw| <= horizon/2).
  const double z = horizon_deg / 2.0 / (interest_sigma_deg * std::sqrt(2.0));
  return std::erf(z);
}

double density_utility(double kbps_per_deg, double target_kbps_per_deg) {
  if (target_kbps_per_deg <= 0.0) throw std::invalid_argument("density_utility: bad target");
  const double floor_density = target_kbps_per_deg / 16.0;
  if (kbps_per_deg <= floor_density) return 0.0;
  const double u = std::log(kbps_per_deg / floor_density) /
                   std::log(target_kbps_per_deg / floor_density);
  return std::clamp(u, 0.0, 1.0);
}

double expected_viewer_utility(const UploadDecision& decision, double target_kbps,
                               double interest_sigma_deg) {
  const double coverage =
      horizon_coverage_probability(decision.horizon_deg, interest_sigma_deg);
  const double density = decision.upload_kbps / std::max(decision.horizon_deg, 1.0);
  const double quality = density_utility(density, target_kbps / 360.0);
  return coverage * quality;
}

}  // namespace sperke::live
