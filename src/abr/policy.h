// The pluggable 360° tile-ABR policy interface (ROADMAP item 2): every
// viewport-adaptive rate allocator — the paper's Sperke VRA (§3.1.2) and
// the related-work competitors — implements this one interface, and
// core::Session, live::TiledViewer and engine::WorldSpec hold it instead
// of a concrete class, so every scenario is a comparison rather than a
// demo. Instances are built by abr::make_policy (abr/factory.h) from a
// policy name + config; the *config* travels through specs (value
// semantics) and each consumer constructs its own instance, which is what
// keeps engine shards free of shared mutable state and their merged
// metrics byte-identical at any thread count.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "abr/oos.h"
#include "abr/plan.h"
#include "abr/regular_vra.h"
#include "media/video_model.h"

namespace sperke::abr {

class TileAbrPolicy {
 public:
  // Reusable buffers threaded through plan_chunk_into so steady-state
  // planning allocates nothing (DESIGN.md §8). One workspace per session;
  // single-threaded use only. The scratch set is the union of what the
  // implementations need — a policy ignores the fields it does not use.
  struct PlanWorkspace {
    VraContext ctx;
    OosSelector::Workspace oos;
    // Per-tile allocation scratch (knapsack / consistency allocators):
    // quality or ring index per tile, FoV membership flags, BFS frontiers.
    std::vector<media::QualityLevel> tile_quality;
    std::vector<char> tile_flag;
    std::vector<geo::TileId> frontier;
    std::vector<geo::TileId> next_frontier;
  };

  struct UpgradeDecision {
    bool upgrade = false;
    std::vector<media::ChunkAddress> fetches;  // deltas (SVC) or refetch (AVC)
    std::int64_t bytes = 0;
  };

  virtual ~TileAbrPolicy() = default;

  // The factory name ("sperke", "knapsack", ...). Also scopes the policy's
  // obs counters (abr.<name>.plans), so it must match [a-z0-9_]+.
  [[nodiscard]] virtual std::string_view name() const = 0;

  // Plan all fetches for chunk `index`, written into `out` (reset first),
  // scratch from `workspace`.
  //  `predicted_fov`        — tiles of the predicted viewport (sorted);
  //  `tile_probabilities`   — fusion HMP output for this chunk (empty for
  //                           the FoV-agnostic planner: no probability map);
  //  `estimated_kbps`       — current throughput estimate (0 = unknown);
  //  `buffer_level`         — media time buffered ahead of the playhead;
  //  `last_quality`         — previous FoV quality (switch damping).
  virtual void plan_chunk_into(media::ChunkIndex index,
                               const std::vector<geo::TileId>& predicted_fov,
                               std::span<const double> tile_probabilities,
                               double estimated_kbps, sim::Duration buffer_level,
                               media::QualityLevel last_quality,
                               PlanWorkspace& workspace, ChunkPlan& out) const = 0;

  // Allocating convenience wrapper over plan_chunk_into (cold paths, tests).
  [[nodiscard]] ChunkPlan plan_chunk(media::ChunkIndex index,
                                     const std::vector<geo::TileId>& predicted_fov,
                                     std::span<const double> tile_probabilities,
                                     double estimated_kbps,
                                     sim::Duration buffer_level,
                                     media::QualityLevel last_quality) const;

  // Runtime incremental upgrades (§3.1.1, part 3 of the VRA): should a
  // buffered tile displayed at `current` quality be upgraded to `target`,
  // given its display probability and deadline slack? Policies without an
  // upgrade concept keep the default no-upgrade answer and return a zero
  // upgrade_window() so the session never even schedules the scan.
  [[nodiscard]] virtual UpgradeDecision consider_upgrade(
      const media::ChunkKey& key, media::QualityLevel current,
      media::QualityLevel svc_layer_base, media::QualityLevel target,
      double visible_probability, sim::Duration time_to_deadline,
      double estimated_kbps) const;

  // Encoding for base-tier emergency fetches (stall coverage, degraded
  // recovery retries): the cheapest displayable address of a tile chunk.
  [[nodiscard]] virtual media::Encoding base_tier_encoding() const = 0;

  // Deadline slack below which runtime upgrades are worth scanning. The
  // session hoists this test in front of the per-chunk prediction work and
  // skips scheduling the scan task entirely when the window is zero.
  [[nodiscard]] virtual sim::Duration upgrade_window() const {
    return sim::Duration{0};
  }
};

}  // namespace sperke::abr
