#include "abr/oos.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <stdexcept>

namespace sperke::abr {
namespace {

// Emit the fetches needed to hold tile `tile` of chunk `index` at quality
// `q` under `encoding` (one AVC object, or SVC layers 0..q).
void emit_tile(ChunkPlan& plan, geo::TileId tile, media::QualityLevel q,
               media::Encoding encoding, SpatialClass spatial, double prob) {
  const media::ChunkKey key{tile, plan.index};
  if (encoding == media::Encoding::kAvc) {
    plan.fetches.push_back({{key, media::Encoding::kAvc, q}, spatial, prob});
  } else {
    for (media::LayerIndex l = 0; l <= q; ++l) {
      plan.fetches.push_back({{key, media::Encoding::kSvc, l}, spatial, prob});
    }
  }
}

}  // namespace

OosSelector::OosSelector(OosConfig config) : config_(config) {
  if (config_.budget_fraction < 0.0) {
    throw std::invalid_argument("OosSelector: negative budget fraction");
  }
  if (config_.tiles_per_step <= 0) {
    throw std::invalid_argument("OosSelector: tiles_per_step must be positive");
  }
  if (config_.first_quality_drop < 0) {
    throw std::invalid_argument("OosSelector: negative quality drop");
  }
}

void OosSelector::select(ChunkPlan& plan, const media::VideoModel& video,
                         const std::vector<geo::TileId>& fov_tiles,
                         std::span<const double> probabilities,
                         media::Encoding encoding) const {
  Workspace workspace;
  select(plan, video, fov_tiles, probabilities, encoding, workspace);
}

void OosSelector::select(ChunkPlan& plan, const media::VideoModel& video,
                         const std::vector<geo::TileId>& fov_tiles,
                         std::span<const double> probabilities,
                         media::Encoding encoding, Workspace& workspace) const {
  if (static_cast<int>(probabilities.size()) != video.tile_count()) {
    throw std::invalid_argument("OosSelector: probability size mismatch");
  }
  const std::int64_t fov_bytes = plan.total_bytes(video);

  // Factor 2 (HMP accuracy): probability mass outside the predicted FoV.
  double miss_mass = 1.0;
  for (geo::TileId tile : fov_tiles) {
    miss_mass -= probabilities[static_cast<std::size_t>(tile)];
  }
  miss_mass = std::clamp(miss_mass, 0.0, 1.0);
  double budget = config_.budget_fraction * static_cast<double>(fov_bytes);
  if (config_.accuracy_scaling) budget *= (1.0 + miss_mass);

  // Candidates: every non-FoV tile, most probable first.
  auto& in_fov = workspace.in_fov;
  in_fov.assign(probabilities.size(), 0);
  for (geo::TileId tile : fov_tiles) in_fov[static_cast<std::size_t>(tile)] = 1;
  auto& candidates = workspace.candidates;
  candidates.clear();
  for (geo::TileId tile = 0; tile < video.tile_count(); ++tile) {
    if (!in_fov[static_cast<std::size_t>(tile)]) candidates.push_back(tile);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](geo::TileId a, geo::TileId b) {
                     return probabilities[static_cast<std::size_t>(a)] >
                            probabilities[static_cast<std::size_t>(b)];
                   });

  const double prob_max =
      candidates.empty()
          ? 1.0
          : std::max(probabilities[static_cast<std::size_t>(candidates.front())],
                     1e-12);

  // Quality falls off with rank (or with probability directly): the
  // further down the ranking — the further from the predicted FoV — the
  // lower the quality (§3.1.1).
  std::int64_t spent = 0;
  int rank = 0;
  for (geo::TileId tile : candidates) {
    media::QualityLevel q;
    if (config_.quality_policy == OosQualityPolicy::kProbabilityProportional) {
      const double rel =
          probabilities[static_cast<std::size_t>(tile)] / prob_max;
      q = std::max<media::QualityLevel>(
          config_.min_quality,
          static_cast<media::QualityLevel>(
              std::lround(rel * std::max(0, plan.fov_quality - 1))));
    } else {
      const int drop = config_.first_quality_drop + rank / config_.tiles_per_step;
      q = std::max<media::QualityLevel>(config_.min_quality,
                                        plan.fov_quality - drop);
    }
    const media::ChunkKey key{tile, plan.index};
    const std::int64_t cost = (encoding == media::Encoding::kAvc)
                                  ? video.avc_size_bytes(q, key)
                                  : video.svc_cumulative_size_bytes(q, key);
    if (spent + cost > static_cast<std::int64_t>(budget)) break;
    spent += cost;
    emit_tile(plan, tile, q, encoding, SpatialClass::kOos,
              probabilities[static_cast<std::size_t>(tile)]);
    ++rank;
  }
}

}  // namespace sperke::abr
