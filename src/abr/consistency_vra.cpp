#include "abr/consistency_vra.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace sperke::abr {

ConsistencyVra::ConsistencyVra(std::shared_ptr<const media::VideoModel> video,
                               ConsistencyVraConfig config)
    : video_(std::move(video)), config_(config) {
  if (!video_) throw std::invalid_argument("ConsistencyVra: null video");
  if (config_.safety <= 0.0 || config_.safety > 1.0) {
    throw std::invalid_argument("ConsistencyVra: bad safety");
  }
  if (config_.max_temporal_step < 1) {
    throw std::invalid_argument("ConsistencyVra: max_temporal_step < 1");
  }
  if (config_.spatial_step < 1) {
    throw std::invalid_argument("ConsistencyVra: spatial_step < 1");
  }
  if (config_.max_rings < 0) {
    throw std::invalid_argument("ConsistencyVra: negative max_rings");
  }
}

void ConsistencyVra::plan_chunk_into(media::ChunkIndex index,
                                     const std::vector<geo::TileId>& predicted_fov,
                                     std::span<const double> tile_probabilities,
                                     double estimated_kbps,
                                     sim::Duration /*buffer_level*/,
                                     media::QualityLevel last_quality,
                                     PlanWorkspace& workspace,
                                     ChunkPlan& out) const {
  if (predicted_fov.empty()) {
    throw std::invalid_argument("plan_chunk: empty predicted FoV");
  }
  const auto& ladder = video_->ladder();
  const auto& grid = video_->geometry().grid();
  const double chunk_s = sim::to_seconds(video_->chunk_duration());
  const int tiles = video_->tile_count();

  // Ring index per tile via BFS from the FoV over the tile grid (horizontal
  // wrap, no vertical wrap — geo/tile_grid.h). -1 = beyond the margin.
  // FoV-agnostic callers pass no probability map and get no margin: the
  // "FoV" is already the full panorama.
  auto& ring_of = workspace.tile_quality;
  ring_of.assign(static_cast<std::size_t>(tiles), -1);
  auto& frontier = workspace.frontier;
  frontier.clear();
  for (geo::TileId t : predicted_fov) {
    ring_of[static_cast<std::size_t>(t)] = 0;
    frontier.push_back(t);
  }
  const int rings = tile_probabilities.empty() ? 0 : config_.max_rings;
  for (int r = 1; r <= rings; ++r) {
    auto& next = workspace.next_frontier;
    next.clear();
    for (geo::TileId t : frontier) {
      for (geo::TileId n : grid.neighbors(t)) {
        if (ring_of[static_cast<std::size_t>(n)] < 0) {
          ring_of[static_cast<std::size_t>(n)] = r;
          next.push_back(n);
        }
      }
    }
    frontier.swap(next);
  }

  const auto ring_quality = [&](media::QualityLevel q_fov, int ring) {
    return std::max<media::QualityLevel>(q_fov - ring * config_.spatial_step, 0);
  };
  const auto plan_bytes = [&](media::QualityLevel q_fov) {
    std::int64_t bytes = 0;
    for (geo::TileId t = 0; t < tiles; ++t) {
      const int ring = ring_of[static_cast<std::size_t>(t)];
      if (ring < 0) continue;
      bytes += video_->avc_size_bytes(ring_quality(q_fov, ring), {t, index});
    }
    return bytes;
  };

  const std::int64_t budget =
      estimated_kbps > 0.0
          ? static_cast<std::int64_t>(estimated_kbps * config_.safety *
                                      chunk_s * 1000.0 / 8.0)
          : 0;
  // Largest affordable FoV quality, capped by the temporal rise limit.
  // Cost is monotone in q_fov, so an ascending scan finds the maximum.
  const media::QualityLevel rise_cap = std::min<media::QualityLevel>(
      last_quality + config_.max_temporal_step, ladder.max_level());
  media::QualityLevel q_fov = -1;
  for (media::QualityLevel q = 0; q <= rise_cap; ++q) {
    if (plan_bytes(q) <= budget) q_fov = q;
  }
  // Even the all-base plan does not fit (startup / collapse): cover the
  // viewport alone at the base tier and drop the protective margin.
  const bool emergency = q_fov < 0;
  if (emergency) q_fov = 0;

  out.index = index;
  out.fov_quality = q_fov;
  out.fetches.clear();
  for (geo::TileId t = 0; t < tiles; ++t) {
    const int ring = ring_of[static_cast<std::size_t>(t)];
    if (ring < 0 || (emergency && ring > 0)) continue;
    const double prob =
        tile_probabilities.empty()
            ? (ring == 0 ? 1.0 : 0.0)
            : tile_probabilities[static_cast<std::size_t>(t)];
    out.fetches.push_back(
        {{{t, index}, media::Encoding::kAvc, ring_quality(q_fov, ring)},
         ring == 0 ? SpatialClass::kFov : SpatialClass::kOos,
         prob});
  }
}

}  // namespace sperke::abr
