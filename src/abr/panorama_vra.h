// Naive full-panorama baseline (§2's monolithic strawman, the
// YouTube/Facebook status quo the paper argues against): every tile of
// every chunk at one uniform quality picked by a regular VRA over the
// whole-panorama byte cost. The floor any viewport-adaptive policy must
// beat on bandwidth — and the ceiling on robustness, since nothing is
// ever mispredicted.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "abr/policy.h"

namespace sperke::abr {

struct FullPanoramaConfig {
  // Regular VRA choosing the uniform level (abr/regular_vra.h names).
  std::string regular_vra = "throughput";
};

class FullPanoramaVra final : public TileAbrPolicy {
 public:
  FullPanoramaVra(std::shared_ptr<const media::VideoModel> video,
                  FullPanoramaConfig config);

  [[nodiscard]] std::string_view name() const override { return "fullpano"; }
  void plan_chunk_into(media::ChunkIndex index,
                       const std::vector<geo::TileId>& predicted_fov,
                       std::span<const double> tile_probabilities,
                       double estimated_kbps, sim::Duration buffer_level,
                       media::QualityLevel last_quality,
                       PlanWorkspace& workspace, ChunkPlan& out) const override;
  [[nodiscard]] media::Encoding base_tier_encoding() const override {
    return media::Encoding::kAvc;
  }

  [[nodiscard]] const FullPanoramaConfig& config() const { return config_; }

 private:
  std::shared_ptr<const media::VideoModel> video_;
  FullPanoramaConfig config_;
  std::unique_ptr<RegularVra> regular_;
};

}  // namespace sperke::abr
