// Spatial + temporal consistency-aware tile allocator, after Yuan et al.,
// "Spatial and temporal consistency-aware dynamic adaptive streaming for
// 360-degree videos" (arXiv:1912.09675).
//
// Two smoothness constraints shape the allocation instead of a pure
// expected-utility objective:
//   * spatial consistency — quality falls *gradually* with grid distance
//     from the viewport (abrupt tile seams inside the FoV are what users
//     notice most), implemented as BFS rings over geo::TileGrid::neighbors
//     dropping `spatial_step` levels per ring;
//   * temporal consistency — the FoV quality may rise at most
//     `max_temporal_step` levels per chunk (no quality flicker), though it
//     may drop freely when throughput collapses (stalls beat smoothness).
// The chosen FoV quality is then the largest one whose *whole* smoothed
// plan (FoV + rings) fits the safety-discounted byte budget.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "abr/policy.h"

namespace sperke::abr {

struct ConsistencyVraConfig {
  // Fraction of the estimated throughput the planner may spend per chunk.
  double safety = 0.9;
  // Max FoV quality *rise* per chunk (drops are unconstrained).
  int max_temporal_step = 1;
  // Quality levels dropped per BFS ring away from the viewport.
  int spatial_step = 1;
  // Protective rings fetched beyond the FoV (0 disables the margin).
  int max_rings = 2;
};

class ConsistencyVra final : public TileAbrPolicy {
 public:
  ConsistencyVra(std::shared_ptr<const media::VideoModel> video,
                 ConsistencyVraConfig config);

  [[nodiscard]] std::string_view name() const override { return "consistency"; }
  void plan_chunk_into(media::ChunkIndex index,
                       const std::vector<geo::TileId>& predicted_fov,
                       std::span<const double> tile_probabilities,
                       double estimated_kbps, sim::Duration buffer_level,
                       media::QualityLevel last_quality,
                       PlanWorkspace& workspace, ChunkPlan& out) const override;
  // All-AVC: mid-flight upgrades would break exactly the temporal
  // smoothness the policy optimizes for, so there is no layered path.
  [[nodiscard]] media::Encoding base_tier_encoding() const override {
    return media::Encoding::kAvc;
  }

  [[nodiscard]] const ConsistencyVraConfig& config() const { return config_; }

 private:
  std::shared_ptr<const media::VideoModel> video_;
  ConsistencyVraConfig config_;
};

}  // namespace sperke::abr
