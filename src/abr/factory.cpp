#include "abr/factory.h"

#include <array>
#include <stdexcept>
#include <utility>

namespace sperke::abr {

namespace {

constexpr std::array<std::string_view, 4> kPolicyNames = {
    "sperke", "knapsack", "consistency", "fullpano"};

}  // namespace

std::span<const std::string_view> policy_names() noexcept {
  return kPolicyNames;
}

void validate_policy_name(const std::string& name) {
  for (std::string_view known : policy_names()) {
    if (name == known) return;
  }
  std::string valid;
  for (std::string_view known : policy_names()) {
    if (!valid.empty()) valid += ", ";
    valid += known;
  }
  throw std::invalid_argument("make_policy: unknown tile-ABR policy \"" + name +
                              "\"; valid names: " + valid);
}

std::unique_ptr<TileAbrPolicy> make_policy(
    std::shared_ptr<const media::VideoModel> video,
    const TileAbrConfig& config) {
  validate_policy_name(config.policy);
  if (config.policy == "sperke") {
    return std::make_unique<SperkeVra>(std::move(video), config.sperke);
  }
  if (config.policy == "knapsack") {
    return std::make_unique<KnapsackVra>(std::move(video), config.knapsack);
  }
  if (config.policy == "consistency") {
    return std::make_unique<ConsistencyVra>(std::move(video), config.consistency);
  }
  return std::make_unique<FullPanoramaVra>(std::move(video), config.fullpano);
}

}  // namespace sperke::abr
