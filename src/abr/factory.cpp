#include "abr/factory.h"

#include <stdexcept>
#include <utility>

namespace sperke::abr {

const std::vector<std::string>& policy_names() {
  static const std::vector<std::string> kNames = {"sperke", "knapsack",
                                                  "consistency", "fullpano"};
  return kNames;
}

void validate_policy_name(const std::string& name) {
  for (const std::string& known : policy_names()) {
    if (name == known) return;
  }
  std::string valid;
  for (const std::string& known : policy_names()) {
    if (!valid.empty()) valid += ", ";
    valid += known;
  }
  throw std::invalid_argument("make_policy: unknown tile-ABR policy \"" + name +
                              "\"; valid names: " + valid);
}

std::unique_ptr<TileAbrPolicy> make_policy(
    std::shared_ptr<const media::VideoModel> video,
    const TileAbrConfig& config) {
  validate_policy_name(config.policy);
  if (config.policy == "sperke") {
    return std::make_unique<SperkeVra>(std::move(video), config.sperke);
  }
  if (config.policy == "knapsack") {
    return std::make_unique<KnapsackVra>(std::move(video), config.knapsack);
  }
  if (config.policy == "consistency") {
    return std::make_unique<ConsistencyVra>(std::move(video), config.consistency);
  }
  return std::make_unique<FullPanoramaVra>(std::move(video), config.fullpano);
}

}  // namespace sperke::abr
