// QoE accounting for 360° sessions, per the paper's §3.1.2 target metrics:
// fewer stalls/skips, higher (viewport) bitrate, fewer quality changes —
// plus the 360°-specific costs: blank tiles inside the FoV and wasted bytes
// (downloaded but never displayed).
#pragma once

#include <cstdint>

#include "media/quality_ladder.h"
#include "sim/time.h"

namespace sperke::abr {

struct QoeWeights {
  double utility_weight = 1.0;        // per-chunk mean viewport utility [0,1]
  double stall_penalty_per_s = 4.0;   // rebuffering (non-live)
  double skip_penalty = 2.0;          // skipped chunk (live)
  double switch_penalty = 1.0;        // |utility delta| between chunks
  double blank_penalty = 4.0;         // fraction of FoV with nothing to show
};

struct QoeSummary {
  int chunks_played = 0;
  double mean_viewport_utility = 0.0;  // [0,1], across played chunks
  double stall_seconds = 0.0;
  int stall_events = 0;
  int skipped_chunks = 0;
  double switch_magnitude = 0.0;       // summed |utility| change
  double blank_fraction_mean = 0.0;    // mean fraction of FoV tiles missing
  std::int64_t bytes_downloaded = 0;
  std::int64_t bytes_wasted = 0;       // downloaded, never displayed
  double score = 0.0;                  // weighted aggregate (higher = better)
};

// Accumulates per-chunk playback observations and produces a QoeSummary.
class QoeTracker {
 public:
  explicit QoeTracker(QoeWeights weights = {});

  // One playback step: the viewport's mean quality utility in [0,1] and the
  // fraction of FoV tiles that had no data at all.
  void record_played_chunk(double viewport_utility, double blank_fraction);

  void record_stall(sim::Duration length);
  void record_skip(int chunks = 1);
  void record_downloaded(std::int64_t bytes);
  void record_wasted(std::int64_t bytes);

  [[nodiscard]] QoeSummary summary() const;
  [[nodiscard]] const QoeWeights& weights() const { return weights_; }

 private:
  QoeWeights weights_;
  QoeSummary acc_;
  double utility_sum_ = 0.0;
  double blank_sum_ = 0.0;
  bool has_prev_utility_ = false;
  double prev_utility_ = 0.0;
};

}  // namespace sperke::abr
