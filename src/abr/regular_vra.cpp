#include "abr/regular_vra.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace sperke::abr {
namespace {

media::QualityLevel max_level(const VraContext& ctx) {
  if (ctx.level_kbps.empty()) throw std::invalid_argument("VraContext: empty ladder");
  return static_cast<media::QualityLevel>(ctx.level_kbps.size()) - 1;
}

double utility_of(const VraContext& ctx, media::QualityLevel q) {
  if (static_cast<std::size_t>(q) < ctx.level_utility.size()) {
    return ctx.level_utility[static_cast<std::size_t>(q)];
  }
  // Fallback: linear in level index.
  const auto top = static_cast<double>(ctx.level_kbps.size() - 1);
  return top > 0.0 ? static_cast<double>(q) / top : 1.0;
}

}  // namespace

ThroughputVra::ThroughputVra(double safety) : safety_(safety) {
  if (safety <= 0.0 || safety > 1.0) throw std::invalid_argument("ThroughputVra: bad safety");
}

media::QualityLevel ThroughputVra::choose(const VraContext& ctx) const {
  const media::QualityLevel top = max_level(ctx);
  if (ctx.estimated_kbps <= 0.0) return 0;
  const double budget = ctx.estimated_kbps * safety_;
  media::QualityLevel pick = 0;
  for (media::QualityLevel q = 0; q <= top; ++q) {
    if (ctx.level_kbps[static_cast<std::size_t>(q)] <= budget) pick = q;
  }
  return pick;
}

BufferVra::BufferVra(sim::Duration reservoir, sim::Duration cushion)
    : reservoir_(reservoir), cushion_(cushion) {
  if (reservoir < sim::Duration{0} || cushion <= reservoir) {
    throw std::invalid_argument("BufferVra: need 0 <= reservoir < cushion");
  }
}

media::QualityLevel BufferVra::choose(const VraContext& ctx) const {
  const media::QualityLevel top = max_level(ctx);
  if (ctx.buffer_level <= reservoir_) return 0;
  if (ctx.buffer_level >= cushion_) return top;
  const double f = sim::to_seconds(ctx.buffer_level - reservoir_) /
                   sim::to_seconds(cushion_ - reservoir_);
  return static_cast<media::QualityLevel>(
      std::lround(f * static_cast<double>(top)));
}

BolaVra::BolaVra(double target_buffer_s, double gp)
    : target_buffer_s_(target_buffer_s), gp_(gp) {
  if (target_buffer_s <= 0.0) throw std::invalid_argument("BolaVra: bad target");
  if (gp <= 0.0) throw std::invalid_argument("BolaVra: bad gp");
}

media::QualityLevel BolaVra::choose(const VraContext& ctx) const {
  const media::QualityLevel top = max_level(ctx);
  // V calibrated so that the top level's score crosses zero at the target
  // buffer: V * (u_max + gp) = target.
  const double u_max = utility_of(ctx, top);
  const double v = target_buffer_s_ / (u_max + gp_);
  const double buffer_s = sim::to_seconds(ctx.buffer_level);
  double best_score = -std::numeric_limits<double>::infinity();
  media::QualityLevel best = 0;
  for (media::QualityLevel q = 0; q <= top; ++q) {
    const double size = ctx.level_kbps[static_cast<std::size_t>(q)];
    if (size <= 0.0) continue;
    const double score = (v * (utility_of(ctx, q) + gp_) - buffer_s) / size;
    if (score > best_score) {
      best_score = score;
      best = q;
    }
  }
  // Every score negative: the buffer is beyond the control region — BOLA
  // would pause; lacking a pause, stream the top quality.
  return best_score < 0.0 ? top : best;
}

FixedVra::FixedVra(media::QualityLevel level) : level_(level) {
  if (level < 0) throw std::invalid_argument("FixedVra: negative level");
}

media::QualityLevel FixedVra::choose(const VraContext& ctx) const {
  return std::min(level_, max_level(ctx));
}

MpcVra::MpcVra(int lookahead_chunks, double stall_penalty, double switch_penalty)
    : lookahead_(lookahead_chunks),
      stall_penalty_(stall_penalty),
      switch_penalty_(switch_penalty) {
  if (lookahead_chunks < 1) throw std::invalid_argument("MpcVra: bad lookahead");
}

media::QualityLevel MpcVra::choose(const VraContext& ctx) const {
  const media::QualityLevel top = max_level(ctx);
  if (ctx.estimated_kbps <= 0.0) return 0;
  // Score holding quality q for the lookahead window: utility accrues per
  // chunk; rebuffering occurs when cumulative download time outruns the
  // buffer plus played media time.
  double best_score = -1e18;
  media::QualityLevel best = 0;
  const double chunk_s = sim::to_seconds(ctx.chunk_duration);
  for (media::QualityLevel q = 0; q <= top; ++q) {
    const double dl_per_chunk_s =
        ctx.level_kbps[static_cast<std::size_t>(q)] * chunk_s / ctx.estimated_kbps;
    double buffer_s = sim::to_seconds(ctx.buffer_level);
    double stall_s = 0.0;
    for (int i = 0; i < lookahead_; ++i) {
      buffer_s -= dl_per_chunk_s;      // downloading consumes buffer headroom
      if (buffer_s < 0.0) {
        stall_s += -buffer_s;
        buffer_s = 0.0;
      }
      buffer_s += chunk_s;             // the fetched chunk extends the buffer
    }
    const double score = lookahead_ * utility_of(ctx, q) -
                         stall_penalty_ * stall_s -
                         switch_penalty_ * std::abs(utility_of(ctx, q) -
                                                    utility_of(ctx, ctx.last_quality));
    if (score > best_score) {
      best_score = score;
      best = q;
    }
  }
  return best;
}

std::unique_ptr<RegularVra> make_regular_vra(std::string_view name) {
  if (name == "throughput") return std::make_unique<ThroughputVra>();
  if (name == "buffer") return std::make_unique<BufferVra>();
  if (name == "mpc") return std::make_unique<MpcVra>();
  if (name == "bola") return std::make_unique<BolaVra>();
  // "fixed-<level>" pins the quality, e.g. "fixed-2". A malformed level
  // ("fixed-", "fixed-x", "fixed--1") falls through to the listing error
  // below instead of whatever std::stoi would have thrown.
  if (name.starts_with("fixed-")) {
    const std::string_view digits = name.substr(6);
    int level = 0;
    const auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), level);
    if (ec == std::errc{} && ptr == digits.data() + digits.size() &&
        level >= 0) {
      return std::make_unique<FixedVra>(level);
    }
  }
  throw std::invalid_argument("make_regular_vra: unknown VRA \"" +
                              std::string(name) +
                              "\"; valid names: throughput, buffer, mpc, "
                              "bola, fixed-<level>");
}

}  // namespace sperke::abr
