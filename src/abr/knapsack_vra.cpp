#include "abr/knapsack_vra.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace sperke::abr {

KnapsackVra::KnapsackVra(std::shared_ptr<const media::VideoModel> video,
                         KnapsackVraConfig config)
    : video_(std::move(video)), config_(config) {
  if (!video_) throw std::invalid_argument("KnapsackVra: null video");
  if (config_.safety <= 0.0 || config_.safety > 1.0) {
    throw std::invalid_argument("KnapsackVra: bad safety");
  }
}

void KnapsackVra::plan_chunk_into(media::ChunkIndex index,
                                  const std::vector<geo::TileId>& predicted_fov,
                                  std::span<const double> tile_probabilities,
                                  double estimated_kbps,
                                  sim::Duration /*buffer_level*/,
                                  media::QualityLevel /*last_quality*/,
                                  PlanWorkspace& workspace,
                                  ChunkPlan& out) const {
  if (predicted_fov.empty()) {
    throw std::invalid_argument("plan_chunk: empty predicted FoV");
  }
  const auto& ladder = video_->ladder();
  const media::QualityLevel top = ladder.max_level();
  const double chunk_s = sim::to_seconds(video_->chunk_duration());
  const int tiles = video_->tile_count();

  // quality[t]: -1 = not fetched, else the AVC level allocated so far.
  auto& quality = workspace.tile_quality;
  quality.assign(static_cast<std::size_t>(tiles), -1);
  auto& in_fov = workspace.tile_flag;
  in_fov.assign(static_cast<std::size_t>(tiles), 0);
  for (geo::TileId t : predicted_fov) in_fov[static_cast<std::size_t>(t)] = 1;

  const auto prob_of = [&](geo::TileId t) {
    // FoV-agnostic callers pass no probability map: the whole "FoV" (the
    // full panorama) competes at weight 1.
    if (tile_probabilities.empty()) {
      return in_fov[static_cast<std::size_t>(t)] != 0 ? 1.0 : 0.0;
    }
    return tile_probabilities[static_cast<std::size_t>(t)];
  };

  // Hard constraint: the predicted viewport is covered at the base tier,
  // charged before any greedy step (even past the budget — coverage wins).
  std::int64_t spent = 0;
  for (geo::TileId t : predicted_fov) {
    quality[static_cast<std::size_t>(t)] = 0;
    spent += video_->avc_size_bytes(0, {t, index});
  }
  // Unknown throughput (startup): the coverage floor is all we commit to.
  const std::int64_t budget =
      estimated_kbps > 0.0
          ? static_cast<std::int64_t>(estimated_kbps * config_.safety *
                                      chunk_s * 1000.0 / 8.0)
          : spent;

  // Greedy on marginal value density. Ties break to the lowest tile id
  // (strict >, ascending scan) — fully deterministic.
  while (true) {
    double best_density = 0.0;
    geo::TileId best_tile = -1;
    std::int64_t best_cost = 0;
    for (geo::TileId t = 0; t < tiles; ++t) {
      const media::QualityLevel q = quality[static_cast<std::size_t>(t)];
      if (q >= top) continue;
      const double p = prob_of(t);
      double gain = 0.0;
      std::int64_t cost = 0;
      const media::ChunkKey key{t, index};
      if (q < 0) {
        if (p < config_.min_probability) continue;  // never enters
        gain = p * (ladder.utility(0) + config_.entry_utility);
        cost = video_->avc_size_bytes(0, key);
      } else {
        gain = p * (ladder.utility(q + 1) - ladder.utility(q));
        cost = video_->avc_size_bytes(q + 1, key) - video_->avc_size_bytes(q, key);
      }
      if (cost <= 0) cost = 1;
      if (spent + cost > budget) continue;  // does not fit
      const double density = gain / static_cast<double>(cost);
      if (density > best_density) {
        best_density = density;
        best_tile = t;
        best_cost = cost;
      }
    }
    if (best_tile < 0) break;
    ++quality[static_cast<std::size_t>(best_tile)];
    spent += best_cost;
  }

  out.index = index;
  // Nominal FoV quality: the coverage floor actually guaranteed across the
  // predicted viewport (the minimum allocated FoV level).
  media::QualityLevel q_fov = top;
  for (geo::TileId t : predicted_fov) {
    q_fov = std::min(q_fov, quality[static_cast<std::size_t>(t)]);
  }
  out.fov_quality = std::max<media::QualityLevel>(q_fov, 0);
  out.fetches.clear();
  for (geo::TileId t = 0; t < tiles; ++t) {
    const media::QualityLevel q = quality[static_cast<std::size_t>(t)];
    if (q < 0) continue;
    const bool fov = in_fov[static_cast<std::size_t>(t)] != 0;
    out.fetches.push_back({{{t, index}, media::Encoding::kAvc, q},
                           fov ? SpatialClass::kFov : SpatialClass::kOos,
                           prob_of(t)});
  }
}

}  // namespace sperke::abr
