#include "abr/policy.h"

namespace sperke::abr {

ChunkPlan TileAbrPolicy::plan_chunk(media::ChunkIndex index,
                                    const std::vector<geo::TileId>& predicted_fov,
                                    std::span<const double> tile_probabilities,
                                    double estimated_kbps,
                                    sim::Duration buffer_level,
                                    media::QualityLevel last_quality) const {
  PlanWorkspace workspace;
  ChunkPlan plan;
  plan_chunk_into(index, predicted_fov, tile_probabilities, estimated_kbps,
                  buffer_level, last_quality, workspace, plan);
  return plan;
}

TileAbrPolicy::UpgradeDecision TileAbrPolicy::consider_upgrade(
    const media::ChunkKey& /*key*/, media::QualityLevel /*current*/,
    media::QualityLevel /*svc_layer_base*/, media::QualityLevel /*target*/,
    double /*visible_probability*/, sim::Duration /*time_to_deadline*/,
    double /*estimated_kbps*/) const {
  return {};
}

}  // namespace sperke::abr
