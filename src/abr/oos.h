// Out-of-sight (OOS) chunk selection — part two of the §3.1.2 VRA design.
//
// Given the per-tile viewing probabilities from HMP fusion, choose which
// tiles *outside* the predicted FoV to fetch and at what (lower) qualities,
// under a byte budget. The three factors the paper names:
//   1. bandwidth budget — an explicit byte budget relative to the FoV bytes;
//   2. HMP accuracy    — probability mass escaping the predicted FoV widens
//                        the budget (more randomness, more protection);
//   3. data-driven     — the probabilities themselves already fold in crowd
//                        statistics and context pruning (hmp/fusion.h).
#pragma once

#include <span>
#include <vector>

#include "abr/plan.h"
#include "geo/tile_grid.h"

namespace sperke::abr {

enum class OosQualityPolicy {
  // Quality falls stepwise with the probability rank (the paper's "the
  // further away, the lower the quality").
  kRankLadder,
  // Quality proportional to the tile's probability relative to the best
  // OOS candidate: q = fov_quality - 1 scaled down by prob/prob_max.
  kProbabilityProportional,
};

struct OosConfig {
  // Extra bytes for OOS tiles as a fraction of the FoV super-chunk bytes.
  double budget_fraction = 0.35;
  // Scale the budget by predicted FoV miss mass (factor 2 at total miss).
  bool accuracy_scaling = true;
  OosQualityPolicy quality_policy = OosQualityPolicy::kRankLadder;
  // kRankLadder: quality of the best OOS tile relative to the FoV quality.
  int first_quality_drop = 1;
  // kRankLadder: every `tiles_per_step` OOS tiles, drop one more level.
  int tiles_per_step = 3;
  media::QualityLevel min_quality = 0;
};

class OosSelector {
 public:
  // Reusable candidate buffers so steady-state selection allocates nothing
  // (DESIGN.md §8). Single-threaded use only.
  struct Workspace {
    std::vector<char> in_fov;
    std::vector<geo::TileId> candidates;
  };

  explicit OosSelector(OosConfig config = {});

  // Append OOS fetches to `plan` (which already holds the FoV fetches).
  // `probabilities` indexes tiles; `fov_tiles` are excluded from selection.
  // `encoding` chooses AVC chunks or SVC layer stacks for the OOS tiles.
  void select(ChunkPlan& plan, const media::VideoModel& video,
              const std::vector<geo::TileId>& fov_tiles,
              std::span<const double> probabilities,
              media::Encoding encoding) const;
  void select(ChunkPlan& plan, const media::VideoModel& video,
              const std::vector<geo::TileId>& fov_tiles,
              std::span<const double> probabilities,
              media::Encoding encoding, Workspace& workspace) const;

  [[nodiscard]] const OosConfig& config() const { return config_; }

 private:
  OosConfig config_;
};

}  // namespace sperke::abr
