// Regular (non-360°) video rate adaptation algorithms.
//
// Part one of the paper's VRA decomposition (§3.1.2): with perfect HMP,
// FoV-guided 360° VRA reduces to regular VRA over *super chunks* (the
// minimum tile set covering the known FoV, all at one quality). These are
// the pluggable "regular VRA" engines:
//   * ThroughputVra — FESTIVE-like [29]: pick the highest level sustainable
//     at a safety-discounted throughput estimate.
//   * BufferVra — BBA-like [28]: map buffer occupancy linearly onto the
//     ladder between two reservoirs. (The paper notes this interacts poorly
//     with short HMP windows — our benches can show exactly that.)
//   * MpcVra — control-theoretic lite [44]: lookahead scoring of candidate
//     levels balancing utility, switching and predicted rebuffering.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "media/quality_ladder.h"
#include "sim/time.h"

namespace sperke::abr {

// Everything a regular VRA may consider when picking the next quality.
struct VraContext {
  // Cost of the next super chunk at each ladder level, in kbps of effective
  // bitrate (bytes*8 / chunk duration). Index = quality level.
  std::vector<double> level_kbps;
  double estimated_kbps = 0.0;        // throughput estimate (0 = unknown)
  sim::Duration buffer_level{0};      // media time buffered ahead of playhead
  sim::Duration chunk_duration{sim::seconds(1.0)};
  media::QualityLevel last_quality = 0;
  // Per-level utility in [0,1] (usually ladder utilities).
  std::vector<double> level_utility;
};

class RegularVra {
 public:
  virtual ~RegularVra() = default;
  [[nodiscard]] virtual media::QualityLevel choose(const VraContext& ctx) const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

class ThroughputVra final : public RegularVra {
 public:
  explicit ThroughputVra(double safety = 0.85);
  [[nodiscard]] media::QualityLevel choose(const VraContext& ctx) const override;
  [[nodiscard]] std::string_view name() const override { return "throughput"; }

 private:
  double safety_;
};

class BufferVra final : public RegularVra {
 public:
  // Below `reservoir` play the lowest level; above `cushion` the highest;
  // linear in between.
  BufferVra(sim::Duration reservoir = sim::seconds(5.0),
            sim::Duration cushion = sim::seconds(15.0));
  [[nodiscard]] media::QualityLevel choose(const VraContext& ctx) const override;
  [[nodiscard]] std::string_view name() const override { return "buffer"; }

 private:
  sim::Duration reservoir_;
  sim::Duration cushion_;
};

// BOLA-style Lyapunov buffer controller: pick the level maximizing
//   (V * utility(q) + gamma - buffer_s) ... scaled by the level's size —
// concretely argmax_q (V * (utility(q) + gp) - buffer_s) / size(q),
// choosing 0 when every score is negative. Buffer-driven like BBA but with
// a principled utility/size tradeoff; included as the fourth regular-VRA
// baseline the 360° planner can sit on.
class BolaVra final : public RegularVra {
 public:
  // `target_buffer_s` tunes V so the controller stabilizes around it.
  explicit BolaVra(double target_buffer_s = 12.0, double gp = 5.0);
  [[nodiscard]] media::QualityLevel choose(const VraContext& ctx) const override;
  [[nodiscard]] std::string_view name() const override { return "bola"; }

 private:
  double target_buffer_s_;
  double gp_;
};

// Pins every chunk to one ladder level. Not a real adaptation policy —
// used by equal-quality comparisons (e.g. measuring FoV-guided bandwidth
// savings at the *same* displayed quality, §2) and as an ablation control.
class FixedVra final : public RegularVra {
 public:
  explicit FixedVra(media::QualityLevel level);
  [[nodiscard]] media::QualityLevel choose(const VraContext& ctx) const override;
  [[nodiscard]] std::string_view name() const override { return "fixed"; }

 private:
  media::QualityLevel level_;
};

class MpcVra final : public RegularVra {
 public:
  explicit MpcVra(int lookahead_chunks = 3, double stall_penalty = 4.0,
                  double switch_penalty = 1.0);
  [[nodiscard]] media::QualityLevel choose(const VraContext& ctx) const override;
  [[nodiscard]] std::string_view name() const override { return "mpc"; }

 private:
  int lookahead_;
  double stall_penalty_;
  double switch_penalty_;
};

[[nodiscard]] std::unique_ptr<RegularVra> make_regular_vra(std::string_view name);

}  // namespace sperke::abr
