// The tile-ABR policy factory: name + per-policy params in one value-
// semantics config, resolved to a TileAbrPolicy instance by make_policy.
//
// TileAbrConfig is what travels through core::SessionConfig,
// live::TiledLiveConfig and engine::WorldSpec: shards and sessions each
// construct their *own* policy instance from the shared config, so no
// mutable ABR state ever crosses a shard boundary and merged engine
// metrics stay byte-identical at any thread count.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "abr/consistency_vra.h"
#include "abr/knapsack_vra.h"
#include "abr/panorama_vra.h"
#include "abr/policy.h"
#include "abr/sperke_vra.h"

namespace sperke::abr {

struct TileAbrConfig {
  // One of policy_names(): "sperke" (the paper's VRA), "knapsack"
  // (Ghosh–Aggarwal–Qian), "consistency" (Yuan et al.), "fullpano"
  // (monolithic baseline). Only the matching params struct is read.
  std::string policy = "sperke";
  SperkeVraConfig sperke;
  KnapsackVraConfig knapsack;
  ConsistencyVraConfig consistency;
  FullPanoramaConfig fullpano;
};

// Valid policy names, in factory order. Views into a constexpr table —
// no construction-order or shared-mutable-state hazards (sperke_analyze).
[[nodiscard]] std::span<const std::string_view> policy_names() noexcept;

// Throws std::invalid_argument listing the valid names on an unknown one.
// engine::validate calls this so a typo'd spec fails before shards spin up.
void validate_policy_name(const std::string& name);

// Build the named policy over `video`. Throws on an unknown name or a
// policy config its implementation rejects.
[[nodiscard]] std::unique_ptr<TileAbrPolicy> make_policy(
    std::shared_ptr<const media::VideoModel> video, const TileAbrConfig& config);

}  // namespace sperke::abr
