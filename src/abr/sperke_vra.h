// The integrated 360° VRA (§3.1.2), assembled from three pluggable parts:
//   part 1 — a regular VRA choosing the super-chunk (FoV) quality,
//   part 2 — OOS chunk selection around the predicted FoV,
//   part 3 — incremental (SVC) upgrade decisions at runtime.
// Plus the §3.1.2 extension: a hybrid SVC/AVC mode that fetches AVC for
// chunks unlikely to need upgrading (no SVC byte overhead) and SVC where
// upgrades are plausible.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "abr/oos.h"
#include "abr/plan.h"
#include "abr/policy.h"
#include "abr/regular_vra.h"
#include "media/video_model.h"

namespace sperke::abr {

// How chunk bytes are laid out / which upgrade paths exist.
enum class EncodingMode {
  kAvcNoUpgrade,  // plain AVC; mispredicted tiles stay at their low quality
  kAvcRefetch,    // plain AVC; upgrading means re-downloading the full chunk
  kSvc,           // layered; upgrading fetches only the delta (§3.1.1)
  // Hybrid SVC/AVC (§3.1.2): FoV tiles are already at the target quality —
  // "not likely to upgrade" — so they take the overhead-free AVC copy;
  // OOS tiles are the upgrade candidates and take SVC. Upgrades pick the
  // cheaper of a delta (on an SVC base) or a full AVC refetch.
  kHybrid,
};

[[nodiscard]] std::string to_string(EncodingMode mode);

struct SperkeVraConfig {
  std::string regular_vra = "throughput";
  OosConfig oos;
  EncodingMode mode = EncodingMode::kSvc;

  // Upgrade policy (part 3). The probability test is a *lift over
  // uniform*: a tile qualifies when its visibility probability exceeds
  // threshold / tile_count (plain probabilities spread thin across the
  // ~10 tiles of a FoV, so an absolute cut would never fire).
  double upgrade_prob_threshold = 1.5;   // minimum lift over uniform
  // Cost-benefit gate: the expected utility gain (lift x utility delta)
  // must clear this floor, so bandwidth is not spent on marginal upgrades.
  double upgrade_min_benefit = 0.35;
  sim::Duration upgrade_window{sim::seconds(4)};  // don't upgrade earlier
  double upgrade_safety = 0.8;  // fraction of deadline slack usable
};

// The paper's own policy behind the TileAbrPolicy interface. Construct via
// abr::make_policy outside abr/ (tools/sperke_lint.py enforces it).
class SperkeVra final : public TileAbrPolicy {
 public:
  SperkeVra(std::shared_ptr<const media::VideoModel> video, SperkeVraConfig config);

  [[nodiscard]] std::string_view name() const override { return "sperke"; }

  // Plan all fetches for chunk `index` (see TileAbrPolicy for the params).
  void plan_chunk_into(media::ChunkIndex index,
                       const std::vector<geo::TileId>& predicted_fov,
                       std::span<const double> tile_probabilities,
                       double estimated_kbps, sim::Duration buffer_level,
                       media::QualityLevel last_quality,
                       PlanWorkspace& workspace, ChunkPlan& out) const override;

  // Part 3: should a buffered tile displayed at `current` quality be
  // upgraded to `target`, given its display probability and deadline slack?
  //  * upgrade-or-not — the expected benefit (probability lift x utility
  //    gain) must clear a floor and the download must fit in the
  //    safety-discounted slack;
  //  * when — not earlier than `upgrade_window` before the deadline, since
  //    HMP may still change (too early wastes bytes; too late misses it);
  //  * how — a delta on the cell's SVC base (`svc_layer_base`, -1 if the
  //    cell holds no contiguous layers) or an AVC refetch, depending on
  //    the encoding mode; hybrid picks whichever is cheaper.
  [[nodiscard]] UpgradeDecision consider_upgrade(
      const media::ChunkKey& key, media::QualityLevel current,
      media::QualityLevel svc_layer_base, media::QualityLevel target,
      double visible_probability, sim::Duration time_to_deadline,
      double estimated_kbps) const override;

  // Base-tier emergencies reuse the mode's non-upgradable encoding: plain
  // AVC in the AVC modes, the layer-0 SVC base otherwise.
  [[nodiscard]] media::Encoding base_tier_encoding() const override {
    return (config_.mode == EncodingMode::kAvcNoUpgrade ||
            config_.mode == EncodingMode::kAvcRefetch)
               ? media::Encoding::kAvc
               : media::Encoding::kSvc;
  }
  [[nodiscard]] sim::Duration upgrade_window() const override {
    return config_.upgrade_window;
  }

  [[nodiscard]] const SperkeVraConfig& config() const { return config_; }
  [[nodiscard]] const RegularVra& regular() const { return *regular_; }

 private:
  // Encoding used for FoV fetches / for OOS fetches under the mode.
  [[nodiscard]] media::Encoding fov_encoding() const;
  [[nodiscard]] media::Encoding oos_encoding() const;

  std::shared_ptr<const media::VideoModel> video_;
  SperkeVraConfig config_;
  std::unique_ptr<RegularVra> regular_;
  OosSelector oos_;
};

}  // namespace sperke::abr
