#include "abr/panorama_vra.h"

#include <cstdint>
#include <stdexcept>
#include <utility>

namespace sperke::abr {

FullPanoramaVra::FullPanoramaVra(std::shared_ptr<const media::VideoModel> video,
                                 FullPanoramaConfig config)
    : video_(std::move(video)),
      config_(std::move(config)),
      regular_(make_regular_vra(config_.regular_vra)) {
  if (!video_) throw std::invalid_argument("FullPanoramaVra: null video");
}

void FullPanoramaVra::plan_chunk_into(media::ChunkIndex index,
                                      const std::vector<geo::TileId>& predicted_fov,
                                      std::span<const double> tile_probabilities,
                                      double estimated_kbps,
                                      sim::Duration buffer_level,
                                      media::QualityLevel last_quality,
                                      PlanWorkspace& workspace,
                                      ChunkPlan& out) const {
  if (predicted_fov.empty()) {
    throw std::invalid_argument("plan_chunk: empty predicted FoV");
  }
  const auto& ladder = video_->ladder();
  const double chunk_s = sim::to_seconds(video_->chunk_duration());
  const int tiles = video_->tile_count();

  // The "super chunk" is the entire panorama: cost every level over all
  // tiles and let the regular VRA pick the uniform quality.
  VraContext& ctx = workspace.ctx;
  ctx.level_kbps.clear();
  ctx.level_utility.clear();
  ctx.estimated_kbps = estimated_kbps;
  ctx.buffer_level = buffer_level;
  ctx.chunk_duration = video_->chunk_duration();
  ctx.last_quality = last_quality;
  for (media::QualityLevel q = 0; q < ladder.levels(); ++q) {
    std::int64_t bytes = 0;
    for (geo::TileId t = 0; t < tiles; ++t) {
      bytes += video_->avc_size_bytes(q, {t, index});
    }
    ctx.level_kbps.push_back(static_cast<double>(bytes) * 8.0 / chunk_s / 1000.0);
    ctx.level_utility.push_back(ladder.utility(q));
  }
  const media::QualityLevel q = regular_->choose(ctx);

  auto& in_fov = workspace.tile_flag;
  in_fov.assign(static_cast<std::size_t>(tiles), 0);
  for (geo::TileId t : predicted_fov) in_fov[static_cast<std::size_t>(t)] = 1;

  out.index = index;
  out.fov_quality = q;
  out.fetches.clear();
  for (geo::TileId t = 0; t < tiles; ++t) {
    // Everything is fetched; the predicted FoV still rides the higher
    // transport priority class (Table 1's spatial axis).
    const double prob = tile_probabilities.empty()
                            ? 1.0
                            : tile_probabilities[static_cast<std::size_t>(t)];
    out.fetches.push_back(
        {{{t, index}, media::Encoding::kAvc, q},
         in_fov[static_cast<std::size_t>(t)] != 0 ? SpatialClass::kFov
                                                  : SpatialClass::kOos,
         prob});
  }
}

}  // namespace sperke::abr
