// Fetch plans: the output of 360° rate adaptation and the input to the
// fetch scheduler / multipath layer.
//
// SpatialClass is the spatial half of the paper's Table 1 priority matrix
// (FoV chunks > OOS chunks); the temporal half (urgent vs regular) is
// decided at dispatch time from the playback deadline (mp/priority.h).
#pragma once

#include <cstdint>
#include <vector>

#include "media/chunk.h"
#include "media/video_model.h"

namespace sperke::abr {

enum class SpatialClass : std::uint8_t {
  kFov,  // inside the predicted field of view
  kOos,  // out-of-sight margin tile (HMP error tolerance)
};

struct PlannedFetch {
  media::ChunkAddress address;
  SpatialClass spatial = SpatialClass::kFov;
  // Predicted probability this tile will actually be displayed.
  double visibility_probability = 1.0;
};

// All fetches planned for one temporal chunk index.
struct ChunkPlan {
  media::ChunkIndex index = 0;
  media::QualityLevel fov_quality = 0;
  std::vector<PlannedFetch> fetches;

  [[nodiscard]] std::int64_t total_bytes(const media::VideoModel& video) const {
    std::int64_t total = 0;
    for (const auto& f : fetches) total += video.size_bytes(f.address);
    return total;
  }
};

}  // namespace sperke::abr
