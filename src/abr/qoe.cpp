#include "abr/qoe.h"

#include <algorithm>
#include <stdexcept>

namespace sperke::abr {

QoeTracker::QoeTracker(QoeWeights weights) : weights_(weights) {}

void QoeTracker::record_played_chunk(double viewport_utility, double blank_fraction) {
  if (viewport_utility < 0.0 || viewport_utility > 1.0) {
    throw std::invalid_argument("QoeTracker: utility out of [0,1]");
  }
  if (blank_fraction < 0.0 || blank_fraction > 1.0) {
    throw std::invalid_argument("QoeTracker: blank fraction out of [0,1]");
  }
  ++acc_.chunks_played;
  utility_sum_ += viewport_utility;
  blank_sum_ += blank_fraction;
  if (has_prev_utility_) {
    acc_.switch_magnitude += std::abs(viewport_utility - prev_utility_);
  }
  prev_utility_ = viewport_utility;
  has_prev_utility_ = true;
}

void QoeTracker::record_stall(sim::Duration length) {
  if (length < sim::Duration{0}) throw std::invalid_argument("QoeTracker: negative stall");
  acc_.stall_seconds += sim::to_seconds(length);
  ++acc_.stall_events;
}

void QoeTracker::record_skip(int chunks) {
  if (chunks < 0) throw std::invalid_argument("QoeTracker: negative skip");
  acc_.skipped_chunks += chunks;
}

void QoeTracker::record_downloaded(std::int64_t bytes) {
  acc_.bytes_downloaded += bytes;
}

void QoeTracker::record_wasted(std::int64_t bytes) { acc_.bytes_wasted += bytes; }

QoeSummary QoeTracker::summary() const {
  QoeSummary out = acc_;
  if (out.chunks_played > 0) {
    out.mean_viewport_utility = utility_sum_ / out.chunks_played;
    out.blank_fraction_mean = blank_sum_ / out.chunks_played;
  }
  out.score = weights_.utility_weight * utility_sum_ -
              weights_.stall_penalty_per_s * out.stall_seconds -
              weights_.skip_penalty * out.skipped_chunks -
              weights_.switch_penalty * out.switch_magnitude -
              weights_.blank_penalty * blank_sum_;
  return out;
}

}  // namespace sperke::abr
