#include "abr/sperke_vra.h"

#include <algorithm>
#include <span>
#include <stdexcept>

namespace sperke::abr {

std::string to_string(EncodingMode mode) {
  switch (mode) {
    case EncodingMode::kAvcNoUpgrade: return "avc-no-upgrade";
    case EncodingMode::kAvcRefetch: return "avc-refetch";
    case EncodingMode::kSvc: return "svc";
    case EncodingMode::kHybrid: return "hybrid";
  }
  return "?";
}

SperkeVra::SperkeVra(std::shared_ptr<const media::VideoModel> video,
                     SperkeVraConfig config)
    : video_(std::move(video)),
      config_(std::move(config)),
      regular_(make_regular_vra(config_.regular_vra)),
      oos_(config_.oos) {
  if (!video_) throw std::invalid_argument("SperkeVra: null video");
}

media::Encoding SperkeVra::fov_encoding() const {
  // Only pure-SVC mode pays the layering tax on FoV tiles; hybrid treats
  // them as "not likely to upgrade" and fetches the plain AVC copy.
  return config_.mode == EncodingMode::kSvc ? media::Encoding::kSvc
                                            : media::Encoding::kAvc;
}

media::Encoding SperkeVra::oos_encoding() const {
  switch (config_.mode) {
    case EncodingMode::kAvcNoUpgrade:
    case EncodingMode::kAvcRefetch:
      return media::Encoding::kAvc;
    case EncodingMode::kSvc:
    case EncodingMode::kHybrid:
      return media::Encoding::kSvc;  // upgrade candidates stay layered
  }
  return media::Encoding::kAvc;
}

void SperkeVra::plan_chunk_into(media::ChunkIndex index,
                                const std::vector<geo::TileId>& predicted_fov,
                                std::span<const double> tile_probabilities,
                                double estimated_kbps, sim::Duration buffer_level,
                                media::QualityLevel last_quality,
                                PlanWorkspace& workspace, ChunkPlan& out) const {
  if (predicted_fov.empty()) {
    throw std::invalid_argument("plan_chunk: empty predicted FoV");
  }
  const auto& ladder = video_->ladder();
  const double chunk_s = sim::to_seconds(video_->chunk_duration());

  // Part 1: super-chunk cost per quality level -> regular VRA choice.
  VraContext& ctx = workspace.ctx;
  ctx.level_kbps.clear();
  ctx.level_utility.clear();
  ctx.estimated_kbps = estimated_kbps;
  ctx.buffer_level = buffer_level;
  ctx.chunk_duration = video_->chunk_duration();
  ctx.last_quality = last_quality;
  for (media::QualityLevel q = 0; q < ladder.levels(); ++q) {
    std::int64_t bytes = 0;
    for (geo::TileId tile : predicted_fov) {
      const media::ChunkKey key{tile, index};
      bytes += (fov_encoding() == media::Encoding::kSvc)
                   ? video_->svc_cumulative_size_bytes(q, key)
                   : video_->avc_size_bytes(q, key);
    }
    ctx.level_kbps.push_back(static_cast<double>(bytes) * 8.0 / chunk_s / 1000.0);
    ctx.level_utility.push_back(ladder.utility(q));
  }
  const media::QualityLevel q_fov = regular_->choose(ctx);

  out.index = index;
  out.fov_quality = q_fov;
  out.fetches.clear();

  for (geo::TileId tile : predicted_fov) {
    const double prob = tile_probabilities.empty()
                            ? 1.0
                            : tile_probabilities[static_cast<std::size_t>(tile)];
    const media::ChunkKey key{tile, index};
    if (fov_encoding() == media::Encoding::kAvc) {
      out.fetches.push_back(
          {{key, media::Encoding::kAvc, q_fov}, SpatialClass::kFov, prob});
    } else {
      for (media::LayerIndex l = 0; l <= q_fov; ++l) {
        out.fetches.push_back(
            {{key, media::Encoding::kSvc, l}, SpatialClass::kFov, prob});
      }
    }
  }

  // Part 2: OOS margin.
  if (!tile_probabilities.empty()) {
    oos_.select(out, *video_, predicted_fov, tile_probabilities, oos_encoding(),
                workspace.oos);
  }
}

TileAbrPolicy::UpgradeDecision SperkeVra::consider_upgrade(
    const media::ChunkKey& key, media::QualityLevel current,
    media::QualityLevel svc_layer_base, media::QualityLevel target,
    double visible_probability, sim::Duration time_to_deadline,
    double estimated_kbps) const {
  UpgradeDecision decision;
  if (target <= current) return decision;
  if (config_.mode == EncodingMode::kAvcNoUpgrade) return decision;
  if (time_to_deadline <= sim::Duration{0}) return decision;
  // Too early: HMP may still change; wait until inside the upgrade window.
  if (time_to_deadline > config_.upgrade_window) return decision;
  const double lift = visible_probability * video_->tile_count();
  if (lift < config_.upgrade_prob_threshold) return decision;
  const double gain = video_->ladder().utility(target) -
                      video_->ladder().utility(std::max(current, 0));
  if (lift * gain < config_.upgrade_min_benefit) return decision;

  // Candidate paths: a delta stack on the buffered SVC base, and/or a full
  // AVC refetch of the target quality.
  std::vector<media::ChunkAddress> delta_fetches;
  std::int64_t delta_bytes = 0;
  for (media::LayerIndex l = svc_layer_base + 1; l <= target; ++l) {
    delta_fetches.push_back({key, media::Encoding::kSvc, l});
    delta_bytes += video_->svc_layer_size_bytes(l, key);
  }
  const std::int64_t refetch_bytes = video_->avc_size_bytes(target, key);

  std::vector<media::ChunkAddress> fetches;
  std::int64_t bytes = 0;
  switch (config_.mode) {
    case EncodingMode::kAvcRefetch:
      fetches = {{key, media::Encoding::kAvc, target}};
      bytes = refetch_bytes;
      break;
    case EncodingMode::kSvc:
      fetches = std::move(delta_fetches);
      bytes = delta_bytes;
      break;
    case EncodingMode::kHybrid:
      // Whichever path is cheaper from the buffered state.
      if (delta_bytes <= refetch_bytes) {
        fetches = std::move(delta_fetches);
        bytes = delta_bytes;
      } else {
        fetches = {{key, media::Encoding::kAvc, target}};
        bytes = refetch_bytes;
      }
      break;
    case EncodingMode::kAvcNoUpgrade:
      return decision;  // unreachable; handled above
  }
  if (fetches.empty()) return decision;

  // Feasibility: the bytes must arrive inside the safety-discounted slack.
  if (estimated_kbps <= 0.0) return decision;
  const double download_s = static_cast<double>(bytes) * 8.0 / (estimated_kbps * 1000.0);
  if (download_s > config_.upgrade_safety * sim::to_seconds(time_to_deadline)) {
    return decision;
  }
  decision.upgrade = true;
  decision.fetches = std::move(fetches);
  decision.bytes = bytes;
  return decision;
}

}  // namespace sperke::abr
