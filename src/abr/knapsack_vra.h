// Knapsack / LP-relaxation tile-rate allocator, after Ghosh, Aggarwal &
// Qian, "A rate adaptation algorithm for tile-based 360-degree video
// streaming" (arXiv:1704.08215).
//
// Their formulation: maximize the expected viewport quality of one chunk,
//   max  Σ_t p_t · u(q_t)   s.t.   Σ_t bytes(t, q_t) ≤ B,
// where p_t is tile t's viewing probability and B the chunk's byte budget
// derived from the throughput estimate. Each quality *step* of each tile
// is a knapsack item valued at the marginal expected utility p_t·Δu and
// weighing the marginal bytes Δbytes; for concave per-tile utility the
// greedy by value density p·Δu/Δbytes matches the LP relaxation's optimum
// up to the single fractional item, which an integral allocation simply
// drops. The predicted FoV is fetched at the base tier unconditionally
// (viewport coverage is a hard constraint in the paper), charged against
// the budget before the greedy runs.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "abr/policy.h"

namespace sperke::abr {

struct KnapsackVraConfig {
  // Fraction of the estimated throughput the planner may spend per chunk.
  double safety = 0.9;
  // QualityLadder::utility(0) is 0, so a base-tier fetch of a non-FoV tile
  // would never win a utility-only greedy — yet displaying *something*
  // beats a blank tile on misprediction. Utility credit for getting a tile
  // on screen at all (added to the entry step's Δu only).
  double entry_utility = 0.25;
  // Tiles below this viewing probability never enter the allocation.
  double min_probability = 0.005;
};

class KnapsackVra final : public TileAbrPolicy {
 public:
  KnapsackVra(std::shared_ptr<const media::VideoModel> video,
              KnapsackVraConfig config);

  [[nodiscard]] std::string_view name() const override { return "knapsack"; }
  void plan_chunk_into(media::ChunkIndex index,
                       const std::vector<geo::TileId>& predicted_fov,
                       std::span<const double> tile_probabilities,
                       double estimated_kbps, sim::Duration buffer_level,
                       media::QualityLevel last_quality,
                       PlanWorkspace& workspace, ChunkPlan& out) const override;
  // All-AVC: the allocation is final per chunk, no upgrade path to keep
  // layered (and no SVC byte overhead to pay).
  [[nodiscard]] media::Encoding base_tier_encoding() const override {
    return media::Encoding::kAvc;
  }

  [[nodiscard]] const KnapsackVraConfig& config() const { return config_; }

 private:
  std::shared_ptr<const media::VideoModel> video_;
  KnapsackVraConfig config_;
};

}  // namespace sperke::abr
