// Sphere-to-plane projections.
//
// A Projection maps view directions to normalized panorama coordinates
// (u, v) in [0,1)^2 and back. Tiles (geo/tile_grid.h) are rectangles in this
// normalized plane, so the same tiling machinery works for both the
// equirectangular layout (YouTube) and the cube-map atlas (Facebook), the
// two schemes the paper names in §2.
#pragma once

#include <memory>
#include <string_view>

#include "geo/vec.h"

namespace sperke::geo {

struct Uv {
  double u = 0.0;  // [0,1): horizontal position in the panorama plane
  double v = 0.0;  // [0,1): vertical position, 0 = top
};

class Projection {
 public:
  virtual ~Projection() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  // Project a (non-zero) direction onto the panorama plane.
  [[nodiscard]] virtual Uv uv_from_direction(const Vec3& dir) const = 0;

  // Inverse projection; uv components are wrapped/clamped into [0,1).
  [[nodiscard]] virtual Vec3 direction_from_uv(Uv uv) const = 0;
};

// Equirectangular: u is longitude, v is latitude (linear in angle).
// Heavily oversamples the poles, which is why per-tile solid-angle weights
// (geo/tile_geometry.h) matter for bandwidth accounting.
class EquirectangularProjection final : public Projection {
 public:
  [[nodiscard]] std::string_view name() const override { return "equirectangular"; }
  [[nodiscard]] Uv uv_from_direction(const Vec3& dir) const override;
  [[nodiscard]] Vec3 direction_from_uv(Uv uv) const override;
};

// Cube map in a 3x2 atlas (faces: +x -x +y | -y +z -z), as used by
// Facebook's 360 pipeline. More uniform pixel density than equirectangular.
class CubeMapProjection final : public Projection {
 public:
  [[nodiscard]] std::string_view name() const override { return "cubemap"; }
  [[nodiscard]] Uv uv_from_direction(const Vec3& dir) const override;
  [[nodiscard]] Vec3 direction_from_uv(Uv uv) const override;
};

// Offset cube map (Facebook's next-generation 360 encoding, the paper's
// [6]): directions are warped toward a preferred axis before cube mapping,
// spending more pixels (plane area) near the "front" of the scene. With a
// zero offset this degenerates to the plain cube map.
//
// Warp: forward  w = normalize(d - offset); inverse solves |offset + s*w| = 1
// for s > 0, so the mapping round-trips exactly.
class OffsetCubeMapProjection final : public Projection {
 public:
  // |offset| must be < 1; the default expands +x ("front") in the atlas.
  explicit OffsetCubeMapProjection(Vec3 offset = Vec3{0.35, 0.0, 0.0});

  [[nodiscard]] std::string_view name() const override { return "offset-cubemap"; }
  [[nodiscard]] Uv uv_from_direction(const Vec3& dir) const override;
  [[nodiscard]] Vec3 direction_from_uv(Uv uv) const override;

  [[nodiscard]] const Vec3& offset() const { return offset_; }

 private:
  Vec3 offset_;
  CubeMapProjection cube_;
};

[[nodiscard]] std::unique_ptr<Projection> make_projection(std::string_view name);

}  // namespace sperke::geo
