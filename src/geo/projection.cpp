#include "geo/projection.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geo/orientation.h"
#include "util/math.h"

namespace sperke::geo {
namespace {

// Wrap into [0,1).
double wrap01(double x) {
  double r = x - std::floor(x);
  return r >= 1.0 ? 0.0 : r;
}

}  // namespace

Uv EquirectangularProjection::uv_from_direction(const Vec3& dir) const {
  const LonLat ll = lonlat_from_direction(dir);
  return Uv{wrap01((ll.lon_deg + 180.0) / 360.0),
            std::clamp((90.0 - ll.lat_deg) / 180.0, 0.0, 1.0 - 1e-12)};
}

Vec3 EquirectangularProjection::direction_from_uv(Uv uv) const {
  const double lon = wrap01(uv.u) * 360.0 - 180.0;
  const double lat = 90.0 - std::clamp(uv.v, 0.0, 1.0) * 180.0;
  return direction_from_lonlat(lon, lat);
}

Uv CubeMapProjection::uv_from_direction(const Vec3& d) const {
  const double ax = std::abs(d.x), ay = std::abs(d.y), az = std::abs(d.z);
  int face;      // 0:+x 1:-x 2:+y 3:-y 4:+z 5:-z
  double s, t;   // face-local coordinates in [-1,1]
  if (ax >= ay && ax >= az) {
    face = d.x >= 0 ? 0 : 1;
    s = (d.x >= 0 ? d.y : -d.y) / ax;
    t = d.z / ax;
  } else if (ay >= ax && ay >= az) {
    face = d.y >= 0 ? 2 : 3;
    s = (d.y >= 0 ? -d.x : d.x) / ay;
    t = d.z / ay;
  } else {
    face = d.z >= 0 ? 4 : 5;
    s = d.y / az;
    t = (d.z >= 0 ? -d.x : d.x) / az;
  }
  const double fu = std::clamp((s + 1.0) / 2.0, 0.0, 1.0 - 1e-12);
  const double fv = std::clamp((1.0 - t) / 2.0, 0.0, 1.0 - 1e-12);
  const int col = face % 3;
  const int row = face / 3;
  return Uv{(col + fu) / 3.0, (row + fv) / 2.0};
}

Vec3 CubeMapProjection::direction_from_uv(Uv uv) const {
  const double u = std::clamp(uv.u, 0.0, 1.0 - 1e-12);
  const double v = std::clamp(uv.v, 0.0, 1.0 - 1e-12);
  const int col = std::min(2, static_cast<int>(u * 3.0));
  const int row = std::min(1, static_cast<int>(v * 2.0));
  const int face = row * 3 + col;
  const double fu = u * 3.0 - col;
  const double fv = v * 2.0 - row;
  const double s = fu * 2.0 - 1.0;
  const double t = 1.0 - fv * 2.0;
  Vec3 d;
  switch (face) {
    case 0: d = Vec3{1.0, s, t}; break;
    case 1: d = Vec3{-1.0, -s, t}; break;
    case 2: d = Vec3{-s, 1.0, t}; break;
    case 3: d = Vec3{s, -1.0, t}; break;
    case 4: d = Vec3{-t, s, 1.0}; break;
    case 5: d = Vec3{t, s, -1.0}; break;
    default: d = Vec3{1.0, 0.0, 0.0}; break;
  }
  return d.normalized();
}

OffsetCubeMapProjection::OffsetCubeMapProjection(Vec3 offset) : offset_(offset) {
  if (offset_.norm() >= 1.0) {
    throw std::invalid_argument("OffsetCubeMap: |offset| must be < 1");
  }
}

Uv OffsetCubeMapProjection::uv_from_direction(const Vec3& dir) const {
  const Vec3 d = dir.normalized();
  return cube_.uv_from_direction((d - offset_).normalized());
}

Vec3 OffsetCubeMapProjection::direction_from_uv(Uv uv) const {
  const Vec3 w = cube_.direction_from_uv(uv);  // unit warp direction
  // Find s > 0 with |offset + s*w| = 1:  s^2 + 2 s (o.w) + |o|^2 - 1 = 0.
  const double ow = offset_.dot(w);
  const double c = offset_.dot(offset_) - 1.0;
  const double s = -ow + std::sqrt(ow * ow - c);
  return (offset_ + w * s).normalized();
}

std::unique_ptr<Projection> make_projection(std::string_view name) {
  if (name == "equirectangular") return std::make_unique<EquirectangularProjection>();
  if (name == "cubemap") return std::make_unique<CubeMapProjection>();
  if (name == "offset-cubemap") return std::make_unique<OffsetCubeMapProjection>();
  throw std::invalid_argument("unknown projection: " + std::string(name));
}

}  // namespace sperke::geo
