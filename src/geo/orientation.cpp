#include "geo/orientation.h"

#include <algorithm>
#include <cmath>

namespace sperke::geo {

Orientation Orientation::normalized() const {
  return Orientation{
      .yaw_deg = wrap_deg180(yaw_deg),
      .pitch_deg = std::clamp(pitch_deg, -90.0, 90.0),
      .roll_deg = wrap_deg180(roll_deg),
  };
}

Vec3 Orientation::direction() const {
  return direction_from_lonlat(yaw_deg, pitch_deg);
}

Vec3 direction_from_lonlat(double lon_deg, double lat_deg) {
  const double lon = deg_to_rad(lon_deg);
  const double lat = deg_to_rad(std::clamp(lat_deg, -90.0, 90.0));
  return Vec3{std::cos(lat) * std::cos(lon), std::cos(lat) * std::sin(lon),
              std::sin(lat)};
}

LonLat lonlat_from_direction(const Vec3& d) {
  const Vec3 u = d.normalized();
  const double lat = std::asin(std::clamp(u.z, -1.0, 1.0));
  const double lon = std::atan2(u.y, u.x);
  return LonLat{wrap_deg180(rad_to_deg(lon)), rad_to_deg(lat)};
}

double angular_distance_deg(const Orientation& a, const Orientation& b) {
  return rad_to_deg(angle_between(a.direction(), b.direction()));
}

ViewBasis view_basis(const Orientation& o) {
  const Vec3 forward = o.direction();
  // World up; degenerate at the poles, fall back to world x-axis.
  Vec3 world_up{0.0, 0.0, 1.0};
  if (std::abs(forward.dot(world_up)) > 0.999) world_up = Vec3{1.0, 0.0, 0.0};
  const Vec3 right = forward.cross(world_up).normalized();
  const Vec3 up = right.cross(forward).normalized();
  // Apply roll: rotate right/up about forward by roll degrees.
  const double r = deg_to_rad(o.roll_deg);
  const double c = std::cos(r), s = std::sin(r);
  const Vec3 right_r = right * c + up * s;
  const Vec3 up_r = up * c - right * s;
  return ViewBasis{forward, right_r, up_r};
}

}  // namespace sperke::geo
