// FoV -> tile-set computation: the heart of FoV-guided streaming.
//
// TileGeometry binds a Projection and a TileGrid and answers the questions
// the streaming stack keeps asking:
//   * which tiles does this viewport cover? (visible set)
//   * how far is a tile from the view center? (OOS ranking, §3.1.2)
//   * what fraction of the sphere does a tile cover? (bandwidth weighting)
#pragma once

#include <memory>
#include <vector>

#include "geo/orientation.h"
#include "geo/projection.h"
#include "geo/tile_grid.h"

namespace sperke::geo {

// Field of view of the headset/screen; fixed device parameters per §2.
struct Viewport {
  double width_deg = 100.0;   // horizontal extent
  double height_deg = 90.0;   // vertical extent
};

class TileGeometry {
 public:
  // Takes shared ownership of the projection so sessions can share one.
  TileGeometry(std::shared_ptr<const Projection> projection, TileGrid grid,
               int samples_per_axis = 24);

  [[nodiscard]] const Projection& projection() const { return *projection_; }
  [[nodiscard]] const TileGrid& grid() const { return grid_; }

  // Tiles intersected by the perspective viewport at the given orientation.
  // Computed by sampling rays across the frustum; sorted, unique.
  [[nodiscard]] std::vector<TileId> visible_tiles(const Orientation& view,
                                                  const Viewport& viewport) const;

  // Great-circle distance (degrees) from the view direction to each tile's
  // center direction; index = TileId. Used to rank OOS tiles.
  [[nodiscard]] std::vector<double> tile_distances_deg(const Orientation& view) const;

  // All tiles ordered by increasing angular distance from the view center.
  [[nodiscard]] std::vector<TileId> tiles_by_distance(const Orientation& view) const;

  // BFS ring index per tile, 0 = inside `visible`, 1 = adjacent, etc.
  // Horizontal adjacency wraps. Index = TileId.
  [[nodiscard]] std::vector<int> oos_rings(const std::vector<TileId>& visible) const;

  // Fraction of the sphere's solid angle covered by each tile (sums to ~1).
  // Precomputed by uniform-on-sphere sampling at construction.
  [[nodiscard]] const std::vector<double>& solid_angle_fractions() const {
    return solid_angle_;
  }

  // Unit direction of a tile's center.
  [[nodiscard]] Vec3 tile_center_direction(TileId id) const;

 private:
  std::shared_ptr<const Projection> projection_;
  TileGrid grid_;
  int samples_per_axis_;
  std::vector<double> solid_angle_;
  std::vector<Vec3> tile_centers_;
};

}  // namespace sperke::geo
