// FoV -> tile-set computation: the heart of FoV-guided streaming.
//
// TileGeometry binds a Projection and a TileGrid and answers the questions
// the streaming stack keeps asking:
//   * which tiles does this viewport cover? (visible set)
//   * how far is a tile from the view center? (OOS ranking, §3.1.2)
//   * what fraction of the sphere does a tile cover? (bandwidth weighting)
//
// Hot-path notes (DESIGN.md §8): every query has an out-parameter overload
// taking a reusable Scratch so steady-state callers allocate nothing; the
// allocating signatures are thin wrappers. For the equirectangular
// projection the per-sample direction->tile classification runs on
// precomputed sin(latitude) row thresholds and column-boundary half-plane
// tests instead of the generic asin/atan2 chain.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "geo/orientation.h"
#include "geo/projection.h"
#include "geo/tile_grid.h"

namespace sperke::geo {

// Field of view of the headset/screen; fixed device parameters per §2.
struct Viewport {
  double width_deg = 100.0;   // horizontal extent
  double height_deg = 90.0;   // vertical extent
};

class TileGeometry {
 public:
  // Reusable buffers for the out-parameter overloads. One Scratch may serve
  // any number of TileGeometry instances; the simulator is single-threaded,
  // so nothing here is synchronized.
  struct Scratch {
    std::vector<char> seen;                        // visible_tiles marks
    std::vector<Vec3> up_terms;                    // per-row frustum offsets
    std::vector<std::pair<double, TileId>> keys;   // tiles_by_distance keys
    std::vector<TileId> queue;                     // oos_rings BFS FIFO
    // Small exact memo for visible_tiles: a repeat query with a
    // bit-identical (geometry, orientation, viewport) key returns the
    // cached set without re-sampling the frustum. Coverage re-checks
    // dominate the streaming hot loop — every fetch completion during
    // startup or a stall re-asks for the same frozen orientation, and a
    // stalled session's upgrade scans cycle through the same handful of
    // frozen per-chunk predictions — so exact-match caching removes most
    // classification work while staying byte-identical to recomputing.
    // kMemoEntries covers the prefetch window plus the playhead query;
    // entries are replaced round-robin. Geometry identity uses the
    // instance id, not the address: one Scratch may outlive a geometry,
    // and a pointer key would go stale when the allocator reuses the
    // address for a different grid (ABA).
    static constexpr int kMemoEntries = 6;
    struct MemoEntry {
      std::uint64_t geometry = 0;  // instance_id(); invalid while 0
      Orientation view{};
      Viewport viewport{};
      std::vector<TileId> tiles;
    };
    MemoEntry memo[kMemoEntries];
    int memo_next = 0;  // round-robin replacement cursor
  };

  // Quantization step of the visible_tiles_lut() grid (yaw and pitch).
  static constexpr double kLutStepDeg = 3.0;

  // Takes shared ownership of the projection so sessions can share one.
  TileGeometry(std::shared_ptr<const Projection> projection, TileGrid grid,
               int samples_per_axis = 24);

  [[nodiscard]] const Projection& projection() const { return *projection_; }
  [[nodiscard]] const TileGrid& grid() const { return grid_; }

  // Process-unique, never-reused identity of this instance (Scratch memo
  // key).
  [[nodiscard]] std::uint64_t instance_id() const { return instance_id_; }

  // Tiles intersected by the perspective viewport at the given orientation.
  // Computed by sampling rays across the frustum; sorted, unique.
  [[nodiscard]] std::vector<TileId> visible_tiles(const Orientation& view,
                                                  const Viewport& viewport) const;
  void visible_tiles(const Orientation& view, const Viewport& viewport,
                     std::vector<TileId>& out, Scratch& scratch) const;

  // LUT-accelerated visible set: snaps (yaw, pitch) to a kLutStepDeg grid
  // (roll must be 0) and caches the exact visible set per grid point,
  // computed on demand. Exact for orientations already on the grid (see
  // lut_snap); otherwise the result is the exact set of the snapped
  // orientation, i.e. off by at most the tiles a kLutStepDeg/2 head
  // rotation can add or remove. The cache binds to the first viewport
  // queried; other viewports and non-zero roll fall back to the exact path.
  [[nodiscard]] std::vector<TileId> visible_tiles_lut(const Orientation& view,
                                                      const Viewport& viewport) const;
  void visible_tiles_lut(const Orientation& view, const Viewport& viewport,
                         std::vector<TileId>& out, Scratch& scratch) const;

  // The grid point visible_tiles_lut() resolves `view` to (roll forced 0).
  [[nodiscard]] static Orientation lut_snap(const Orientation& view);

  // Great-circle distance (degrees) from the view direction to each tile's
  // center direction; index = TileId. Used to rank OOS tiles.
  [[nodiscard]] std::vector<double> tile_distances_deg(const Orientation& view) const;
  void tile_distances_deg(const Orientation& view, std::vector<double>& out) const;

  // All tiles ordered by increasing angular distance from the view center;
  // ties broken by ascending TileId.
  [[nodiscard]] std::vector<TileId> tiles_by_distance(const Orientation& view) const;
  void tiles_by_distance(const Orientation& view, std::vector<TileId>& out,
                         Scratch& scratch) const;

  // BFS ring index per tile, 0 = inside `visible`, 1 = adjacent, etc.
  // Horizontal adjacency wraps. Index = TileId.
  [[nodiscard]] std::vector<int> oos_rings(const std::vector<TileId>& visible) const;
  void oos_rings(const std::vector<TileId>& visible, std::vector<int>& out,
                 Scratch& scratch) const;

  // Fraction of the sphere's solid angle covered by each tile (sums to ~1).
  // Precomputed by uniform-on-sphere sampling at construction.
  [[nodiscard]] const std::vector<double>& solid_angle_fractions() const {
    return solid_angle_;
  }

  // Unit direction of a tile's center.
  [[nodiscard]] Vec3 tile_center_direction(TileId id) const;

 private:
  [[nodiscard]] TileId classify_equirect(const Vec3& dir) const;
  [[nodiscard]] TileId classify(const Vec3& dir) const;

  std::shared_ptr<const Projection> projection_;
  TileGrid grid_;
  std::uint64_t instance_id_;
  int samples_per_axis_;
  std::vector<double> solid_angle_;
  std::vector<Vec3> tile_centers_;

  // Equirect fast-classifier tables (empty for other projections). Tile
  // edges are constant-latitude / constant-longitude lines, so a sample
  // classifies with sign tests only: the row counts z against the
  // precomputed sin(latitude) band boundaries, the column counts
  // cross-product tests against the precomputed boundary meridians of the
  // sample's longitude half (each test spans < 180°, so it is exact there).
  bool equirect_fast_ = false;
  std::vector<double> row_sin_;                          // descending
  std::vector<std::pair<double, double>> col_neg_;       // (cos, sin), lon < 0
  std::vector<std::pair<double, double>> col_pos_;       // (cos, sin), lon > 0
  int col_base_ = 0;                                     // #boundaries lon <= 0

  // Lazily-filled LUT cells (yaw-major per pitch row); bound to the first
  // viewport that queries the LUT. A filled cell is never empty — the
  // frustum always hits at least one tile — so empty marks "not yet built".
  // thread-safety: this cache mutates under const visible_tiles_lut()
  // calls, so a TileGeometry (and the VideoModel that owns it) is NOT
  // const-shareable across threads. The sharded engine therefore builds one
  // VideoModel per shard (deterministic in the config) instead of sharing
  // one instance; see engine/world.h.
  struct Lut {
    bool bound = false;
    Viewport viewport{};
    int yaw_cells = 0;
    int pitch_cells = 0;
    std::vector<std::vector<TileId>> cells;
  };
  mutable Lut lut_;
};

}  // namespace sperke::geo
