// Viewer head orientation (Figure 1 of the paper): yaw, pitch, roll in
// degrees, plus conversions to/from view direction vectors.
//
// Conventions:
//   yaw   — longitude of the view direction, [-180, 180), 0 = "front",
//           positive to the viewer's left (east on the equirect panorama).
//   pitch — latitude, [-90, 90], positive up.
//   roll  — rotation about the view axis; affects the viewport's in-plane
//           orientation but not the view direction itself.
#pragma once

#include "geo/vec.h"
#include "util/math.h"

namespace sperke::geo {

struct Orientation {
  double yaw_deg = 0.0;
  double pitch_deg = 0.0;
  double roll_deg = 0.0;

  // Canonical form: yaw wrapped to [-180,180), pitch clamped to [-90,90].
  [[nodiscard]] Orientation normalized() const;

  // Unit view direction on the sphere (ignores roll).
  [[nodiscard]] Vec3 direction() const;
};

// Direction vector for a (lon, lat) pair in degrees.
[[nodiscard]] Vec3 direction_from_lonlat(double lon_deg, double lat_deg);

// Inverse of direction(): (lon, lat) in degrees of a direction vector.
struct LonLat {
  double lon_deg = 0.0;
  double lat_deg = 0.0;
};
[[nodiscard]] LonLat lonlat_from_direction(const Vec3& d);

// Great-circle angular distance between two view directions, degrees [0,180].
[[nodiscard]] double angular_distance_deg(const Orientation& a, const Orientation& b);

// Orthonormal viewing basis {forward, right, up} honoring roll.
struct ViewBasis {
  Vec3 forward;
  Vec3 right;
  Vec3 up;
};
[[nodiscard]] ViewBasis view_basis(const Orientation& o);

}  // namespace sperke::geo
