#include "geo/tile_grid.h"

#include <algorithm>
#include <cmath>

namespace sperke::geo {

TileId TileGrid::tile_at(Uv uv) const {
  const double u = std::clamp(uv.u, 0.0, 1.0 - 1e-12);
  const double v = std::clamp(uv.v, 0.0, 1.0 - 1e-12);
  const int col = std::min(cols_ - 1, static_cast<int>(u * cols_));
  const int row = std::min(rows_ - 1, static_cast<int>(v * rows_));
  return tile_id(row, col);
}

Uv TileGrid::tile_center(TileId id) const {
  check_id(id);
  const int row = id / cols_;
  const int col = id % cols_;
  return Uv{(col + 0.5) / cols_, (row + 0.5) / rows_};
}

std::vector<TileId> TileGrid::neighbors(TileId id) const {
  check_id(id);
  const int row = id / cols_;
  const int col = id % cols_;
  std::vector<TileId> out;
  out.reserve(4);
  if (row > 0) out.push_back(tile_id(row - 1, col));
  if (row + 1 < rows_) out.push_back(tile_id(row + 1, col));
  out.push_back(tile_id(row, (col + cols_ - 1) % cols_));
  if (cols_ > 1) out.push_back(tile_id(row, (col + 1) % cols_));
  return out;
}

}  // namespace sperke::geo
