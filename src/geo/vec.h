// Minimal 3D vector/quaternion math for spherical view geometry.
#pragma once

#include <cmath>

namespace sperke::geo {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }

  [[nodiscard]] constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] double norm() const { return std::sqrt(dot(*this)); }
  [[nodiscard]] Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec3{x / n, y / n, z / n} : Vec3{1.0, 0.0, 0.0};
  }
};

// Angle between two (not necessarily unit) vectors, in radians [0, pi].
[[nodiscard]] inline double angle_between(const Vec3& a, const Vec3& b) {
  const double na = a.norm(), nb = b.norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  double c = a.dot(b) / (na * nb);
  c = c > 1.0 ? 1.0 : (c < -1.0 ? -1.0 : c);
  return std::acos(c);
}

}  // namespace sperke::geo
