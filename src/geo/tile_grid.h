// Spatial tiling of the panorama plane (the "Tile" axis of C(q, l, t)).
//
// Tiles are an axis-aligned rows x cols grid over the projection's
// normalized [0,1)^2 plane. A TileId is a dense integer in
// [0, rows*cols), row-major, so it can index vectors directly.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "geo/projection.h"

namespace sperke::geo {

using TileId = std::int32_t;

class TileGrid {
 public:
  TileGrid(int rows, int cols) : rows_(rows), cols_(cols) {
    if (rows <= 0 || cols <= 0) throw std::invalid_argument("TileGrid: non-positive dims");
  }

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int tile_count() const { return rows_ * cols_; }

  [[nodiscard]] TileId tile_id(int row, int col) const {
    check_rc(row, col);
    return static_cast<TileId>(row * cols_ + col);
  }
  [[nodiscard]] int row_of(TileId id) const { check_id(id); return id / cols_; }
  [[nodiscard]] int col_of(TileId id) const { check_id(id); return id % cols_; }

  // Tile containing a point of the normalized panorama plane.
  [[nodiscard]] TileId tile_at(Uv uv) const;

  // Center of a tile in the normalized plane.
  [[nodiscard]] Uv tile_center(TileId id) const;

  // Horizontal neighbors wrap around (the panorama is periodic in u);
  // vertical neighbors do not. Returns 4-neighbourhood.
  [[nodiscard]] std::vector<TileId> neighbors(TileId id) const;

  [[nodiscard]] bool contains(TileId id) const { return id >= 0 && id < tile_count(); }

  friend bool operator==(const TileGrid&, const TileGrid&) = default;

 private:
  void check_rc(int row, int col) const {
    if (row < 0 || row >= rows_ || col < 0 || col >= cols_) {
      throw std::out_of_range("TileGrid: row/col out of range");
    }
  }
  void check_id(TileId id) const {
    if (!contains(id)) throw std::out_of_range("TileGrid: TileId out of range");
  }

  int rows_;
  int cols_;
};

}  // namespace sperke::geo
