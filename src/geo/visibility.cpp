#include "geo/visibility.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>
#include <stdexcept>

#include "util/math.h"

namespace sperke::geo {

TileGeometry::TileGeometry(std::shared_ptr<const Projection> projection,
                           TileGrid grid, int samples_per_axis)
    : projection_(std::move(projection)),
      grid_(grid),
      samples_per_axis_(samples_per_axis) {
  if (!projection_) throw std::invalid_argument("TileGeometry: null projection");
  if (samples_per_axis_ < 2) throw std::invalid_argument("TileGeometry: samples_per_axis < 2");

  // Precompute per-tile solid angle by sampling the sphere uniformly:
  // stratified in longitude and in sin(latitude) (equal-area bands).
  const int kLonSamples = 256;
  const int kLatSamples = 128;
  solid_angle_.assign(static_cast<std::size_t>(grid_.tile_count()), 0.0);
  for (int i = 0; i < kLonSamples; ++i) {
    const double lon = (i + 0.5) / kLonSamples * 360.0 - 180.0;
    for (int j = 0; j < kLatSamples; ++j) {
      const double z = (j + 0.5) / kLatSamples * 2.0 - 1.0;  // sin(lat)
      const double lat = rad_to_deg(std::asin(z));
      const Vec3 dir = direction_from_lonlat(lon, lat);
      const TileId id = grid_.tile_at(projection_->uv_from_direction(dir));
      solid_angle_[static_cast<std::size_t>(id)] += 1.0;
    }
  }
  const double total = kLonSamples * static_cast<double>(kLatSamples);
  for (double& f : solid_angle_) f /= total;

  tile_centers_.reserve(static_cast<std::size_t>(grid_.tile_count()));
  for (TileId id = 0; id < grid_.tile_count(); ++id) {
    tile_centers_.push_back(projection_->direction_from_uv(grid_.tile_center(id)));
  }
}

std::vector<TileId> TileGeometry::visible_tiles(const Orientation& view,
                                                const Viewport& viewport) const {
  const ViewBasis basis = view_basis(view.normalized());
  const double half_w = deg_to_rad(viewport.width_deg) / 2.0;
  const double half_h = deg_to_rad(viewport.height_deg) / 2.0;
  const double tan_w = std::tan(half_w);
  const double tan_h = std::tan(half_h);

  std::vector<char> seen(static_cast<std::size_t>(grid_.tile_count()), 0);
  const int n = samples_per_axis_;
  for (int i = 0; i < n; ++i) {
    const double a = (n == 1) ? 0.0 : (static_cast<double>(i) / (n - 1) * 2.0 - 1.0);
    for (int j = 0; j < n; ++j) {
      const double b = (n == 1) ? 0.0 : (static_cast<double>(j) / (n - 1) * 2.0 - 1.0);
      const Vec3 dir = (basis.forward + basis.right * (a * tan_w) +
                        basis.up * (b * tan_h))
                           .normalized();
      const TileId id = grid_.tile_at(projection_->uv_from_direction(dir));
      seen[static_cast<std::size_t>(id)] = 1;
    }
  }
  std::vector<TileId> out;
  for (TileId id = 0; id < grid_.tile_count(); ++id) {
    if (seen[static_cast<std::size_t>(id)]) out.push_back(id);
  }
  return out;
}

std::vector<double> TileGeometry::tile_distances_deg(const Orientation& view) const {
  const Vec3 dir = view.direction();
  std::vector<double> out;
  out.reserve(tile_centers_.size());
  for (const Vec3& c : tile_centers_) {
    out.push_back(rad_to_deg(angle_between(dir, c)));
  }
  return out;
}

std::vector<TileId> TileGeometry::tiles_by_distance(const Orientation& view) const {
  const std::vector<double> dist = tile_distances_deg(view);
  std::vector<TileId> order(static_cast<std::size_t>(grid_.tile_count()));
  std::iota(order.begin(), order.end(), TileId{0});
  std::stable_sort(order.begin(), order.end(), [&](TileId a, TileId b) {
    return dist[static_cast<std::size_t>(a)] < dist[static_cast<std::size_t>(b)];
  });
  return order;
}

std::vector<int> TileGeometry::oos_rings(const std::vector<TileId>& visible) const {
  std::vector<int> ring(static_cast<std::size_t>(grid_.tile_count()), -1);
  std::deque<TileId> frontier;
  for (TileId id : visible) {
    if (!grid_.contains(id)) throw std::out_of_range("oos_rings: bad TileId");
    ring[static_cast<std::size_t>(id)] = 0;
    frontier.push_back(id);
  }
  while (!frontier.empty()) {
    const TileId cur = frontier.front();
    frontier.pop_front();
    const int next_ring = ring[static_cast<std::size_t>(cur)] + 1;
    for (TileId nb : grid_.neighbors(cur)) {
      auto& r = ring[static_cast<std::size_t>(nb)];
      if (r < 0) {
        r = next_ring;
        frontier.push_back(nb);
      }
    }
  }
  // Unreached tiles (possible only with an empty visible set) get a large ring.
  for (auto& r : ring) {
    if (r < 0) r = grid_.tile_count();
  }
  return ring;
}

Vec3 TileGeometry::tile_center_direction(TileId id) const {
  if (!grid_.contains(id)) throw std::out_of_range("tile_center_direction: bad TileId");
  return tile_centers_[static_cast<std::size_t>(id)];
}

}  // namespace sperke::geo
