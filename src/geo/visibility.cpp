#include "geo/visibility.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "util/math.h"

namespace sperke::geo {

namespace {

// Ids start at 1 so 0 stays the Scratch memo's "empty entry" marker.
// Atomic: shards construct their TileGeometry on engine worker threads.
std::uint64_t next_instance_id() {
  // sperke-analyze: shared(atomic relaxed fetch_add; ids only key per-thread memo entries, so allocation order never affects results)
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TileGeometry::TileGeometry(std::shared_ptr<const Projection> projection,
                           TileGrid grid, int samples_per_axis)
    : projection_(std::move(projection)),
      grid_(grid),
      instance_id_(next_instance_id()),
      samples_per_axis_(samples_per_axis) {
  if (!projection_) throw std::invalid_argument("TileGeometry: null projection");
  if (samples_per_axis_ < 2) throw std::invalid_argument("TileGeometry: samples_per_axis < 2");

  // Equirect tile edges are constant-lat/lon lines; precompute them for the
  // sign-test classifier (see classify_equirect).
  if (dynamic_cast<const EquirectangularProjection*>(projection_.get()) != nullptr) {
    equirect_fast_ = true;
    for (int j = 1; j < grid_.rows(); ++j) {
      row_sin_.push_back(std::sin(deg_to_rad(90.0 - 180.0 * j / grid_.rows())));
    }
    for (int k = 1; k < grid_.cols(); ++k) {
      const double lon = 360.0 * k / grid_.cols() - 180.0;
      const double r = deg_to_rad(lon);
      if (lon <= 0.0) {
        ++col_base_;
        // The lon == 0 meridian needs no test: every lon >= 0 passes it.
        if (lon < 0.0) col_neg_.emplace_back(std::cos(r), std::sin(r));
      } else {
        col_pos_.emplace_back(std::cos(r), std::sin(r));
      }
    }
  }

  // Precompute per-tile solid angle by sampling the sphere uniformly:
  // stratified in longitude and in sin(latitude) (equal-area bands).
  const int kLonSamples = 256;
  const int kLatSamples = 128;
  solid_angle_.assign(static_cast<std::size_t>(grid_.tile_count()), 0.0);
  for (int i = 0; i < kLonSamples; ++i) {
    const double lon = (i + 0.5) / kLonSamples * 360.0 - 180.0;
    for (int j = 0; j < kLatSamples; ++j) {
      const double z = (j + 0.5) / kLatSamples * 2.0 - 1.0;  // sin(lat)
      const double lat = rad_to_deg(std::asin(z));
      const Vec3 dir = direction_from_lonlat(lon, lat);
      const TileId id = grid_.tile_at(projection_->uv_from_direction(dir));
      solid_angle_[static_cast<std::size_t>(id)] += 1.0;
    }
  }
  const double total = kLonSamples * static_cast<double>(kLatSamples);
  for (double& f : solid_angle_) f /= total;

  tile_centers_.reserve(static_cast<std::size_t>(grid_.tile_count()));
  for (TileId id = 0; id < grid_.tile_count(); ++id) {
    tile_centers_.push_back(projection_->direction_from_uv(grid_.tile_center(id)));
  }
}

TileId TileGeometry::classify_equirect(const Vec3& d) const {
  // Directions within ~1e-12 of a tile edge defer to the generic chain: its
  // rounding there is not reproducible from sign tests alone (e.g. a |lat|
  // below half an ulp of 90.0 vanishes inside (90 - lat) / 180, flipping the
  // row), so the guard band keeps the two paths bit-identical everywhere.
  constexpr double kEdgeEps = 1e-12;

  // Row: count latitude boundaries at or above the direction. The generic
  // path re-normalizes inside lonlat_from_direction, so divide z the same
  // way before comparing.
  const double z = d.z / d.norm();
  int row = 0;
  for (const double s : row_sin_) {
    if (std::abs(z - s) < kEdgeEps) {
      return grid_.tile_at(projection_->uv_from_direction(d));
    }
    row += (z <= s) ? 1 : 0;
  }

  if (std::abs(d.y) <= kEdgeEps * (std::abs(d.x) + std::abs(d.y))) {
    // On or near the lon == 0 / ±180 half-split (this also covers the
    // degenerate x == y == 0 vertical, where atan2(±0, ±0) semantics pick
    // the seam column); defer to the generic chain rather than replicate it.
    return grid_.tile_at(projection_->uv_from_direction(d));
  }

  // Column: split on the sign of the longitude (the lon >= 0 test below
  // matches atan2's treatment of y == ±0), then count boundary meridians
  // passed via cross-product sign tests. Restricted to one half, every
  // test spans less than 180° of longitude, so the half-plane test is
  // exact; the tests are scale-invariant, so no normalization is needed.
  int col;
  const double xy_scale = std::abs(d.x) + std::abs(d.y);
  const bool lon_nonneg = d.y > 0.0;
  if (lon_nonneg) {
    col = col_base_;
    for (const auto& [c, s] : col_pos_) {
      const double cross = d.y * c - d.x * s;
      if (std::abs(cross) < kEdgeEps * xy_scale) {
        return grid_.tile_at(projection_->uv_from_direction(d));
      }
      col += (cross >= 0.0) ? 1 : 0;
    }
  } else {
    col = 0;
    for (const auto& [c, s] : col_neg_) {
      const double cross = d.y * c - d.x * s;
      if (std::abs(cross) < kEdgeEps * xy_scale) {
        return grid_.tile_at(projection_->uv_from_direction(d));
      }
      col += (cross >= 0.0) ? 1 : 0;
    }
  }
  return static_cast<TileId>(row * grid_.cols() + col);
}

TileId TileGeometry::classify(const Vec3& dir) const {
  return equirect_fast_ ? classify_equirect(dir)
                        : grid_.tile_at(projection_->uv_from_direction(dir));
}

std::vector<TileId> TileGeometry::visible_tiles(const Orientation& view,
                                                const Viewport& viewport) const {
  // sperke-analyze: shared(per-thread scratch; never escapes the call)
  thread_local Scratch scratch;
  std::vector<TileId> out;
  visible_tiles(view, viewport, out, scratch);
  return out;
}

void TileGeometry::visible_tiles(const Orientation& view, const Viewport& viewport,
                                 std::vector<TileId>& out, Scratch& scratch) const {
  // Exact-key memo hit: same geometry, same orientation bits, same
  // viewport. out receives a copy of the cached set (no allocation once
  // its capacity has grown past the FoV size).
  for (const Scratch::MemoEntry& entry : scratch.memo) {
    if (entry.geometry == instance_id_ && entry.view.yaw_deg == view.yaw_deg &&
        entry.view.pitch_deg == view.pitch_deg &&
        entry.view.roll_deg == view.roll_deg &&
        entry.viewport.width_deg == viewport.width_deg &&
        entry.viewport.height_deg == viewport.height_deg) {
      out.assign(entry.tiles.begin(), entry.tiles.end());
      return;
    }
  }
  const ViewBasis basis = view_basis(view.normalized());
  const double half_w = deg_to_rad(viewport.width_deg) / 2.0;
  const double half_h = deg_to_rad(viewport.height_deg) / 2.0;
  const double tan_w = std::tan(half_w);
  const double tan_h = std::tan(half_h);

  auto& seen = scratch.seen;
  seen.assign(static_cast<std::size_t>(grid_.tile_count()), 0);
  const int n = samples_per_axis_;  // >= 2, enforced by the constructor
  auto& up_terms = scratch.up_terms;
  up_terms.clear();
  for (int j = 0; j < n; ++j) {
    const double b = static_cast<double>(j) / (n - 1) * 2.0 - 1.0;
    up_terms.push_back(basis.up * (b * tan_h));
  }
  for (int i = 0; i < n; ++i) {
    const double a = static_cast<double>(i) / (n - 1) * 2.0 - 1.0;
    const Vec3 fr = basis.forward + basis.right * (a * tan_w);
    for (int j = 0; j < n; ++j) {
      const Vec3 dir = (fr + up_terms[static_cast<std::size_t>(j)]).normalized();
      seen[static_cast<std::size_t>(classify(dir))] = 1;
    }
  }
  out.clear();
  for (TileId id = 0; id < grid_.tile_count(); ++id) {
    if (seen[static_cast<std::size_t>(id)]) out.push_back(id);
  }
  Scratch::MemoEntry& entry = scratch.memo[scratch.memo_next];
  scratch.memo_next = (scratch.memo_next + 1) % Scratch::kMemoEntries;
  entry.geometry = instance_id_;
  entry.view = view;
  entry.viewport = viewport;
  entry.tiles.assign(out.begin(), out.end());
}

Orientation TileGeometry::lut_snap(const Orientation& view) {
  const Orientation n = view.normalized();
  const auto yaw_cells = static_cast<long>(std::lround(360.0 / kLutStepDeg));
  long iy = std::lround((n.yaw_deg + 180.0) / kLutStepDeg) % yaw_cells;
  if (iy < 0) iy += yaw_cells;
  const auto pitch_max = static_cast<long>(std::lround(180.0 / kLutStepDeg));
  const long ip = std::clamp(std::lround((n.pitch_deg + 90.0) / kLutStepDeg),
                             0L, pitch_max);
  return Orientation{static_cast<double>(iy) * kLutStepDeg - 180.0,
                     static_cast<double>(ip) * kLutStepDeg - 90.0, 0.0};
}

std::vector<TileId> TileGeometry::visible_tiles_lut(const Orientation& view,
                                                    const Viewport& viewport) const {
  // sperke-analyze: shared(per-thread scratch; never escapes the call)
  thread_local Scratch scratch;
  std::vector<TileId> out;
  visible_tiles_lut(view, viewport, out, scratch);
  return out;
}

void TileGeometry::visible_tiles_lut(const Orientation& view,
                                     const Viewport& viewport,
                                     std::vector<TileId>& out,
                                     Scratch& scratch) const {
  const Orientation norm = view.normalized();
  if (!lut_.bound) {
    lut_.bound = true;
    lut_.viewport = viewport;
    lut_.yaw_cells = static_cast<int>(std::lround(360.0 / kLutStepDeg));
    lut_.pitch_cells = static_cast<int>(std::lround(180.0 / kLutStepDeg)) + 1;
    lut_.cells.assign(
        static_cast<std::size_t>(lut_.yaw_cells) * lut_.pitch_cells, {});
  }
  const bool same_viewport = lut_.viewport.width_deg == viewport.width_deg &&
                             lut_.viewport.height_deg == viewport.height_deg;
  if (norm.roll_deg != 0.0 || !same_viewport) {
    visible_tiles(view, viewport, out, scratch);  // exact fallback
    return;
  }
  const Orientation snapped = lut_snap(norm);
  const long iy = std::lround((snapped.yaw_deg + 180.0) / kLutStepDeg);
  const long ip = std::lround((snapped.pitch_deg + 90.0) / kLutStepDeg);
  auto& cell = lut_.cells[static_cast<std::size_t>(ip) * lut_.yaw_cells +
                          static_cast<std::size_t>(iy)];
  if (cell.empty()) visible_tiles(snapped, lut_.viewport, cell, scratch);
  out.assign(cell.begin(), cell.end());
}

std::vector<double> TileGeometry::tile_distances_deg(const Orientation& view) const {
  std::vector<double> out;
  tile_distances_deg(view, out);
  return out;
}

void TileGeometry::tile_distances_deg(const Orientation& view,
                                      std::vector<double>& out) const {
  const Vec3 dir = view.direction();
  out.clear();
  out.reserve(tile_centers_.size());
  for (const Vec3& c : tile_centers_) {
    out.push_back(rad_to_deg(angle_between(dir, c)));
  }
}

std::vector<TileId> TileGeometry::tiles_by_distance(const Orientation& view) const {
  // sperke-analyze: shared(per-thread scratch; never escapes the call)
  thread_local Scratch scratch;
  std::vector<TileId> out;
  tiles_by_distance(view, out, scratch);
  return out;
}

void TileGeometry::tiles_by_distance(const Orientation& view,
                                     std::vector<TileId>& out,
                                     Scratch& scratch) const {
  const Vec3 dir = view.direction();
  auto& keys = scratch.keys;
  keys.clear();
  keys.reserve(tile_centers_.size());
  for (TileId id = 0; id < grid_.tile_count(); ++id) {
    keys.emplace_back(
        rad_to_deg(angle_between(dir, tile_centers_[static_cast<std::size_t>(id)])),
        id);
  }
  // Lexicographic (distance, id) — the id key pins equal-distance ties to
  // ascending TileId, so no stable sort (and no side-array lambda) needed.
  std::sort(keys.begin(), keys.end());
  out.clear();
  out.reserve(keys.size());
  for (const auto& [dist, id] : keys) out.push_back(id);
}

std::vector<int> TileGeometry::oos_rings(const std::vector<TileId>& visible) const {
  // sperke-analyze: shared(per-thread scratch; never escapes the call)
  thread_local Scratch scratch;
  std::vector<int> out;
  oos_rings(visible, out, scratch);
  return out;
}

void TileGeometry::oos_rings(const std::vector<TileId>& visible,
                             std::vector<int>& out, Scratch& scratch) const {
  out.assign(static_cast<std::size_t>(grid_.tile_count()), -1);
  auto& frontier = scratch.queue;
  frontier.clear();
  for (TileId id : visible) {
    if (!grid_.contains(id)) throw std::out_of_range("oos_rings: bad TileId");
    out[static_cast<std::size_t>(id)] = 0;
    frontier.push_back(id);
  }
  const int rows = grid_.rows();
  const int cols = grid_.cols();
  const auto relax = [&](TileId nb, int next_ring) {
    auto& r = out[static_cast<std::size_t>(nb)];
    if (r < 0) {
      r = next_ring;
      frontier.push_back(nb);
    }
  };
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const TileId cur = frontier[head];
    const int next_ring = out[static_cast<std::size_t>(cur)] + 1;
    // Inlined TileGrid::neighbors (same visit order) to keep the BFS free
    // of per-tile allocations.
    const int row = cur / cols;
    const int col = cur % cols;
    if (row > 0) relax(cur - cols, next_ring);
    if (row + 1 < rows) relax(cur + cols, next_ring);
    relax(static_cast<TileId>(row * cols + (col + cols - 1) % cols), next_ring);
    if (cols > 1) relax(static_cast<TileId>(row * cols + (col + 1) % cols), next_ring);
  }
  // Unreached tiles (possible only with an empty visible set) get a large ring.
  for (auto& r : out) {
    if (r < 0) r = grid_.tile_count();
  }
}

Vec3 TileGeometry::tile_center_direction(TileId id) const {
  if (!grid_.contains(id)) throw std::out_of_range("tile_center_direction: bad TileId");
  return tile_centers_[static_cast<std::size_t>(id)];
}

}  // namespace sperke::geo
