#include "cdn/topology.h"

#include <array>
#include <stdexcept>
#include <utility>

#include "util/check.h"

namespace sperke::cdn {

namespace {

std::string joined_field_names() {
  std::string out;
  for (std::string_view f : topology_field_names()) {
    if (!out.empty()) out += ", ";
    out += f;
  }
  return out;
}

[[noreturn]] void fail_field(const std::string& message) {
  throw std::invalid_argument("TopologySpec: " + message +
                              "; valid fields: " + joined_field_names());
}

}  // namespace

std::span<const std::string_view> topology_field_names() noexcept {
  static constexpr std::array<std::string_view, 8> kNames = {
      "sessions_per_edge", "backhaul",           "backhaul_for_edge",
      "cache_policy",      "cache_capacity_bytes", "warm_tiles_per_chunk",
      "warm_encoding",     "warm_level"};
  return kNames;
}

void validate(const TopologySpec& spec, int sessions_per_link, bool has_crowd) {
  if (!spec.enabled()) {
    if (spec.sessions_per_edge < 0) {
      fail_field("sessions_per_edge < 0 (0 disables the CDN tier)");
    }
    return;
  }
  SPERKE_CHECK(sessions_per_link > 0,
               "cdn::validate: sessions_per_link must be positive");
  if (spec.sessions_per_edge % sessions_per_link != 0) {
    fail_field("sessions_per_edge (= " + std::to_string(spec.sessions_per_edge) +
               ") must be a multiple of sessions_per_link (= " +
               std::to_string(sessions_per_link) +
               ") so whole link groups share an edge");
  }
  if (spec.cache_capacity_bytes <= 0) {
    fail_field("cache_capacity_bytes must be positive when the tier is enabled");
  }
  try {
    (void)parse_cache_policy(spec.cache_policy);
  } catch (const std::invalid_argument& e) {
    fail_field("cache_policy: " + std::string(e.what()));
  }
  net::validate(spec.backhaul.faults);
  if (spec.warm_tiles_per_chunk < 0) {
    fail_field("warm_tiles_per_chunk < 0");
  }
  if (spec.warm_tiles_per_chunk > 0) {
    if (!has_crowd) {
      fail_field("warm_tiles_per_chunk > 0 needs a crowd heatmap "
                 "(WorldSpec::crowd) to rank tiles");
    }
    if (spec.warm_level < 0) fail_field("warm_level < 0");
  }
}

Topology::Topology(sim::Simulator& simulator, const TopologySpec& spec,
                   obs::Telemetry* telemetry, const media::VideoModel* video,
                   const hmp::ViewingHeatmap* crowd)
    : simulator_(simulator),
      spec_(spec),
      telemetry_(telemetry),
      video_(video),
      crowd_(crowd) {}

net::ChunkSource& Topology::add_group(int edge, net::LinkConfig access) {
  access_links_.push_back(
      std::make_unique<net::Link>(simulator_, std::move(access)));
  net::Link& link = *access_links_.back();
  if (!spec_.enabled() || edge < 0) {
    sources_.push_back(std::make_unique<net::LinkSource>(link));
  } else {
    sources_.push_back(std::make_unique<EdgeSource>(link, edge_for(edge)));
  }
  return *sources_.back();
}

Edge& Topology::edge_for(int edge_id) {
  auto it = edge_index_.find(edge_id);
  if (it != edge_index_.end()) return *edges_[it->second];
  net::LinkConfig backhaul = spec_.backhaul_for_edge
                                 ? spec_.backhaul_for_edge(edge_id)
                                 : spec_.backhaul;
  backhaul_links_.push_back(
      std::make_unique<net::Link>(simulator_, std::move(backhaul)));
  const EdgeCacheConfig cache_config{
      .policy = parse_cache_policy(spec_.cache_policy),
      .capacity_bytes = spec_.cache_capacity_bytes};
  edges_.push_back(std::make_unique<Edge>(*backhaul_links_.back(), cache_config,
                                          telemetry_));
  edge_index_.emplace(edge_id, edges_.size() - 1);
  Edge& built = *edges_.back();
  if (spec_.warm_tiles_per_chunk > 0) {
    SPERKE_CHECK(video_ != nullptr && crowd_ != nullptr,
                 "Topology: warming requires a video model and a crowd heatmap");
    built.warm(*video_, *crowd_,
               WarmSpec{.tiles_per_chunk = spec_.warm_tiles_per_chunk,
                        .encoding = spec_.warm_encoding,
                        .level = spec_.warm_level,
                        .video = 0});
  }
  return built;
}

}  // namespace sperke::cdn
