// One CDN edge: a byte-budgeted chunk cache in front of a coalescing
// origin, and the ChunkSource adapter that routes a client link group
// through it (DESIGN.md §15).
//
// Topology per fetch:
//
//   hit   client <-- access link -- edge cache
//   miss  client <-- access link -- edge <-- backhaul link -- origin
//
// A hit serves immediately over the requester's access link at the
// transport's stream weight. A miss first pulls the object over the shared
// backhaul (coalesced across concurrent requesters by the Origin), inserts
// it into the cache once, then serves each requester over their own access
// link. Backhaul faults propagate to the client as kFailed with 0 bytes —
// the transport's ordinary retry machinery takes it from there.
//
// Crowd-driven warming (paper §3.2): before viewers arrive, the per-chunk
// top-N tiles by hmp::ViewingHeatmap probability are preloaded until the
// byte budget is exhausted, so a flash crowd's first requests already hit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "cdn/cache.h"
#include "cdn/origin.h"
#include "hmp/heatmap.h"
#include "media/chunk.h"
#include "media/video_model.h"
#include "net/chunk_source.h"
#include "net/link.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace sperke::cdn {

// Plain mirror of the cdn.edge.* counters, available without telemetry.
struct EdgeStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t coalesced = 0;  // misses that joined an in-flight transfer
  std::int64_t evictions = 0;
  std::int64_t warmed = 0;  // objects preloaded from the crowd heatmap
};

// What to preload per temporal chunk: the top `tiles_per_chunk` tiles by
// crowd probability (ties broken by ascending tile id), at `encoding` /
// `level` — for kSvc that is layers 0..level, the playable prefix.
struct WarmSpec {
  int tiles_per_chunk = 0;
  media::Encoding encoding = media::Encoding::kAvc;
  std::int32_t level = 0;
  std::int32_t video = 0;  // ChunkId video coordinate of the warmed objects
};

class Edge {
 public:
  // `backhaul` must outlive the edge; `telemetry` (nullable) receives the
  // cdn.edge.* counters and, via the owned Origin, cdn.origin.egress_bytes.
  Edge(net::Link& backhaul, const EdgeCacheConfig& cache_config,
       obs::Telemetry* telemetry);
  Edge(const Edge&) = delete;
  Edge& operator=(const Edge&) = delete;

  // Lookup-with-bookkeeping: counts a hit (touching the cache entry) or a
  // miss. Called once per client fetch by EdgeSource.
  bool lookup(const net::ChunkId& id);

  // Forward a miss to the origin (counting coalesced joins).
  Origin::Ticket fetch_from_origin(const net::ChunkId& id, std::int64_t bytes,
                                   double weight, net::TransferCallback on_done);

  // Deterministically preload the crowd's favourite tiles (chunk-ascending,
  // probability-descending) until the next object would not fit. Returns
  // the number of objects warmed.
  int warm(const media::VideoModel& video, const hmp::ViewingHeatmap& crowd,
           const WarmSpec& spec);

  [[nodiscard]] EdgeCache& cache() { return cache_; }
  [[nodiscard]] Origin& origin() { return origin_; }
  [[nodiscard]] const EdgeStats& stats() const { return stats_; }

 private:
  EdgeCache cache_;
  Origin origin_;
  EdgeStats stats_;
  obs::Counter* hits_metric_ = nullptr;
  obs::Counter* misses_metric_ = nullptr;
  obs::Counter* evictions_metric_ = nullptr;
  obs::Counter* coalesced_metric_ = nullptr;
  obs::Counter* warmed_metric_ = nullptr;
};

// ChunkSource that fetches through an Edge: the seam core transports plug
// into when the world has a CDN tier. Several EdgeSources (one per client
// link group) may share one Edge — that is exactly how sessions share a
// cache. `access` carries the final hop to this source's clients.
class EdgeSource final : public net::ChunkSource {
 public:
  // Both must outlive the source.
  EdgeSource(net::Link& access, Edge& edge);
  ~EdgeSource() override;
  EdgeSource(const EdgeSource&) = delete;
  EdgeSource& operator=(const EdgeSource&) = delete;

  net::FetchId fetch(const net::FetchSpec& spec,
                     net::TransferCallback on_done) override;
  bool cancel(net::FetchId id) override;

  // Client-side first-byte latency: the access hop. (A miss pays the
  // backhaul on top; the transport's aggregate estimator absorbs that as
  // ordinary goodput variance.)
  [[nodiscard]] sim::Duration rtt() const override { return access_.rtt(); }
  [[nodiscard]] sim::Simulator& simulator() override {
    return access_.simulator();
  }

  [[nodiscard]] Edge& edge() { return edge_; }

 private:
  struct Pending {
    bool serving = false;           // true once bytes flow on the access link
    net::TransferId serve_id = 0;   // access transfer (serving phase)
    Origin::Ticket ticket = 0;      // origin waiter (miss phase)
  };

  void serve(net::FetchId id, const net::FetchSpec& spec,
             net::TransferCallback on_done);

  net::Link& access_;
  Edge& edge_;
  std::map<net::FetchId, Pending> pending_;
  net::FetchId next_id_ = 1;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sperke::cdn
