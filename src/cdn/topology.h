// Declarative CDN topology and its per-shard materializer (DESIGN.md §15).
//
// TopologySpec is the section engine::WorldSpec embeds: it says how many
// consecutive sessions share one edge, what the edge's backhaul link looks
// like, which cache policy/budget the edge runs, and how aggressively the
// crowd heatmap pre-warms it. sessions_per_edge == 0 disables the tier —
// every link group then fetches over a direct net::LinkSource, byte-
// identical to the pre-CDN engine.
//
// Topology is the builder a shard owns: it constructs every net::Link the
// shard's sessions touch (access links and backhauls — the only places
// outside src/net that links are born, which the link-construction lint
// rule enforces) and hands each link group the ChunkSource its transport
// should consume. Determinism: the engine partitions whole edges onto
// shards (engine::shard_of_group), so an edge's cache dynamics depend only
// on its own groups' sessions — never on which thread runs the shard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cdn/cache.h"
#include "cdn/edge.h"
#include "hmp/heatmap.h"
#include "media/chunk.h"
#include "media/video_model.h"
#include "net/chunk_source.h"
#include "net/link.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"

namespace sperke::cdn {

struct TopologySpec {
  // Consecutive link groups covering this many sessions share one edge
  // (cache + backhaul). Must be a positive multiple of the world's
  // sessions_per_link when enabled; 0 disables the CDN tier.
  int sessions_per_edge = 0;

  // Backhaul (edge -> origin) link template — or a per-edge override hook
  // (same thread-safety rule as WorldSpec::link_for_group: pure, called
  // from shard threads). Backhaul faults ride in the config's FaultPlan.
  net::LinkConfig backhaul;
  std::function<net::LinkConfig(int edge)> backhaul_for_edge;

  // Edge cache: eviction policy name (cache_policy_names()) and byte budget.
  std::string cache_policy = "lru";
  std::int64_t cache_capacity_bytes = 256LL * 1024 * 1024;

  // Crowd-driven warming: preload the top-N tiles per chunk from the
  // world's hmp::ViewingHeatmap before any session starts. 0 = cold cache.
  int warm_tiles_per_chunk = 0;
  media::Encoding warm_encoding = media::Encoding::kAvc;
  std::int32_t warm_level = 0;

  [[nodiscard]] bool enabled() const { return sessions_per_edge > 0; }
};

// The section's field names, as every validation error lists them. Views
// into a constexpr table — no shared mutable state (sperke_analyze).
[[nodiscard]] std::span<const std::string_view> topology_field_names() noexcept;

// Throws std::invalid_argument on a nonsensical section; every message
// names the offending field and lists the valid field names (the
// abr::validate_policy_name convention). `has_crowd` says whether the
// embedding world carries a heatmap for warming to read.
void validate(const TopologySpec& spec, int sessions_per_link, bool has_crowd);

// Per-shard fetch fabric: owns the shard's access links, backhaul links,
// edges and ChunkSources. Build order is the caller's ascending group
// order, which makes link/edge construction deterministic per shard.
class Topology {
 public:
  // All referees must outlive the topology. `telemetry` is nullable (no
  // cdn.* counters); `video`/`crowd` are nullable and only read when the
  // spec warms (validate() guarantees crowd exists when warming is on).
  Topology(sim::Simulator& simulator, const TopologySpec& spec,
           obs::Telemetry* telemetry, const media::VideoModel* video,
           const hmp::ViewingHeatmap* crowd);
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  // Build the access link for one client link group and return the
  // ChunkSource its transport should consume: an EdgeSource through edge
  // `edge` when the tier is enabled (the edge and its backhaul are created
  // and warmed on first use), else a direct LinkSource. `edge` < 0 forces
  // the direct path.
  net::ChunkSource& add_group(int edge, net::LinkConfig access);

  // Access links in add_group order (for the engine's fault observability).
  [[nodiscard]] int access_link_count() const {
    return static_cast<int>(access_links_.size());
  }
  [[nodiscard]] const net::Link& access_link(int index) const {
    return *access_links_[static_cast<std::size_t>(index)];
  }

  // Edges in creation (first-use) order.
  [[nodiscard]] int edge_count() const { return static_cast<int>(edges_.size()); }
  [[nodiscard]] const Edge& edge(int index) const {
    return *edges_[static_cast<std::size_t>(index)];
  }

 private:
  [[nodiscard]] Edge& edge_for(int edge_id);

  sim::Simulator& simulator_;
  const TopologySpec& spec_;
  obs::Telemetry* telemetry_;
  const media::VideoModel* video_;
  const hmp::ViewingHeatmap* crowd_;
  std::vector<std::unique_ptr<net::Link>> access_links_;
  std::vector<std::unique_ptr<net::Link>> backhaul_links_;
  std::vector<std::unique_ptr<Edge>> edges_;
  std::map<int, std::size_t> edge_index_;  // edge id -> edges_ slot
  std::vector<std::unique_ptr<net::ChunkSource>> sources_;
};

}  // namespace sperke::cdn
