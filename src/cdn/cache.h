// Byte-budgeted edge cache over net::ChunkId objects (DESIGN.md §15).
//
// The cache is a pure deterministic data structure — no clocks, no
// entropy: recency/frequency state advances on an internal logical counter
// bumped once per touch/insert, so a given operation sequence always
// produces the same eviction sequence (golden-tested). Policies:
//
//   lru  — evict the least recently used object.
//   lfu  — evict the least frequently used object; ties broken by least
//          recent use (classic LFU-with-LRU-tiebreak).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/chunk_source.h"

namespace sperke::cdn {

enum class CachePolicy : std::uint8_t { kLru, kLfu };

// Stable policy names for the declarative topology section. Views into a
// constexpr table — no shared mutable state (sperke_analyze).
[[nodiscard]] std::span<const std::string_view> cache_policy_names() noexcept;

// Parse a policy name; throws std::invalid_argument listing the valid
// names (same convention as abr::validate_policy_name).
[[nodiscard]] CachePolicy parse_cache_policy(const std::string& name);

[[nodiscard]] const char* to_string(CachePolicy policy);

struct EdgeCacheConfig {
  CachePolicy policy = CachePolicy::kLru;
  std::int64_t capacity_bytes = 0;  // must be positive
};

class EdgeCache {
 public:
  // Throws std::invalid_argument when capacity_bytes <= 0.
  explicit EdgeCache(EdgeCacheConfig config);

  [[nodiscard]] bool contains(const net::ChunkId& id) const {
    return entries_.contains(id);
  }

  // Lookup-with-bookkeeping: bump the object's recency (lru) or frequency +
  // recency (lfu) and report whether it is resident.
  bool touch(const net::ChunkId& id);

  // Admit an object, evicting per policy until it fits. Returns the number
  // of objects evicted; -1 when the object is larger than the whole cache
  // (not admitted); 0 (counted as a touch) when already resident.
  int insert(const net::ChunkId& id, std::int64_t bytes);

  [[nodiscard]] std::int64_t capacity_bytes() const {
    return config_.capacity_bytes;
  }
  [[nodiscard]] std::int64_t used_bytes() const { return used_bytes_; }
  [[nodiscard]] int size() const { return static_cast<int>(entries_.size()); }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] CachePolicy policy() const { return config_.policy; }

  // Resident ids in ascending ChunkId order (deterministic snapshot for
  // tests and debugging).
  [[nodiscard]] std::vector<net::ChunkId> resident() const;

 private:
  struct Entry {
    std::int64_t bytes = 0;
    std::uint64_t freq = 0;
    std::uint64_t seq = 0;
  };
  // Eviction order: ascending (rank, seq, id). rank is 0 under lru (pure
  // recency via seq) and the use count under lfu; the ChunkId tail makes
  // the key unique without affecting the policy ordering.
  struct EvictKey {
    std::uint64_t rank = 0;
    std::uint64_t seq = 0;
    net::ChunkId id;

    friend auto operator<=>(const EvictKey&, const EvictKey&) = default;
  };

  [[nodiscard]] EvictKey key_of(const net::ChunkId& id, const Entry& entry) const;
  void evict_one();

  EdgeCacheConfig config_;
  std::map<net::ChunkId, Entry> entries_;
  std::set<EvictKey> evict_order_;
  std::int64_t used_bytes_ = 0;
  std::uint64_t clock_ = 0;  // logical time: one tick per touch/insert
  std::uint64_t evictions_ = 0;
};

}  // namespace sperke::cdn
