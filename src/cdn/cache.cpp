#include "cdn/cache.h"

#include <array>
#include <stdexcept>

#include "util/check.h"

namespace sperke::cdn {

namespace {

constexpr std::array<std::string_view, 2> kCachePolicyNames = {"lru", "lfu"};

}  // namespace

std::span<const std::string_view> cache_policy_names() noexcept {
  return kCachePolicyNames;
}

CachePolicy parse_cache_policy(const std::string& name) {
  if (name == "lru") return CachePolicy::kLru;
  if (name == "lfu") return CachePolicy::kLfu;
  std::string valid;
  for (std::string_view n : cache_policy_names()) {
    if (!valid.empty()) valid += ", ";
    valid += n;
  }
  throw std::invalid_argument("parse_cache_policy: unknown cache policy \"" +
                              name + "\"; valid names: " + valid);
}

const char* to_string(CachePolicy policy) {
  return policy == CachePolicy::kLru ? "lru" : "lfu";
}

EdgeCache::EdgeCache(EdgeCacheConfig config) : config_(config) {
  if (config_.capacity_bytes <= 0) {
    throw std::invalid_argument("EdgeCache: capacity_bytes must be positive");
  }
}

EdgeCache::EvictKey EdgeCache::key_of(const net::ChunkId& id,
                                      const Entry& entry) const {
  return EvictKey{
      .rank = config_.policy == CachePolicy::kLfu ? entry.freq : 0,
      .seq = entry.seq,
      .id = id};
}

bool EdgeCache::touch(const net::ChunkId& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  evict_order_.erase(key_of(id, it->second));
  it->second.seq = ++clock_;
  ++it->second.freq;
  evict_order_.insert(key_of(id, it->second));
  return true;
}

int EdgeCache::insert(const net::ChunkId& id, std::int64_t bytes) {
  SPERKE_CHECK(bytes > 0, "EdgeCache::insert: non-positive size ", bytes);
  if (touch(id)) return 0;
  if (bytes > config_.capacity_bytes) return -1;  // can never fit
  int evicted = 0;
  while (used_bytes_ + bytes > config_.capacity_bytes) {
    evict_one();
    ++evicted;
  }
  Entry entry{.bytes = bytes, .freq = 1, .seq = ++clock_};
  evict_order_.insert(key_of(id, entry));
  entries_.emplace(id, entry);
  used_bytes_ += bytes;
  return evicted;
}

void EdgeCache::evict_one() {
  SPERKE_CHECK(!evict_order_.empty(), "EdgeCache: eviction from empty cache");
  const EvictKey victim = *evict_order_.begin();
  evict_order_.erase(evict_order_.begin());
  auto it = entries_.find(victim.id);
  SPERKE_CHECK(it != entries_.end(), "EdgeCache: eviction index out of sync");
  used_bytes_ -= it->second.bytes;
  entries_.erase(it);
  ++evictions_;
}

std::vector<net::ChunkId> EdgeCache::resident() const {
  std::vector<net::ChunkId> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) ids.push_back(id);
  return ids;
}

}  // namespace sperke::cdn
