// Origin fan-in with request coalescing (DESIGN.md §15).
//
// Every edge miss becomes a fetch against the origin over the edge's
// backhaul link. The origin dedupes by net::ChunkId: concurrent misses for
// the same object join the transfer already in flight instead of spending
// backhaul bytes twice. When the transfer settles, a single settle hook
// (the edge's cache-fill point) fires first, then every waiter's callback
// fires in join order — each exactly once.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "net/chunk_source.h"
#include "net/link.h"
#include "obs/telemetry.h"

namespace sperke::cdn {

class Origin {
 public:
  // Handle for one waiter (not one transfer): cancelling a ticket detaches
  // that waiter only; the underlying transfer keeps running so the cache
  // still gets the bytes.
  using Ticket = std::uint64_t;

  // `backhaul` must outlive the origin. `telemetry` (nullable) receives the
  // cdn.origin.egress_bytes counter.
  Origin(net::Link& backhaul, obs::Telemetry* telemetry);
  ~Origin();
  Origin(const Origin&) = delete;
  Origin& operator=(const Origin&) = delete;

  // Is a transfer for `id` already in flight? (The edge's coalesced-fetch
  // signal: a fetch() issued while true joins it instead of starting one.)
  [[nodiscard]] bool inflight_contains(const net::ChunkId& id) const {
    return inflight_.contains(id);
  }

  // Fetch `id` from the origin. Starts a backhaul transfer if none is in
  // flight for this id (carrying `weight`), else joins the existing one
  // (weight of the first requester wins). `on_done` fires exactly once with
  // the shared transfer's result. All joined fetches must agree on `bytes`.
  Ticket fetch(const net::ChunkId& id, std::int64_t bytes, double weight,
               net::TransferCallback on_done);

  // Detach a waiter: fires its callback synchronously with kCancelled
  // (0 bytes) and returns true. Returns false — firing nothing — when the
  // ticket already settled. The backhaul transfer itself is never aborted.
  bool cancel(Ticket ticket);

  // Fired exactly once per settled backhaul transfer, before any waiter
  // callback — where the edge inserts completed objects into its cache.
  void set_on_settled(
      std::function<void(const net::ChunkId&, const net::TransferResult&)> hook) {
    on_settled_ = std::move(hook);
  }

  [[nodiscard]] std::int64_t egress_bytes() const { return egress_bytes_; }
  [[nodiscard]] std::uint64_t transfers_started() const { return transfers_; }
  [[nodiscard]] int inflight() const { return static_cast<int>(inflight_.size()); }

 private:
  struct Waiter {
    Ticket ticket = 0;
    net::TransferCallback on_done;
  };
  struct Pending {
    std::int64_t bytes = 0;
    std::vector<Waiter> waiters;  // join order == ticket order
  };

  void on_transfer_settled(const net::ChunkId& id, const net::TransferResult& r);

  net::Link& backhaul_;
  obs::Counter* egress_metric_ = nullptr;
  std::function<void(const net::ChunkId&, const net::TransferResult&)> on_settled_;
  std::map<net::ChunkId, Pending> inflight_;
  std::map<Ticket, net::ChunkId> tickets_;
  Ticket next_ticket_ = 1;
  std::int64_t egress_bytes_ = 0;
  std::uint64_t transfers_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sperke::cdn
