#include "cdn/edge.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/check.h"

namespace sperke::cdn {

Edge::Edge(net::Link& backhaul, const EdgeCacheConfig& cache_config,
           obs::Telemetry* telemetry)
    : cache_(cache_config), origin_(backhaul, telemetry) {
  if (telemetry != nullptr) {
    obs::MetricsRegistry& m = telemetry->metrics();
    hits_metric_ = &m.counter("cdn.edge.hits");
    misses_metric_ = &m.counter("cdn.edge.misses");
    evictions_metric_ = &m.counter("cdn.edge.evictions");
    coalesced_metric_ = &m.counter("cdn.edge.coalesced");
    warmed_metric_ = &m.counter("cdn.edge.warmed");
  }
  // Exactly-once cache fill per origin transfer, shared by every coalesced
  // waiter: runs before any waiter callback, so a retry issued from a
  // waiter already sees the object resident.
  origin_.set_on_settled(
      [this](const net::ChunkId& id, const net::TransferResult& r) {
        if (!r.completed()) return;
        const int evicted = cache_.insert(id, r.bytes_delivered);
        if (evicted > 0) {
          stats_.evictions += evicted;
          if (evictions_metric_ != nullptr) evictions_metric_->add(evicted);
        }
      });
}

bool Edge::lookup(const net::ChunkId& id) {
  if (cache_.touch(id)) {
    ++stats_.hits;
    if (hits_metric_ != nullptr) hits_metric_->increment();
    return true;
  }
  ++stats_.misses;
  if (misses_metric_ != nullptr) misses_metric_->increment();
  return false;
}

Origin::Ticket Edge::fetch_from_origin(const net::ChunkId& id,
                                       std::int64_t bytes, double weight,
                                       net::TransferCallback on_done) {
  if (origin_.inflight_contains(id)) {
    ++stats_.coalesced;
    if (coalesced_metric_ != nullptr) coalesced_metric_->increment();
  }
  return origin_.fetch(id, bytes, weight, std::move(on_done));
}

int Edge::warm(const media::VideoModel& video, const hmp::ViewingHeatmap& crowd,
               const WarmSpec& spec) {
  SPERKE_CHECK(spec.tiles_per_chunk > 0,
               "Edge::warm: tiles_per_chunk must be positive");
  const media::ChunkIndex chunks =
      std::min(video.chunk_count(), crowd.chunk_count());
  const int top_n = std::min(spec.tiles_per_chunk, video.tile_count());
  int warmed = 0;
  // Preload one object; false = budget exhausted (stop warming entirely —
  // evicting here would churn what was just preloaded).
  const auto warm_object = [&](const media::ChunkAddress& address) {
    const net::ChunkId id = net::to_chunk_id(address, spec.video);
    if (cache_.contains(id)) return true;
    const std::int64_t bytes = video.size_bytes(address);
    if (cache_.used_bytes() + bytes > cache_.capacity_bytes()) return false;
    cache_.insert(id, bytes);
    ++warmed;
    return true;
  };
  bool budget_left = true;
  std::vector<std::pair<double, geo::TileId>> ranked;
  for (media::ChunkIndex chunk = 0; chunk < chunks && budget_left; ++chunk) {
    const std::vector<double> probs = crowd.probabilities(chunk);
    ranked.clear();
    for (geo::TileId tile = 0; tile < video.tile_count(); ++tile) {
      ranked.emplace_back(probs[static_cast<std::size_t>(tile)], tile);
    }
    // Probability-descending, tile-ascending on ties: a total order, so the
    // warm set is a pure function of the heatmap snapshot.
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    for (int k = 0; k < top_n && budget_left; ++k) {
      const geo::TileId tile = ranked[static_cast<std::size_t>(k)].second;
      // SVC playback at layer L needs layers 0..L resident; AVC needs the
      // single rung object.
      const std::int32_t first_level =
          spec.encoding == media::Encoding::kSvc ? 0 : spec.level;
      for (std::int32_t level = first_level;
           level <= spec.level && budget_left; ++level) {
        budget_left = warm_object({.key = {.tile = tile, .index = chunk},
                                   .encoding = spec.encoding,
                                   .level = level});
      }
    }
  }
  stats_.warmed += warmed;
  if (warmed_metric_ != nullptr && warmed > 0) warmed_metric_->add(warmed);
  return warmed;
}

EdgeSource::EdgeSource(net::Link& access, Edge& edge)
    : access_(access), edge_(edge) {}

EdgeSource::~EdgeSource() { *alive_ = false; }

net::FetchId EdgeSource::fetch(const net::FetchSpec& spec,
                               net::TransferCallback on_done) {
  SPERKE_CHECK(spec.bytes > 0, "EdgeSource::fetch: non-positive bytes");
  const net::FetchId id = next_id_++;
  pending_.emplace(id, Pending{});
  if (edge_.lookup(spec.id)) {
    serve(id, spec, std::move(on_done));
    return id;
  }
  const Origin::Ticket ticket = edge_.fetch_from_origin(
      spec.id, spec.bytes,  // same object => same size for every requester
      spec.weight,
      [this, alive = alive_, id, spec,
       on_done = std::move(on_done)](const net::TransferResult& r) mutable {
        if (!*alive) return;
        if (!r.completed()) {
          // Backhaul fault or our own cancel: nothing reached the client.
          pending_.erase(id);
          net::TransferResult client = r;
          client.bytes_delivered = 0;
          if (on_done) on_done(client);
          return;
        }
        serve(id, spec, std::move(on_done));
      });
  auto it = pending_.find(id);
  SPERKE_CHECK(it != pending_.end(), "EdgeSource::fetch: pending entry lost");
  it->second.ticket = ticket;
  return id;
}

void EdgeSource::serve(net::FetchId id, const net::FetchSpec& spec,
                       net::TransferCallback on_done) {
  const net::TransferId serve_id = access_.start_transfer(
      spec.bytes,
      [this, alive = alive_, id,
       on_done = std::move(on_done)](const net::TransferResult& r) {
        if (*alive) pending_.erase(id);
        if (on_done) on_done(r);
      },
      spec.weight);
  auto it = pending_.find(id);
  SPERKE_CHECK(it != pending_.end(), "EdgeSource::serve: pending entry lost");
  it->second.serving = true;
  it->second.serve_id = serve_id;
}

bool EdgeSource::cancel(net::FetchId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  if (it->second.serving) {
    // Link::cancel fires the serve callback synchronously (kCancelled),
    // which erases the pending entry.
    return access_.cancel(it->second.serve_id);
  }
  // Waiting on the origin: detach our waiter. Origin::cancel fires our
  // origin callback synchronously with kCancelled, which erases the entry
  // and forwards kCancelled (0 bytes) to the client — exactly the
  // Link::cancel contract. The backhaul transfer keeps running for the
  // cache's benefit.
  return edge_.origin().cancel(it->second.ticket);
}

}  // namespace sperke::cdn
