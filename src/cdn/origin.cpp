#include "cdn/origin.h"

#include "util/check.h"

namespace sperke::cdn {

Origin::Origin(net::Link& backhaul, obs::Telemetry* telemetry)
    : backhaul_(backhaul) {
  if (telemetry != nullptr) {
    egress_metric_ = &telemetry->metrics().counter("cdn.origin.egress_bytes");
  }
}

Origin::~Origin() { *alive_ = false; }

Origin::Ticket Origin::fetch(const net::ChunkId& id, std::int64_t bytes,
                             double weight, net::TransferCallback on_done) {
  SPERKE_CHECK(bytes > 0, "Origin::fetch: non-positive bytes ", bytes);
  const Ticket ticket = next_ticket_++;
  auto it = inflight_.find(id);
  if (it == inflight_.end()) {
    it = inflight_.emplace(id, Pending{.bytes = bytes, .waiters = {}}).first;
    ++transfers_;
    backhaul_.start_transfer(
        bytes,
        [this, alive = alive_, id](const net::TransferResult& r) {
          if (!*alive) return;
          on_transfer_settled(id, r);
        },
        weight);
  } else {
    // Same ChunkId must mean same object: a size mismatch would silently
    // deliver the wrong byte count to whoever joined second.
    SPERKE_CHECK(it->second.bytes == bytes,
                 "Origin::fetch: coalesced size mismatch (", it->second.bytes,
                 " vs ", bytes, ")");
  }
  it->second.waiters.push_back({ticket, std::move(on_done)});
  tickets_.emplace(ticket, id);
  return ticket;
}

bool Origin::cancel(Ticket ticket) {
  auto tit = tickets_.find(ticket);
  if (tit == tickets_.end()) return false;
  const net::ChunkId id = tit->second;
  tickets_.erase(tit);
  auto pit = inflight_.find(id);
  SPERKE_CHECK(pit != inflight_.end(), "Origin::cancel: ticket without transfer");
  std::vector<Waiter>& waiters = pit->second.waiters;
  for (auto wit = waiters.begin(); wit != waiters.end(); ++wit) {
    if (wit->ticket != ticket) continue;
    net::TransferCallback cb = std::move(wit->on_done);
    waiters.erase(wit);
    // Mirror net::Link::cancel: the caller's callback fires synchronously
    // with kCancelled. The transfer keeps running even with zero waiters
    // left — the edge cache still wants the bytes it paid for.
    if (cb) {
      cb(net::TransferResult{.status = net::TransferStatus::kCancelled,
                             .time = backhaul_.simulator().now(),
                             .bytes_delivered = 0});
    }
    return true;
  }
  SPERKE_CHECK(false, "Origin::cancel: ticket index out of sync");
  return false;
}

void Origin::on_transfer_settled(const net::ChunkId& id,
                                 const net::TransferResult& r) {
  auto it = inflight_.find(id);
  SPERKE_CHECK(it != inflight_.end(), "Origin: settle without pending transfer");
  Pending pending = std::move(it->second);
  // Clear the in-flight state *before* firing anyone: a waiter's callback
  // may re-fetch the same id (transport retry), which must start a fresh
  // transfer rather than join the one that just settled.
  inflight_.erase(it);
  for (const Waiter& w : pending.waiters) tickets_.erase(w.ticket);
  egress_bytes_ += r.bytes_delivered;
  if (egress_metric_ != nullptr) egress_metric_->add(r.bytes_delivered);
  if (on_settled_) on_settled_(id, r);
  for (Waiter& w : pending.waiters) {
    if (w.on_done) w.on_done(r);
  }
}

}  // namespace sperke::cdn
