// Deterministic fault injection for network links (DESIGN.md §10).
//
// A FaultPlan is a *schedule*, not a random process: outage / capacity /
// RTT disturbances are fixed windows in simulation time, and the only
// stochastic element — per-transfer failures — draws from a private stream
// seeded by the plan, in transfer-start order. Two runs of the same
// (LinkConfig, workload) therefore fail the exact same transfers at the
// exact same instants, which is what lets chaos worlds run sharded and
// byte-identically at any thread count (engine determinism contract).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace sperke::net {

// One timed disturbance. `factor` is interpreted by the list the window
// lives in (capacity multiplier or RTT multiplier); outages ignore it.
struct FaultWindow {
  double start_s = 0.0;
  double duration_s = 0.0;
  double factor = 1.0;

  [[nodiscard]] double end_s() const { return start_s + duration_s; }
  [[nodiscard]] bool contains_s(double t_s) const {
    return t_s >= start_s && t_s < end_s();
  }
};

// The complete fault schedule of one link. An empty plan is the default and
// guarantees byte-identical behaviour to a fault-free link.
struct FaultPlan {
  // Hard outages: capacity is zero inside the window, every in-flight
  // transfer fails at window start, and transfers issued during the window
  // fail one RTT after they start (the request times out at the edge).
  std::vector<FaultWindow> outages;
  // Capacity collapses: link capacity is multiplied by factor ∈ (0, 1].
  std::vector<FaultWindow> capacity_collapses;
  // RTT spikes: effective RTT is multiplied by factor ≥ 1 (warmup delay and
  // the Mathis cap both see the spike).
  std::vector<FaultWindow> rtt_spikes;
  // Per-transfer failure probability in [0, 1): each started transfer is
  // independently marked to fail mid-flight, after delivering a seeded
  // uniform fraction of its bytes.
  double transfer_failure_prob = 0.0;
  // Seeds the per-transfer failure stream. Engine worlds built from a
  // template plan derive per-group seeds as `seed + group` (DESIGN.md §10).
  std::uint64_t seed = 1;

  [[nodiscard]] bool empty() const {
    return outages.empty() && capacity_collapses.empty() &&
           rtt_spikes.empty() && transfer_failure_prob <= 0.0;
  }
};

// Throws std::invalid_argument on malformed plans (negative windows,
// factors outside their legal ranges, probability outside [0,1)).
void validate(const FaultPlan& plan);

}  // namespace sperke::net
