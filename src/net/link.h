// Fluid-flow network link.
//
// Substitutes for a packet-level TCP path (DESIGN.md §4): concurrent
// transfers share the link's time-varying capacity by max-min fair
// water-filling, each transfer additionally capped by a Mathis-style
// loss/RTT throughput ceiling (rate <= 1.22*MSS/(RTT*sqrt(p))). A transfer
// delivers its first byte one RTT after it starts (request + ramp), then
// progresses at its allocated rate; completions and bandwidth-trace steps
// are simulation events.
//
// Links are also where faults happen (DESIGN.md §10): a seeded FaultPlan on
// the config injects outages, capacity collapses, RTT spikes and
// per-transfer failures as ordinary simulation events, and every transfer
// reports how it ended through a typed TransferResult.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/bandwidth_trace.h"
#include "net/fault.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/rng.h"

namespace sperke::net {

using TransferId = std::uint64_t;

struct LinkConfig {
  std::string name = "link";
  BandwidthTrace bandwidth = BandwidthTrace::constant(10'000.0);
  sim::Duration rtt = sim::milliseconds(40);
  double loss_rate = 0.0;  // [0,1); enters via the Mathis throughput cap
  FaultPlan faults;        // empty = the link never fails (byte-identical)
};

enum class TransferStatus : std::uint8_t {
  kCompleted,  // every byte delivered
  kFailed,     // injected fault: outage or seeded mid-flight failure
  kCancelled,  // caller aborted via Link::cancel
};

// How a transfer ended. `bytes_delivered` is what actually flowed: the full
// size for kCompleted, the partial progress for kFailed/kCancelled.
struct TransferResult {
  TransferStatus status = TransferStatus::kCompleted;
  sim::Time time{sim::kTimeZero};
  std::int64_t bytes_delivered = 0;

  [[nodiscard]] bool completed() const {
    return status == TransferStatus::kCompleted;
  }
};

using TransferCallback = std::function<void(const TransferResult&)>;

class Link {
 public:
  Link(sim::Simulator& simulator, LinkConfig config);
  ~Link();
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Begin transferring `bytes`; `on_complete` fires exactly once with the
  // transfer's TransferResult — kCompleted, kFailed (injected fault) or
  // kCancelled (the caller's own cancel()). `weight` sets the transfer's
  // share of the link under contention (HTTP/2-style stream priority): a
  // weight-2 transfer receives twice the bandwidth of a weight-1 transfer
  // while both are active.
  TransferId start_transfer(std::int64_t bytes, TransferCallback on_complete,
                            double weight = 1.0);

  // Abort a pending/in-flight transfer: fires its callback (synchronously)
  // with kCancelled. Bytes already delivered still count toward
  // bytes_delivered(). Returns false — and fires nothing — if the transfer
  // already finished, failed or was cancelled: the completion callback can
  // never double-fire.
  bool cancel(TransferId id);

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] double loss_rate() const { return config_.loss_rate; }

  // Effective RTT right now (config RTT scaled by any active spike window).
  [[nodiscard]] sim::Duration rtt() const;

  // Capacity of the link right now (kbps) per the bandwidth trace, scaled
  // by any active fault window (zero during an outage).
  [[nodiscard]] double capacity_kbps_now() const;

  // Per-transfer Mathis ceiling (kbps); infinity when loss_rate == 0.
  [[nodiscard]] double mathis_cap_kbps() const;

  // Is the link inside a scheduled outage window right now? (The path-down
  // signal mp failover listens for.)
  [[nodiscard]] bool in_outage() const;

  // Scheduled outage time already elapsed, in seconds.
  [[nodiscard]] double outage_seconds() const;

  // O(1): the active-transfer index is maintained incrementally.
  [[nodiscard]] int active_transfers() const {
    return static_cast<int>(active_.size());
  }
  [[nodiscard]] std::int64_t bytes_delivered() const { return bytes_delivered_; }

  // Current allocated rate of a transfer in kbps (0 while in RTT warmup or
  // if the id is unknown).
  [[nodiscard]] double transfer_rate_kbps(TransferId id) const;

  // Remaining bytes of an in-flight transfer (0 if unknown/done).
  [[nodiscard]] std::int64_t transfer_remaining_bytes(TransferId id) const;

 private:
  struct Transfer {
    double remaining_bytes = 0.0;
    std::int64_t total_bytes = 0;
    std::int64_t counted_bytes = 0;  // already added to bytes_delivered_
    double rate_bps = 0.0;
    double weight = 1.0;
    bool active = false;  // false while waiting out the initial RTT
    // Seeded mid-flight failure: the transfer fails once remaining_bytes
    // drops to this threshold. Negative = will not fail.
    double fail_at_remaining_bytes = -1.0;
    TransferCallback on_complete;
  };
  struct Completion {
    TransferId id = 0;
    TransferCallback callback;
    TransferResult result;
  };

  // Move all active transfers forward to now() at their current rates.
  void advance();
  // Recompute fair-share rates (recompute_rates) and (re)schedule the next
  // wake-up event (arm_wakeup). All three walk only the active index, so a
  // reflow is O(active + water-filling), independent of warmup transfers.
  void reflow();
  void recompute_rates();
  void arm_wakeup();
  void on_wakeup();
  void activate(TransferId id);
  void deactivate(TransferId id);
  // Outage start: fail every in-flight transfer (warmup included).
  void on_outage_begin();
  // Any fault-window boundary: settle progress and recompute rates.
  void on_fault_boundary();
  // Fault-window lookups at an absolute time.
  [[nodiscard]] bool in_outage_at(sim::Time t) const;
  [[nodiscard]] double fault_capacity_factor_at(sim::Time t) const;
  void fire_completions(std::vector<Completion> completions);
  // DCHECK-build verification that active_ mirrors transfers_: strictly
  // ascending ids, every entry present and flagged active, pointers fresh.
  // Compiled out entirely (if constexpr) outside the check preset.
  void dcheck_active_consistent() const;

  sim::Simulator& simulator_;
  LinkConfig config_;
  std::map<TransferId, Transfer> transfers_;
  // Active transfers sorted by ascending id — the same iteration order as
  // the transfers_ map, which the water-filling weight sums depend on for
  // bit-exact determinism. Map nodes are pointer-stable, so the raw
  // pointers survive unrelated inserts/erases.
  std::vector<std::pair<TransferId, Transfer*>> active_;
  std::vector<Transfer*> waterfill_scratch_;  // reused by recompute_rates()
  std::vector<Completion> completed_scratch_;
  TransferId next_id_ = 1;
  sim::Time last_update_ = sim::kTimeZero;
  sim::EventId wakeup_{};
  bool wakeup_armed_ = false;
  // Link capacity observed by the last recompute_rates(); lets on_wakeup()
  // skip the recompute when nothing completed and capacity is unchanged
  // (the recomputation would reproduce the current rates bit-for-bit).
  double rates_capacity_bps_ = -1.0;
  std::int64_t bytes_delivered_ = 0;
  // Check-preset-only double-fire detector: every TransferId whose
  // completion callback has already run. Populated under
  // SPERKE_DCHECK_IS_ON only; stays empty (and untouched) in release.
  std::set<TransferId> fired_ids_;
  // Fault state. has_faults_ gates every fault check so an empty plan keeps
  // the hot path (and its floating-point results) bit-identical.
  bool has_faults_ = false;
  Rng fault_rng_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sperke::net
