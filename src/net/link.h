// Fluid-flow network link.
//
// Substitutes for a packet-level TCP path (DESIGN.md §4): concurrent
// transfers share the link's time-varying capacity by max-min fair
// water-filling, each transfer additionally capped by a Mathis-style
// loss/RTT throughput ceiling (rate <= 1.22*MSS/(RTT*sqrt(p))). A transfer
// delivers its first byte one RTT after it starts (request + ramp), then
// progresses at its allocated rate; completions and bandwidth-trace steps
// are simulation events.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/bandwidth_trace.h"
#include "sim/simulator.h"

namespace sperke::net {

using TransferId = std::uint64_t;

struct LinkConfig {
  std::string name = "link";
  BandwidthTrace bandwidth = BandwidthTrace::constant(10'000.0);
  sim::Duration rtt = sim::milliseconds(40);
  double loss_rate = 0.0;  // [0,1); enters via the Mathis throughput cap
};

class Link {
 public:
  Link(sim::Simulator& simulator, LinkConfig config);
  ~Link();
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Begin transferring `bytes`; `on_complete` fires (once) at completion.
  // `weight` sets the transfer's share of the link under contention
  // (HTTP/2-style stream priority): a weight-2 transfer receives twice the
  // bandwidth of a weight-1 transfer while both are active.
  TransferId start_transfer(std::int64_t bytes,
                            std::function<void(sim::Time)> on_complete,
                            double weight = 1.0);

  // Abort a pending/in-flight transfer. Bytes already delivered still count
  // toward bytes_delivered(). Returns false if already finished/cancelled.
  bool cancel(TransferId id);

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] sim::Duration rtt() const { return config_.rtt; }
  [[nodiscard]] double loss_rate() const { return config_.loss_rate; }

  // Capacity of the link right now (kbps) per the bandwidth trace.
  [[nodiscard]] double capacity_kbps_now() const;

  // Per-transfer Mathis ceiling (kbps); infinity when loss_rate == 0.
  [[nodiscard]] double mathis_cap_kbps() const;

  // O(1): the active-transfer index is maintained incrementally.
  [[nodiscard]] int active_transfers() const {
    return static_cast<int>(active_.size());
  }
  [[nodiscard]] std::int64_t bytes_delivered() const { return bytes_delivered_; }

  // Current allocated rate of a transfer in kbps (0 while in RTT warmup or
  // if the id is unknown).
  [[nodiscard]] double transfer_rate_kbps(TransferId id) const;

  // Remaining bytes of an in-flight transfer (0 if unknown/done).
  [[nodiscard]] std::int64_t transfer_remaining_bytes(TransferId id) const;

 private:
  struct Transfer {
    double remaining_bytes = 0.0;
    std::int64_t total_bytes = 0;
    std::int64_t counted_bytes = 0;  // already added to bytes_delivered_
    double rate_bps = 0.0;
    double weight = 1.0;
    bool active = false;  // false while waiting out the initial RTT
    std::function<void(sim::Time)> on_complete;
  };

  // Move all active transfers forward to now() at their current rates.
  void advance();
  // Recompute fair-share rates (recompute_rates) and (re)schedule the next
  // wake-up event (arm_wakeup). All three walk only the active index, so a
  // reflow is O(active + water-filling), independent of warmup transfers.
  void reflow();
  void recompute_rates();
  void arm_wakeup();
  void on_wakeup();
  void activate(TransferId id);
  void deactivate(TransferId id);

  sim::Simulator& simulator_;
  LinkConfig config_;
  std::map<TransferId, Transfer> transfers_;
  // Active transfers sorted by ascending id — the same iteration order as
  // the transfers_ map, which the water-filling weight sums depend on for
  // bit-exact determinism. Map nodes are pointer-stable, so the raw
  // pointers survive unrelated inserts/erases.
  std::vector<std::pair<TransferId, Transfer*>> active_;
  std::vector<Transfer*> waterfill_scratch_;  // reused by recompute_rates()
  std::vector<std::function<void(sim::Time)>> completed_scratch_;
  TransferId next_id_ = 1;
  sim::Time last_update_ = sim::kTimeZero;
  sim::EventId wakeup_{};
  bool wakeup_armed_ = false;
  // Link capacity observed by the last recompute_rates(); lets on_wakeup()
  // skip the recompute when nothing completed and capacity is unchanged
  // (the recomputation would reproduce the current rates bit-for-bit).
  double rates_capacity_bps_ = -1.0;
  std::int64_t bytes_delivered_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sperke::net
