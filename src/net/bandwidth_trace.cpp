#include "net/bandwidth_trace.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"
#include "util/rng.h"

namespace sperke::net {

BandwidthTrace::BandwidthTrace(std::vector<std::pair<sim::Time, double>> segments)
    : segments_(std::move(segments)) {
  if (segments_.empty()) throw std::invalid_argument("BandwidthTrace: empty");
  if (segments_.front().first != sim::kTimeZero) {
    throw std::invalid_argument("BandwidthTrace: first segment must start at 0");
  }
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].second < 0.0) {
      throw std::invalid_argument("BandwidthTrace: negative bandwidth");
    }
    if (i > 0 && segments_[i].first <= segments_[i - 1].first) {
      throw std::invalid_argument("BandwidthTrace: segments not strictly increasing");
    }
  }
}

BandwidthTrace BandwidthTrace::constant(double kbps) {
  return BandwidthTrace({{sim::kTimeZero, kbps}});
}

BandwidthTrace BandwidthTrace::steps(
    const std::vector<std::pair<double, double>>& steps_s_kbps) {
  std::vector<std::pair<sim::Time, double>> segments;
  segments.reserve(steps_s_kbps.size());
  for (const auto& [s, kbps] : steps_s_kbps) {
    segments.emplace_back(sim::seconds(s), kbps);
  }
  return BandwidthTrace(std::move(segments));
}

BandwidthTrace BandwidthTrace::random_walk(double mean_kbps, double sigma,
                                           double interval_s, double duration_s,
                                           std::uint64_t seed, double min_kbps,
                                           double max_kbps) {
  if (interval_s <= 0.0 || duration_s <= 0.0) {
    throw std::invalid_argument("random_walk: non-positive interval/duration");
  }
  Rng rng(seed);
  std::vector<std::pair<sim::Time, double>> segments;
  double level = mean_kbps;
  for (double t = 0.0; t < duration_s; t += interval_s) {
    segments.emplace_back(sim::seconds(t), std::clamp(level, min_kbps, max_kbps));
    // Multiplicative step with mild mean reversion toward mean_kbps.
    const double step = std::exp(rng.normal(0.0, sigma));
    level = level * step;
    level += 0.1 * (mean_kbps - level);
  }
  return BandwidthTrace(std::move(segments));
}

BandwidthTrace BandwidthTrace::markov_two_state(double good_kbps, double bad_kbps,
                                                double mean_good_s, double mean_bad_s,
                                                double duration_s, std::uint64_t seed) {
  if (mean_good_s <= 0.0 || mean_bad_s <= 0.0 || duration_s <= 0.0) {
    throw std::invalid_argument("markov_two_state: non-positive durations");
  }
  Rng rng(seed);
  std::vector<std::pair<sim::Time, double>> segments;
  bool good = true;
  double t = 0.0;
  while (t < duration_s) {
    segments.emplace_back(sim::seconds(t), good ? good_kbps : bad_kbps);
    t += rng.exponential(good ? mean_good_s : mean_bad_s);
    good = !good;
  }
  return BandwidthTrace(std::move(segments));
}

double BandwidthTrace::kbps_at(sim::Time t) const {
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](sim::Time value, const auto& seg) { return value < seg.first; });
  return std::prev(it)->second;  // first segment starts at 0, so it != begin()
}

std::optional<sim::Time> BandwidthTrace::next_change_after(sim::Time t) const {
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](sim::Time value, const auto& seg) { return value < seg.first; });
  if (it == segments_.end()) return std::nullopt;
  return it->first;
}

double BandwidthTrace::average_kbps(sim::Duration horizon) const {
  if (horizon <= sim::Duration{0}) throw std::invalid_argument("average_kbps: horizon <= 0");
  double weighted = 0.0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const sim::Time start = segments_[i].first;
    if (start >= horizon) break;
    const sim::Time end =
        (i + 1 < segments_.size()) ? std::min<sim::Time>(segments_[i + 1].first, horizon)
                                   : horizon;
    weighted += segments_[i].second * sim::to_seconds(end - start);
  }
  return weighted / sim::to_seconds(horizon);
}

std::string BandwidthTrace::to_csv() const {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row({"start_seconds", "kbps"});
  for (const auto& [t, kbps] : segments_) {
    writer.write_row({std::to_string(sim::to_seconds(t)), std::to_string(kbps)});
  }
  return os.str();
}

BandwidthTrace BandwidthTrace::from_csv(const std::string& text) {
  const auto rows = parse_csv(text);
  if (rows.size() < 2) throw std::runtime_error("BandwidthTrace: CSV too short");
  std::vector<std::pair<double, double>> steps;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].size() != 2) throw std::runtime_error("BandwidthTrace: bad CSV row");
    steps.emplace_back(std::stod(rows[i][0]), std::stod(rows[i][1]));
  }
  return BandwidthTrace::steps(steps);
}

}  // namespace sperke::net
