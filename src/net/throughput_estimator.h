// Client-side throughput estimation feeding rate adaptation ("Network
// Condition Estimation" box of Figure 4). Two standard estimators:
// EWMA over per-transfer throughput samples, and the harmonic mean of the
// last K samples (robust to outliers; used by MPC-style controllers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string_view>

#include "sim/time.h"

namespace sperke::net {

class ThroughputEstimator {
 public:
  virtual ~ThroughputEstimator() = default;

  // Record one completed transfer.
  virtual void record(std::int64_t bytes, sim::Duration elapsed) = 0;

  // Current estimate in kbps; 0 before any sample.
  [[nodiscard]] virtual double estimate_kbps() const = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

class EwmaEstimator final : public ThroughputEstimator {
 public:
  explicit EwmaEstimator(double alpha = 0.3);

  void record(std::int64_t bytes, sim::Duration elapsed) override;
  [[nodiscard]] double estimate_kbps() const override { return estimate_kbps_; }
  [[nodiscard]] std::string_view name() const override { return "ewma"; }

 private:
  double alpha_;
  double estimate_kbps_ = 0.0;
  bool primed_ = false;
};

class HarmonicMeanEstimator final : public ThroughputEstimator {
 public:
  explicit HarmonicMeanEstimator(std::size_t window = 5);

  void record(std::int64_t bytes, sim::Duration elapsed) override;
  [[nodiscard]] double estimate_kbps() const override;
  [[nodiscard]] std::string_view name() const override { return "harmonic"; }

 private:
  std::size_t window_;
  std::deque<double> samples_kbps_;
};

[[nodiscard]] std::unique_ptr<ThroughputEstimator> make_estimator(std::string_view name);

// Aggregate goodput across *concurrent* transfers: per-transfer samples
// under-read the link by the concurrency factor (each connection only sees
// its fair share), so this estimator divides the bytes of the last K
// completed transfers by the union of their active intervals.
class AggregateWindowEstimator {
 public:
  explicit AggregateWindowEstimator(std::size_t window = 12);

  void record(sim::Time start, sim::Time end, std::int64_t bytes);

  // 0 before any sample.
  [[nodiscard]] double estimate_kbps() const;

 private:
  struct Sample {
    sim::Time start{sim::kTimeZero};
    sim::Time end{sim::kTimeZero};
    std::int64_t bytes = 0;
  };
  std::size_t window_;
  std::deque<Sample> samples_;
};

}  // namespace sperke::net
