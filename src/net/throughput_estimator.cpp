#include "net/throughput_estimator.h"

#include <algorithm>
#include <utility>
#include <vector>
#include <stdexcept>
#include <string>

namespace sperke::net {
namespace {

double sample_kbps(std::int64_t bytes, sim::Duration elapsed) {
  const double secs = sim::to_seconds(elapsed);
  if (bytes <= 0 || secs <= 0.0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / secs / 1000.0;
}

}  // namespace

EwmaEstimator::EwmaEstimator(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0) throw std::invalid_argument("EwmaEstimator: bad alpha");
}

void EwmaEstimator::record(std::int64_t bytes, sim::Duration elapsed) {
  const double sample = sample_kbps(bytes, elapsed);
  if (sample <= 0.0) return;
  if (!primed_) {
    estimate_kbps_ = sample;
    primed_ = true;
  } else {
    estimate_kbps_ = alpha_ * sample + (1.0 - alpha_) * estimate_kbps_;
  }
}

HarmonicMeanEstimator::HarmonicMeanEstimator(std::size_t window) : window_(window) {
  if (window == 0) throw std::invalid_argument("HarmonicMeanEstimator: zero window");
}

void HarmonicMeanEstimator::record(std::int64_t bytes, sim::Duration elapsed) {
  const double sample = sample_kbps(bytes, elapsed);
  if (sample <= 0.0) return;
  samples_kbps_.push_back(sample);
  while (samples_kbps_.size() > window_) samples_kbps_.pop_front();
}

double HarmonicMeanEstimator::estimate_kbps() const {
  if (samples_kbps_.empty()) return 0.0;
  double inv_sum = 0.0;
  for (double s : samples_kbps_) inv_sum += 1.0 / s;
  return static_cast<double>(samples_kbps_.size()) / inv_sum;
}

AggregateWindowEstimator::AggregateWindowEstimator(std::size_t window)
    : window_(window) {
  if (window == 0) throw std::invalid_argument("AggregateWindowEstimator: zero window");
}

void AggregateWindowEstimator::record(sim::Time start, sim::Time end,
                                      std::int64_t bytes) {
  if (end < start || bytes <= 0) return;
  samples_.push_back({start, end, bytes});
  while (samples_.size() > window_) samples_.pop_front();
}

double AggregateWindowEstimator::estimate_kbps() const {
  if (samples_.empty()) return 0.0;
  // Union of the active intervals (samples arrive ordered by end time, but
  // their starts may interleave arbitrarily).
  std::vector<std::pair<sim::Time, sim::Time>> intervals;
  intervals.reserve(samples_.size());
  std::int64_t total_bytes = 0;
  for (const Sample& s : samples_) {
    intervals.emplace_back(s.start, s.end);
    total_bytes += s.bytes;
  }
  std::sort(intervals.begin(), intervals.end());
  sim::Duration covered{0};
  sim::Time cursor = intervals.front().first;
  for (const auto& [start, end] : intervals) {
    const sim::Time from = std::max(cursor, start);
    if (end > from) {
      covered += end - from;
      cursor = end;
    }
  }
  const double secs = sim::to_seconds(covered);
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(total_bytes) * 8.0 / secs / 1000.0;
}

std::unique_ptr<ThroughputEstimator> make_estimator(std::string_view name) {
  if (name == "ewma") return std::make_unique<EwmaEstimator>();
  if (name == "harmonic") return std::make_unique<HarmonicMeanEstimator>();
  throw std::invalid_argument("unknown estimator: " + std::string(name));
}

}  // namespace sperke::net
