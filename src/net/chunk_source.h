// The fetch seam between transports and the network topology.
//
// core::*Transport used to take a bare net::Link&, which left no place for
// a cache tier to live: every byte a client fetched came straight off its
// own access link. ChunkSource is the redesigned API — "fetch this chunk,
// tell me when it settles" — behind which a fetch can be a direct link
// transfer (LinkSource, bit-identical to the old behaviour) or a trip
// through a CDN edge cache with an origin behind it (cdn::EdgeSource,
// DESIGN.md §15).
//
// ChunkId is the canonical identity of a downloadable object, replacing the
// ad-hoc (tile, chunk, level) tuples previously threaded through transport
// and telemetry request spans. It is what caches key on, what coalescing
// dedupes on, and what trace labels are derived from.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "media/chunk.h"
#include "net/link.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace sperke::net {

// Canonical key of one downloadable media object, as the network tier sees
// it. `layer` disambiguates the quality axis: layer == -1 is a single-layer
// (AVC) object whose ladder rung is `quality`; layer >= 0 is the SVC layer
// object `layer` (quality stays 0 — the layer IS the quality coordinate).
// Single-video worlds leave `video` at 0.
struct ChunkId {
  std::int32_t video = 0;    // content id
  std::int32_t chunk = 0;    // temporal index (media::ChunkIndex)
  std::int32_t tile = 0;     // spatial tile (geo::TileId)
  std::int32_t quality = 0;  // AVC ladder rung; 0 for SVC layer objects
  std::int32_t layer = -1;   // SVC layer index; -1 = single-layer (AVC)

  friend auto operator<=>(const ChunkId&, const ChunkId&) = default;

  [[nodiscard]] constexpr bool svc() const { return layer >= 0; }

  // The single "level" label telemetry and goldens carry: the AVC ladder
  // rung or the SVC layer index, exactly as media::ChunkAddress::level.
  [[nodiscard]] constexpr std::int32_t level() const {
    return svc() ? layer : quality;
  }
};

// Lossless round-trip with the media-layer address (the key ABR plans in).
[[nodiscard]] constexpr ChunkId to_chunk_id(const media::ChunkAddress& address,
                                            std::int32_t video = 0) {
  const bool svc = address.encoding == media::Encoding::kSvc;
  return ChunkId{.video = video,
                 .chunk = address.key.index,
                 .tile = address.key.tile,
                 .quality = svc ? 0 : address.level,
                 .layer = svc ? address.level : -1};
}

[[nodiscard]] constexpr media::ChunkAddress to_chunk_address(const ChunkId& id) {
  return media::ChunkAddress{
      .key = {.tile = id.tile, .index = id.chunk},
      .encoding = id.svc() ? media::Encoding::kSvc : media::Encoding::kAvc,
      .level = id.level()};
}

// Handle for one outstanding fetch, scoped to the issuing ChunkSource.
using FetchId = std::uint64_t;

// One fetch as a transport submits it. `weight` is the HTTP/2-style stream
// priority forwarded to whichever link ends up carrying the bytes;
// `deadline` is advisory (a topology may use it to order or shed work —
// the direct LinkSource ignores it, the transport's own timeout machinery
// still cancels late fetches).
struct FetchSpec {
  ChunkId id;
  std::int64_t bytes = 0;
  double weight = 1.0;
  sim::Time deadline{sim::kTimeZero};
};

// Pure fetch interface consumed by core::SingleLinkTransport (and anything
// else that wants bytes without caring what topology delivers them).
// Contract, mirroring net::Link:
//   * fetch(): `on_done` fires exactly once with a typed TransferResult —
//     kCompleted (bytes_delivered == spec.bytes at the client), kFailed
//     (an upstream fault; bytes_delivered is what reached the client, 0
//     when the failure happened upstream of the access link), or
//     kCancelled (the caller's own cancel()).
//   * cancel(): fires the callback synchronously with kCancelled; returns
//     false — and fires nothing — if the fetch already settled, so the
//     completion callback can never double-fire.
//   * rtt()/simulator() expose the client-side clock and first-byte latency
//     the transport's throughput estimator and timeout events need.
class ChunkSource {
 public:
  virtual ~ChunkSource() = default;

  virtual FetchId fetch(const FetchSpec& spec, TransferCallback on_done) = 0;
  virtual bool cancel(FetchId id) = 0;

  // Effective client-side RTT right now (first-byte latency of a fetch).
  [[nodiscard]] virtual sim::Duration rtt() const = 0;
  [[nodiscard]] virtual sim::Simulator& simulator() = 0;
};

// Direct-link ChunkSource: every fetch is one transfer on `link`, verbatim.
// This is the adapter that keeps pre-CDN worlds bit-identical — it forwards
// (bytes, callback, weight) to Link::start_transfer unchanged and never
// looks at the ChunkId or deadline.
class LinkSource final : public ChunkSource {
 public:
  // `link` must outlive the source.
  explicit LinkSource(Link& link) : link_(link) {}

  FetchId fetch(const FetchSpec& spec, TransferCallback on_done) override {
    return link_.start_transfer(spec.bytes, std::move(on_done), spec.weight);
  }
  bool cancel(FetchId id) override { return link_.cancel(id); }

  [[nodiscard]] sim::Duration rtt() const override { return link_.rtt(); }
  [[nodiscard]] sim::Simulator& simulator() override {
    return link_.simulator();
  }

  [[nodiscard]] Link& link() { return link_; }

 private:
  Link& link_;
};

}  // namespace sperke::net

template <>
struct std::hash<sperke::net::ChunkId> {
  std::size_t operator()(const sperke::net::ChunkId& id) const noexcept {
    const auto lo =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.chunk)) << 32) |
        static_cast<std::uint32_t>(id.tile);
    const auto hi =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.quality)) << 32) |
        static_cast<std::uint32_t>(id.layer);
    std::uint64_t h = std::hash<std::uint64_t>{}(lo);
    h ^= std::hash<std::uint64_t>{}(hi ^ static_cast<std::uint32_t>(id.video)) +
         0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};
