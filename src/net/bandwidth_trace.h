// Piecewise-constant link bandwidth over virtual time, plus generators for
// the network conditions the paper's experiments need: fixed caps (the tc
// shaping of §3.4.1), LTE-like fluctuation, and bursty two-state loss of
// coverage.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace sperke::net {

class BandwidthTrace {
 public:
  // Segments: (start time, bandwidth kbps), sorted by start time; the first
  // segment must start at 0, bandwidths must be non-negative. The last
  // segment extends forever.
  explicit BandwidthTrace(std::vector<std::pair<sim::Time, double>> segments);

  [[nodiscard]] static BandwidthTrace constant(double kbps);

  // Steps given as (start seconds, kbps).
  [[nodiscard]] static BandwidthTrace steps(
      const std::vector<std::pair<double, double>>& steps_s_kbps);

  // LTE-like multiplicative random walk around `mean_kbps`, resampled every
  // `interval_s`, clamped to [min_kbps, max_kbps], covering `duration_s`.
  [[nodiscard]] static BandwidthTrace random_walk(double mean_kbps, double sigma,
                                                  double interval_s, double duration_s,
                                                  std::uint64_t seed,
                                                  double min_kbps = 100.0,
                                                  double max_kbps = 1e6);

  // Two-state (good/bad) Markov process with exponential holding times.
  [[nodiscard]] static BandwidthTrace markov_two_state(
      double good_kbps, double bad_kbps, double mean_good_s, double mean_bad_s,
      double duration_s, std::uint64_t seed);

  [[nodiscard]] double kbps_at(sim::Time t) const;

  // Earliest segment boundary strictly after `t`, if any.
  [[nodiscard]] std::optional<sim::Time> next_change_after(sim::Time t) const;

  [[nodiscard]] const std::vector<std::pair<sim::Time, double>>& segments() const {
    return segments_;
  }

  // Time-average bandwidth over [0, horizon].
  [[nodiscard]] double average_kbps(sim::Duration horizon) const;

  // CSV round-trip: two columns, start_seconds,kbps.
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] static BandwidthTrace from_csv(const std::string& text);

 private:
  std::vector<std::pair<sim::Time, double>> segments_;
};

}  // namespace sperke::net
