#include "net/fault.h"

#include <stdexcept>

namespace sperke::net {
namespace {

void validate_windows(const std::vector<FaultWindow>& windows) {
  for (const FaultWindow& w : windows) {
    if (w.start_s < 0.0) throw std::invalid_argument("FaultPlan: negative window start");
    if (w.duration_s <= 0.0) {
      throw std::invalid_argument("FaultPlan: non-positive window duration");
    }
  }
}

}  // namespace

void validate(const FaultPlan& plan) {
  validate_windows(plan.outages);
  validate_windows(plan.capacity_collapses);
  validate_windows(plan.rtt_spikes);
  for (const FaultWindow& w : plan.capacity_collapses) {
    if (w.factor <= 0.0 || w.factor > 1.0) {
      throw std::invalid_argument("FaultPlan: capacity collapse factor outside (0,1]");
    }
  }
  for (const FaultWindow& w : plan.rtt_spikes) {
    if (w.factor < 1.0) throw std::invalid_argument("FaultPlan: RTT spike factor < 1");
  }
  if (plan.transfer_failure_prob < 0.0 || plan.transfer_failure_prob >= 1.0) {
    throw std::invalid_argument("FaultPlan: transfer_failure_prob outside [0,1)");
  }
}

}  // namespace sperke::net
