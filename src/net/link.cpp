#include "net/link.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sperke::net {
namespace {

constexpr double kMssBytes = 1460.0;
constexpr double kMathisConstant = 1.22;
// A transfer is complete when less than half a byte remains (absorbs
// floating-point drift in the fluid model).
constexpr double kCompleteEpsilonBytes = 0.5;

}  // namespace

Link::Link(sim::Simulator& simulator, LinkConfig config)
    : simulator_(simulator),
      config_(std::move(config)),
      fault_rng_(config_.faults.seed) {
  if (config_.rtt < sim::Duration{0}) throw std::invalid_argument("Link: negative RTT");
  if (config_.loss_rate < 0.0 || config_.loss_rate >= 1.0) {
    throw std::invalid_argument("Link: loss_rate must be in [0,1)");
  }
  validate(config_.faults);
  has_faults_ = !config_.faults.empty();
  last_update_ = simulator_.now();
  if (has_faults_) {
    // Execute the schedule as simulation events. Outage starts fail the
    // in-flight set; every other boundary just settles progress and
    // recomputes rates under the new capacity/RTT factors.
    for (const FaultWindow& w : config_.faults.outages) {
      simulator_.schedule_at(sim::seconds(w.start_s), [this, alive = alive_] {
        if (*alive) on_outage_begin();
      });
      simulator_.schedule_at(sim::seconds(w.end_s()), [this, alive = alive_] {
        if (*alive) on_fault_boundary();
      });
    }
    const auto boundary_events = [this](const std::vector<FaultWindow>& windows) {
      for (const FaultWindow& w : windows) {
        for (const double edge_s : {w.start_s, w.end_s()}) {
          simulator_.schedule_at(sim::seconds(edge_s), [this, alive = alive_] {
            if (*alive) on_fault_boundary();
          });
        }
      }
    };
    boundary_events(config_.faults.capacity_collapses);
    boundary_events(config_.faults.rtt_spikes);
  }
}

Link::~Link() { *alive_ = false; }

bool Link::in_outage_at(sim::Time t) const {
  if (!has_faults_) return false;
  const double t_s = sim::to_seconds(t);
  for (const FaultWindow& w : config_.faults.outages) {
    if (w.contains_s(t_s)) return true;
  }
  return false;
}

bool Link::in_outage() const { return in_outage_at(simulator_.now()); }

double Link::outage_seconds() const {
  if (!has_faults_) return 0.0;
  const double now_s = sim::to_seconds(simulator_.now());
  double total = 0.0;
  for (const FaultWindow& w : config_.faults.outages) {
    total += std::max(0.0, std::min(now_s, w.end_s()) - w.start_s);
  }
  return total;
}

double Link::fault_capacity_factor_at(sim::Time t) const {
  if (in_outage_at(t)) return 0.0;
  double factor = 1.0;
  const double t_s = sim::to_seconds(t);
  for (const FaultWindow& w : config_.faults.capacity_collapses) {
    if (w.contains_s(t_s)) factor *= w.factor;
  }
  return factor;
}

double Link::capacity_kbps_now() const {
  const double base = config_.bandwidth.kbps_at(simulator_.now());
  if (!has_faults_) return base;
  return base * fault_capacity_factor_at(simulator_.now());
}

sim::Duration Link::rtt() const {
  if (!has_faults_) return config_.rtt;
  double factor = 1.0;
  const double now_s = sim::to_seconds(simulator_.now());
  for (const FaultWindow& w : config_.faults.rtt_spikes) {
    if (w.contains_s(now_s)) factor *= w.factor;
  }
  if (factor == 1.0) return config_.rtt;
  return sim::seconds(sim::to_seconds(config_.rtt) * factor);
}

double Link::mathis_cap_kbps() const {
  if (config_.loss_rate <= 0.0) return std::numeric_limits<double>::infinity();
  const double rtt_s = std::max(sim::to_seconds(rtt()), 1e-4);
  const double bps =
      kMathisConstant * kMssBytes * 8.0 / (rtt_s * std::sqrt(config_.loss_rate));
  return bps / 1000.0;
}

double Link::transfer_rate_kbps(TransferId id) const {
  const auto it = transfers_.find(id);
  return it != transfers_.end() && it->second.active ? it->second.rate_bps / 1000.0
                                                     : 0.0;
}

std::int64_t Link::transfer_remaining_bytes(TransferId id) const {
  const auto it = transfers_.find(id);
  return it != transfers_.end()
             ? static_cast<std::int64_t>(std::ceil(it->second.remaining_bytes))
             : 0;
}

void Link::activate(TransferId id) {
  Transfer& t = transfers_.at(id);
  // Double activation would insert a duplicate active_ entry and count the
  // transfer twice in every water-filling weight sum.
  SPERKE_CHECK(!t.active, "Link: transfer activated twice");
  t.active = true;
  // Activations arrive in id order (same RTT for every transfer), so this
  // is effectively a push_back; lower_bound keeps the id ordering an
  // invariant rather than an accident.
  const auto pos = std::lower_bound(
      active_.begin(), active_.end(), id,
      [](const auto& entry, TransferId value) { return entry.first < value; });
  active_.insert(pos, {id, &t});
}

void Link::deactivate(TransferId id) {
  const auto pos = std::lower_bound(
      active_.begin(), active_.end(), id,
      [](const auto& entry, TransferId value) { return entry.first < value; });
  if (pos != active_.end() && pos->first == id) active_.erase(pos);
}

TransferId Link::start_transfer(std::int64_t bytes, TransferCallback on_complete,
                                double weight) {
  if (bytes <= 0) throw std::invalid_argument("Link: transfer of non-positive size");
  if (weight <= 0.0) throw std::invalid_argument("Link: non-positive weight");
  const TransferId id = next_id_++;
  Transfer t;
  t.remaining_bytes = static_cast<double>(bytes);
  t.total_bytes = bytes;
  t.weight = weight;
  t.on_complete = std::move(on_complete);
  if (has_faults_ && config_.faults.transfer_failure_prob > 0.0 &&
      fault_rng_.bernoulli(config_.faults.transfer_failure_prob)) {
    // Seeded mid-flight failure: the connection dies after a uniform
    // fraction of the payload has flowed. Drawn in transfer-start order,
    // so the failure pattern is a pure function of (plan seed, workload).
    const double delivered_fraction = fault_rng_.uniform(0.05, 0.95);
    t.fail_at_remaining_bytes =
        static_cast<double>(bytes) * (1.0 - delivered_fraction);
  }
  transfers_.emplace(id, std::move(t));
  // First byte flows one RTT after the request is issued.
  simulator_.schedule_after(rtt(), [this, id, alive = alive_] {
    if (!*alive) return;
    const auto it = transfers_.find(id);
    if (it == transfers_.end()) return;  // cancelled/failed during warmup
    if (has_faults_ && in_outage()) {
      // The request hit a dead link: the handshake times out after the RTT
      // instead of ever activating.
      Completion failed{id, std::move(it->second.on_complete),
                        {TransferStatus::kFailed, simulator_.now(), 0}};
      transfers_.erase(it);
      std::vector<Completion> completions = std::move(completed_scratch_);
      completions.clear();
      completions.push_back(std::move(failed));
      fire_completions(std::move(completions));
      return;
    }
    advance();
    activate(id);
    reflow();
    dcheck_active_consistent();
  });
  return id;
}

bool Link::cancel(TransferId id) {
  const auto it = transfers_.find(id);
  if (it == transfers_.end()) return false;  // finished/failed: never re-fires
  advance();
  Completion cancelled{id, std::move(it->second.on_complete),
                       {TransferStatus::kCancelled, simulator_.now(),
                        it->second.counted_bytes}};
  if (it->second.active) deactivate(id);
  transfers_.erase(it);
  reflow();
  dcheck_active_consistent();
  std::vector<Completion> completions = std::move(completed_scratch_);
  completions.clear();
  completions.push_back(std::move(cancelled));
  fire_completions(std::move(completions));
  return true;
}

void Link::on_outage_begin() {
  advance();
  // Every transfer — active or still in RTT warmup — fails at the outage
  // edge; partial progress stays counted in bytes_delivered().
  std::vector<Completion> completions = std::move(completed_scratch_);
  completions.clear();
  const sim::Time now = simulator_.now();
  for (auto& [id, t] : transfers_) {
    completions.push_back({id, std::move(t.on_complete),
                           {TransferStatus::kFailed, now, t.counted_bytes}});
  }
  transfers_.clear();
  active_.clear();
  reflow();
  fire_completions(std::move(completions));
}

void Link::on_fault_boundary() {
  advance();
  reflow();
}

void Link::advance() {
  const sim::Time now = simulator_.now();
  const double dt = sim::to_seconds(now - last_update_);
  // last_update_ only ever moves forward with the simulator clock; a
  // negative dt means time ran backwards and every fluid integral is wrong.
  SPERKE_DCHECK(dt >= 0.0, "Link: advance with negative dt=", dt);
  if (dt > 0.0) {
    for (auto& [id, t] : active_) {
      if (t->rate_bps <= 0.0) continue;
      const double delivered =
          std::min(t->remaining_bytes, t->rate_bps / 8.0 * dt);
      t->remaining_bytes -= delivered;
      const auto inc = static_cast<std::int64_t>(std::llround(delivered));
      t->counted_bytes += inc;
      bytes_delivered_ += inc;
      // Byte conservation per transfer: the fluid model can neither deliver
      // more than the object holds nor drive the residue negative.
      SPERKE_DCHECK(t->remaining_bytes >= 0.0 &&
                        t->remaining_bytes <= static_cast<double>(t->total_bytes),
                    "Link: remaining_bytes out of [0, total] for transfer ", id);
    }
  }
  last_update_ = now;
}

void Link::reflow() {
  recompute_rates();
  arm_wakeup();
}

void Link::recompute_rates() {
  // Weighted water-filling: capacity splits proportionally to transfer
  // weights, each transfer individually Mathis-capped; capacity a capped
  // transfer cannot use redistributes among the rest.
  const double capacity_bps = capacity_kbps_now() * 1000.0;
  rates_capacity_bps_ = capacity_bps;
  const double cap_bps = mathis_cap_kbps() * 1000.0;
  auto& unallocated = waterfill_scratch_;
  unallocated.clear();
  for (auto& [id, t] : active_) {
    t->rate_bps = 0.0;
    unallocated.push_back(t);
  }
  double remaining_capacity = capacity_bps;
  bool someone_capped = true;
  while (!unallocated.empty() && someone_capped && remaining_capacity > 0.0) {
    someone_capped = false;
    double total_weight = 0.0;
    for (Transfer* t : unallocated) total_weight += t->weight;
    for (auto it = unallocated.begin(); it != unallocated.end();) {
      const double share =
          remaining_capacity * (*it)->weight / total_weight;
      if (share >= cap_bps) {
        (*it)->rate_bps = cap_bps;
        remaining_capacity -= cap_bps;
        it = unallocated.erase(it);
        someone_capped = true;
      } else {
        ++it;
      }
    }
  }
  if (!unallocated.empty() && remaining_capacity > 0.0) {
    double total_weight = 0.0;
    for (Transfer* t : unallocated) total_weight += t->weight;
    for (Transfer* t : unallocated) {
      t->rate_bps = remaining_capacity * t->weight / total_weight;
    }
  }
  if constexpr (SPERKE_DCHECK_IS_ON) {
    // Rate conservation: the water-filling never allocates more than the
    // link's capacity (1e-9 relative slack for the divisions above), and
    // no transfer exceeds its Mathis ceiling.
    double allocated_bps = 0.0;
    for (const auto& [id, t] : active_) {
      allocated_bps += t->rate_bps;
      SPERKE_DCHECK(t->rate_bps <= cap_bps * (1.0 + 1e-9) + 1e-6,
                    "Link: transfer ", id, " exceeds Mathis cap");
    }
    SPERKE_DCHECK(allocated_bps <= capacity_bps * (1.0 + 1e-9) + 1e-6,
                  "Link: water-filling over-allocated ", allocated_bps,
                  " bps of ", capacity_bps);
  }
}

void Link::arm_wakeup() {
  // Next wake-up: earliest completion (or scheduled mid-flight failure) or
  // bandwidth-trace step. Fault-window boundaries have their own events.
  sim::Time next = sim::Time{std::numeric_limits<std::int64_t>::max()};
  for (const auto& [id, t] : active_) {
    if (t->rate_bps <= 0.0) continue;
    const double to_go =
        t->fail_at_remaining_bytes >= 0.0
            ? t->remaining_bytes - t->fail_at_remaining_bytes
            : t->remaining_bytes;
    const double secs = std::max(to_go, 0.0) * 8.0 / t->rate_bps;
    // Round *up* to at least one microsecond: rounding a sub-tick
    // completion down to zero would respawn this event at the same
    // instant forever.
    sim::Duration wait = sim::seconds(secs);
    if (wait <= sim::Duration{0}) wait = sim::Duration{1};
    next = std::min(next, simulator_.now() + wait);
  }
  if (const auto change = config_.bandwidth.next_change_after(simulator_.now())) {
    next = std::min(next, *change);
  }
  if (wakeup_armed_) {
    simulator_.cancel(wakeup_);
    wakeup_armed_ = false;
  }
  if (next != sim::Time{std::numeric_limits<std::int64_t>::max()}) {
    wakeup_ = simulator_.schedule_at(next, [this, alive = alive_] {
      if (!*alive) return;
      wakeup_armed_ = false;
      on_wakeup();
    });
    wakeup_armed_ = true;
  }
}

void Link::on_wakeup() {
  advance();
  // Collect completions before reflowing so freed capacity redistributes.
  // Compacting active_ in place preserves its ascending-id order, which is
  // also the callback firing order.
  std::vector<Completion> completions = std::move(completed_scratch_);
  completions.clear();
  const sim::Time now = simulator_.now();
  std::size_t keep = 0;
  for (std::size_t read = 0; read < active_.size(); ++read) {
    Transfer* t = active_[read].second;
    if (t->fail_at_remaining_bytes >= 0.0 &&
        t->remaining_bytes <= t->fail_at_remaining_bytes + kCompleteEpsilonBytes) {
      // Scheduled mid-flight failure: report the partial progress.
      completions.push_back({active_[read].first, std::move(t->on_complete),
                             {TransferStatus::kFailed, now, t->counted_bytes}});
      transfers_.erase(active_[read].first);
    } else if (t->remaining_bytes <= kCompleteEpsilonBytes) {
      // Square up the fluid rounding: a completed transfer delivered
      // exactly its size, no matter how the increments rounded.
      bytes_delivered_ += t->total_bytes - t->counted_bytes;
      completions.push_back(
          {active_[read].first, std::move(t->on_complete),
           {TransferStatus::kCompleted, now, t->total_bytes}});
      transfers_.erase(active_[read].first);
    } else {
      active_[keep++] = active_[read];
    }
  }
  active_.resize(keep);
  dcheck_active_consistent();
  if (completions.empty() && capacity_kbps_now() * 1000.0 == rates_capacity_bps_) {
    // Nothing changed: the active set is intact and capacity is what the
    // current rates were computed from, so recomputing would reproduce
    // them bit-for-bit. Just re-arm the next wake-up.
    arm_wakeup();
  } else {
    reflow();
  }
  fire_completions(std::move(completions));
}

void Link::fire_completions(std::vector<Completion> completions) {
  // The vector is a local (not the scratch member) while callbacks run: a
  // callback may destroy the Link, and a local stays valid through that.
  // The capacity returns to the scratch afterwards.
  const auto alive = alive_;
  for (Completion& c : completions) {
    if (*alive) {  // members are gone once a callback destroys the Link
      // No-double-fire: a completion only exists for a transfer already
      // erased from the tracked set — cancel() on a finished/failed id must
      // find nothing and return false, never re-fire (DESIGN.md §10).
      SPERKE_CHECK(transfers_.find(c.id) == transfers_.end(),
                   "Link: completion fired for still-tracked transfer ", c.id);
      if constexpr (SPERKE_DCHECK_IS_ON) {
        SPERKE_DCHECK(fired_ids_.insert(c.id).second,
                      "Link: completion double-fired for transfer ", c.id);
      }
    }
    if (c.callback) c.callback(c.result);
  }
  if (*alive) completed_scratch_ = std::move(completions);
}

void Link::dcheck_active_consistent() const {
  if constexpr (SPERKE_DCHECK_IS_ON) {
    TransferId prev = 0;
    for (const auto& [id, t] : active_) {
      SPERKE_DCHECK(prev < id || prev == 0,
                    "Link: active_ ids not strictly ascending at ", id);
      prev = id;
      const auto it = transfers_.find(id);
      SPERKE_DCHECK(it != transfers_.end(),
                    "Link: active_ references erased transfer ", id);
      SPERKE_DCHECK(&it->second == t && it->second.active,
                    "Link: active_ entry stale for transfer ", id);
    }
  }
}

}  // namespace sperke::net
