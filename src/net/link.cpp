#include "net/link.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sperke::net {
namespace {

constexpr double kMssBytes = 1460.0;
constexpr double kMathisConstant = 1.22;
// A transfer is complete when less than half a byte remains (absorbs
// floating-point drift in the fluid model).
constexpr double kCompleteEpsilonBytes = 0.5;

}  // namespace

Link::Link(sim::Simulator& simulator, LinkConfig config)
    : simulator_(simulator), config_(std::move(config)) {
  if (config_.rtt < sim::Duration{0}) throw std::invalid_argument("Link: negative RTT");
  if (config_.loss_rate < 0.0 || config_.loss_rate >= 1.0) {
    throw std::invalid_argument("Link: loss_rate must be in [0,1)");
  }
  last_update_ = simulator_.now();
}

Link::~Link() { *alive_ = false; }

double Link::capacity_kbps_now() const {
  return config_.bandwidth.kbps_at(simulator_.now());
}

double Link::mathis_cap_kbps() const {
  if (config_.loss_rate <= 0.0) return std::numeric_limits<double>::infinity();
  const double rtt_s = std::max(sim::to_seconds(config_.rtt), 1e-4);
  const double bps =
      kMathisConstant * kMssBytes * 8.0 / (rtt_s * std::sqrt(config_.loss_rate));
  return bps / 1000.0;
}

double Link::transfer_rate_kbps(TransferId id) const {
  const auto it = transfers_.find(id);
  return it != transfers_.end() && it->second.active ? it->second.rate_bps / 1000.0
                                                     : 0.0;
}

std::int64_t Link::transfer_remaining_bytes(TransferId id) const {
  const auto it = transfers_.find(id);
  return it != transfers_.end()
             ? static_cast<std::int64_t>(std::ceil(it->second.remaining_bytes))
             : 0;
}

void Link::activate(TransferId id) {
  Transfer& t = transfers_.at(id);
  t.active = true;
  // Activations arrive in id order (same RTT for every transfer), so this
  // is effectively a push_back; lower_bound keeps the id ordering an
  // invariant rather than an accident.
  const auto pos = std::lower_bound(
      active_.begin(), active_.end(), id,
      [](const auto& entry, TransferId value) { return entry.first < value; });
  active_.insert(pos, {id, &t});
}

void Link::deactivate(TransferId id) {
  const auto pos = std::lower_bound(
      active_.begin(), active_.end(), id,
      [](const auto& entry, TransferId value) { return entry.first < value; });
  if (pos != active_.end() && pos->first == id) active_.erase(pos);
}

TransferId Link::start_transfer(std::int64_t bytes,
                                std::function<void(sim::Time)> on_complete,
                                double weight) {
  if (bytes <= 0) throw std::invalid_argument("Link: transfer of non-positive size");
  if (weight <= 0.0) throw std::invalid_argument("Link: non-positive weight");
  const TransferId id = next_id_++;
  Transfer t;
  t.remaining_bytes = static_cast<double>(bytes);
  t.total_bytes = bytes;
  t.weight = weight;
  t.on_complete = std::move(on_complete);
  transfers_.emplace(id, std::move(t));
  // First byte flows one RTT after the request is issued.
  simulator_.schedule_after(config_.rtt, [this, id, alive = alive_] {
    if (!*alive) return;
    const auto it = transfers_.find(id);
    if (it == transfers_.end()) return;  // cancelled during warmup
    advance();
    activate(id);
    reflow();
  });
  return id;
}

bool Link::cancel(TransferId id) {
  const auto it = transfers_.find(id);
  if (it == transfers_.end()) return false;
  advance();
  if (it->second.active) deactivate(id);
  transfers_.erase(it);
  reflow();
  return true;
}

void Link::advance() {
  const sim::Time now = simulator_.now();
  const double dt = sim::to_seconds(now - last_update_);
  if (dt > 0.0) {
    for (auto& [id, t] : active_) {
      if (t->rate_bps <= 0.0) continue;
      const double delivered =
          std::min(t->remaining_bytes, t->rate_bps / 8.0 * dt);
      t->remaining_bytes -= delivered;
      const auto inc = static_cast<std::int64_t>(std::llround(delivered));
      t->counted_bytes += inc;
      bytes_delivered_ += inc;
    }
  }
  last_update_ = now;
}

void Link::reflow() {
  recompute_rates();
  arm_wakeup();
}

void Link::recompute_rates() {
  // Weighted water-filling: capacity splits proportionally to transfer
  // weights, each transfer individually Mathis-capped; capacity a capped
  // transfer cannot use redistributes among the rest.
  const double capacity_bps = capacity_kbps_now() * 1000.0;
  rates_capacity_bps_ = capacity_bps;
  const double cap_bps = mathis_cap_kbps() * 1000.0;
  auto& unallocated = waterfill_scratch_;
  unallocated.clear();
  for (auto& [id, t] : active_) {
    t->rate_bps = 0.0;
    unallocated.push_back(t);
  }
  double remaining_capacity = capacity_bps;
  bool someone_capped = true;
  while (!unallocated.empty() && someone_capped && remaining_capacity > 0.0) {
    someone_capped = false;
    double total_weight = 0.0;
    for (Transfer* t : unallocated) total_weight += t->weight;
    for (auto it = unallocated.begin(); it != unallocated.end();) {
      const double share =
          remaining_capacity * (*it)->weight / total_weight;
      if (share >= cap_bps) {
        (*it)->rate_bps = cap_bps;
        remaining_capacity -= cap_bps;
        it = unallocated.erase(it);
        someone_capped = true;
      } else {
        ++it;
      }
    }
  }
  if (!unallocated.empty() && remaining_capacity > 0.0) {
    double total_weight = 0.0;
    for (Transfer* t : unallocated) total_weight += t->weight;
    for (Transfer* t : unallocated) {
      t->rate_bps = remaining_capacity * t->weight / total_weight;
    }
  }
}

void Link::arm_wakeup() {
  // Next wake-up: earliest completion or bandwidth-trace step.
  sim::Time next = sim::Time{std::numeric_limits<std::int64_t>::max()};
  for (const auto& [id, t] : active_) {
    if (t->rate_bps <= 0.0) continue;
    const double secs = std::max(t->remaining_bytes, 0.0) * 8.0 / t->rate_bps;
    // Round *up* to at least one microsecond: rounding a sub-tick
    // completion down to zero would respawn this event at the same
    // instant forever.
    sim::Duration wait = sim::seconds(secs);
    if (wait <= sim::Duration{0}) wait = sim::Duration{1};
    next = std::min(next, simulator_.now() + wait);
  }
  if (const auto change = config_.bandwidth.next_change_after(simulator_.now())) {
    next = std::min(next, *change);
  }
  if (wakeup_armed_) {
    simulator_.cancel(wakeup_);
    wakeup_armed_ = false;
  }
  if (next != sim::Time{std::numeric_limits<std::int64_t>::max()}) {
    wakeup_ = simulator_.schedule_at(next, [this, alive = alive_] {
      if (!*alive) return;
      wakeup_armed_ = false;
      on_wakeup();
    });
    wakeup_armed_ = true;
  }
}

void Link::on_wakeup() {
  advance();
  // Collect completions before reflowing so freed capacity redistributes.
  // Compacting active_ in place preserves its ascending-id order, which is
  // also the callback firing order.
  // The vector is moved out of the scratch while callbacks run: a callback
  // may destroy the Link, and a local (like the old per-call vector) stays
  // valid through that. The capacity returns to the scratch afterwards.
  std::vector<std::function<void(sim::Time)>> callbacks =
      std::move(completed_scratch_);
  callbacks.clear();
  std::size_t keep = 0;
  for (std::size_t read = 0; read < active_.size(); ++read) {
    Transfer* t = active_[read].second;
    if (t->remaining_bytes <= kCompleteEpsilonBytes) {
      // Square up the fluid rounding: a completed transfer delivered
      // exactly its size, no matter how the increments rounded.
      bytes_delivered_ += t->total_bytes - t->counted_bytes;
      callbacks.push_back(std::move(t->on_complete));
      transfers_.erase(active_[read].first);
    } else {
      active_[keep++] = active_[read];
    }
  }
  active_.resize(keep);
  if (callbacks.empty() && capacity_kbps_now() * 1000.0 == rates_capacity_bps_) {
    // Nothing changed: the active set is intact and capacity is what the
    // current rates were computed from, so recomputing would reproduce
    // them bit-for-bit. Just re-arm the next wake-up.
    arm_wakeup();
  } else {
    reflow();
  }
  const sim::Time now = simulator_.now();
  const auto alive = alive_;
  for (auto& cb : callbacks) {
    if (cb) cb(now);
  }
  if (*alive) completed_scratch_ = std::move(callbacks);
}

}  // namespace sperke::net
