// StreamingSession: the Sperke client (Figure 4), wired for on-demand 360°
// streaming over a simulated network.
//
// Responsibilities per the figure:
//   * head sensor sampling -> HMP fusion (hmp/fusion.h),
//   * fetch scheduling driven by the pluggable tile-ABR policy
//     (abr/policy.h; the paper's VRA is abr/sperke_vra.h behind it),
//   * the encoded-chunk cache (core/buffer.h),
//   * playback with stall semantics and QoE accounting (abr/qoe.h),
//   * runtime incremental upgrades of mispredicted tiles (§3.1.1).
//
// Head orientation is indexed by *content time* (as in public head-trace
// datasets): a stall freezes both the playhead and the sensor stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "abr/factory.h"
#include "abr/qoe.h"
#include "core/buffer.h"
#include "core/session_batch.h"
#include "core/transport.h"
#include "hmp/fusion.h"
#include "obs/telemetry.h"
#include "sim/periodic.h"
#include "sim/simulator.h"

namespace sperke::core {

enum class PlannerMode {
  kFovGuided,    // tiles from HMP prediction + OOS margin (the Sperke way)
  kFovAgnostic,  // always fetch the full panorama (YouTube/Facebook, §2)
};

struct SessionConfig {
  PlannerMode planner = PlannerMode::kFovGuided;
  // Tile-ABR policy (name + per-policy params); the session builds its own
  // instance via abr::make_policy at construction.
  abr::TileAbrConfig abr;
  geo::Viewport viewport{100.0, 90.0};
  double head_sample_hz = 25.0;
  // HMP is only trustworthy a short window ahead (§3.2), which bounds how
  // far the planner runs ahead of the playhead.
  int prefetch_horizon_chunks = 4;
  int startup_chunks = 1;
  // Below this deadline slack a fetch is dispatched as "urgent" (Table 1).
  sim::Duration urgent_slack{sim::seconds(1.0)};
  sim::Duration upgrade_scan_period{sim::milliseconds(250)};
  bool enable_upgrades = true;
  abr::QoeWeights qoe;
  std::string predictor = "linear-regression";
  hmp::FusionConfig fusion;
  hmp::ViewingContext context;
  // User-configured session data budget (§3.1.2's "bandwidth budget
  // configured by the user", e.g. a cellular data cap). 0 = unlimited.
  // As spending approaches the budget the planner caps quality
  // progressively, so the video still finishes within the allowance.
  std::int64_t data_budget_bytes = 0;
  // Telemetry sink (not owned; must outlive the session). Null = disabled,
  // the no-op fast path.
  obs::Telemetry* telemetry = nullptr;
  // Graceful degradation on fetch failures (DESIGN.md §10): when true, an
  // FoV chunk whose fetch failed or timed out is re-requested at the base
  // quality tier while its deadline still stands; OOS losses are abandoned.
  // Off by default — fault-free worlds behave byte-identically either way.
  bool fetch_recovery = false;
};

struct SessionReport {
  abr::QoeSummary qoe;
  sim::Duration startup_delay{0};
  sim::Duration wall_duration{0};
  int fetches = 0;
  int urgent_fetches = 0;
  int upgrades = 0;             // §3.1.1 incremental upgrades performed
  int late_corrections = 0;     // tiles first fetched inside the window
  int fetch_failures = 0;       // fetches that timed out / failed outright
  int degraded_retries = 0;     // failed FoV fetches re-issued at base tier
  std::vector<double> viewport_utility_per_chunk;
  bool completed = false;
};

class StreamingSession {
 public:
  // `transport` and `head_trace` must outlive the session. `crowd` (may be
  // null) provides the cross-user prior for HMP fusion. `batch` (may be
  // null) is the shared SoA arena the session claims a slot in — its hot
  // state (tile probabilities, planned qualities, in-flight masks, buffer
  // cells) then lives in the batch's contiguous slabs next to its shard
  // neighbours; without one the session owns a private capacity-1 batch.
  StreamingSession(sim::Simulator& simulator,
                   std::shared_ptr<const media::VideoModel> video,
                   ChunkTransport& transport, const hmp::HeadTrace& head_trace,
                   SessionConfig config,
                   const hmp::ViewingHeatmap* crowd = nullptr,
                   SessionBatch* batch = nullptr);

  // Schedule the session's activity; drive with simulator.run()/run_until().
  void start();

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] SessionReport report() const;

  [[nodiscard]] const PlaybackBuffer& buffer() const { return buffer_; }

 private:
  [[nodiscard]] sim::Time media_now() const;
  [[nodiscard]] sim::Time deadline_of(media::ChunkIndex index) const;

  void observe_head();
  void maybe_plan();
  void record_trace(const obs::TraceEvent& event);
  void dispatch(const media::ChunkAddress& address, abr::SpatialClass spatial,
                sim::Time deadline, bool count_as_upgrade, bool count_as_correction,
                std::int64_t parent_request_id = 0);
  void on_fetch_done(const media::ChunkAddress& address, std::int64_t bytes);
  void attempt_start();
  void play_chunk();
  void try_resume_from_stall();
  void scan_upgrades();
  void finish();

  // In-flight bit for an address in the batch's per-(chunk, tile) masks:
  // AVC levels occupy the low half, SVC layers the high half.
  [[nodiscard]] static std::uint64_t inflight_bit(const media::ChunkAddress& address);
  [[nodiscard]] std::size_t inflight_cell(const media::ChunkKey& key) const;
  [[nodiscard]] bool inflight_contains(const media::ChunkAddress& address) const;

  sim::Simulator& simulator_;
  std::shared_ptr<const media::VideoModel> video_;
  ChunkTransport& transport_;
  const hmp::HeadTrace& head_trace_;
  SessionConfig config_;
  hmp::FusionPredictor fusion_;
  // SoA hot-state arena (DESIGN.md §13): the shard's shared batch, or a
  // private capacity-1 batch for standalone sessions. Declared before
  // buffer_, which borrows its cell slab from the claimed slot.
  std::unique_ptr<SessionBatch> own_batch_;
  SessionBatch* batch_;
  int slot_;
  PlaybackBuffer buffer_;
  std::unique_ptr<abr::TileAbrPolicy> policy_;
  abr::QoeTracker qoe_;

  // Playback state.
  bool started_ = false;
  bool playing_ = false;
  bool stalled_ = false;
  bool finished_ = false;
  media::ChunkIndex current_chunk_ = 0;     // chunk being (or next to be) played
  sim::Time chunk_play_started_{sim::kTimeZero};
  sim::Time stall_started_{sim::kTimeZero};
  sim::Time session_started_{sim::kTimeZero};
  sim::Time session_ended_{sim::kTimeZero};
  sim::Time startup_done_{sim::kTimeZero};

  // Planning state, viewed through batch slot spans: planned quality per
  // chunk (-1 = not yet planned; qualities are never negative) and one
  // in-flight request mask per (chunk, tile) cell.
  media::ChunkIndex next_plan_ = 0;
  media::QualityLevel last_fov_quality_ = 0;
  std::span<media::QualityLevel> planned_;
  std::span<std::uint64_t> in_flight_;

  // Counters.
  int fetches_ = 0;
  int urgent_fetches_ = 0;
  int upgrades_ = 0;
  int late_corrections_ = 0;
  int fetch_failures_ = 0;
  int degraded_retries_ = 0;
  std::vector<double> utility_per_chunk_;
  sim::Time last_observed_{sim::Duration{-1}};

  // Telemetry (metric handles resolved once at construction; all null when
  // config_.telemetry is null). The metric values mirror the counters and
  // QoE sums above exactly — same increments at the same call sites.
  struct SessionMetrics {
    obs::Counter* fetches = nullptr;
    obs::Counter* urgent_fetches = nullptr;
    obs::Counter* upgrades = nullptr;
    obs::Counter* late_corrections = nullptr;
    obs::Counter* chunks_played = nullptr;
    obs::Counter* stall_events = nullptr;
    // Level gauge: 1 while this session is stalled, 0 otherwise. Sampled
    // into the time series, it gives SLOs a stall signal that is live
    // *during* an outage (the stall_s histogram only observes at stall
    // end, after recovery).
    obs::Gauge* stalled = nullptr;
    // Bound iff fetch_recovery is on, so fault-free worlds keep their
    // exact pre-fault metric set.
    obs::Counter* fetch_failures = nullptr;
    obs::Counter* degraded_retries = nullptr;
    obs::Histogram* fetch_latency_ms = nullptr;
    obs::Histogram* stall_s = nullptr;
    obs::Histogram* viewport_utility = nullptr;
    obs::Histogram* hmp_error_deg = nullptr;
    // Byte accounting mirrored from the QoE tracker, so run-scope tooling
    // (the ABR arena bench) reads wasted bytes from the merged registry.
    obs::Counter* bytes_downloaded = nullptr;
    obs::Counter* bytes_wasted = nullptr;
    // Policy-scoped plan counter: the metric name embeds the policy name,
    // giving mixed-population worlds one merged row per policy.
    obs::Counter* abr_plans = nullptr;
  };
  SessionMetrics metrics_;
  // Orientation predicted at plan time, for the HMP angular-error metric
  // scored when the chunk actually plays. Populated only with telemetry on.
  std::map<media::ChunkIndex, geo::Orientation> predicted_at_plan_;

  // Reusable hot-path buffers (DESIGN.md §8). The simulator is
  // single-threaded and the transport never completes a fetch synchronously,
  // so no two live uses of the same buffer ever overlap: maybe_plan owns
  // the fov/probs/plan set, attempt_start/play_chunk/scan_upgrades own the
  // visible/missing/is_visible set, and each finishes with its buffers
  // before anything that reuses them can run.
  geo::TileGeometry::Scratch geo_scratch_;
  std::vector<geo::TileId> visible_scratch_;
  std::vector<geo::TileId> motion_fov_scratch_;
  std::vector<geo::TileId> fov_scratch_;
  std::span<double> probs_;  // batch probability slot (HMP fusion output)
  std::vector<geo::TileId> missing_scratch_;
  std::vector<char> is_visible_scratch_;
  abr::ChunkPlan plan_scratch_;
  abr::TileAbrPolicy::PlanWorkspace vra_workspace_;

  std::optional<sim::PeriodicTask> head_task_;
  std::optional<sim::PeriodicTask> upgrade_task_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sperke::core
