// Client-side playback buffer: tracks, per (tile, chunk) cell, what has been
// downloaded (the "Encoded Chunk Cache" of Figure 4) and what quality is
// therefore displayable.
//
// AVC objects are self-contained: the displayable quality is the best copy
// held. SVC layers compose: the displayable quality is the highest layer i
// such that layers 0..i are all present (§3.1.1).
//
// Storage is a flat array of Cells indexed by chunk * tile_count + tile
// (DESIGN.md §13): the held objects are two 64-bit masks (one bit per AVC
// quality / SVC layer) plus a byte counter, so contains/displayable/add are
// single loads and bit tests instead of the former hash-map find over
// per-cell std::sets — the buffer was the hottest lookup structure of the
// whole session loop. The cell array can be owned or borrowed from a
// core::SessionBatch slot, which packs the hot state of a whole shard's
// sessions contiguously.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "media/chunk.h"
#include "media/video_model.h"

namespace sperke::core {

class PlaybackBuffer {
 public:
  // One (tile, chunk) cell. Zero-initialized == empty.
  struct Cell {
    std::int64_t bytes = 0;      // distinct-object bytes downloaded
    std::uint64_t avc_mask = 0;  // bit q set: AVC copy at quality q held
    std::uint64_t svc_mask = 0;  // bit l set: SVC layer l held
  };

  explicit PlaybackBuffer(std::shared_ptr<const media::VideoModel> video);
  // Arena-backed: `cells` (size chunk_count * tile_count, zero-initialized)
  // is borrowed — typically a core::SessionBatch slot — and must outlive
  // the buffer.
  PlaybackBuffer(std::shared_ptr<const media::VideoModel> video,
                 std::span<Cell> cells);

  // Record a completed download. Duplicate adds are idempotent (bytes are
  // only counted once per distinct address).
  void add(const media::ChunkAddress& address);

  // Highest quality that can be decoded for this cell, or -1 if nothing
  // playable is buffered (SVC enhancement layers without the base do not
  // count).
  [[nodiscard]] media::QualityLevel displayable_quality(const media::ChunkKey& key) const;

  [[nodiscard]] bool has_displayable(const media::ChunkKey& key) const {
    return displayable_quality(key) >= 0;
  }

  // Highest contiguous SVC layer held (from 0), or -1: the base an
  // incremental delta upgrade can build on (an AVC copy cannot).
  [[nodiscard]] media::QualityLevel svc_contiguous_quality(
      const media::ChunkKey& key) const;

  [[nodiscard]] bool contains(const media::ChunkAddress& address) const;

  // Total bytes downloaded into this cell.
  [[nodiscard]] std::int64_t cell_bytes(const media::ChunkKey& key) const;

  // Bytes of this cell that contribute to its displayed quality `shown`
  // (the AVC copy of exactly that quality, or SVC layers 0..shown).
  [[nodiscard]] std::int64_t cell_bytes_used(const media::ChunkKey& key,
                                             media::QualityLevel shown) const;

  // Drop all cells with chunk index < `index` (already played). The floor
  // is monotone: a smaller `index` than a previous call is a no-op, and
  // adding below the floor is a state-machine violation (the player never
  // fetches into chunks it has discarded).
  void evict_before(media::ChunkIndex index);

  // Number of contiguous chunks starting at `from` for which every tile in
  // `tiles` is displayable.
  [[nodiscard]] int contiguous_chunks(media::ChunkIndex from,
                                      const std::vector<geo::TileId>& tiles) const;

  [[nodiscard]] std::int64_t total_bytes() const { return total_bytes_; }

 private:
  // The cell, or nullptr for out-of-range / evicted indices.
  [[nodiscard]] const Cell* cell(const media::ChunkKey& key) const {
    if (key.index < evict_floor_ || key.index >= chunk_count_ ||
        key.tile < 0 || key.tile >= tile_count_) {
      return nullptr;
    }
    return &cells_[static_cast<std::size_t>(key.index) *
                       static_cast<std::size_t>(tile_count_) +
                   static_cast<std::size_t>(key.tile)];
  }

  std::shared_ptr<const media::VideoModel> video_;
  std::vector<Cell> owned_;  // empty when arena-backed
  std::span<Cell> cells_;
  int tile_count_ = 0;
  media::ChunkIndex chunk_count_ = 0;
  media::ChunkIndex evict_floor_ = 0;
  std::int64_t total_bytes_ = 0;
};

}  // namespace sperke::core
