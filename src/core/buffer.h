// Client-side playback buffer: tracks, per (tile, chunk) cell, what has been
// downloaded (the "Encoded Chunk Cache" of Figure 4) and what quality is
// therefore displayable.
//
// AVC objects are self-contained: the displayable quality is the best copy
// held. SVC layers compose: the displayable quality is the highest layer i
// such that layers 0..i are all present (§3.1.1).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "media/chunk.h"
#include "media/video_model.h"

namespace sperke::core {

class PlaybackBuffer {
 public:
  explicit PlaybackBuffer(std::shared_ptr<const media::VideoModel> video);

  // Record a completed download. Duplicate adds are idempotent (bytes are
  // only counted once per distinct address).
  void add(const media::ChunkAddress& address);

  // Highest quality that can be decoded for this cell, or -1 if nothing
  // playable is buffered (SVC enhancement layers without the base do not
  // count).
  [[nodiscard]] media::QualityLevel displayable_quality(const media::ChunkKey& key) const;

  [[nodiscard]] bool has_displayable(const media::ChunkKey& key) const {
    return displayable_quality(key) >= 0;
  }

  // Highest contiguous SVC layer held (from 0), or -1: the base an
  // incremental delta upgrade can build on (an AVC copy cannot).
  [[nodiscard]] media::QualityLevel svc_contiguous_quality(
      const media::ChunkKey& key) const;

  [[nodiscard]] bool contains(const media::ChunkAddress& address) const;

  // Total bytes downloaded into this cell.
  [[nodiscard]] std::int64_t cell_bytes(const media::ChunkKey& key) const;

  // Bytes of this cell that contribute to its displayed quality `shown`
  // (the AVC copy of exactly that quality, or SVC layers 0..shown).
  [[nodiscard]] std::int64_t cell_bytes_used(const media::ChunkKey& key,
                                             media::QualityLevel shown) const;

  // Drop all cells with chunk index < `index` (already played).
  void evict_before(media::ChunkIndex index);

  // Number of contiguous chunks starting at `from` for which every tile in
  // `tiles` is displayable.
  [[nodiscard]] int contiguous_chunks(media::ChunkIndex from,
                                      const std::vector<geo::TileId>& tiles) const;

  [[nodiscard]] std::int64_t total_bytes() const { return total_bytes_; }

 private:
  struct Cell {
    media::QualityLevel best_avc = -1;
    std::set<media::LayerIndex> svc_layers;
    std::set<media::ChunkAddress> objects;  // for idempotence + accounting
  };

  std::shared_ptr<const media::VideoModel> video_;
  std::unordered_map<media::ChunkKey, Cell> cells_;
  std::int64_t total_bytes_ = 0;
};

}  // namespace sperke::core
