#include "core/session.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>

#include "geo/orientation.h"
#include "util/check.h"
#include "util/log.h"

namespace sperke::core {
namespace {

std::unique_ptr<hmp::OrientationPredictor> motion_for(const SessionConfig& config) {
  return hmp::make_orientation_predictor(config.predictor);
}

}  // namespace

StreamingSession::StreamingSession(sim::Simulator& simulator,
                                   std::shared_ptr<const media::VideoModel> video,
                                   ChunkTransport& transport,
                                   const hmp::HeadTrace& head_trace,
                                   SessionConfig config,
                                   const hmp::ViewingHeatmap* crowd,
                                   SessionBatch* batch)
    : simulator_(simulator),
      video_(std::move(video)),
      transport_(transport),
      head_trace_(head_trace),
      config_(std::move(config)),
      fusion_(video_->geometry_ptr(), config_.viewport, motion_for(config_), crowd,
              config_.context, config_.fusion),
      own_batch_(batch == nullptr ? std::make_unique<SessionBatch>(video_, 1)
                                  : nullptr),
      batch_(batch == nullptr ? own_batch_.get() : batch),
      slot_(batch_->acquire()),
      buffer_(video_, batch_->cells(slot_)),
      policy_(abr::make_policy(video_, config_.abr)),
      qoe_(config_.qoe) {
  planned_ = batch_->planned_quality(slot_);
  in_flight_ = batch_->in_flight(slot_);
  probs_ = batch_->probs(slot_);
  if (config_.telemetry != nullptr) {
    obs::MetricsRegistry& m = config_.telemetry->metrics();
    metrics_.fetches = &m.counter("session.fetches");
    metrics_.urgent_fetches = &m.counter("session.urgent_fetches");
    metrics_.upgrades = &m.counter("session.upgrades");
    metrics_.late_corrections = &m.counter("session.late_corrections");
    metrics_.chunks_played = &m.counter("session.chunks_played");
    metrics_.stall_events = &m.counter("session.stall_events");
    metrics_.stalled = &m.gauge("session.stalled");
    metrics_.fetch_latency_ms = &m.histogram("session.fetch_latency_ms");
    metrics_.stall_s = &m.histogram(
        "session.stall_s", {0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0});
    metrics_.viewport_utility = &m.histogram(
        "session.viewport_utility",
        {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0});
    metrics_.hmp_error_deg = &m.histogram(
        "session.hmp_error_deg", {5.0, 10.0, 20.0, 30.0, 45.0, 60.0, 90.0, 180.0});
    metrics_.bytes_downloaded = &m.counter("session.bytes_downloaded");
    metrics_.bytes_wasted = &m.counter("session.bytes_wasted");
    // The counter name embeds the factory policy name (all [a-z0-9_]+,
    // enforced by abr::make_policy's closed name set), so mixed-population
    // worlds merge into one row per policy.
    metrics_.abr_plans =
        &m.counter("abr." + std::string(policy_->name()) + ".plans");
    if (config_.fetch_recovery) {
      metrics_.fetch_failures = &m.counter("session.fetch_failures");
      metrics_.degraded_retries = &m.counter("session.degraded_retries");
    }
  }
  if (config_.prefetch_horizon_chunks < 1) {
    throw std::invalid_argument("Session: prefetch horizon < 1");
  }
  if (config_.startup_chunks < 1) {
    throw std::invalid_argument("Session: startup chunks < 1");
  }
  if (config_.head_sample_hz <= 0.0) {
    throw std::invalid_argument("Session: bad head sample rate");
  }
}

std::uint64_t StreamingSession::inflight_bit(const media::ChunkAddress& address) {
  // 64-bit cell masks split evenly: AVC levels in the low half, SVC layers
  // in the high half, so one cell tracks both encodings of a tile chunk.
  SPERKE_DCHECK(address.level >= 0 && address.level < 32,
                "Session: quality/layer outside in-flight mask range ",
                address.level);
  const int shift = address.encoding == media::Encoding::kAvc
                        ? address.level
                        : 32 + address.level;
  return std::uint64_t{1} << shift;
}

std::size_t StreamingSession::inflight_cell(const media::ChunkKey& key) const {
  SPERKE_DCHECK(key.tile >= 0 && key.tile < video_->tile_count() &&
                    key.index >= 0 && key.index < video_->chunk_count(),
                "Session: in-flight cell out of range");
  return static_cast<std::size_t>(key.index) *
             static_cast<std::size_t>(video_->tile_count()) +
         static_cast<std::size_t>(key.tile);
}

bool StreamingSession::inflight_contains(const media::ChunkAddress& address) const {
  return (in_flight_[inflight_cell(address.key)] & inflight_bit(address)) != 0;
}

sim::Time StreamingSession::media_now() const {
  const sim::Time base = video_->chunk_start_time(current_chunk_);
  if (!playing_ || stalled_) return base;
  return base + (simulator_.now() - chunk_play_started_);
}

sim::Time StreamingSession::deadline_of(media::ChunkIndex index) const {
  const auto ahead = video_->chunk_duration() * (index - current_chunk_);
  if (playing_ && !stalled_) return chunk_play_started_ + ahead;
  return simulator_.now() + ahead;  // startup/stall: assume immediate resume
}

void StreamingSession::record_trace(const obs::TraceEvent& event) {
  if (config_.telemetry != nullptr) config_.telemetry->trace().record(event);
}

void StreamingSession::start() {
  if (started_) throw std::logic_error("Session already started");
  started_ = true;
  session_started_ = simulator_.now();
  record_trace({.type = obs::TraceEventType::kSessionStart,
                .ts = simulator_.now()});
  observe_head();  // prime the predictor with the initial pose
  head_task_.emplace(simulator_, sim::seconds(1.0 / config_.head_sample_hz),
                     [this] { observe_head(); });
  if (config_.enable_upgrades && config_.planner == PlannerMode::kFovGuided &&
      policy_->upgrade_window() > sim::Duration{0}) {
    upgrade_task_.emplace(simulator_, config_.upgrade_scan_period,
                          [this] { scan_upgrades(); });
  }
  maybe_plan();
}

void StreamingSession::observe_head() {
  if (finished_) return;
  const sim::Time t = media_now();
  if (t <= last_observed_) return;  // content time frozen during stall
  last_observed_ = t;
  fusion_.observe({t, head_trace_.orientation_at(t)});
}

void StreamingSession::maybe_plan() {
  if (finished_) return;
  while (next_plan_ < video_->chunk_count() &&
         next_plan_ < current_chunk_ + config_.prefetch_horizon_chunks) {
    const media::ChunkIndex index = next_plan_;
    const sim::Time deadline = deadline_of(index);
    const sim::Duration horizon =
        video_->chunk_start_time(index) - media_now();

    std::vector<geo::TileId>& fov = fov_scratch_;
    // Empty for the FoV-agnostic planner (no OOS concept); the batch slot's
    // probability span otherwise.
    std::span<const double> probs;
    if (config_.planner == PlannerMode::kFovAgnostic) {
      // Whole panorama, no OOS concept.
      fov.resize(static_cast<std::size_t>(video_->tile_count()));
      for (geo::TileId t = 0; t < video_->tile_count(); ++t) {
        fov[static_cast<std::size_t>(t)] = t;
      }
    } else {
      // Size the super chunk from the motion-predicted viewport, but pick
      // the *tiles* from the fused probability map: at short horizons the
      // map is motion-dominated (same tiles), at long horizons the crowd
      // prior takes over, which is what makes deep prefetch viable (§3.2).
      const geo::Orientation predicted = fusion_.predict_orientation(horizon);
      if (config_.telemetry != nullptr) predicted_at_plan_[index] = predicted;
      std::vector<geo::TileId>& motion_fov = motion_fov_scratch_;
      video_->geometry().visible_tiles(predicted, config_.viewport, motion_fov,
                                       geo_scratch_);
      fusion_.tile_probabilities_into(horizon, index, probs_);
      probs = probs_;
      std::vector<geo::TileId>& order = fov;
      order.resize(probs.size());
      for (std::size_t i = 0; i < probs.size(); ++i) {
        order[i] = static_cast<geo::TileId>(i);
      }
      std::stable_sort(order.begin(), order.end(), [&](geo::TileId a, geo::TileId b) {
        return probs[static_cast<std::size_t>(a)] > probs[static_cast<std::size_t>(b)];
      });
      order.resize(std::min(order.size(), motion_fov.size()));
      std::sort(fov.begin(), fov.end());
    }

    const sim::Duration buffer_level =
        video_->chunk_start_time(index) - media_now();
    // Data budget: treat the remaining allowance, spread over the remaining
    // chunks, as a second throughput ceiling for the regular VRA.
    double effective_kbps = transport_.estimated_kbps();
    if (config_.data_budget_bytes > 0) {
      const std::int64_t spent = qoe_.summary().bytes_downloaded;
      const std::int64_t remaining_bytes =
          std::max<std::int64_t>(0, config_.data_budget_bytes - spent);
      const int remaining_chunks = video_->chunk_count() - index;
      const double budget_kbps =
          static_cast<double>(remaining_bytes) * 8.0 /
          std::max(1.0, remaining_chunks *
                            sim::to_seconds(video_->chunk_duration())) /
          1000.0;
      effective_kbps = effective_kbps > 0.0
                           ? std::min(effective_kbps, budget_kbps)
                           : budget_kbps;
    }
    policy_->plan_chunk_into(index, fov, probs, effective_kbps, buffer_level,
                             last_fov_quality_, vra_workspace_, plan_scratch_);
    const abr::ChunkPlan& plan = plan_scratch_;
    planned_[static_cast<std::size_t>(index)] = plan.fov_quality;
    last_fov_quality_ = plan.fov_quality;
    if (config_.telemetry != nullptr) {
      metrics_.abr_plans->increment();
      record_trace({.type = obs::TraceEventType::kPlanComputed,
                    .ts = simulator_.now(),
                    .chunk = index,
                    .quality = plan.fov_quality,
                    .bytes = plan.total_bytes(*video_),
                    .value = static_cast<double>(plan.fetches.size())});
    }

    for (const auto& fetch : plan.fetches) {
      dispatch(fetch.address, fetch.spatial, deadline, false, false);
    }
    ++next_plan_;
  }
  attempt_start();
}

void StreamingSession::dispatch(const media::ChunkAddress& address,
                                abr::SpatialClass spatial, sim::Time deadline,
                                bool count_as_upgrade, bool count_as_correction,
                                std::int64_t parent_request_id) {
  if (buffer_.contains(address) || inflight_contains(address)) return;
  in_flight_[inflight_cell(address.key)] |= inflight_bit(address);
  ++fetches_;
  const bool urgent = (deadline - simulator_.now()) < config_.urgent_slack;
  if (urgent) ++urgent_fetches_;
  if (count_as_upgrade) ++upgrades_;
  if (count_as_correction) ++late_corrections_;
  const std::int64_t bytes = video_->size_bytes(address);
  const sim::Time dispatched = simulator_.now();
  std::int64_t request_id = 0;
  if (config_.telemetry != nullptr) {
    request_id = config_.telemetry->next_request_id();
    metrics_.fetches->increment();
    if (urgent) metrics_.urgent_fetches->increment();
    if (count_as_upgrade) metrics_.upgrades->increment();
    if (count_as_correction) metrics_.late_corrections->increment();
    record_trace({.type = obs::TraceEventType::kFetchDispatched,
                  .ts = dispatched,
                  .tile = address.key.tile,
                  .chunk = address.key.index,
                  .quality = address.level,
                  .bytes = bytes,
                  .urgent = urgent,
                  .request = request_id,
                  .parent = parent_request_id});
  }
  ChunkRequest request;
  request.id = net::to_chunk_id(address);
  request.bytes = bytes;
  request.spatial = spatial;
  request.urgent = urgent;
  request.deadline = deadline;
  request.request_id = request_id;
  request.parent_id = parent_request_id;
  request.on_done = [this, alive = alive_, address, bytes, dispatched, urgent,
                     spatial, deadline, request_id,
                     parent_request_id](sim::Time finished, FetchOutcome outcome) {
    if (!*alive) return;
    in_flight_[inflight_cell(address.key)] &= ~inflight_bit(address);
    const bool ok = delivered(outcome);
    if (config_.telemetry != nullptr) {
      if (ok) {
        metrics_.fetch_latency_ms->observe(
            sim::to_milliseconds(finished - dispatched));
      }
      obs::TraceEvent event{.type = ok ? obs::TraceEventType::kFetchDone
                                       : obs::TraceEventType::kFetchDropped,
                            .ts = finished,
                            .tile = address.key.tile,
                            .chunk = address.key.index,
                            .quality = address.level,
                            .bytes = bytes,
                            .urgent = urgent,
                            .request = request_id,
                            .parent = parent_request_id};
      // Fault outcomes ride the kFetchDropped event with the outcome in
      // `value`; kDropped keeps value 0.0 so fault-free traces stay
      // byte-identical.
      if (outcome == FetchOutcome::kTimedOut || outcome == FetchOutcome::kFailed) {
        event.value = static_cast<double>(outcome);
      }
      record_trace(event);
    }
    if (ok) {
      on_fetch_done(address, bytes);
      return;
    }
    if (outcome == FetchOutcome::kDropped) return;  // best-effort loss
    // Injected-fault loss (timed out / failed after retries).
    ++fetch_failures_;
    if (metrics_.fetch_failures != nullptr) metrics_.fetch_failures->increment();
    if (config_.fetch_recovery && spatial == abr::SpatialClass::kFov &&
        address.key.index >= current_chunk_ && deadline > simulator_.now()) {
      // Graceful degradation: re-request the tile at the base tier while
      // the deadline still stands rather than leaving a hole in the FoV.
      const media::ChunkAddress fallback{address.key,
                                         policy_->base_tier_encoding(), 0};
      if (!buffer_.contains(fallback) && !inflight_contains(fallback)) {
        ++degraded_retries_;
        if (metrics_.degraded_retries != nullptr) {
          metrics_.degraded_retries->increment();
        }
        // The re-request cites the failed request as its causal parent, so
        // the exported trace nests the degraded retry under the original.
        dispatch(fallback, abr::SpatialClass::kFov, deadline, false, false,
                 request_id);
      }
    }
    // A failed emergency fetch must not leave a stall unresolved: re-enter
    // the coverage check, which re-issues the missing tiles.
    if (stalled_) try_resume_from_stall();
  };
  transport_.fetch(std::move(request));
}

void StreamingSession::on_fetch_done(const media::ChunkAddress& address,
                                     std::int64_t bytes) {
  qoe_.record_downloaded(bytes);
  if (metrics_.bytes_downloaded != nullptr) {
    metrics_.bytes_downloaded->add(bytes);
  }
  if (finished_ || address.key.index < current_chunk_ ||
      (address.key.index == current_chunk_ && playing_ && !stalled_)) {
    // Arrived after its chunk started playing: pure waste.
    qoe_.record_wasted(bytes);
    if (metrics_.bytes_wasted != nullptr) {
      metrics_.bytes_wasted->add(bytes);
    }
  } else {
    buffer_.add(address);
  }
  if (stalled_) try_resume_from_stall();
  attempt_start();
  maybe_plan();
}

void StreamingSession::attempt_start() {
  if (playing_ || finished_ || !started_) return;
  // Startup condition: the tiles visible at media time 0 are displayable
  // for the first `startup_chunks` chunks.
  std::vector<geo::TileId>& visible = visible_scratch_;
  video_->geometry().visible_tiles(head_trace_.orientation_at(sim::kTimeZero),
                                   config_.viewport, visible, geo_scratch_);
  const int want = std::min<int>(config_.startup_chunks, video_->chunk_count());
  if (buffer_.contiguous_chunks(0, visible) < want) return;
  playing_ = true;
  startup_done_ = simulator_.now();
  chunk_play_started_ = simulator_.now();
  play_chunk();
}

void StreamingSession::play_chunk() {
  if (finished_) return;
  const media::ChunkIndex index = current_chunk_;
  const sim::Time media = video_->chunk_start_time(index);
  std::vector<geo::TileId>& visible = visible_scratch_;
  video_->geometry().visible_tiles(head_trace_.orientation_at(media),
                                   config_.viewport, visible, geo_scratch_);

  // Coverage check: every visible tile must be displayable.
  std::vector<geo::TileId>& missing = missing_scratch_;
  missing.clear();
  for (geo::TileId tile : visible) {
    if (!buffer_.has_displayable({tile, index})) missing.push_back(tile);
  }
  if (!missing.empty()) {
    if (!stalled_) {
      stalled_ = true;
      stall_started_ = simulator_.now();
      if (config_.telemetry != nullptr) metrics_.stalled->add(1.0);
      record_trace({.type = obs::TraceEventType::kStallBegin,
                    .ts = stall_started_,
                    .chunk = index,
                    .value = static_cast<double>(missing.size())});
    }
    // Emergency fetch of the missing tiles at the base quality (Table 1's
    // "urgent chunks": very short deadline after an HMP correction).
    for (geo::TileId tile : missing) {
      const media::ChunkKey key{tile, index};
      const media::ChunkAddress address{key, policy_->base_tier_encoding(), 0};
      dispatch(address, abr::SpatialClass::kFov, simulator_.now(), false, false);
    }
    return;  // resume via try_resume_from_stall()
  }

  if (stalled_) {
    stalled_ = false;
    const sim::Duration stall = simulator_.now() - stall_started_;
    qoe_.record_stall(stall);
    if (config_.telemetry != nullptr) {
      metrics_.stalled->add(-1.0);
      metrics_.stall_events->increment();
      metrics_.stall_s->observe(sim::to_seconds(stall));
      record_trace({.type = obs::TraceEventType::kStallEnd,
                    .ts = simulator_.now(),
                    .chunk = index,
                    .value = sim::to_seconds(stall)});
    }
    chunk_play_started_ = simulator_.now();
  }

  // Record the displayed viewport quality and byte usage.
  double utility_sum = 0.0;
  for (geo::TileId tile : visible) {
    const media::ChunkKey key{tile, index};
    const media::QualityLevel shown = buffer_.displayable_quality(key);
    utility_sum += video_->ladder().utility(std::max(shown, 0));
  }
  const double viewport_utility =
      visible.empty() ? 0.0 : utility_sum / static_cast<double>(visible.size());
  qoe_.record_played_chunk(viewport_utility, 0.0);
  utility_per_chunk_.push_back(viewport_utility);
  if (config_.telemetry != nullptr) {
    metrics_.chunks_played->increment();
    metrics_.viewport_utility->observe(viewport_utility);
    const auto predicted_it = predicted_at_plan_.find(index);
    if (predicted_it != predicted_at_plan_.end()) {
      metrics_.hmp_error_deg->observe(geo::angular_distance_deg(
          predicted_it->second, head_trace_.orientation_at(media)));
      predicted_at_plan_.erase(predicted_it);
    }
    record_trace({.type = obs::TraceEventType::kChunkPlayed,
                  .ts = simulator_.now(),
                  .chunk = index,
                  .quality = buffer_.displayable_quality(
                      {visible.empty() ? 0 : visible.front(), index}),
                  .value = viewport_utility});
  }

  // Waste accounting for every cell of this chunk.
  std::vector<char>& is_visible = is_visible_scratch_;
  is_visible.assign(static_cast<std::size_t>(video_->tile_count()), 0);
  for (geo::TileId tile : visible) is_visible[static_cast<std::size_t>(tile)] = 1;
  for (geo::TileId tile = 0; tile < video_->tile_count(); ++tile) {
    const media::ChunkKey key{tile, index};
    const std::int64_t held = buffer_.cell_bytes(key);
    if (held == 0) continue;
    std::int64_t used = 0;
    if (is_visible[static_cast<std::size_t>(tile)]) {
      used = buffer_.cell_bytes_used(key, buffer_.displayable_quality(key));
    }
    qoe_.record_wasted(held - used);
    if (metrics_.bytes_wasted != nullptr && held > used) {
      metrics_.bytes_wasted->add(held - used);
    }
  }
  buffer_.evict_before(index + 1);

  // Advance the playhead.
  if (index + 1 >= video_->chunk_count()) {
    simulator_.schedule_after(video_->chunk_duration(),
                              [this, alive = alive_] {
                                if (*alive) finish();
                              });
    return;
  }
  current_chunk_ = index + 1;
  chunk_play_started_ += video_->chunk_duration();
  maybe_plan();
  simulator_.schedule_at(chunk_play_started_, [this, alive = alive_] {
    if (*alive) play_chunk();
  });
}

void StreamingSession::try_resume_from_stall() {
  if (!stalled_ || finished_) return;
  play_chunk();  // re-checks coverage; resumes when complete
}

void StreamingSession::scan_upgrades() {
  if (finished_ || config_.planner != PlannerMode::kFovGuided) return;
  const double est = transport_.estimated_kbps();
  for (media::ChunkIndex index = current_chunk_ + (playing_ ? 1 : 0);
       index < next_plan_; ++index) {
    const sim::Time deadline = deadline_of(index);
    const sim::Duration slack = deadline - simulator_.now();
    if (slack <= sim::Duration{0}) continue;
    // Hoisted from consider_upgrade: outside the policy's upgrade window
    // it rejects every tile on slack alone, so the per-chunk prediction,
    // visible set, and probability map would be dead work.
    if (slack > policy_->upgrade_window()) continue;
    const sim::Duration horizon = video_->chunk_start_time(index) - media_now();
    const geo::Orientation predicted = fusion_.predict_orientation(horizon);
    std::vector<geo::TileId>& visible = visible_scratch_;
    video_->geometry().visible_tiles(predicted, config_.viewport, visible,
                                     geo_scratch_);
    fusion_.tile_probabilities_into(horizon, index, probs_);
    const std::span<const double> probs = probs_;
    // -1 marks a chunk the planner has not reached; planned qualities are
    // never negative.
    const media::QualityLevel target = planned_[static_cast<std::size_t>(index)];
    if (target < 0) continue;
    for (geo::TileId tile : visible) {
      const media::ChunkKey key{tile, index};
      const media::QualityLevel current = buffer_.displayable_quality(key);
      if (current >= target) continue;
      const auto decision = policy_->consider_upgrade(
          key, current, buffer_.svc_contiguous_quality(key), target,
          probs[static_cast<std::size_t>(tile)], slack, est);
      if (!decision.upgrade) continue;
      // Trace the decision only when it commits new work; re-scans that find
      // every layer already buffered or in flight are not new decisions.
      const bool commits = std::any_of(
          decision.fetches.begin(), decision.fetches.end(),
          [this](const media::ChunkAddress& address) {
            return !buffer_.contains(address) && !inflight_contains(address);
          });
      if (config_.telemetry != nullptr && commits) {
        record_trace({.type = obs::TraceEventType::kUpgradeDecided,
                      .ts = simulator_.now(),
                      .tile = tile,
                      .chunk = index,
                      .quality = target,
                      .value = static_cast<double>(current)});
      }
      for (const auto& address : decision.fetches) {
        dispatch(address, abr::SpatialClass::kFov, deadline,
                 /*count_as_upgrade=*/current >= 0,
                 /*count_as_correction=*/current < 0);
      }
    }
  }
}

void StreamingSession::finish() {
  if (finished_) return;
  finished_ = true;
  session_ended_ = simulator_.now();
  record_trace({.type = obs::TraceEventType::kSessionEnd,
                .ts = session_ended_,
                .value = sim::to_seconds(session_ended_ - session_started_)});
  if (head_task_) head_task_->stop();
  if (upgrade_task_) upgrade_task_->stop();
}

SessionReport StreamingSession::report() const {
  SessionReport report;
  report.qoe = qoe_.summary();
  report.startup_delay = startup_done_ - session_started_;
  report.wall_duration =
      (finished_ ? session_ended_ : simulator_.now()) - session_started_;
  report.fetches = fetches_;
  report.urgent_fetches = urgent_fetches_;
  report.upgrades = upgrades_;
  report.late_corrections = late_corrections_;
  report.fetch_failures = fetch_failures_;
  report.degraded_retries = degraded_retries_;
  report.viewport_utility_per_chunk = utility_per_chunk_;
  report.completed = finished_;
  return report;
}

}  // namespace sperke::core
