// Transport abstraction between the streaming client and the network:
// the client submits chunk requests tagged with the Table 1 priorities;
// a transport delivers them over one link (SingleLinkTransport) or several
// (mp::MultipathTransport).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "abr/plan.h"
#include "media/chunk.h"
#include "net/link.h"
#include "net/throughput_estimator.h"
#include "obs/telemetry.h"
#include "sim/time.h"

namespace sperke::core {

struct ChunkRequest {
  media::ChunkAddress address;
  std::int64_t bytes = 0;
  abr::SpatialClass spatial = abr::SpatialClass::kFov;
  bool urgent = false;                 // temporal priority (Table 1)
  sim::Time deadline{sim::kTimeZero};  // playback deadline (wall clock)
  // Called exactly once: delivered=true with the completion time, or
  // delivered=false if the transport dropped/abandoned the request.
  std::function<void(sim::Time, bool delivered)> on_done;
};

class ChunkTransport {
 public:
  virtual ~ChunkTransport() = default;

  virtual void fetch(ChunkRequest request) = 0;

  // Aggregate goodput estimate (kbps) for rate adaptation.
  [[nodiscard]] virtual double estimated_kbps() const = 0;

  // Requests accepted but not yet completed/dropped.
  [[nodiscard]] virtual int in_flight() const = 0;

  [[nodiscard]] virtual std::int64_t bytes_fetched() const = 0;
};

// Queued dispatch over a single net::Link with bounded concurrency.
// Urgent requests jump the queue (ahead of non-urgent, behind other
// urgent); ties keep FIFO order. Throughput is estimated aggregate-wise
// across concurrent transfers (net::AggregateWindowEstimator).
class SingleLinkTransport final : public ChunkTransport {
 public:
  // `link` must outlive the transport. `telemetry` (optional, not owned)
  // receives per-request queue-wait and byte metrics.
  explicit SingleLinkTransport(net::Link& link, int max_concurrent = 4,
                               obs::Telemetry* telemetry = nullptr);

  void fetch(ChunkRequest request) override;
  [[nodiscard]] double estimated_kbps() const override;
  [[nodiscard]] int in_flight() const override;
  [[nodiscard]] std::int64_t bytes_fetched() const override { return bytes_fetched_; }

 private:
  void pump();

  net::Link& link_;
  int max_concurrent_;
  obs::Telemetry* telemetry_;
  obs::Counter* requests_metric_ = nullptr;
  obs::Counter* bytes_metric_ = nullptr;
  obs::Histogram* queue_wait_ms_metric_ = nullptr;
  obs::Gauge* in_flight_metric_ = nullptr;
  net::AggregateWindowEstimator estimator_;
  struct Pending {
    ChunkRequest request;
    std::uint64_t seq;
    sim::Time enqueued{sim::kTimeZero};
  };
  std::vector<Pending> queue_;
  std::uint64_t next_seq_ = 0;
  int active_ = 0;
  std::int64_t bytes_fetched_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

 public:
  ~SingleLinkTransport() override;
};

}  // namespace sperke::core
