// Transport abstraction between the streaming client and the network:
// the client submits chunk requests tagged with the Table 1 priorities;
// a transport delivers them over one link (SingleLinkTransport) or several
// (mp::MultipathTransport).
//
// Failure recovery (DESIGN.md §10): with RecoveryPolicy::enabled a
// transport retries failed transfers with exponential backoff under a
// per-request retry budget, arms a deadline-derived timeout on every
// in-flight transfer, and reports how each request ended through the typed
// FetchOutcome instead of a bare bool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "abr/plan.h"
#include "net/chunk_source.h"
#include "net/link.h"
#include "net/throughput_estimator.h"
#include "obs/telemetry.h"
#include "sim/time.h"

namespace sperke::core {

// How a chunk request ended, from the client's point of view.
enum class FetchOutcome : std::uint8_t {
  kDelivered,  // every byte arrived
  kDropped,    // transport abandoned it (best-effort deadline miss)
  kTimedOut,   // deadline-derived timeout expired while fetching/retrying
  kFailed,     // transfer failed and the retry budget is exhausted
};

[[nodiscard]] constexpr bool delivered(FetchOutcome outcome) {
  return outcome == FetchOutcome::kDelivered;
}

struct ChunkRequest {
  // Canonical object identity (what caches key on and trace labels carry).
  // Sessions build it from the planned media::ChunkAddress via
  // net::to_chunk_id.
  net::ChunkId id;
  std::int64_t bytes = 0;
  abr::SpatialClass spatial = abr::SpatialClass::kFov;
  bool urgent = false;                 // temporal priority (Table 1)
  sim::Time deadline{sim::kTimeZero};  // playback deadline (wall clock)
  // Causal span identity (obs): per-shard monotonic id from
  // Telemetry::next_request_id(), assigned by the session — or by the
  // transport when it first sees id 0 with telemetry attached. 0 means
  // untraced. `parent_id` links a degraded retry / blank re-request to the
  // request it replaces, so exporters can nest the spans.
  std::int64_t request_id = 0;
  std::int64_t parent_id = 0;
  // Called exactly once with the time the request settled and its outcome.
  std::function<void(sim::Time, FetchOutcome)> on_done;
};

// Failure-recovery policy shared by both transports (DESIGN.md §10).
// Disabled by default: a transport without recovery never retries, never
// times out, and is byte-identical to the pre-fault-model behaviour.
struct RecoveryPolicy {
  bool enabled = false;
  // Per-request retry budget: a request is attempted at most 1 + max_retries
  // times. Retry k (1-based) waits base_backoff * backoff_multiplier^(k-1).
  int max_retries = 2;
  sim::Duration base_backoff{sim::milliseconds(100)};
  double backoff_multiplier = 2.0;
  // In-flight timeout = max(deadline, start + min_timeout): a transfer may
  // run slightly past an already-blown deadline, but a retry is never
  // *started* at or past the deadline.
  sim::Duration min_timeout{sim::milliseconds(250)};
  // Graceful degradation order (§3.3): regular OOS prefetch is abandoned on
  // first failure instead of competing with FoV traffic for retries.
  bool abandon_oos = true;
  // Multipath path-failure detection: this many consecutive transfer
  // failures (or an outage signal) marks a path down; a down path is
  // re-probed every probe_interval until it carries traffic again.
  int path_failure_threshold = 3;
  sim::Duration probe_interval{sim::seconds(1.0)};
};

// Construction options shared by SingleLinkTransport and
// mp::MultipathTransport (per-path concurrency for the latter).
struct TransportOptions {
  int max_concurrent = 4;
  // Optional metrics/trace sink (not owned; must outlive the transport).
  obs::Telemetry* telemetry = nullptr;
  RecoveryPolicy recovery;
};

// Backoff before retry k (1-based): base_backoff * multiplier^(k-1).
[[nodiscard]] sim::Duration retry_backoff(const RecoveryPolicy& policy,
                                          int retry_number);

// Whether a request that has already consumed `attempts` retries may retry
// again (budget + abandon-OOS rule); the deadline gate is checked separately.
[[nodiscard]] bool retry_allowed(const RecoveryPolicy& policy,
                                 const ChunkRequest& request, int attempts);

class ChunkTransport {
 public:
  virtual ~ChunkTransport() = default;

  virtual void fetch(ChunkRequest request) = 0;

  // Aggregate goodput estimate (kbps) for rate adaptation.
  [[nodiscard]] virtual double estimated_kbps() const = 0;

  // Requests accepted but not yet completed/dropped.
  [[nodiscard]] virtual int in_flight() const = 0;

  [[nodiscard]] virtual std::int64_t bytes_fetched() const = 0;
};

// Recovery metric handles, resolved once per transport when both telemetry
// and recovery are on (so fault-free worlds keep their metric set).
struct RecoveryMetrics {
  obs::Counter* retries = nullptr;
  obs::Counter* timeouts = nullptr;
  obs::Counter* failed_requests = nullptr;
  obs::Counter* recovered_requests = nullptr;  // delivered after >= 1 retry
  obs::Histogram* recovery_latency_ms = nullptr;  // first dispatch -> delivery

  void bind(obs::Telemetry& telemetry, const char* prefix);
};

// Queued dispatch over a single net::ChunkSource with bounded concurrency
// — a direct link (net::LinkSource) or a CDN edge (cdn::EdgeSource); the
// transport neither knows nor cares which topology serves its fetches.
// Urgent requests jump the queue (ahead of non-urgent, behind other
// urgent); ties keep FIFO order. Throughput is estimated aggregate-wise
// across concurrent transfers (net::AggregateWindowEstimator).
//
// The wait queue is two seq-ascending deques (urgent / regular), so
// admitting a request is O(1) instead of the former O(queue) scan +
// erase — with thousands of queued tile requests per link that scan was
// the single hottest path of the whole simulator (DESIGN.md §13). The
// pop order (urgent first, then lowest submission seq) is exactly the
// order the scan produced, so behaviour is byte-identical. Only a retry
// re-enqueue, which carries an old seq, pays an ordered insert — O(queue)
// worst case, and retries exist only in faulted worlds.
class SingleLinkTransport final : public ChunkTransport {
 public:
  // `source` must outlive the transport.
  explicit SingleLinkTransport(net::ChunkSource& source,
                               TransportOptions options = {});

  // DEPRECATED adapter overload, kept for callers that still hold a bare
  // link: wraps `link` in an owned net::LinkSource, which is bit-identical
  // to the pre-ChunkSource behaviour (regression-tested). New code should
  // construct the source explicitly — that is where a CDN tier plugs in.
  explicit SingleLinkTransport(net::Link& link, TransportOptions options = {});

  void fetch(ChunkRequest request) override;
  [[nodiscard]] double estimated_kbps() const override;
  [[nodiscard]] int in_flight() const override;
  [[nodiscard]] std::int64_t bytes_fetched() const override { return bytes_fetched_; }

  [[nodiscard]] const TransportOptions& options() const { return options_; }

 private:
  struct Pending {
    ChunkRequest request;
    std::uint64_t seq = 0;
    sim::Time enqueued{sim::kTimeZero};
    int attempts = 0;  // completed (failed) dispatch attempts so far
    sim::Time first_dispatched{sim::kTimeZero};
    bool settled = false;  // guards the timeout event against re-fire
  };

  void init();
  void pump();
  void finish_without_delivery(ChunkRequest& request, sim::Time when,
                               FetchOutcome outcome);
  // Re-queue a retry whose seq predates the queue tails (ordered insert).
  void enqueue_retry(Pending pending);
  [[nodiscard]] std::size_t queued() const {
    return urgent_queue_.size() + regular_queue_.size();
  }

  // Set only by the deprecated Link& overload; declared before source_ so
  // the reference can bind to it during construction.
  std::unique_ptr<net::LinkSource> owned_source_;
  net::ChunkSource& source_;
  TransportOptions options_;
  obs::Counter* requests_metric_ = nullptr;
  obs::Counter* bytes_metric_ = nullptr;
  obs::Histogram* queue_wait_ms_metric_ = nullptr;
  obs::Gauge* in_flight_metric_ = nullptr;
  RecoveryMetrics recovery_metrics_;
  net::AggregateWindowEstimator estimator_;
  // Both deques hold strictly ascending seq values front-to-back.
  std::deque<Pending> urgent_queue_;
  std::deque<Pending> regular_queue_;
  std::uint64_t next_seq_ = 0;
  int active_ = 0;
  int retry_waiting_ = 0;  // retries parked in a backoff wait
  std::int64_t bytes_fetched_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

 public:
  ~SingleLinkTransport() override;
};

}  // namespace sperke::core
