// Structure-of-arrays arena for per-session hot state (DESIGN.md §13).
//
// A SessionBatch packs, for up to `capacity` sessions sharing one
// VideoModel, the four arrays the streaming hot loop touches per event:
//   * tile probabilities      — sessions × tiles doubles (HMP fusion out),
//   * planned chunk quality   — sessions × chunks (-1 = not yet planned),
//   * in-flight request masks — sessions × chunks × tiles bit masks,
//   * playback-buffer cells   — sessions × chunks × tiles Cell structs.
// Each session claims one slot and receives spans into the shared slabs,
// so the fused probability kernel, the chunk planner, and the buffer
// coverage checks run over contiguous memory instead of per-session
// std::map / std::set nodes, and per-chunk bookkeeping allocates nothing
// after construction. One batch per engine shard (engine/shard.h); a
// standalone session owns a private capacity-1 batch.
//
// Slots are claimed monotonically and never returned: sessions and their
// batch have the same lifetime (a shard, a bench run, a test body).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/buffer.h"
#include "media/chunk.h"
#include "media/video_model.h"

namespace sperke::core {

class SessionBatch {
 public:
  SessionBatch(std::shared_ptr<const media::VideoModel> video, int capacity);

  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] int tile_count() const { return tiles_; }
  [[nodiscard]] media::ChunkIndex chunk_count() const { return chunks_; }

  // Claim the next free slot; throws std::length_error when full.
  [[nodiscard]] int acquire();

  // Per-slot views. Valid for the lifetime of the batch; never reallocated.
  [[nodiscard]] std::span<double> probs(int slot) {
    return {probs_.data() + checked(slot) * static_cast<std::size_t>(tiles_),
            static_cast<std::size_t>(tiles_)};
  }
  [[nodiscard]] std::span<media::QualityLevel> planned_quality(int slot) {
    return {planned_.data() + checked(slot) * static_cast<std::size_t>(chunks_),
            static_cast<std::size_t>(chunks_)};
  }
  // One 64-bit mask per (chunk, tile) cell, flat at chunk * tiles + tile;
  // bit layout is the caller's (core/session.cpp packs AVC levels in the
  // low half and SVC layers in the high half).
  [[nodiscard]] std::span<std::uint64_t> in_flight(int slot) {
    return {in_flight_.data() + checked(slot) * cell_stride(),
            cell_stride()};
  }
  [[nodiscard]] std::span<PlaybackBuffer::Cell> cells(int slot) {
    return {cells_.data() + checked(slot) * cell_stride(), cell_stride()};
  }

 private:
  [[nodiscard]] std::size_t checked(int slot) const;
  [[nodiscard]] std::size_t cell_stride() const {
    return static_cast<std::size_t>(chunks_) * static_cast<std::size_t>(tiles_);
  }

  int tiles_ = 0;
  media::ChunkIndex chunks_ = 0;
  int capacity_ = 0;
  int size_ = 0;
  std::vector<double> probs_;
  std::vector<media::QualityLevel> planned_;
  std::vector<std::uint64_t> in_flight_;
  std::vector<PlaybackBuffer::Cell> cells_;
};

}  // namespace sperke::core
