#include "core/session_batch.h"

#include <stdexcept>

#include "util/check.h"

namespace sperke::core {

SessionBatch::SessionBatch(std::shared_ptr<const media::VideoModel> video,
                           int capacity) {
  if (!video) throw std::invalid_argument("SessionBatch: null video");
  if (capacity < 1) throw std::invalid_argument("SessionBatch: capacity < 1");
  tiles_ = video->tile_count();
  chunks_ = video->chunk_count();
  capacity_ = capacity;
  const std::size_t n = static_cast<std::size_t>(capacity);
  probs_.resize(n * static_cast<std::size_t>(tiles_));
  planned_.assign(n * static_cast<std::size_t>(chunks_), -1);
  in_flight_.resize(n * cell_stride());
  cells_.resize(n * cell_stride());
}

int SessionBatch::acquire() {
  if (size_ >= capacity_) {
    throw std::length_error("SessionBatch: all slots claimed");
  }
  return size_++;
}

std::size_t SessionBatch::checked(int slot) const {
  SPERKE_CHECK(slot >= 0 && slot < size_,
               "SessionBatch: slot ", slot, " outside [0, ", size_, ")");
  return static_cast<std::size_t>(slot);
}

}  // namespace sperke::core
