#include "core/buffer.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "util/check.h"

namespace sperke::core {

namespace {

// Highest set bit, or -1 for an empty mask: the best AVC copy held.
[[nodiscard]] media::QualityLevel best_of(std::uint64_t mask) {
  return static_cast<media::QualityLevel>(std::bit_width(mask)) - 1;
}

// Highest contiguous run from bit 0, or -1: the decodable SVC stack.
[[nodiscard]] media::QualityLevel contiguous_of(std::uint64_t mask) {
  return static_cast<media::QualityLevel>(std::countr_one(mask)) - 1;
}

}  // namespace

PlaybackBuffer::PlaybackBuffer(std::shared_ptr<const media::VideoModel> video)
    : video_(std::move(video)) {
  if (!video_) throw std::invalid_argument("PlaybackBuffer: null video");
  tile_count_ = video_->tile_count();
  chunk_count_ = video_->chunk_count();
  owned_.resize(static_cast<std::size_t>(tile_count_) *
                static_cast<std::size_t>(chunk_count_));
  cells_ = owned_;
}

PlaybackBuffer::PlaybackBuffer(std::shared_ptr<const media::VideoModel> video,
                               std::span<Cell> cells)
    : video_(std::move(video)), cells_(cells) {
  if (!video_) throw std::invalid_argument("PlaybackBuffer: null video");
  tile_count_ = video_->tile_count();
  chunk_count_ = video_->chunk_count();
  if (cells_.size() != static_cast<std::size_t>(tile_count_) *
                           static_cast<std::size_t>(chunk_count_)) {
    throw std::invalid_argument("PlaybackBuffer: arena span size mismatch");
  }
}

void PlaybackBuffer::add(const media::ChunkAddress& address) {
  // Chunk state-machine legality: a negative or oversized level would
  // corrupt the held-object masks silently (displayable_quality compares
  // against -1 as "nothing buffered").
  SPERKE_CHECK(address.level >= 0 && address.level < 64,
               "PlaybackBuffer: quality/layer outside mask range ",
               address.level);
  SPERKE_CHECK(address.key.tile >= 0 && address.key.tile < tile_count_,
               "PlaybackBuffer: tile out of grid: ", address.key.tile);
  SPERKE_CHECK(address.key.index >= 0 && address.key.index < chunk_count_,
               "PlaybackBuffer: chunk index out of range: ", address.key.index);
  SPERKE_CHECK(address.key.index >= evict_floor_,
               "PlaybackBuffer: add into evicted chunk ", address.key.index,
               " (floor ", evict_floor_, ")");
  Cell& cell = cells_[static_cast<std::size_t>(address.key.index) *
                          static_cast<std::size_t>(tile_count_) +
                      static_cast<std::size_t>(address.key.tile)];
  std::uint64_t& mask =
      address.encoding == media::Encoding::kAvc ? cell.avc_mask : cell.svc_mask;
  const std::uint64_t bit = std::uint64_t{1} << address.level;
  if ((mask & bit) != 0) return;  // duplicate
#if SPERKE_DCHECK_IS_ON
  const media::QualityLevel before = displayable_quality(address.key);
#endif
  mask |= bit;
  const std::int64_t size = video_->size_bytes(address);
  cell.bytes += size;
  total_bytes_ += size;
#if SPERKE_DCHECK_IS_ON
  // Adding an object can only raise (or keep) what the cell can display —
  // the download state machine never moves a cell backwards.
  SPERKE_DCHECK(displayable_quality(address.key) >= before,
                "PlaybackBuffer: add lowered displayable quality of cell");
#endif
  SPERKE_DCHECK(total_bytes_ >= 0, "PlaybackBuffer: negative total bytes");
}

media::QualityLevel PlaybackBuffer::displayable_quality(
    const media::ChunkKey& key) const {
  const Cell* c = cell(key);
  if (c == nullptr) return -1;
  return std::max(best_of(c->avc_mask), contiguous_of(c->svc_mask));
}

media::QualityLevel PlaybackBuffer::svc_contiguous_quality(
    const media::ChunkKey& key) const {
  const Cell* c = cell(key);
  if (c == nullptr) return -1;
  return contiguous_of(c->svc_mask);
}

bool PlaybackBuffer::contains(const media::ChunkAddress& address) const {
  const Cell* c = cell(address.key);
  if (c == nullptr || address.level < 0 || address.level >= 64) return false;
  const std::uint64_t mask =
      address.encoding == media::Encoding::kAvc ? c->avc_mask : c->svc_mask;
  return (mask & (std::uint64_t{1} << address.level)) != 0;
}

std::int64_t PlaybackBuffer::cell_bytes(const media::ChunkKey& key) const {
  const Cell* c = cell(key);
  return c == nullptr ? 0 : c->bytes;
}

std::int64_t PlaybackBuffer::cell_bytes_used(const media::ChunkKey& key,
                                             media::QualityLevel shown) const {
  if (shown < 0 || shown >= 64) return 0;
  const Cell* c = cell(key);
  if (c == nullptr) return 0;
  // Prefer the interpretation that matches how `shown` was achieved.
  std::int64_t used = 0;
  if (best_of(c->avc_mask) >= shown) {
    used = video_->avc_size_bytes(shown, key);
  } else {
    for (media::LayerIndex l = 0; l <= shown; ++l) {
      if ((c->svc_mask & (std::uint64_t{1} << l)) != 0) {
        used += video_->svc_layer_size_bytes(l, key);
      }
    }
  }
  return used;
}

void PlaybackBuffer::evict_before(media::ChunkIndex index) {
  if (index <= evict_floor_) return;
  const media::ChunkIndex upto = std::min(index, chunk_count_);
  for (media::ChunkIndex i = evict_floor_; i < upto; ++i) {
    for (int t = 0; t < tile_count_; ++t) {
      cells_[static_cast<std::size_t>(i) * static_cast<std::size_t>(tile_count_) +
             static_cast<std::size_t>(t)] = Cell{};
    }
  }
  evict_floor_ = index;
}

int PlaybackBuffer::contiguous_chunks(media::ChunkIndex from,
                                      const std::vector<geo::TileId>& tiles) const {
  int count = 0;
  for (media::ChunkIndex i = from; i < chunk_count_; ++i) {
    for (geo::TileId tile : tiles) {
      if (!has_displayable({tile, i})) return count;
    }
    ++count;
  }
  return count;
}

}  // namespace sperke::core
