#include "core/buffer.h"

#include <stdexcept>

#include "util/check.h"

namespace sperke::core {

PlaybackBuffer::PlaybackBuffer(std::shared_ptr<const media::VideoModel> video)
    : video_(std::move(video)) {
  if (!video_) throw std::invalid_argument("PlaybackBuffer: null video");
}

void PlaybackBuffer::add(const media::ChunkAddress& address) {
  // Chunk state-machine legality: a negative level would corrupt the
  // best_avc / svc_layers lattice silently (displayable_quality compares
  // against -1 as "nothing buffered").
  SPERKE_CHECK(address.level >= 0,
               "PlaybackBuffer: negative quality/layer ", address.level);
  SPERKE_DCHECK(address.key.tile >= 0 &&
                    address.key.tile < video_->tile_count(),
                "PlaybackBuffer: tile out of grid: ", address.key.tile);
  SPERKE_DCHECK(address.key.index >= 0 &&
                    address.key.index < video_->chunk_count(),
                "PlaybackBuffer: chunk index out of range: ",
                address.key.index);
  Cell& cell = cells_[address.key];
  if (!cell.objects.insert(address).second) return;  // duplicate
#if SPERKE_DCHECK_IS_ON
  const media::QualityLevel before = displayable_quality(address.key);
#endif
  total_bytes_ += video_->size_bytes(address);
  if (address.encoding == media::Encoding::kAvc) {
    cell.best_avc = std::max(cell.best_avc, address.level);
  } else {
    cell.svc_layers.insert(address.level);
  }
#if SPERKE_DCHECK_IS_ON
  // Adding an object can only raise (or keep) what the cell can display —
  // the download state machine never moves a cell backwards.
  SPERKE_DCHECK(displayable_quality(address.key) >= before,
                "PlaybackBuffer: add lowered displayable quality of cell");
#endif
  SPERKE_DCHECK(total_bytes_ >= 0, "PlaybackBuffer: negative total bytes");
}

media::QualityLevel PlaybackBuffer::displayable_quality(
    const media::ChunkKey& key) const {
  const auto it = cells_.find(key);
  if (it == cells_.end()) return -1;
  return std::max(it->second.best_avc, svc_contiguous_quality(key));
}

media::QualityLevel PlaybackBuffer::svc_contiguous_quality(
    const media::ChunkKey& key) const {
  const auto it = cells_.find(key);
  if (it == cells_.end()) return -1;
  media::QualityLevel svc_quality = -1;
  for (media::LayerIndex l = 0;; ++l) {
    if (!it->second.svc_layers.contains(l)) break;
    svc_quality = l;
  }
  return svc_quality;
}

bool PlaybackBuffer::contains(const media::ChunkAddress& address) const {
  const auto it = cells_.find(address.key);
  return it != cells_.end() && it->second.objects.contains(address);
}

std::int64_t PlaybackBuffer::cell_bytes(const media::ChunkKey& key) const {
  const auto it = cells_.find(key);
  if (it == cells_.end()) return 0;
  std::int64_t total = 0;
  for (const auto& address : it->second.objects) {
    total += video_->size_bytes(address);
  }
  return total;
}

std::int64_t PlaybackBuffer::cell_bytes_used(const media::ChunkKey& key,
                                             media::QualityLevel shown) const {
  if (shown < 0) return 0;
  const auto it = cells_.find(key);
  if (it == cells_.end()) return 0;
  const Cell& cell = it->second;
  // Prefer the interpretation that matches how `shown` was achieved.
  std::int64_t used = 0;
  if (cell.best_avc >= shown) {
    used = video_->avc_size_bytes(shown, key);
  } else {
    for (media::LayerIndex l = 0; l <= shown; ++l) {
      if (cell.svc_layers.contains(l)) {
        used += video_->svc_layer_size_bytes(l, key);
      }
    }
  }
  return used;
}

void PlaybackBuffer::evict_before(media::ChunkIndex index) {
  for (auto it = cells_.begin(); it != cells_.end();) {
    if (it->first.index < index) {
      it = cells_.erase(it);
    } else {
      ++it;
    }
  }
  if constexpr (SPERKE_DCHECK_IS_ON) {
    // The erase loop above must leave no played-out cell behind; a stale
    // cell would let contiguous_chunks() report buffer the player already
    // discarded.
    for (const auto& [key, cell] : cells_) {
      SPERKE_DCHECK(key.index >= index,
                    "PlaybackBuffer: evict_before left stale cell at chunk ",
                    key.index);
    }
  }
}

int PlaybackBuffer::contiguous_chunks(media::ChunkIndex from,
                                      const std::vector<geo::TileId>& tiles) const {
  int count = 0;
  for (media::ChunkIndex i = from; i < video_->chunk_count(); ++i) {
    for (geo::TileId tile : tiles) {
      if (!has_displayable({tile, i})) return count;
    }
    ++count;
  }
  return count;
}

}  // namespace sperke::core
