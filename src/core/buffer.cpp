#include "core/buffer.h"

#include <stdexcept>

namespace sperke::core {

PlaybackBuffer::PlaybackBuffer(std::shared_ptr<const media::VideoModel> video)
    : video_(std::move(video)) {
  if (!video_) throw std::invalid_argument("PlaybackBuffer: null video");
}

void PlaybackBuffer::add(const media::ChunkAddress& address) {
  Cell& cell = cells_[address.key];
  if (!cell.objects.insert(address).second) return;  // duplicate
  total_bytes_ += video_->size_bytes(address);
  if (address.encoding == media::Encoding::kAvc) {
    cell.best_avc = std::max(cell.best_avc, address.level);
  } else {
    cell.svc_layers.insert(address.level);
  }
}

media::QualityLevel PlaybackBuffer::displayable_quality(
    const media::ChunkKey& key) const {
  const auto it = cells_.find(key);
  if (it == cells_.end()) return -1;
  return std::max(it->second.best_avc, svc_contiguous_quality(key));
}

media::QualityLevel PlaybackBuffer::svc_contiguous_quality(
    const media::ChunkKey& key) const {
  const auto it = cells_.find(key);
  if (it == cells_.end()) return -1;
  media::QualityLevel svc_quality = -1;
  for (media::LayerIndex l = 0;; ++l) {
    if (!it->second.svc_layers.contains(l)) break;
    svc_quality = l;
  }
  return svc_quality;
}

bool PlaybackBuffer::contains(const media::ChunkAddress& address) const {
  const auto it = cells_.find(address.key);
  return it != cells_.end() && it->second.objects.contains(address);
}

std::int64_t PlaybackBuffer::cell_bytes(const media::ChunkKey& key) const {
  const auto it = cells_.find(key);
  if (it == cells_.end()) return 0;
  std::int64_t total = 0;
  for (const auto& address : it->second.objects) {
    total += video_->size_bytes(address);
  }
  return total;
}

std::int64_t PlaybackBuffer::cell_bytes_used(const media::ChunkKey& key,
                                             media::QualityLevel shown) const {
  if (shown < 0) return 0;
  const auto it = cells_.find(key);
  if (it == cells_.end()) return 0;
  const Cell& cell = it->second;
  // Prefer the interpretation that matches how `shown` was achieved.
  std::int64_t used = 0;
  if (cell.best_avc >= shown) {
    used = video_->avc_size_bytes(shown, key);
  } else {
    for (media::LayerIndex l = 0; l <= shown; ++l) {
      if (cell.svc_layers.contains(l)) {
        used += video_->svc_layer_size_bytes(l, key);
      }
    }
  }
  return used;
}

void PlaybackBuffer::evict_before(media::ChunkIndex index) {
  for (auto it = cells_.begin(); it != cells_.end();) {
    if (it->first.index < index) {
      it = cells_.erase(it);
    } else {
      ++it;
    }
  }
}

int PlaybackBuffer::contiguous_chunks(media::ChunkIndex from,
                                      const std::vector<geo::TileId>& tiles) const {
  int count = 0;
  for (media::ChunkIndex i = from; i < video_->chunk_count(); ++i) {
    for (geo::TileId tile : tiles) {
      if (!has_displayable({tile, i})) return count;
    }
    ++count;
  }
  return count;
}

}  // namespace sperke::core
