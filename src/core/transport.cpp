#include "core/transport.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace sperke::core {

void RecoveryMetrics::bind(obs::Telemetry& telemetry, const char* prefix) {
  obs::MetricsRegistry& m = telemetry.metrics();
  const std::string p(prefix);
  // The prefix parameterizes one fixed suffix set ("transport"/"mp.pathN"),
  // so the names stay within the [a-z0-9_.]+ style the lint rule enforces.
  retries = &m.counter(p + ".retries");  // sperke-lint: allow(metric-name)
  timeouts = &m.counter(p + ".timeouts");  // sperke-lint: allow(metric-name)
  failed_requests = &m.counter(p + ".failed_requests");  // sperke-lint: allow(metric-name)
  recovered_requests = &m.counter(p + ".recovered_requests");  // sperke-lint: allow(metric-name)
  recovery_latency_ms = &m.histogram(p + ".recovery_latency_ms");  // sperke-lint: allow(metric-name)
}

SingleLinkTransport::SingleLinkTransport(net::ChunkSource& source,
                                         TransportOptions options)
    : source_(source), options_(std::move(options)) {
  init();
}

SingleLinkTransport::SingleLinkTransport(net::Link& link, TransportOptions options)
    : owned_source_(std::make_unique<net::LinkSource>(link)),
      source_(*owned_source_),
      options_(std::move(options)) {
  init();
}

void SingleLinkTransport::init() {
  if (options_.max_concurrent < 1) {
    throw std::invalid_argument("SingleLinkTransport: max_concurrent < 1");
  }
  if (options_.recovery.enabled) {
    if (options_.recovery.max_retries < 0) {
      throw std::invalid_argument("RecoveryPolicy: negative retry budget");
    }
    if (options_.recovery.backoff_multiplier < 1.0) {
      throw std::invalid_argument("RecoveryPolicy: backoff multiplier < 1");
    }
  }
  if (options_.telemetry != nullptr) {
    obs::MetricsRegistry& m = options_.telemetry->metrics();
    requests_metric_ = &m.counter("transport.requests");
    bytes_metric_ = &m.counter("transport.bytes");
    queue_wait_ms_metric_ = &m.histogram("transport.queue_wait_ms");
    in_flight_metric_ = &m.gauge("transport.in_flight");
    // Recovery metrics exist iff recovery is on, so fault-free worlds keep
    // their exact pre-fault metric set.
    if (options_.recovery.enabled) {
      recovery_metrics_.bind(*options_.telemetry, "transport");
    }
  }
}

SingleLinkTransport::~SingleLinkTransport() { *alive_ = false; }

void SingleLinkTransport::fetch(ChunkRequest request) {
  if (request.bytes <= 0) throw std::invalid_argument("fetch: non-positive bytes");
  if (options_.telemetry != nullptr) {
    requests_metric_->increment();
    // Sessions assign ids at dispatch; a bare transport (benches, tests)
    // assigns here so attempt spans always have a request to nest under.
    if (request.request_id == 0) {
      request.request_id = options_.telemetry->next_request_id();
    }
  }
  std::deque<Pending>& queue = request.urgent ? urgent_queue_ : regular_queue_;
  queue.push_back({std::move(request), next_seq_++, source_.simulator().now()});
  pump();
  if (options_.telemetry != nullptr) in_flight_metric_->set(in_flight());
}

double SingleLinkTransport::estimated_kbps() const {
  return estimator_.estimate_kbps();
}

int SingleLinkTransport::in_flight() const {
  return active_ + static_cast<int>(queued()) + retry_waiting_;
}

sim::Duration retry_backoff(const RecoveryPolicy& policy, int retry_number) {
  double scale = 1.0;
  for (int i = 1; i < retry_number; ++i) scale *= policy.backoff_multiplier;
  return sim::seconds(sim::to_seconds(policy.base_backoff) * scale);
}

bool retry_allowed(const RecoveryPolicy& policy, const ChunkRequest& request,
                   int attempts) {
  if (!policy.enabled || attempts >= policy.max_retries) return false;
  // Abandon OOS first: regular out-of-sight prefetch never competes with
  // FoV traffic for retry capacity.
  if (policy.abandon_oos && request.spatial == abr::SpatialClass::kOos &&
      !request.urgent) {
    return false;
  }
  return true;
}

void SingleLinkTransport::finish_without_delivery(ChunkRequest& request,
                                                  sim::Time when,
                                                  FetchOutcome outcome) {
  if (outcome == FetchOutcome::kFailed &&
      recovery_metrics_.failed_requests != nullptr) {
    recovery_metrics_.failed_requests->increment();
  }
  if (outcome == FetchOutcome::kTimedOut &&
      recovery_metrics_.timeouts != nullptr) {
    recovery_metrics_.timeouts->increment();
  }
  if (request.on_done) request.on_done(when, outcome);
}

void SingleLinkTransport::enqueue_retry(Pending pending) {
  // A retry keeps its original submission seq, which may predate requests
  // already queued — find its seq-ordered slot from the back. Retries are
  // rare (faulted worlds only), so the linear walk never shows up hot.
  std::deque<Pending>& queue =
      pending.request.urgent ? urgent_queue_ : regular_queue_;
  auto it = queue.end();
  while (it != queue.begin() && std::prev(it)->seq > pending.seq) --it;
  queue.insert(it, std::move(pending));
}

void SingleLinkTransport::pump() {
  while (active_ < options_.max_concurrent &&
         (!urgent_queue_.empty() || !regular_queue_.empty())) {
    // Pick the best queued request: urgent beats non-urgent; within a
    // class, earlier submission (lower seq) wins — both deques are
    // seq-ascending, so that is the front of the urgent queue if any,
    // else the front of the regular queue.
    std::deque<Pending>& queue =
        urgent_queue_.empty() ? regular_queue_ : urgent_queue_;
    Pending pending = std::move(queue.front());
    queue.pop_front();
    const sim::Time started = source_.simulator().now();
    // A retry never starts at or past the playback deadline: fetching a
    // chunk the player has already given up on only wastes capacity.
    if (pending.attempts > 0 && pending.request.deadline <= started) {
      finish_without_delivery(pending.request, started, FetchOutcome::kTimedOut);
      continue;
    }
    ++active_;
    if (options_.telemetry != nullptr) {
      queue_wait_ms_metric_->observe(sim::to_milliseconds(started - pending.enqueued));
    }
    const std::int64_t bytes = pending.request.bytes;
    // HTTP/2-style stream weights: urgent chunks outweigh regular ones,
    // and within a class FoV outweighs OOS (Table 1).
    const double weight = (pending.request.urgent ? 4.0 : 1.0) *
                          (pending.request.spatial == abr::SpatialClass::kFov ? 2.0 : 1.0);
    if (pending.attempts == 0) pending.first_dispatched = started;
    pending.settled = false;
    auto flight = std::make_shared<Pending>(std::move(pending));
    if (options_.telemetry != nullptr) {
      options_.telemetry->trace().record(
          {.type = obs::TraceEventType::kFetchAttemptStart,
           .ts = started,
           .tile = flight->request.id.tile,
           .chunk = flight->request.id.chunk,
           .quality = flight->request.id.level(),
           .bytes = bytes,
           .urgent = flight->request.urgent,
           .value = static_cast<double>(flight->attempts),
           .request = flight->request.request_id,
           .parent = flight->request.parent_id});
    }
    const net::FetchId id = source_.fetch(
        {.id = flight->request.id,
         .bytes = bytes,
         .weight = weight,
         .deadline = flight->request.deadline},
        [this, alive = alive_, flight, started, bytes](const net::TransferResult& r) {
          if (!*alive) return;
          flight->settled = true;
          --active_;
          if (options_.telemetry != nullptr) {
            options_.telemetry->trace().record(
                {.type = obs::TraceEventType::kFetchAttemptEnd,
                 .ts = r.time,
                 .tile = flight->request.id.tile,
                 .chunk = flight->request.id.chunk,
                 .quality = flight->request.id.level(),
                 .bytes = r.completed() ? bytes : 0,
                 .urgent = flight->request.urgent,
                 .value = static_cast<double>(flight->attempts),
                 .request = flight->request.request_id,
                 .parent = flight->request.parent_id});
          }
          if (r.completed()) {
            bytes_fetched_ += bytes;
            // Small tile objects are RTT-dominated; measure from the start
            // of data flow, and let the aggregate estimator fold in
            // concurrency.
            estimator_.record(started + source_.rtt(), r.time, bytes);
            if (options_.telemetry != nullptr) {
              bytes_metric_->add(bytes);
              in_flight_metric_->set(in_flight());
            }
            if (flight->attempts > 0 &&
                recovery_metrics_.recovered_requests != nullptr) {
              recovery_metrics_.recovered_requests->increment();
              recovery_metrics_.recovery_latency_ms->observe(
                  sim::to_milliseconds(r.time - flight->first_dispatched));
            }
            if (flight->request.on_done) {
              flight->request.on_done(r.time, FetchOutcome::kDelivered);
            }
            pump();
            return;
          }
          if (options_.telemetry != nullptr) in_flight_metric_->set(in_flight());
          if (r.status == net::TransferStatus::kCancelled) {
            // Only our own deadline timeout cancels transfers.
            finish_without_delivery(flight->request, r.time, FetchOutcome::kTimedOut);
            pump();
            return;
          }
          // Injected fault (kFailed): retry with exponential backoff while
          // the budget and the deadline both allow it.
          const sim::Duration backoff =
              retry_backoff(options_.recovery, flight->attempts + 1);
          const bool budget_left =
              retry_allowed(options_.recovery, flight->request, flight->attempts);
          const bool deadline_left =
              r.time + backoff < flight->request.deadline;
          if (budget_left && deadline_left) {
            ++flight->attempts;
            if (recovery_metrics_.retries != nullptr) {
              recovery_metrics_.retries->increment();
            }
            ++retry_waiting_;
            source_.simulator().schedule_after(
                backoff, [this, alive2 = alive_, flight] {
                  if (!*alive2) return;
                  --retry_waiting_;
                  flight->enqueued = source_.simulator().now();
                  enqueue_retry(std::move(*flight));
                  pump();
                });
          } else {
            finish_without_delivery(flight->request, r.time,
                                    budget_left ? FetchOutcome::kTimedOut
                                                : FetchOutcome::kFailed);
          }
          pump();
        });
    if (options_.recovery.enabled) {
      // Deadline-derived timeout on the in-flight transfer. The min_timeout
      // floor keeps already-late emergency fetches (deadline == now) alive
      // long enough to have a chance.
      const sim::Time timeout_at = std::max(
          flight->request.deadline, started + options_.recovery.min_timeout);
      source_.simulator().schedule_at(timeout_at, [this, alive = alive_, flight, id] {
        if (!*alive || flight->settled) return;
        source_.cancel(id);  // fires the kCancelled completion synchronously
      });
    }
  }
}

}  // namespace sperke::core
