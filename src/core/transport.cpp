#include "core/transport.h"

#include <algorithm>
#include <stdexcept>

namespace sperke::core {

SingleLinkTransport::SingleLinkTransport(net::Link& link, int max_concurrent,
                                         obs::Telemetry* telemetry)
    : link_(link), max_concurrent_(max_concurrent), telemetry_(telemetry) {
  if (max_concurrent_ < 1) {
    throw std::invalid_argument("SingleLinkTransport: max_concurrent < 1");
  }
  if (telemetry_ != nullptr) {
    obs::MetricsRegistry& m = telemetry_->metrics();
    requests_metric_ = &m.counter("transport.requests");
    bytes_metric_ = &m.counter("transport.bytes");
    queue_wait_ms_metric_ = &m.histogram("transport.queue_wait_ms");
    in_flight_metric_ = &m.gauge("transport.in_flight");
  }
}

SingleLinkTransport::~SingleLinkTransport() { *alive_ = false; }

void SingleLinkTransport::fetch(ChunkRequest request) {
  if (request.bytes <= 0) throw std::invalid_argument("fetch: non-positive bytes");
  if (telemetry_ != nullptr) requests_metric_->increment();
  queue_.push_back({std::move(request), next_seq_++, link_.simulator().now()});
  pump();
  if (telemetry_ != nullptr) in_flight_metric_->set(in_flight());
}

double SingleLinkTransport::estimated_kbps() const {
  return estimator_.estimate_kbps();
}

int SingleLinkTransport::in_flight() const {
  return active_ + static_cast<int>(queue_.size());
}

void SingleLinkTransport::pump() {
  while (active_ < max_concurrent_ && !queue_.empty()) {
    // Pick the best queued request: urgent beats non-urgent; within a
    // class, earlier submission wins.
    auto best = queue_.begin();
    for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
      const bool better_urgency = it->request.urgent && !best->request.urgent;
      const bool same_urgency = it->request.urgent == best->request.urgent;
      if (better_urgency || (same_urgency && it->seq < best->seq)) best = it;
    }
    ChunkRequest request = std::move(best->request);
    const sim::Time enqueued = best->enqueued;
    queue_.erase(best);
    ++active_;
    const sim::Time started = link_.simulator().now();
    if (telemetry_ != nullptr) {
      queue_wait_ms_metric_->observe(sim::to_milliseconds(started - enqueued));
    }
    const std::int64_t bytes = request.bytes;
    // HTTP/2-style stream weights: urgent chunks outweigh regular ones,
    // and within a class FoV outweighs OOS (Table 1).
    const double weight = (request.urgent ? 4.0 : 1.0) *
                          (request.spatial == abr::SpatialClass::kFov ? 2.0 : 1.0);
    auto on_done = std::make_shared<ChunkRequest>(std::move(request));
    link_.start_transfer(bytes, [this, alive = alive_, on_done, started,
                                 bytes](sim::Time finished) {
      if (!*alive) return;
      --active_;
      bytes_fetched_ += bytes;
      // Small tile objects are RTT-dominated; measure from the start of
      // data flow, and let the aggregate estimator fold in concurrency.
      estimator_.record(started + link_.rtt(), finished, bytes);
      if (telemetry_ != nullptr) {
        bytes_metric_->add(bytes);
        in_flight_metric_->set(in_flight());
      }
      if (on_done->on_done) on_done->on_done(finished, true);
      pump();
    }, weight);
  }
}

}  // namespace sperke::core
