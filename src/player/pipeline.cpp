#include "player/pipeline.h"

#include <algorithm>
#include <stdexcept>

namespace sperke::player {

FrameCache::FrameCache(std::size_t capacity_tiles) : capacity_(capacity_tiles) {
  if (capacity_tiles == 0) throw std::invalid_argument("FrameCache: zero capacity");
}

bool FrameCache::contains(int frame, geo::TileId tile) const {
  return entries_.contains({frame, tile});
}

bool FrameCache::put(int frame, geo::TileId tile) {
  if (entries_.contains({frame, tile})) return true;
  if (entries_.size() >= capacity_) return false;
  entries_.insert({frame, tile});
  return true;
}

void FrameCache::evict_before(int frame) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first < frame) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

DecoderPool::DecoderPool(sim::Simulator& simulator, DecoderModelConfig config)
    : simulator_(simulator), config_(config) {
  if (config_.hardware_decoders < 1) {
    throw std::invalid_argument("DecoderPool: need at least one decoder");
  }
}

DecoderPool::~DecoderPool() { *alive_ = false; }

void DecoderPool::decode(std::function<void()> on_done) {
  if (!has_free()) throw std::logic_error("DecoderPool: no free decoder");
  ++active_;
  // Service time reflects contention at admission (memory-bus sharing).
  const double ms = effective_decode_ms(config_, active_);
  simulator_.schedule_after(
      sim::seconds(ms / 1000.0),
      [this, alive = alive_, cb = std::move(on_done)] {
        if (!*alive) return;
        --active_;
        ++tiles_decoded_;
        if (cb) cb();
      });
}

PlayerSimulation::PlayerSimulation(sim::Simulator& simulator,
                                   std::shared_ptr<const geo::TileGeometry> geometry,
                                   const hmp::HeadTrace& head_trace, Config config)
    : simulator_(simulator),
      geometry_(std::move(geometry)),
      head_trace_(head_trace),
      config_(config),
      decoders_(simulator, config.decoder),
      cache_(config.cache_capacity_tiles) {
  if (!geometry_) throw std::invalid_argument("PlayerSimulation: null geometry");
  if (config_.prefetch_frames < 1) {
    throw std::invalid_argument("PlayerSimulation: prefetch_frames < 1");
  }
}

PlayerSimulation::~PlayerSimulation() { *alive_ = false; }

void PlayerSimulation::start() {
  if (started_) throw std::logic_error("PlayerSimulation already started");
  started_ = true;
  started_at_ = simulator_.now();
  earliest_next_render_ = simulator_.now();
  schedule_decodes();
  try_render();
}

std::vector<geo::TileId> PlayerSimulation::tiles_needed(int frame) const {
  (void)frame;  // orientation is wall-clock driven; frames render the "now" view
  if (!config_.pipeline.fov_only) {
    std::vector<geo::TileId> all(
        static_cast<std::size_t>(geometry_->grid().tile_count()));
    for (geo::TileId t = 0; t < geometry_->grid().tile_count(); ++t) {
      all[static_cast<std::size_t>(t)] = t;
    }
    return all;
  }
  return geometry_->visible_tiles(head_trace_.orientation_at(simulator_.now()),
                                  config_.viewport);
}

std::vector<geo::TileId> PlayerSimulation::tiles_to_prefetch(int frame) const {
  std::vector<geo::TileId> tiles = tiles_needed(frame);
  if (config_.pipeline.fov_only && config_.cache_margin_ring &&
      config_.pipeline.frame_cache) {
    // Decode one ring of margin tiles so a small FoV shift only needs the
    // "delta" tiles (§3.5), not a full re-decode.
    const auto rings = geometry_->oos_rings(tiles);
    for (geo::TileId t = 0; t < geometry_->grid().tile_count(); ++t) {
      if (rings[static_cast<std::size_t>(t)] == 1) tiles.push_back(t);
    }
  }
  return tiles;
}

void PlayerSimulation::schedule_decodes() {
  if (!started_) return;
  const int depth = config_.pipeline.frame_cache ? config_.prefetch_frames : 1;
  for (int frame = next_frame_; frame < next_frame_ + depth; ++frame) {
    for (geo::TileId tile :
         (frame == next_frame_ ? tiles_needed(frame) : tiles_to_prefetch(frame))) {
      if (!decoders_.has_free()) return;
      if (cache_.contains(frame, tile) || decoding_.contains({frame, tile})) {
        continue;
      }
      if (!config_.pipeline.parallel_decoders && decoders_.active() >= 1) return;
      decoding_.insert({frame, tile});
      decoders_.decode([this, alive = alive_, frame, tile] {
        if (!*alive) return;
        decoding_.erase({frame, tile});
        cache_.put(frame, tile);
        schedule_decodes();
        try_render();
      });
    }
    if (!config_.pipeline.frame_cache) break;
  }
}

void PlayerSimulation::try_render() {
  if (!started_ || rendering_) return;
  if (simulator_.now() < earliest_next_render_) {
    // Respect the display refresh pacing.
    simulator_.schedule_at(earliest_next_render_, [this, alive = alive_] {
      if (*alive) try_render();
    });
    return;
  }
  const auto needed = tiles_needed(next_frame_);
  for (geo::TileId tile : needed) {
    if (!cache_.contains(next_frame_, tile)) {
      // A genuine surprise — the tile is not even on a decoder — means the
      // FoV shifted faster than the scheduler predicted; a tile merely
      // still decoding is ordinary pipelining.
      if (!decoding_.contains({next_frame_, tile})) ++render_misses_;
      schedule_decodes();  // make sure the missing tiles are on a decoder
      return;              // retry on the next decode completion
    }
  }
  rendering_ = true;
  const double render_ms =
      static_cast<double>(needed.size()) * config_.decoder.render_ms_per_tile +
      config_.decoder.compose_ms;
  simulator_.schedule_after(sim::seconds(render_ms / 1000.0),
                            [this, alive = alive_] {
                              if (*alive) finish_render();
                            });
}

void PlayerSimulation::finish_render() {
  rendering_ = false;
  ++frames_rendered_;
  cache_.evict_before(next_frame_ + 1);
  earliest_next_render_ =
      earliest_next_render_ +
      sim::seconds(1.0 / config_.decoder.display_cap_fps);
  if (earliest_next_render_ < simulator_.now()) {
    earliest_next_render_ = simulator_.now();
  }
  ++next_frame_;
  schedule_decodes();
  try_render();
}

double PlayerSimulation::measured_fps() const {
  const double elapsed = sim::to_seconds(simulator_.now() - started_at_);
  return elapsed > 0.0 ? frames_rendered_ / elapsed : 0.0;
}

}  // namespace sperke::player
