// Decoder/render service-time model — the substitute for SGS7 hardware
// (DESIGN.md §4).
//
// Calibration: constants are *fitted* to the paper's Figure 5 measurements
// (2K video, 2x4 tiles, 8 parallel H.264 decoders on a Samsung Galaxy S7):
//   config 1  render all tiles, no optimization          ~11 FPS
//   config 2  all tiles, parallel decoders + frame cache ~53 FPS
//   config 3  FoV tiles only, optimized                  ~120 FPS (display cap)
// The model explains them structurally: per-tile decode time grows when
// more hardware decoders contend for the memory bus; without the decoded
// frame cache, decode and render serialize per frame; with it they
// pipeline, so throughput is the max of the stage rates; FoV-only rendering
// cuts the per-frame tile count.
#pragma once

#include <stdexcept>

namespace sperke::player {

struct DecoderModelConfig {
  int hardware_decoders = 8;
  double base_decode_ms_per_tile = 8.5;   // one decoder active, 2K / 2x4 tile
  double decoder_contention = 1.225;      // slowdown factor at full occupancy
  double render_ms_per_tile = 1.2;        // GL draw of one decoded tile
  double compose_ms = 2.0;                // projection + composition per frame
  double display_cap_fps = 120.0;         // panel refresh ceiling
};

// Per-tile decode latency when `active` of the pool's decoders are busy.
[[nodiscard]] inline double effective_decode_ms(const DecoderModelConfig& config,
                                                int active) {
  if (active < 1) throw std::invalid_argument("effective_decode_ms: active < 1");
  const double occupancy =
      static_cast<double>(active) / static_cast<double>(config.hardware_decoders);
  return config.base_decode_ms_per_tile * (1.0 + config.decoder_contention * occupancy);
}

// Which of the §3.5 optimizations are on.
struct PipelineConfig {
  bool parallel_decoders = true;  // use all hardware decoders via a scheduler
  bool frame_cache = true;        // decoded-frame cache -> async pipelining
  bool fov_only = false;          // render only tiles in the current FoV
};

// Closed-form steady-state FPS of the pipeline.
//  `tiles_per_frame` — tiles decoded & rendered each frame (all tiles, or
//  the FoV subset when fov_only).
[[nodiscard]] double analytic_fps(const DecoderModelConfig& config,
                                  const PipelineConfig& pipeline,
                                  int tiles_per_frame);

}  // namespace sperke::player
