// Event-driven client pipeline (§3.5 / Figure 4's right half): a decoder
// pool fed by a decoding scheduler, a decoded-frame cache in "video
// memory", and a render loop that composes the current FoV. Used by the
// Figure 5 bench to *measure* FPS rather than compute it analytically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "geo/visibility.h"
#include "hmp/head_trace.h"
#include "player/decoder_model.h"
#include "sim/simulator.h"

namespace sperke::player {

// Decoded tile of one video frame, resident in video memory (the paper
// implements this with OpenGL ES framebuffer objects).
class FrameCache {
 public:
  explicit FrameCache(std::size_t capacity_tiles);

  [[nodiscard]] bool contains(int frame, geo::TileId tile) const;
  // Inserts; returns false (and does nothing) when the cache is full.
  bool put(int frame, geo::TileId tile);
  // Drop every tile belonging to frames before `frame`.
  void evict_before(int frame);
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::set<std::pair<int, geo::TileId>> entries_;
};

// N hardware decoders with contention-aware service times.
class DecoderPool {
 public:
  DecoderPool(sim::Simulator& simulator, DecoderModelConfig config);
  ~DecoderPool();
  DecoderPool(const DecoderPool&) = delete;
  DecoderPool& operator=(const DecoderPool&) = delete;

  [[nodiscard]] int capacity() const { return config_.hardware_decoders; }
  [[nodiscard]] int active() const { return active_; }
  [[nodiscard]] bool has_free() const { return active_ < capacity(); }

  // Start decoding one tile; `on_done` fires when the decoder finishes.
  // Throws std::logic_error if no decoder is free.
  void decode(std::function<void()> on_done);

  [[nodiscard]] std::int64_t tiles_decoded() const { return tiles_decoded_; }

 private:
  sim::Simulator& simulator_;
  DecoderModelConfig config_;
  int active_ = 0;
  std::int64_t tiles_decoded_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

// Whole-pipeline simulation: runs the render loop against a (wall-clock
// indexed) head trace and measures achieved FPS.
class PlayerSimulation {
 public:
  struct Config {
    DecoderModelConfig decoder;
    PipelineConfig pipeline;
    geo::Viewport viewport{100.0, 90.0};
    std::size_t cache_capacity_tiles = 48;
    int prefetch_frames = 3;  // how far ahead the decoding scheduler works
    // Also decode ring-1 tiles around the FoV so small shifts hit the
    // cache. Off by default: on coarse grids the ring can cover the whole
    // panorama and eat the decode capacity FoV-only mode is meant to save.
    bool cache_margin_ring = false;
  };

  PlayerSimulation(sim::Simulator& simulator,
                   std::shared_ptr<const geo::TileGeometry> geometry,
                   const hmp::HeadTrace& head_trace, Config config);
  ~PlayerSimulation();
  PlayerSimulation(const PlayerSimulation&) = delete;
  PlayerSimulation& operator=(const PlayerSimulation&) = delete;

  // Schedule pipeline activity; then drive the simulator yourself
  // (e.g. simulator.run_until(seconds(10))).
  void start();

  [[nodiscard]] int frames_rendered() const { return frames_rendered_; }
  [[nodiscard]] double measured_fps() const;
  [[nodiscard]] std::int64_t tiles_decoded() const { return decoders_.tiles_decoded(); }
  // Render attempts that found a needed tile neither cached nor decoding —
  // FoV shifts that outran the scheduler (what the §3.5 decoded-frame
  // cache with margin tiles is meant to absorb).
  [[nodiscard]] int render_misses() const { return render_misses_; }

 private:
  [[nodiscard]] std::vector<geo::TileId> tiles_needed(int frame) const;
  [[nodiscard]] std::vector<geo::TileId> tiles_to_prefetch(int frame) const;
  void schedule_decodes();
  void try_render();
  void finish_render();

  sim::Simulator& simulator_;
  std::shared_ptr<const geo::TileGeometry> geometry_;
  const hmp::HeadTrace& head_trace_;
  Config config_;
  DecoderPool decoders_;
  FrameCache cache_;
  std::set<std::pair<int, geo::TileId>> decoding_;  // in-flight decodes

  int next_frame_ = 0;          // next frame to render
  int frames_rendered_ = 0;
  int render_misses_ = 0;
  bool rendering_ = false;
  bool started_ = false;
  sim::Time started_at_{sim::kTimeZero};
  sim::Time earliest_next_render_{sim::kTimeZero};  // display cap pacing
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sperke::player
