#include "player/decoder_model.h"

#include <algorithm>
#include <cmath>

namespace sperke::player {

double analytic_fps(const DecoderModelConfig& config, const PipelineConfig& pipeline,
                    int tiles_per_frame) {
  if (tiles_per_frame < 1) throw std::invalid_argument("analytic_fps: no tiles");
  const double render_frame_ms =
      tiles_per_frame * config.render_ms_per_tile + config.compose_ms;

  double fps;
  if (pipeline.frame_cache && pipeline.parallel_decoders) {
    // Async pipeline: the cache lets every hardware decoder work ahead
    // across frames, so decode throughput is pool-wide (all decoders busy),
    // and decode/render overlap — the slower stage binds.
    const double decode_ms = effective_decode_ms(config, config.hardware_decoders);
    const double decode_fps =
        1000.0 * config.hardware_decoders / (tiles_per_frame * decode_ms);
    const double render_fps = 1000.0 / render_frame_ms;
    fps = std::min(decode_fps, render_fps);
  } else {
    // Synchronous: each frame pays its decode latency then its render cost.
    const int decoders = pipeline.parallel_decoders
                             ? std::min(config.hardware_decoders, tiles_per_frame)
                             : 1;
    const double decode_ms = effective_decode_ms(config, decoders);
    const double waves =
        std::ceil(static_cast<double>(tiles_per_frame) / decoders);
    const double decode_frame_ms = waves * decode_ms;
    fps = 1000.0 / (decode_frame_ms + render_frame_ms);
  }
  return std::min(fps, config.display_cap_fps);
}

}  // namespace sperke::player
