#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "util/csv.h"

namespace sperke::obs {
namespace {

// Shortest round-trippable decimal; deterministic for identical inputs.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

// Chrome trace viewers group events by (pid, tid); give each category its
// own named track so the timeline reads as one lane per pipeline layer.
int track_of(TraceEventType type) {
  const std::string_view cat = trace_event_category(type);
  if (cat == "session") return 1;
  if (cat == "plan") return 2;
  if (cat == "fetch") return 3;
  if (cat == "playback") return 4;
  if (cat == "multipath") return 5;
  if (cat == "live") return 6;
  if (cat == "slo") return 8;
  return 7;
}

std::string args_json(const TraceEvent& e) {
  std::string out = "{";
  out += "\"tile\":" + std::to_string(e.tile);
  out += ",\"chunk\":" + std::to_string(e.chunk);
  out += ",\"quality\":" + std::to_string(e.quality);
  out += ",\"path\":" + std::to_string(e.path);
  out += ",\"bytes\":" + std::to_string(e.bytes);
  out += std::string(",\"urgent\":") + (e.urgent ? "true" : "false");
  out += ",\"value\":" + fmt_double(e.value);
  out += ",\"request\":" + std::to_string(e.request);
  out += ",\"parent\":" + std::to_string(e.parent);
  out += "}";
  return out;
}

struct Record {
  std::int64_t ts = 0;
  std::int64_t dur = -1;  // -1: instant event
  std::size_t order = 0;  // creation order, the sort tie-break
  std::string name;
  std::string cat;
  int tid = 0;
  std::string args;
};

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events) {
  std::vector<Record> records;
  records.reserve(events.size());
  // Open spans awaiting their closing event: fetches keyed by request id
  // when the producer assigned one (ids disambiguate a retry of the same
  // chunk cell), falling back to the chunk cell + quality for untraced
  // events; transport attempts by (request id, attempt number); stalls by
  // track (at most one open per session).
  std::map<std::tuple<std::int32_t, std::int32_t, std::int32_t>, TraceEvent>
      open_fetches;
  std::map<std::int64_t, TraceEvent> open_requests;
  std::map<std::pair<std::int64_t, std::int64_t>, TraceEvent> open_attempts;
  std::map<int, TraceEvent> open_stalls;

  auto push = [&records](std::int64_t ts, std::int64_t dur, std::string name,
                         const TraceEvent& e) {
    Record r;
    r.ts = ts;
    r.dur = dur;
    r.order = records.size();
    r.name = std::move(name);
    r.cat = std::string(trace_event_category(e.type));
    r.tid = track_of(e.type);
    r.args = args_json(e);
    records.push_back(std::move(r));
  };

  for (const TraceEvent& e : events) {
    switch (e.type) {
      case TraceEventType::kFetchDispatched:
        if (e.request != 0) {
          open_requests[e.request] = e;
        } else {
          open_fetches[{e.tile, e.chunk, e.quality}] = e;
        }
        break;
      case TraceEventType::kFetchDone:
      case TraceEventType::kFetchDropped: {
        const TraceEvent* begin = nullptr;
        if (e.request != 0) {
          const auto it = open_requests.find(e.request);
          if (it != open_requests.end()) begin = &it->second;
        } else {
          const auto it = open_fetches.find({e.tile, e.chunk, e.quality});
          if (it != open_fetches.end()) begin = &it->second;
        }
        if (begin != nullptr) {
          TraceEvent span = e;
          span.urgent = begin->urgent;
          // A retried fetch's span carries its parent linkage even when
          // only the dispatch event recorded it.
          if (span.parent == 0) span.parent = begin->parent;
          push(begin->ts.count(), (e.ts - begin->ts).count(),
               e.type == TraceEventType::kFetchDone
                   ? (span.parent != 0 ? "FetchRetry" : "Fetch")
                   : "FetchDropped",
               span);
          if (e.request != 0) {
            open_requests.erase(e.request);
          } else {
            open_fetches.erase({e.tile, e.chunk, e.quality});
          }
        } else {
          push(e.ts.count(), -1, std::string(trace_event_name(e.type)), e);
        }
        break;
      }
      case TraceEventType::kFetchAttemptStart:
        open_attempts[{e.request, static_cast<std::int64_t>(e.value)}] = e;
        break;
      case TraceEventType::kFetchAttemptEnd: {
        const auto it =
            open_attempts.find({e.request, static_cast<std::int64_t>(e.value)});
        if (it != open_attempts.end()) {
          // Nested inside the request's outer Fetch span on the same
          // track: attempt 0 is the first try, attempt > 0 a transport
          // retry after a fault.
          push(it->second.ts.count(), (e.ts - it->second.ts).count(),
               e.value > 0.0 ? "Retry" : "Attempt", e);
          open_attempts.erase(it);
        } else {
          push(e.ts.count(), -1, "FetchAttemptEnd", e);
        }
        break;
      }
      case TraceEventType::kStallBegin:
        open_stalls[track_of(e.type)] = e;
        break;
      case TraceEventType::kStallEnd: {
        const auto it = open_stalls.find(track_of(e.type));
        if (it != open_stalls.end()) {
          push(it->second.ts.count(), (e.ts - it->second.ts).count(), "Stall", e);
          open_stalls.erase(it);
        } else {
          push(e.ts.count(), -1, "StallEnd", e);
        }
        break;
      }
      default:
        push(e.ts.count(), -1, std::string(trace_event_name(e.type)), e);
        break;
    }
  }
  // Spans that never closed (session cut off mid-fetch / mid-stall) export
  // as instants so no event is silently lost.
  for (const auto& [key, e] : open_fetches) {
    push(e.ts.count(), -1, "FetchDispatched", e);
  }
  for (const auto& [request, e] : open_requests) {
    push(e.ts.count(), -1, "FetchDispatched", e);
  }
  for (const auto& [key, e] : open_attempts) {
    push(e.ts.count(), -1, "FetchAttemptStart", e);
  }
  for (const auto& [track, e] : open_stalls) {
    push(e.ts.count(), -1, "StallBegin", e);
  }

  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     return std::tie(a.ts, a.order) < std::tie(b.ts, b.order);
                   });

  out << "[";
  const char* track_names[] = {"",          "session", "plan", "fetch",
                               "playback", "multipath", "live", "sim", "slo"};
  bool first = true;
  for (int tid = 1; tid <= 8; ++tid) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << track_names[tid] << "\"}}";
  }
  for (const Record& r : records) {
    out << ",\n{\"name\":\"" << r.name << "\",\"cat\":\"" << r.cat << "\",";
    if (r.dur >= 0) {
      out << "\"ph\":\"X\",\"dur\":" << r.dur << ",";
    } else {
      out << "\"ph\":\"i\",\"s\":\"t\",";
    }
    out << "\"ts\":" << r.ts << ",\"pid\":1,\"tid\":" << r.tid
        << ",\"args\":" << r.args << "}";
  }
  out << "\n]\n";
}

void write_trace_jsonl(std::ostream& out,
                       const std::vector<TraceEvent>& events) {
  for (const TraceEvent& e : events) {
    out << "{\"event\":\"" << trace_event_name(e.type) << "\",\"cat\":\""
        << trace_event_category(e.type) << "\",\"ts_us\":" << e.ts.count()
        << ",\"args\":" << args_json(e) << "}\n";
  }
}

void write_metrics_csv(std::ostream& out, const MetricsRegistry& registry) {
  CsvWriter csv(out);
  csv.write_row({"name", "kind", "count", "sum", "mean", "min", "max", "value",
                 "buckets"});
  for (const auto& entry : registry.entries()) {
    std::vector<std::string> row(9);
    row[0] = entry.name;
    row[1] = std::string(metric_kind_name(entry.kind));
    switch (entry.kind) {
      case MetricKind::kCounter:
        row[7] = std::to_string(entry.counter->value());
        break;
      case MetricKind::kGauge:
        row[7] = fmt_double(entry.gauge->value());
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        row[2] = std::to_string(h.count());
        row[3] = fmt_double(h.sum());
        row[4] = fmt_double(h.mean());
        row[5] = fmt_double(h.min());
        row[6] = fmt_double(h.max());
        std::string buckets;
        for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
          if (!buckets.empty()) buckets += ";";
          buckets += (i < h.upper_bounds().size()
                          ? "le" + fmt_double(h.upper_bounds()[i])
                          : std::string("le+inf")) +
                     ":" + std::to_string(h.bucket_counts()[i]);
        }
        row[8] = std::move(buckets);
        break;
      }
    }
    csv.write_row(row);
  }
}

void write_timeseries_csv(std::ostream& out, const TimeSeriesStore& store) {
  CsvWriter csv(out);
  csv.write_row({"name", "kind", "interval", "t_s", "value", "count", "sum",
                 "p50", "p90", "p99"});
  for (const TimeSeries& series : store.series()) {
    for (std::size_t i = 0; i < store.intervals(); ++i) {
      std::vector<std::string> row(10);
      row[0] = series.name;
      row[1] = std::string(metric_kind_name(series.kind));
      row[2] = std::to_string(i);
      row[3] = fmt_double(sim::to_seconds(store.interval_end(i)));
      switch (series.kind) {
        case MetricKind::kCounter:
          row[4] = std::to_string(series.counter_deltas[i]);
          break;
        case MetricKind::kGauge:
          row[4] = fmt_double(series.gauge_samples[i]);
          break;
        case MetricKind::kHistogram:
          row[5] = std::to_string(series.count_deltas[i]);
          row[6] = fmt_double(series.sum_deltas[i]);
          row[7] = fmt_double(series_quantile_bound(series, i, 0.50));
          row[8] = fmt_double(series_quantile_bound(series, i, 0.90));
          row[9] = fmt_double(series_quantile_bound(series, i, 0.99));
          break;
      }
      csv.write_row(row);
    }
  }
}

namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  return out;
}

}  // namespace

void dump_chrome_trace(const std::string& path, const Telemetry& telemetry) {
  auto out = open_or_throw(path);
  write_chrome_trace(out, telemetry.trace().events());
  if (!out) throw std::runtime_error("write failed: " + path);
}

void dump_trace_jsonl(const std::string& path, const Telemetry& telemetry) {
  auto out = open_or_throw(path);
  write_trace_jsonl(out, telemetry.trace().events());
  if (!out) throw std::runtime_error("write failed: " + path);
}

void dump_metrics_csv(const std::string& path, const Telemetry& telemetry) {
  auto out = open_or_throw(path);
  write_metrics_csv(out, telemetry.metrics());
  if (!out) throw std::runtime_error("write failed: " + path);
}

void dump_timeseries_csv(const std::string& path, const TimeSeriesStore& store) {
  auto out = open_or_throw(path);
  write_timeseries_csv(out, store);
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace sperke::obs
