#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <tuple>

#include "util/csv.h"

namespace sperke::obs {
namespace {

// Shortest round-trippable decimal; deterministic for identical inputs.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

// Chrome trace viewers group events by (pid, tid); give each category its
// own named track so the timeline reads as one lane per pipeline layer.
int track_of(TraceEventType type) {
  const std::string_view cat = trace_event_category(type);
  if (cat == "session") return 1;
  if (cat == "plan") return 2;
  if (cat == "fetch") return 3;
  if (cat == "playback") return 4;
  if (cat == "multipath") return 5;
  if (cat == "live") return 6;
  return 7;
}

std::string args_json(const TraceEvent& e) {
  std::string out = "{";
  out += "\"tile\":" + std::to_string(e.tile);
  out += ",\"chunk\":" + std::to_string(e.chunk);
  out += ",\"quality\":" + std::to_string(e.quality);
  out += ",\"path\":" + std::to_string(e.path);
  out += ",\"bytes\":" + std::to_string(e.bytes);
  out += std::string(",\"urgent\":") + (e.urgent ? "true" : "false");
  out += ",\"value\":" + fmt_double(e.value);
  out += "}";
  return out;
}

struct Record {
  std::int64_t ts = 0;
  std::int64_t dur = -1;  // -1: instant event
  std::size_t order = 0;  // creation order, the sort tie-break
  std::string name;
  std::string cat;
  int tid = 0;
  std::string args;
};

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events) {
  std::vector<Record> records;
  records.reserve(events.size());
  // Open spans awaiting their closing event: fetches keyed by the chunk
  // cell + quality, stalls by track (at most one open per session).
  std::map<std::tuple<std::int32_t, std::int32_t, std::int32_t>, TraceEvent>
      open_fetches;
  std::map<int, TraceEvent> open_stalls;

  auto push = [&records](std::int64_t ts, std::int64_t dur, std::string name,
                         const TraceEvent& e) {
    Record r;
    r.ts = ts;
    r.dur = dur;
    r.order = records.size();
    r.name = std::move(name);
    r.cat = std::string(trace_event_category(e.type));
    r.tid = track_of(e.type);
    r.args = args_json(e);
    records.push_back(std::move(r));
  };

  for (const TraceEvent& e : events) {
    switch (e.type) {
      case TraceEventType::kFetchDispatched:
        open_fetches[{e.tile, e.chunk, e.quality}] = e;
        break;
      case TraceEventType::kFetchDone:
      case TraceEventType::kFetchDropped: {
        const auto it = open_fetches.find({e.tile, e.chunk, e.quality});
        if (it != open_fetches.end()) {
          const TraceEvent& begin = it->second;
          TraceEvent span = e;
          span.urgent = begin.urgent;
          push(begin.ts.count(), (e.ts - begin.ts).count(),
               e.type == TraceEventType::kFetchDone ? "Fetch" : "FetchDropped",
               span);
          open_fetches.erase(it);
        } else {
          push(e.ts.count(), -1, std::string(trace_event_name(e.type)), e);
        }
        break;
      }
      case TraceEventType::kStallBegin:
        open_stalls[track_of(e.type)] = e;
        break;
      case TraceEventType::kStallEnd: {
        const auto it = open_stalls.find(track_of(e.type));
        if (it != open_stalls.end()) {
          push(it->second.ts.count(), (e.ts - it->second.ts).count(), "Stall", e);
          open_stalls.erase(it);
        } else {
          push(e.ts.count(), -1, "StallEnd", e);
        }
        break;
      }
      default:
        push(e.ts.count(), -1, std::string(trace_event_name(e.type)), e);
        break;
    }
  }
  // Spans that never closed (session cut off mid-fetch / mid-stall) export
  // as instants so no event is silently lost.
  for (const auto& [key, e] : open_fetches) {
    push(e.ts.count(), -1, "FetchDispatched", e);
  }
  for (const auto& [track, e] : open_stalls) {
    push(e.ts.count(), -1, "StallBegin", e);
  }

  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     return std::tie(a.ts, a.order) < std::tie(b.ts, b.order);
                   });

  out << "[";
  const char* track_names[] = {"",          "session", "plan", "fetch",
                               "playback", "multipath", "live", "sim"};
  bool first = true;
  for (int tid = 1; tid <= 7; ++tid) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << track_names[tid] << "\"}}";
  }
  for (const Record& r : records) {
    out << ",\n{\"name\":\"" << r.name << "\",\"cat\":\"" << r.cat << "\",";
    if (r.dur >= 0) {
      out << "\"ph\":\"X\",\"dur\":" << r.dur << ",";
    } else {
      out << "\"ph\":\"i\",\"s\":\"t\",";
    }
    out << "\"ts\":" << r.ts << ",\"pid\":1,\"tid\":" << r.tid
        << ",\"args\":" << r.args << "}";
  }
  out << "\n]\n";
}

void write_trace_jsonl(std::ostream& out,
                       const std::vector<TraceEvent>& events) {
  for (const TraceEvent& e : events) {
    out << "{\"event\":\"" << trace_event_name(e.type) << "\",\"cat\":\""
        << trace_event_category(e.type) << "\",\"ts_us\":" << e.ts.count()
        << ",\"args\":" << args_json(e) << "}\n";
  }
}

void write_metrics_csv(std::ostream& out, const MetricsRegistry& registry) {
  CsvWriter csv(out);
  csv.write_row({"name", "kind", "count", "sum", "mean", "min", "max", "value",
                 "buckets"});
  for (const auto& entry : registry.entries()) {
    std::vector<std::string> row(9);
    row[0] = entry.name;
    row[1] = std::string(metric_kind_name(entry.kind));
    switch (entry.kind) {
      case MetricKind::kCounter:
        row[7] = std::to_string(entry.counter->value());
        break;
      case MetricKind::kGauge:
        row[7] = fmt_double(entry.gauge->value());
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        row[2] = std::to_string(h.count());
        row[3] = fmt_double(h.sum());
        row[4] = fmt_double(h.mean());
        row[5] = fmt_double(h.min());
        row[6] = fmt_double(h.max());
        std::string buckets;
        for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
          if (!buckets.empty()) buckets += ";";
          buckets += (i < h.upper_bounds().size()
                          ? "le" + fmt_double(h.upper_bounds()[i])
                          : std::string("le+inf")) +
                     ":" + std::to_string(h.bucket_counts()[i]);
        }
        row[8] = std::move(buckets);
        break;
      }
    }
    csv.write_row(row);
  }
}

namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  return out;
}

}  // namespace

void dump_chrome_trace(const std::string& path, const Telemetry& telemetry) {
  auto out = open_or_throw(path);
  write_chrome_trace(out, telemetry.trace().events());
  if (!out) throw std::runtime_error("write failed: " + path);
}

void dump_metrics_csv(const std::string& path, const Telemetry& telemetry) {
  auto out = open_or_throw(path);
  write_metrics_csv(out, telemetry.metrics());
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace sperke::obs
