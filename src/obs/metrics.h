// Metrics registry: counters, gauges, and fixed-bucket histograms for the
// streaming pipeline. Instruments are created once (resolved by name) and
// updated through stable handles — an update is a single add/store, cheap
// enough to stay on in benches. Registration order is preserved so exports
// are deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"

namespace sperke::obs {

class Counter {
 public:
  // Counters are monotone: shard merge and SLO rate math both divide
  // deltas by elapsed time and assume they never go backwards.
  void add(std::int64_t delta) {
    SPERKE_DCHECK(delta >= 0, "counter decremented by ", delta);
    value_ += delta;
  }
  void increment() { ++value_; }
  [[nodiscard]] std::int64_t value() const { return value_; }

  // Fold another counter in (shard merge): counts add.
  void merge_from(const Counter& other) { value_ += other.value_; }

 private:
  std::int64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  // Relative update for gauges tracking a level (sessions stalled, queue
  // occupancy): +1 on entry, -1 on exit. Unlike Counter, deltas may be
  // negative — a level can fall.
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

  // Fold another gauge in (shard merge): values add. A gauge sampled
  // per shard (queue depth, events/sec) aggregates to the fleet total;
  // there is no meaningful "last write" across concurrent shards.
  void merge_from(const Gauge& other) { value_ += other.value_; }

 private:
  double value_ = 0.0;
};

// Fixed upper-bound buckets (ascending), plus an implicit +inf overflow
// bucket; observe() also tracks sum/count/min/max so means stay exact.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  // bucket_counts().size() == upper_bounds().size() + 1 (last = overflow).
  [[nodiscard]] const std::vector<std::int64_t>& bucket_counts() const {
    return bucket_counts_;
  }

  // Fold another histogram in (shard merge): bucket counts, count and sum
  // add; min/max combine. Throws std::invalid_argument unless the bucket
  // layouts are identical — silently mis-merging mismatched bounds would
  // corrupt every quantile derived from the result.
  void merge_from(const Histogram& other);

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::int64_t> bucket_counts_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view metric_kind_name(MetricKind kind);

// Name -> instrument registry. Re-requesting an existing name with the same
// kind returns the same instrument (for a histogram, the bounds of the first
// registration win); re-requesting it with a different kind throws.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<double> upper_bounds = {});

  // Lookup without creating; nullptr when absent or of another kind.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;      // set iff kind == kCounter
    std::unique_ptr<Gauge> gauge;          // set iff kind == kGauge
    std::unique_ptr<Histogram> histogram;  // set iff kind == kHistogram
  };

  // Registration order — the deterministic export order.
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  // Fold `other` in, name-matched: counters/gauges add, histograms merge
  // bucket-wise (identical bounds required). Instruments absent here are
  // created in `other`'s registration order, so merging shard registries in
  // shard-id order yields one deterministic export order. Throws
  // std::invalid_argument on kind or histogram-bound mismatches.
  void merge_from(const MetricsRegistry& other);

 private:
  Entry& resolve(std::string_view name, MetricKind kind);

  std::vector<Entry> entries_;
  std::map<std::string, std::size_t, std::less<>> index_;
};

// Default latency-ish bucket ladder (milliseconds/seconds agnostic):
// 1, 2, 5, 10, ... decades up to 10000.
[[nodiscard]] std::vector<double> decade_buckets();

// Quantile upper bound from a fixed-bucket histogram: the bucket ceiling
// under which a `q` fraction (q in [0,1]) of the samples fall, or max()
// when the quantile lands in the +inf overflow bucket. 0 for an empty
// histogram. q=0.99 is the p99 the benches and SimMonitor report.
[[nodiscard]] double histogram_quantile_bound(const Histogram& hist, double q);

}  // namespace sperke::obs
