// Session event tracing: a typed timeline of what the streaming pipeline
// did and when, stamped with simulator time. Components record through a
// Telemetry handle; a null handle is the no-op fast path (one pointer
// check, no event construction). Exporters (obs/export.h) turn the
// recorded timeline into Chrome trace_event JSON / JSONL / CSV.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace sperke::obs {

enum class TraceEventType : std::uint8_t {
  kSessionStart,
  kPlanComputed,     // VRA planned one temporal chunk
  kFetchDispatched,  // request handed to the transport
  kFetchDone,        // delivered to the client
  kFetchDropped,     // abandoned (best-effort deadline miss)
  kStallBegin,
  kStallEnd,
  kUpgradeDecided,   // §3.1.1 incremental upgrade committed
  kChunkPlayed,      // playhead advanced over one chunk
  kPathAssigned,     // §3.3 multipath scheduler placed a request
  kSegmentCaptured,  // live broadcaster finished capturing a segment
  kSegmentDropped,   // live broadcaster queue overflow
  kSegmentDisplayed, // live viewer displayed a segment
  kFetchAttemptStart,  // transport put one attempt for a request on the wire
  kFetchAttemptEnd,    // that attempt settled (delivered / failed / cancelled)
  kSloBreach,        // SLO evaluator: objective crossed into breach
  kSloClear,         // SLO evaluator: objective recovered
  kSessionEnd,
};

[[nodiscard]] std::string_view trace_event_name(TraceEventType type);
[[nodiscard]] std::string_view trace_event_category(TraceEventType type);

// One timeline record. Unused fields keep their defaults; `value` is the
// event-specific scalar (utility, stall seconds, e2e latency, rank, ...).
struct TraceEvent {
  TraceEventType type = TraceEventType::kSessionStart;
  sim::Time ts{sim::kTimeZero};
  std::int32_t tile = -1;     // geo::TileId, when tile-scoped
  std::int32_t chunk = -1;    // media::ChunkIndex or live segment index
  std::int32_t quality = -1;  // quality level / SVC layer
  std::int32_t path = -1;     // multipath path index
  std::int64_t bytes = 0;
  bool urgent = false;
  double value = 0.0;
  // Causal span identity: per-shard monotonic request id (0 = untraced)
  // and, for degraded retries / blank re-requests, the id of the request
  // this one replaces. Exporters use the pair to nest fetch -> retry
  // spans instead of emitting flat instants.
  std::int64_t request = 0;
  std::int64_t parent = 0;
};

// Append-only event sink. Also the single source of per-event log lines:
// record() emits each event at Trace log level, so the log and the exported
// trace can never disagree about what happened.
class TraceRecorder {
 public:
  void record(const TraceEvent& event);

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace sperke::obs
