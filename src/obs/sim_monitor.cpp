#include "obs/sim_monitor.h"

namespace sperke::obs {

SimMonitor::SimMonitor(sim::Simulator& simulator, Telemetry& telemetry,
                       sim::Duration period)
    : simulator_(simulator),
      queue_depth_(telemetry.metrics().gauge("sim.queue_depth")),
      queue_depth_hist_(telemetry.metrics().histogram("sim.queue_depth_hist")),
      events_per_sec_(telemetry.metrics().gauge("sim.events_per_sec")),
      samples_(telemetry.metrics().counter("sim.samples")),
      last_executed_(simulator.events_executed()),
      last_sampled_(simulator.now()),
      task_(simulator, period, [this] { sample(); }) {}

void SimMonitor::sample() {
  const auto depth = static_cast<double>(simulator_.pending_events());
  queue_depth_.set(depth);
  queue_depth_hist_.observe(depth);
  const double elapsed_s = sim::to_seconds(simulator_.now() - last_sampled_);
  if (elapsed_s > 0.0) {
    const std::uint64_t executed = simulator_.events_executed();
    events_per_sec_.set(
        static_cast<double>(executed - last_executed_) / elapsed_s);
    last_executed_ = executed;
    last_sampled_ = simulator_.now();
  }
  samples_.increment();
}

}  // namespace sperke::obs
