#include "obs/trace.h"

#include "util/log.h"

namespace sperke::obs {

std::string_view trace_event_name(TraceEventType type) {
  switch (type) {
    case TraceEventType::kSessionStart: return "SessionStart";
    case TraceEventType::kPlanComputed: return "PlanComputed";
    case TraceEventType::kFetchDispatched: return "FetchDispatched";
    case TraceEventType::kFetchDone: return "FetchDone";
    case TraceEventType::kFetchDropped: return "FetchDropped";
    case TraceEventType::kStallBegin: return "StallBegin";
    case TraceEventType::kStallEnd: return "StallEnd";
    case TraceEventType::kUpgradeDecided: return "UpgradeDecided";
    case TraceEventType::kChunkPlayed: return "ChunkPlayed";
    case TraceEventType::kPathAssigned: return "PathAssigned";
    case TraceEventType::kSegmentCaptured: return "SegmentCaptured";
    case TraceEventType::kSegmentDropped: return "SegmentDropped";
    case TraceEventType::kSegmentDisplayed: return "SegmentDisplayed";
    case TraceEventType::kFetchAttemptStart: return "FetchAttemptStart";
    case TraceEventType::kFetchAttemptEnd: return "FetchAttemptEnd";
    case TraceEventType::kSloBreach: return "SloBreach";
    case TraceEventType::kSloClear: return "SloClear";
    case TraceEventType::kSessionEnd: return "SessionEnd";
  }
  return "?";
}

std::string_view trace_event_category(TraceEventType type) {
  switch (type) {
    case TraceEventType::kSessionStart:
    case TraceEventType::kSessionEnd: return "session";
    case TraceEventType::kPlanComputed:
    case TraceEventType::kUpgradeDecided: return "plan";
    case TraceEventType::kFetchDispatched:
    case TraceEventType::kFetchDone:
    case TraceEventType::kFetchDropped:
    case TraceEventType::kFetchAttemptStart:
    case TraceEventType::kFetchAttemptEnd: return "fetch";
    case TraceEventType::kStallBegin:
    case TraceEventType::kStallEnd:
    case TraceEventType::kChunkPlayed: return "playback";
    case TraceEventType::kPathAssigned: return "multipath";
    case TraceEventType::kSegmentCaptured:
    case TraceEventType::kSegmentDropped:
    case TraceEventType::kSegmentDisplayed: return "live";
    case TraceEventType::kSloBreach:
    case TraceEventType::kSloClear: return "slo";
  }
  return "?";
}

void TraceRecorder::record(const TraceEvent& event) {
  events_.push_back(event);
  SPERKE_LOG_TRACE("t=", sim::to_seconds(event.ts), "s ",
                   trace_event_name(event.type), " tile=", event.tile,
                   " chunk=", event.chunk, " q=", event.quality,
                   " path=", event.path, " bytes=", event.bytes,
                   " urgent=", event.urgent, " value=", event.value,
                   " request=", event.request, " parent=", event.parent);
}

}  // namespace sperke::obs
