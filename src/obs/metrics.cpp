#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace sperke::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  if (!std::is_sorted(upper_bounds_.begin(), upper_bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds not ascending");
  }
  bucket_counts_.assign(upper_bounds_.size() + 1, 0);
}

void Histogram::observe(double x) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), x);
  ++bucket_counts_[static_cast<std::size_t>(it - upper_bounds_.begin())];
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
}

double Histogram::mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

std::string_view metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

MetricsRegistry::Entry& MetricsRegistry::resolve(std::string_view name,
                                                 MetricKind kind) {
  if (name.empty()) throw std::invalid_argument("MetricsRegistry: empty name");
  const auto it = index_.find(name);
  if (it != index_.end()) {
    Entry& entry = entries_[it->second];
    if (entry.kind != kind) {
      throw std::invalid_argument("MetricsRegistry: '" + entry.name +
                                  "' already registered as " +
                                  std::string(metric_kind_name(entry.kind)));
    }
    return entry;
  }
  Entry entry;
  entry.name = std::string(name);
  entry.kind = kind;
  index_.emplace(entry.name, entries_.size());
  entries_.push_back(std::move(entry));
  return entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Entry& entry = resolve(name, MetricKind::kCounter);
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Entry& entry = resolve(name, MetricKind::kGauge);
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  Entry& entry = resolve(name, MetricKind::kHistogram);
  if (!entry.histogram) {
    if (upper_bounds.empty()) upper_bounds = decade_buckets();
    entry.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *entry.histogram;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  return entries_[it->second].counter.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  return entries_[it->second].gauge.get();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  return entries_[it->second].histogram.get();
}

std::vector<double> decade_buckets() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 10'000.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  return bounds;
}

}  // namespace sperke::obs
