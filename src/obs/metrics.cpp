#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"

namespace sperke::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  if (!std::is_sorted(upper_bounds_.begin(), upper_bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds not ascending");
  }
  bucket_counts_.assign(upper_bounds_.size() + 1, 0);
}

void Histogram::observe(double x) {
  SPERKE_DCHECK(bucket_counts_.size() == upper_bounds_.size() + 1,
                "Histogram: bucket/bound arrays out of sync");
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), x);
  ++bucket_counts_[static_cast<std::size_t>(it - upper_bounds_.begin())];
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
}

double Histogram::mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

void Histogram::merge_from(const Histogram& other) {
  if (upper_bounds_ != other.upper_bounds_) {
    throw std::invalid_argument(
        "Histogram::merge_from: mismatched bucket layouts");
  }
  SPERKE_DCHECK(bucket_counts_.size() == other.bucket_counts_.size(),
                "Histogram: merge with out-of-sync bucket arrays");
  for (std::size_t i = 0; i < bucket_counts_.size(); ++i) {
    bucket_counts_[i] += other.bucket_counts_[i];
  }
  if (other.count_ > 0) {
    min_ = count_ > 0 ? std::min(min_, other.min_) : other.min_;
    max_ = count_ > 0 ? std::max(max_, other.max_) : other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  SPERKE_DCHECK(count_ >= other.count_, "Histogram: merge lost samples");
}

std::string_view metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

MetricsRegistry::Entry& MetricsRegistry::resolve(std::string_view name,
                                                 MetricKind kind) {
  if (name.empty()) throw std::invalid_argument("MetricsRegistry: empty name");
  const auto it = index_.find(name);
  if (it != index_.end()) {
    Entry& entry = entries_[it->second];
    if (entry.kind != kind) {
      throw std::invalid_argument("MetricsRegistry: '" + entry.name +
                                  "' already registered as " +
                                  std::string(metric_kind_name(entry.kind)));
    }
    return entry;
  }
  Entry entry;
  entry.name = std::string(name);
  entry.kind = kind;
  index_.emplace(entry.name, entries_.size());
  entries_.push_back(std::move(entry));
  return entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Entry& entry = resolve(name, MetricKind::kCounter);
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Entry& entry = resolve(name, MetricKind::kGauge);
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  Entry& entry = resolve(name, MetricKind::kHistogram);
  if (!entry.histogram) {
    if (upper_bounds.empty()) upper_bounds = decade_buckets();
    entry.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *entry.histogram;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  return entries_[it->second].counter.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  return entries_[it->second].gauge.get();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  return entries_[it->second].histogram.get();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Shard-merge precondition: `other` must be self-consistent — the union
  // members are only non-null for the entry's registered kind, and a
  // registry can never merge into itself (counters would double).
  SPERKE_CHECK(&other != this, "MetricsRegistry: merge_from(self)");
  for (const Entry& theirs : other.entries()) {
    // resolve() throws on a kind mismatch and appends unknown names in
    // `other`'s registration order, keeping the merged export deterministic.
    switch (theirs.kind) {
      case MetricKind::kCounter:
        SPERKE_CHECK(theirs.counter != nullptr,
                     "MetricsRegistry: counter entry '", theirs.name,
                     "' has no instrument");
        counter(theirs.name).merge_from(*theirs.counter);
        break;
      case MetricKind::kGauge:
        SPERKE_CHECK(theirs.gauge != nullptr,
                     "MetricsRegistry: gauge entry '", theirs.name,
                     "' has no instrument");
        gauge(theirs.name).merge_from(*theirs.gauge);
        break;
      case MetricKind::kHistogram:
        SPERKE_CHECK(theirs.histogram != nullptr,
                     "MetricsRegistry: histogram entry '", theirs.name,
                     "' has no instrument");
        histogram(theirs.name, theirs.histogram->upper_bounds())
            .merge_from(*theirs.histogram);
        break;
    }
  }
  SPERKE_DCHECK(entries_.size() == index_.size(),
                "MetricsRegistry: name index out of sync with entries");
}

double histogram_quantile_bound(const Histogram& hist, double q) {
  const auto& counts = hist.bucket_counts();
  const auto& bounds = hist.upper_bounds();
  const auto total = hist.count();
  if (total <= 0) return 0.0;
  const auto target =
      static_cast<std::int64_t>(q * static_cast<double>(total));
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    cumulative += counts[i];
    if (cumulative > target) return bounds[i];
  }
  return hist.max();  // fell into the +inf overflow bucket
}

std::vector<double> decade_buckets() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 10'000.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  return bounds;
}

}  // namespace sperke::obs
