#include "obs/slo.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "util/check.h"
#include "util/csv.h"
#include "util/table.h"

namespace sperke::obs {
namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

std::string_view slo_signal_name(SloSignal signal) {
  switch (signal) {
    case SloSignal::kCounterRate: return "counter_rate";
    case SloSignal::kGaugeValue: return "gauge_value";
    case SloSignal::kHistogramQuantile: return "histogram_quantile";
  }
  return "?";
}

bool valid_slo_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

void validate_slo(const SloSpec& spec) {
  if (!valid_slo_name(spec.name)) {
    throw std::invalid_argument("SloSpec: name '" + spec.name +
                                "' violates [a-z0-9_.]+ style");
  }
  if (spec.metric.empty()) {
    throw std::invalid_argument("SloSpec '" + spec.name + "': empty metric");
  }
  if (spec.signal == SloSignal::kHistogramQuantile &&
      (spec.quantile < 0.0 || spec.quantile > 1.0)) {
    throw std::invalid_argument("SloSpec '" + spec.name +
                                "': quantile outside [0, 1]");
  }
  if (spec.window_intervals < 1) {
    throw std::invalid_argument("SloSpec '" + spec.name + "': window < 1");
  }
}

SloEvaluator::SloEvaluator(std::vector<SloSpec> specs,
                           const TimeSeriesStore& store, Telemetry& telemetry)
    : specs_(std::move(specs)), store_(store), telemetry_(telemetry) {
  states_.resize(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    validate_slo(specs_[i]);
    states_[i].budget = &telemetry_.metrics().counter(
        "slo." + specs_[i].name + ".breached_intervals");
  }
}

double SloEvaluator::signal_at(const SloSpec& spec,
                               std::size_t interval) const {
  const TimeSeries* series = store_.find(spec.metric);
  // A metric that never registered reads as zero activity — an SLO can
  // watch an instrument the workload only creates under load.
  if (series == nullptr) return 0.0;
  const auto window = static_cast<std::size_t>(spec.window_intervals);
  const std::size_t first = interval + 1 >= window ? interval + 1 - window : 0;
  const std::size_t spanned = interval - first + 1;
  switch (spec.signal) {
    case SloSignal::kCounterRate: {
      if (series->kind != MetricKind::kCounter) {
        throw std::invalid_argument("SloSpec '" + spec.name + "': metric '" +
                                    spec.metric + "' is not a counter");
      }
      std::int64_t total = 0;
      for (std::size_t i = first; i <= interval; ++i) {
        total += series->counter_deltas[i];
      }
      const double elapsed_s =
          sim::to_seconds(store_.period()) * static_cast<double>(spanned);
      return static_cast<double>(total) / elapsed_s;
    }
    case SloSignal::kGaugeValue: {
      if (series->kind != MetricKind::kGauge) {
        throw std::invalid_argument("SloSpec '" + spec.name + "': metric '" +
                                    spec.metric + "' is not a gauge");
      }
      double total = 0.0;
      for (std::size_t i = first; i <= interval; ++i) {
        total += series->gauge_samples[i];
      }
      return total / static_cast<double>(spanned);
    }
    case SloSignal::kHistogramQuantile:
      return series_window_quantile_bound(*series, first, interval,
                                          spec.quantile);
  }
  return 0.0;
}

void SloEvaluator::evaluate() {
  for (std::size_t i = next_interval_; i < store_.intervals(); ++i) {
    for (std::size_t s = 0; s < specs_.size(); ++s) {
      const SloSpec& spec = specs_[s];
      State& state = states_[s];
      const double signal = signal_at(spec, i);
      const bool breached = signal > spec.threshold;
      ++state.evaluated;
      state.last_signal = signal;
      if (breached) {
        ++state.breached_intervals;
        state.budget->increment();
      }
      if (breached != state.breached) {
        if (breached) ++state.breach_events;
        state.breached = breached;
        telemetry_.trace().record(
            {.type = breached ? TraceEventType::kSloBreach
                              : TraceEventType::kSloClear,
             .ts = store_.interval_end(i),
             .chunk = static_cast<std::int32_t>(s),
             .value = signal});
      }
    }
  }
  next_interval_ = store_.intervals();
}

std::vector<SloStatus> SloEvaluator::status() const {
  std::vector<SloStatus> rows;
  rows.reserve(specs_.size());
  for (std::size_t s = 0; s < specs_.size(); ++s) {
    const State& state = states_[s];
    rows.push_back({.name = specs_[s].name,
                    .evaluated_intervals = state.evaluated,
                    .breached_intervals = state.breached_intervals,
                    .breach_events = state.breach_events,
                    .breached_at_end = state.breached,
                    .last_signal = state.last_signal});
  }
  return rows;
}

void merge_slo_status(std::vector<SloStatus>& into,
                      const std::vector<SloStatus>& other) {
  if (into.empty()) {
    into = other;
    return;
  }
  if (into.size() != other.size()) {
    throw std::invalid_argument("merge_slo_status: row count mismatch");
  }
  for (std::size_t i = 0; i < into.size(); ++i) {
    if (into[i].name != other[i].name) {
      throw std::invalid_argument("merge_slo_status: name mismatch at row " +
                                  std::to_string(i));
    }
    // evaluated_intervals stays the per-shard interval count (identical on
    // every shard by construction), not the sum — it reads as "how many
    // windows were judged", which does not scale with shard count.
    SPERKE_CHECK(into[i].evaluated_intervals == other[i].evaluated_intervals,
                 "merge_slo_status: shards evaluated different interval "
                 "counts for '",
                 into[i].name, "'");
    into[i].breached_intervals += other[i].breached_intervals;
    into[i].breach_events += other[i].breach_events;
    into[i].breached_at_end = into[i].breached_at_end || other[i].breached_at_end;
    into[i].last_signal += other[i].last_signal;
  }
}

std::string slo_table(const std::vector<SloSpec>& specs,
                      const std::vector<SloStatus>& rows) {
  SPERKE_CHECK(specs.size() == rows.size(),
               "slo_table: spec/status size mismatch");
  TextTable table({"slo", "metric", "signal", "threshold", "evaluated",
                   "breached", "breaches", "budget_burn%", "at_end",
                   "last_signal"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SloSpec& spec = specs[i];
    const SloStatus& row = rows[i];
    const double burn =
        row.evaluated_intervals > 0
            ? 100.0 * static_cast<double>(row.breached_intervals) /
                  static_cast<double>(row.evaluated_intervals)
            : 0.0;
    table.add_row({row.name, spec.metric, std::string(slo_signal_name(spec.signal)),
                   TextTable::num(spec.threshold, 3),
                   std::to_string(row.evaluated_intervals),
                   std::to_string(row.breached_intervals),
                   std::to_string(row.breach_events), TextTable::num(burn, 1),
                   row.breached_at_end ? "BREACHED" : "ok",
                   TextTable::num(row.last_signal, 3)});
  }
  return table.str();
}

void write_slo_csv(std::ostream& out, const std::vector<SloStatus>& rows) {
  CsvWriter csv(out);
  csv.write_row({"name", "evaluated_intervals", "breached_intervals",
                 "breach_events", "breached_at_end", "last_signal"});
  for (const SloStatus& row : rows) {
    csv.write_row({row.name, std::to_string(row.evaluated_intervals),
                   std::to_string(row.breached_intervals),
                   std::to_string(row.breach_events),
                   row.breached_at_end ? "1" : "0",
                   fmt_double(row.last_signal)});
  }
}

void dump_slo_csv(const std::string& path, const std::vector<SloStatus>& rows) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("dump_slo_csv: cannot open " + path);
  write_slo_csv(out, rows);
}

}  // namespace sperke::obs
