// Declarative service-level objectives evaluated on the sampled time
// series during the run (DESIGN.md §12). An SloSpec names a metric, how to
// read it (counter rate / gauge level / histogram quantile), a threshold,
// and a trailing window in sample intervals. The evaluator runs after
// every TimeSeriesStore::sample(), so verdicts are a pure function of the
// series — per shard, in virtual time, deterministic at any thread count.
//
// Each evaluated interval with signal > threshold burns one unit of the
// SLO's error-budget counter; healthy<->breached transitions additionally
// emit kSloBreach / kSloClear trace events stamped at the interval's end
// (chunk = the SLO's index in the spec list, value = the signal).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/telemetry.h"
#include "obs/timeseries.h"

namespace sperke::obs {

enum class SloSignal : std::uint8_t {
  kCounterRate,        // per-second rate of a counter over the window
  kGaugeValue,         // mean gauge sample over the window
  kHistogramQuantile,  // quantile bound of the window's histogram deltas
};

[[nodiscard]] std::string_view slo_signal_name(SloSignal signal);

struct SloSpec {
  std::string name;    // [a-z0-9_.]+ — validate_slo throws otherwise
  std::string metric;  // instrument the signal reads
  SloSignal signal = SloSignal::kGaugeValue;
  double quantile = 0.99;    // kHistogramQuantile only, in [0, 1]
  double threshold = 0.0;    // breach when signal > threshold
  int window_intervals = 1;  // trailing evaluation window, >= 1
};

// SLO and metric names share one style rule ([a-z0-9_.]+), enforced here
// at runtime and by sperke_lint at registration sites.
[[nodiscard]] bool valid_slo_name(std::string_view name);

// Throws std::invalid_argument when a spec is malformed (bad name, empty
// metric, quantile outside [0,1], window < 1).
void validate_slo(const SloSpec& spec);

// End-of-run rollup for one SLO; merges across shards field-wise.
struct SloStatus {
  std::string name;
  std::int64_t evaluated_intervals = 0;
  std::int64_t breached_intervals = 0;  // error budget burned
  std::int64_t breach_events = 0;       // healthy -> breached transitions
  bool breached_at_end = false;
  // Signal at the last evaluated interval. Sums across shards (a gauge
  // level aggregates to the fleet total, mirroring Gauge::merge_from).
  double last_signal = 0.0;
};

class SloEvaluator {
 public:
  // Validates every spec; `store` and `telemetry` must outlive the
  // evaluator. Error-budget counters (slo.<name>.breached_intervals) are
  // registered up front so the metric set does not depend on whether a
  // breach ever happens.
  SloEvaluator(std::vector<SloSpec> specs, const TimeSeriesStore& store,
               Telemetry& telemetry);

  // Evaluate every SLO over the intervals sampled since the last call.
  void evaluate();

  [[nodiscard]] const std::vector<SloSpec>& specs() const { return specs_; }
  [[nodiscard]] std::vector<SloStatus> status() const;

 private:
  [[nodiscard]] double signal_at(const SloSpec& spec,
                                 std::size_t interval) const;

  std::vector<SloSpec> specs_;
  const TimeSeriesStore& store_;
  Telemetry& telemetry_;

  struct State {
    Counter* budget = nullptr;
    bool breached = false;
    std::int64_t evaluated = 0;
    std::int64_t breached_intervals = 0;
    std::int64_t breach_events = 0;
    double last_signal = 0.0;
  };
  std::vector<State> states_;      // parallel to specs_
  std::size_t next_interval_ = 0;  // first store interval not yet evaluated
};

// Fold another shard's rollup in. Requires identical name lists in the
// same order (every shard evaluates the same WorldSpec::slos); throws
// std::invalid_argument otherwise.
void merge_slo_status(std::vector<SloStatus>& into,
                      const std::vector<SloStatus>& other);

// End-of-run SLO table (one row per SLO) / CSV export.
[[nodiscard]] std::string slo_table(const std::vector<SloSpec>& specs,
                                    const std::vector<SloStatus>& rows);
void write_slo_csv(std::ostream& out, const std::vector<SloStatus>& rows);
void dump_slo_csv(const std::string& path, const std::vector<SloStatus>& rows);

}  // namespace sperke::obs
