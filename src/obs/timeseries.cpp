#include "obs/timeseries.h"

#include <limits>
#include <stdexcept>

#include "util/check.h"

namespace sperke::obs {
namespace {

// Quantile upper bound over pre-summed bucket deltas. Mirrors
// histogram_quantile_bound, except an interval has no min/max record, so a
// quantile landing in the +inf overflow bucket reads as +infinity — to SLO
// math, "beyond the histogram's range" must breach any finite threshold.
double bucket_quantile_bound(const std::vector<double>& bounds,
                             const std::vector<std::int64_t>& counts,
                             double q) {
  std::int64_t total = 0;
  for (const std::int64_t c : counts) total += c;
  if (total <= 0) return 0.0;
  const auto target = static_cast<std::int64_t>(q * static_cast<double>(total));
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    cumulative += counts[i];
    if (cumulative > target) return bounds[i];
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace

double series_quantile_bound(const TimeSeries& series, std::size_t interval,
                             double q) {
  return series_window_quantile_bound(series, interval, interval, q);
}

double series_window_quantile_bound(const TimeSeries& series, std::size_t first,
                                    std::size_t last, double q) {
  if (series.kind != MetricKind::kHistogram) {
    throw std::invalid_argument("series_window_quantile_bound: '" +
                                series.name + "' is not a histogram series");
  }
  SPERKE_CHECK(first <= last, "quantile window inverted: [", first, ", ", last,
               "]");
  const std::size_t columns = series.upper_bounds.size() + 1;
  SPERKE_CHECK((last + 1) * columns <= series.bucket_deltas.size(),
               "quantile window past the end of series '", series.name, "'");
  std::vector<std::int64_t> window(columns, 0);
  for (std::size_t i = first; i <= last; ++i) {
    for (std::size_t b = 0; b < columns; ++b) {
      window[b] += series.bucket_deltas[i * columns + b];
    }
  }
  return bucket_quantile_bound(series.upper_bounds, window, q);
}

TimeSeriesStore::TimeSeriesStore(sim::Duration period) : period_(period) {
  if (period <= sim::Duration{0}) {
    throw std::invalid_argument("TimeSeriesStore: period must be positive");
  }
}

const TimeSeries* TimeSeriesStore::find(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &series_[it->second];
}

TimeSeries& TimeSeriesStore::resolve(const TimeSeries& like) {
  const auto it = index_.find(like.name);
  if (it != index_.end()) {
    TimeSeries& mine = series_[it->second];
    if (mine.kind != like.kind) {
      throw std::invalid_argument("TimeSeriesStore: '" + mine.name +
                                  "' already tracked as " +
                                  std::string(metric_kind_name(mine.kind)));
    }
    if (mine.kind == MetricKind::kHistogram &&
        mine.upper_bounds != like.upper_bounds) {
      throw std::invalid_argument("TimeSeriesStore: '" + mine.name +
                                  "' bucket layout mismatch");
    }
    return mine;
  }
  // First appearance: zero-pad history back to interval 0 so every series
  // always spans the full run.
  TimeSeries fresh;
  fresh.name = like.name;
  fresh.kind = like.kind;
  fresh.upper_bounds = like.upper_bounds;
  switch (fresh.kind) {
    case MetricKind::kCounter:
      fresh.counter_deltas.assign(intervals_, 0);
      break;
    case MetricKind::kGauge:
      fresh.gauge_samples.assign(intervals_, 0.0);
      break;
    case MetricKind::kHistogram:
      fresh.bucket_deltas.assign(intervals_ * (fresh.upper_bounds.size() + 1),
                                 0);
      fresh.count_deltas.assign(intervals_, 0);
      fresh.sum_deltas.assign(intervals_, 0.0);
      break;
  }
  index_.emplace(fresh.name, series_.size());
  series_.push_back(std::move(fresh));
  last_.emplace_back();
  return series_.back();
}

void TimeSeriesStore::sample(const MetricsRegistry& registry) {
  SPERKE_CHECK(period_ > sim::Duration{0},
               "TimeSeriesStore: sample() on an inactive store");
  for (const MetricsRegistry::Entry& entry : registry.entries()) {
    TimeSeries like;
    like.name = entry.name;
    like.kind = entry.kind;
    if (entry.kind == MetricKind::kHistogram) {
      like.upper_bounds = entry.histogram->upper_bounds();
    }
    TimeSeries& mine = resolve(like);
    Cumulative& prev = last_[index_.find(entry.name)->second];
    switch (entry.kind) {
      case MetricKind::kCounter: {
        const std::int64_t now = entry.counter->value();
        SPERKE_DCHECK(now >= prev.counter, "counter '", entry.name,
                      "' went backwards");
        mine.counter_deltas.push_back(now - prev.counter);
        prev.counter = now;
        break;
      }
      case MetricKind::kGauge:
        mine.gauge_samples.push_back(entry.gauge->value());
        break;
      case MetricKind::kHistogram: {
        const Histogram& hist = *entry.histogram;
        const std::vector<std::int64_t>& counts = hist.bucket_counts();
        if (prev.buckets.empty()) prev.buckets.assign(counts.size(), 0);
        for (std::size_t b = 0; b < counts.size(); ++b) {
          mine.bucket_deltas.push_back(counts[b] - prev.buckets[b]);
          prev.buckets[b] = counts[b];
        }
        mine.count_deltas.push_back(hist.count() - prev.count);
        mine.sum_deltas.push_back(hist.sum() - prev.sum);
        prev.count = hist.count();
        prev.sum = hist.sum();
        break;
      }
    }
  }
  ++intervals_;
  // Series no longer present in the registry (possible only when sampling
  // resumes after a merge, which this type does not support) would go
  // ragged; catch that loudly instead of exporting short rows.
  for (const TimeSeries& s : series_) {
    const std::size_t points = s.kind == MetricKind::kCounter
                                   ? s.counter_deltas.size()
                                   : s.kind == MetricKind::kGauge
                                         ? s.gauge_samples.size()
                                         : s.count_deltas.size();
    SPERKE_CHECK(points == intervals_, "series '", s.name,
                 "' missed an interval (", points, " points after interval ",
                 intervals_, ")");
  }
}

void TimeSeriesStore::merge_from(const TimeSeriesStore& other) {
  SPERKE_CHECK(&other != this, "TimeSeriesStore: merge_from(self)");
  if (other.period_ <= sim::Duration{0} && other.series_.empty()) return;
  if (period_ <= sim::Duration{0} && series_.empty()) {
    *this = other;  // inactive store adopts the first shard wholesale
    return;
  }
  if (period_ != other.period_) {
    throw std::invalid_argument("TimeSeriesStore: period mismatch in merge");
  }
  if (intervals_ != other.intervals_) {
    throw std::invalid_argument(
        "TimeSeriesStore: interval count mismatch in merge");
  }
  for (const TimeSeries& theirs : other.series_) {
    TimeSeries& mine = resolve(theirs);  // appends zero-padded when absent
    switch (theirs.kind) {
      case MetricKind::kCounter:
        for (std::size_t i = 0; i < intervals_; ++i) {
          mine.counter_deltas[i] += theirs.counter_deltas[i];
        }
        break;
      case MetricKind::kGauge:
        // Gauge samples add across shards, mirroring Gauge::merge_from: a
        // per-shard level (sessions stalled, queue depth) aggregates to
        // the fleet total at each instant.
        for (std::size_t i = 0; i < intervals_; ++i) {
          mine.gauge_samples[i] += theirs.gauge_samples[i];
        }
        break;
      case MetricKind::kHistogram:
        for (std::size_t i = 0; i < mine.bucket_deltas.size(); ++i) {
          mine.bucket_deltas[i] += theirs.bucket_deltas[i];
        }
        for (std::size_t i = 0; i < intervals_; ++i) {
          mine.count_deltas[i] += theirs.count_deltas[i];
          mine.sum_deltas[i] += theirs.sum_deltas[i];
        }
        break;
    }
  }
}

}  // namespace sperke::obs
