// Fixed-interval time series over a MetricsRegistry (DESIGN.md §12).
//
// A TimeSeriesStore snapshots a registry at a fixed sample period and keeps
// one append-only series per instrument:
//
//   counter    -> per-interval delta (monotone source, so deltas are >= 0)
//   gauge      -> the sample at the interval's end
//   histogram  -> per-interval bucket deltas plus count/sum deltas, from
//                 which interval-scoped quantile bounds are derived
//
// Determinism rules (the reason this type exists instead of "log the
// registry every second"):
//   * sample() is driven by a sim::PeriodicTask, so interval boundaries
//     are exact virtual-time multiples of the period — never wall clock.
//   * Instruments that first appear mid-run are zero-padded back to
//     interval 0, so every series always has exactly `intervals()` points.
//   * merge_from() folds another shard's store name-matched (deltas and
//     samples add; absent series are appended in the other store's order).
//     Merging shard stores in shard-id order therefore yields the same
//     bytes at any thread count, mirroring MetricsRegistry::merge_from.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "sim/time.h"

namespace sperke::obs {

// One instrument's sampled history. Exactly one of the per-kind payloads
// is populated; all per-interval vectors have size intervals().
struct TimeSeries {
  std::string name;
  MetricKind kind = MetricKind::kCounter;

  std::vector<std::int64_t> counter_deltas;  // kCounter
  std::vector<double> gauge_samples;         // kGauge

  // kHistogram: bucket deltas flattened row-major — interval i, bucket b
  // lives at i * (upper_bounds.size() + 1) + b; the final column is the
  // +inf overflow bucket.
  std::vector<double> upper_bounds;
  std::vector<std::int64_t> bucket_deltas;
  std::vector<std::int64_t> count_deltas;
  std::vector<double> sum_deltas;
};

// Quantile upper bound over one interval of a histogram series: the bucket
// ceiling under which a `q` fraction of that interval's samples fall.
// Returns 0 for an empty interval and +infinity when the quantile lands in
// the overflow bucket (the sample is beyond the histogram's range, which
// must read as "worse than any threshold" to SLO math).
[[nodiscard]] double series_quantile_bound(const TimeSeries& series,
                                           std::size_t interval, double q);

// As above but over the trailing window [first, last] (inclusive), merging
// the windows' bucket deltas first.
[[nodiscard]] double series_window_quantile_bound(const TimeSeries& series,
                                                  std::size_t first,
                                                  std::size_t last, double q);

class TimeSeriesStore {
 public:
  TimeSeriesStore() = default;  // inactive: period 0, no series
  explicit TimeSeriesStore(sim::Duration period);

  [[nodiscard]] sim::Duration period() const { return period_; }
  [[nodiscard]] std::size_t intervals() const { return intervals_; }
  [[nodiscard]] const std::vector<TimeSeries>& series() const { return series_; }
  [[nodiscard]] const TimeSeries* find(std::string_view name) const;

  // End time of interval `i` (intervals are (i*period, (i+1)*period]).
  [[nodiscard]] sim::Time interval_end(std::size_t i) const {
    return period_ * static_cast<std::int64_t>(i + 1);
  }

  // Close one interval: walk `registry` in registration order, record each
  // instrument's delta (counter/histogram) or sample (gauge) since the
  // previous call, zero-padding instruments seen for the first time.
  void sample(const MetricsRegistry& registry);

  // Fold another store in (shard merge, shard-id order). An inactive store
  // adopts `other` wholesale. Throws std::invalid_argument when periods,
  // interval counts, kinds, or histogram bounds disagree — silently
  // mis-merging would corrupt every downstream SLO verdict.
  void merge_from(const TimeSeriesStore& other);

 private:
  struct Cumulative {  // last cumulative value seen, for delta computation
    std::int64_t counter = 0;
    std::vector<std::int64_t> buckets;
    std::int64_t count = 0;
    double sum = 0.0;
  };

  TimeSeries& resolve(const TimeSeries& like);

  sim::Duration period_{0};
  std::size_t intervals_ = 0;
  std::vector<TimeSeries> series_;
  std::vector<Cumulative> last_;  // parallel to series_
  std::map<std::string, std::size_t, std::less<>> index_;
};

}  // namespace sperke::obs
