// The Telemetry handle threaded through component configs: one metrics
// registry plus one trace recorder shared by every instrumented layer of a
// run (session, transport, multipath, live pipeline, simulator monitor).
//
// Configs default to a null Telemetry*, which disables instrumentation:
// every record site guards with a single pointer check, so a run without a
// sink pays no measurable overhead.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sperke::obs {

class Telemetry {
 public:
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  [[nodiscard]] TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const { return trace_; }

 private:
  MetricsRegistry metrics_;
  TraceRecorder trace_;
};

}  // namespace sperke::obs
