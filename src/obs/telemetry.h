// The Telemetry handle threaded through component configs: one metrics
// registry plus one trace recorder shared by every instrumented layer of a
// run (session, transport, multipath, live pipeline, simulator monitor).
//
// Configs default to a null Telemetry*, which disables instrumentation:
// every record site guards with a single pointer check, so a run without a
// sink pays no measurable overhead.
#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sperke::obs {

class Telemetry {
 public:
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  [[nodiscard]] TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const { return trace_; }

  // Monotonic request-id source for causal fetch spans. Ids start at 1 so
  // 0 stays the "untraced" sentinel on ChunkRequest/TraceEvent. Telemetry
  // is per-shard state, so ids are unique within a shard's timeline (the
  // scope of one exported trace) without cross-thread coordination.
  [[nodiscard]] std::int64_t next_request_id() { return ++last_request_id_; }

 private:
  MetricsRegistry metrics_;
  TraceRecorder trace_;
  std::int64_t last_request_id_ = 0;
};

}  // namespace sperke::obs
