// Exporters for the telemetry subsystem.
//
//  * write_chrome_trace — Chrome trace_event JSON (the "JSON Array Format"),
//    loadable in chrome://tracing or https://ui.perfetto.dev. Fetches and
//    stalls are paired into complete ("ph":"X") spans; everything else is an
//    instant event. Timestamps are simulator microseconds, so the exported
//    file is byte-identical across runs with identical seeds.
//  * write_trace_jsonl — one raw TraceEvent per line, for ad-hoc analysis.
//  * write_metrics_csv — one row per instrument (name, kind, count, sum,
//    mean, min, max, value), the bench harness's figure source.
//  * write_timeseries_csv — one row per (instrument, interval) from a
//    sampled TimeSeriesStore, the input tools/report.py charts.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace sperke::obs {

void write_chrome_trace(std::ostream& out, const std::vector<TraceEvent>& events);
void write_trace_jsonl(std::ostream& out, const std::vector<TraceEvent>& events);
void write_metrics_csv(std::ostream& out, const MetricsRegistry& registry);
void write_timeseries_csv(std::ostream& out, const TimeSeriesStore& store);

// File-based conveniences; throw std::runtime_error when the file cannot
// be opened or written.
void dump_chrome_trace(const std::string& path, const Telemetry& telemetry);
void dump_trace_jsonl(const std::string& path, const Telemetry& telemetry);
void dump_metrics_csv(const std::string& path, const Telemetry& telemetry);
void dump_timeseries_csv(const std::string& path, const TimeSeriesStore& store);

}  // namespace sperke::obs
