// Event-loop instrumentation for sim::Simulator. The simulator sits below
// obs in the module graph, so instead of hooking the kernel itself a
// SimMonitor rides the simulator as a periodic task, sampling queue depth
// and event throughput into the metrics registry:
//
//   sim.queue_depth      (gauge)     pending events at the last sample
//   sim.queue_depth_hist (histogram) pending events per sample
//   sim.events_per_sec   (gauge)     events executed per simulated second
//   sim.samples          (counter)   number of samples taken
#pragma once

#include <cstdint>

#include "obs/telemetry.h"
#include "sim/periodic.h"
#include "sim/simulator.h"

namespace sperke::obs {

class SimMonitor {
 public:
  // `simulator` and `telemetry` must outlive the monitor.
  SimMonitor(sim::Simulator& simulator, Telemetry& telemetry,
             sim::Duration period = sim::seconds(1.0));

  void stop() { task_.stop(); }
  [[nodiscard]] bool running() const { return task_.running(); }

  // Take one sample immediately (e.g. a final reading at the horizon). A
  // zero-elapsed sample still records queue depth and bumps sim.samples,
  // but leaves events_per_sec untouched — 0/0 is not a rate.
  void sample_now() { sample(); }

  // Queue-depth quantile bound over all samples so far (q in [0,1]),
  // straight from sim.queue_depth_hist via histogram_quantile_bound().
  [[nodiscard]] double queue_depth_quantile(double q) const {
    return histogram_quantile_bound(queue_depth_hist_, q);
  }

 private:
  void sample();

  sim::Simulator& simulator_;
  Gauge& queue_depth_;
  Histogram& queue_depth_hist_;
  Gauge& events_per_sec_;
  Counter& samples_;
  std::uint64_t last_executed_;
  sim::Time last_sampled_;
  sim::PeriodicTask task_;  // last: arms only once the handles exist
};

}  // namespace sperke::obs
