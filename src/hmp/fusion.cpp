#include "hmp/fusion.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/math.h"

namespace sperke::hmp {

FusionPredictor::FusionPredictor(std::shared_ptr<const geo::TileGeometry> geometry,
                                 geo::Viewport viewport,
                                 std::unique_ptr<OrientationPredictor> motion,
                                 const ViewingHeatmap* crowd, ViewingContext context,
                                 FusionConfig config)
    : geometry_(std::move(geometry)),
      viewport_(viewport),
      motion_(std::move(motion)),
      crowd_(crowd),
      context_(context),
      config_(config) {
  if (!geometry_) throw std::invalid_argument("FusionPredictor: null geometry");
  if (!motion_) throw std::invalid_argument("FusionPredictor: null motion predictor");
  if (crowd_ != nullptr && crowd_->tile_count() != geometry_->grid().tile_count()) {
    throw std::invalid_argument("FusionPredictor: heatmap/grid tile count mismatch");
  }
}

void FusionPredictor::observe(const HeadSample& sample) {
  motion_->observe(sample);
  last_sample_ = sample;
}

geo::Orientation FusionPredictor::predict_orientation(sim::Duration horizon) const {
  return motion_->predict(horizon);
}

std::vector<double> FusionPredictor::tile_probabilities(
    sim::Duration horizon, media::ChunkIndex chunk) const {
  const int n = geometry_->grid().tile_count();
  std::vector<double> prob(static_cast<std::size_t>(n), 0.0);
  const double h = std::max(sim::to_seconds(horizon), 0.0);

  // (1) Motion component: Gaussian kernel (in angular distance) around the
  // predicted view center, widened by the horizon-dependent error model.
  const geo::Orientation predicted = motion_->predict(horizon);
  // Engaged viewers wander less: scale error growth by (1.5 - engagement).
  const double engagement = std::clamp(context_.engagement, 0.0, 1.0);
  const double sigma =
      config_.sigma_base_deg +
      config_.sigma_growth_dps * (1.5 - engagement) * h;
  // Tiles inside the viewport at the predicted center count fully; beyond
  // the viewport edge the Gaussian tail takes over.
  const double fov_radius =
      std::min(viewport_.width_deg, viewport_.height_deg) / 2.0;
  const auto dist = geometry_->tile_distances_deg(predicted);
  std::vector<double> motion(static_cast<std::size_t>(n));
  double motion_total = 0.0;
  for (int i = 0; i < n; ++i) {
    const double excess = std::max(0.0, dist[static_cast<std::size_t>(i)] - fov_radius);
    motion[static_cast<std::size_t>(i)] =
        std::exp(-(excess * excess) / (2.0 * sigma * sigma));
    motion_total += motion[static_cast<std::size_t>(i)];
  }
  for (double& m : motion) m /= motion_total;

  // (2) Crowd prior for this chunk, if available.
  const bool have_crowd = crowd_ != nullptr && crowd_->total(chunk) > 0.0;
  std::vector<double> crowd_prob;
  if (have_crowd) crowd_prob = crowd_->probabilities(chunk);

  // Blend: motion weight decays with horizon beyond the grace period.
  const double w_motion_raw =
      std::exp(-std::max(0.0, h - config_.motion_grace_s) / config_.motion_tau_s);
  const double w_motion = have_crowd ? w_motion_raw : 1.0;
  const double uniform = 1.0 / static_cast<double>(n);
  for (int i = 0; i < n; ++i) {
    const auto s = static_cast<std::size_t>(i);
    double p = w_motion * motion[s];
    if (have_crowd) p += (1.0 - w_motion) * crowd_prob[s];
    prob[s] = (1.0 - config_.uniform_floor) * p + config_.uniform_floor * uniform;
  }

  // (3) Context pruning: zero tiles that are unreachable within the horizon
  // (speed bound) or outside the pose's yaw band.
  if (last_sample_.has_value()) {
    const geo::Orientation current = last_sample_->orientation;
    const double fov_diag =
        std::hypot(viewport_.width_deg, viewport_.height_deg) / 2.0;
    const auto cur_dist = geometry_->tile_distances_deg(current);
    for (int i = 0; i < n; ++i) {
      const auto s = static_cast<std::size_t>(i);
      if (context_.max_speed_dps.has_value()) {
        const double reach = *context_.max_speed_dps * h + fov_diag;
        if (cur_dist[s] > reach) prob[s] = 0.0;
      }
      if (context_.pose.has_value()) {
        const auto ll = geo::lonlat_from_direction(geometry_->tile_center_direction(
            static_cast<geo::TileId>(i)));
        const double off = angle_diff_deg(ll.lon_deg, context_.home_yaw_deg);
        const double band = pose_yaw_half_range_deg(*context_.pose) +
                            viewport_.width_deg / 2.0;
        if (std::abs(off) > band) prob[s] = 0.0;
      }
    }
  }

  // Renormalize (fall back to uniform if pruning removed everything).
  double total = 0.0;
  for (double p : prob) total += p;
  if (total <= 0.0) {
    std::fill(prob.begin(), prob.end(), uniform);
  } else {
    for (double& p : prob) p /= total;
  }
  return prob;
}

}  // namespace sperke::hmp
