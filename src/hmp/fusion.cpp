#include "hmp/fusion.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>

#include "util/check.h"
#include "util/math.h"

namespace sperke::hmp {
namespace {

bool same_orientation(const geo::Orientation& a, const geo::Orientation& b) {
  return a.yaw_deg == b.yaw_deg && a.pitch_deg == b.pitch_deg &&
         a.roll_deg == b.roll_deg;
}

}  // namespace

FusionPredictor::FusionPredictor(std::shared_ptr<const geo::TileGeometry> geometry,
                                 geo::Viewport viewport,
                                 std::unique_ptr<OrientationPredictor> motion,
                                 const ViewingHeatmap* crowd, ViewingContext context,
                                 FusionConfig config)
    : geometry_(std::move(geometry)),
      viewport_(viewport),
      motion_(std::move(motion)),
      crowd_(crowd),
      context_(context),
      config_(config) {
  if (!geometry_) throw std::invalid_argument("FusionPredictor: null geometry");
  if (!motion_) throw std::invalid_argument("FusionPredictor: null motion predictor");
  if (crowd_ != nullptr && crowd_->tile_count() != geometry_->grid().tile_count()) {
    throw std::invalid_argument("FusionPredictor: heatmap/grid tile count mismatch");
  }
  // Tile-center longitudes for the pose band test, hoisted out of the
  // per-call pruning pass (identical expression, evaluated once).
  const int n = geometry_->grid().tile_count();
  center_lon_deg_.reserve(static_cast<std::size_t>(n));
  for (geo::TileId i = 0; i < n; ++i) {
    center_lon_deg_.push_back(
        geo::lonlat_from_direction(geometry_->tile_center_direction(i)).lon_deg);
  }
}

void FusionPredictor::observe(const HeadSample& sample) {
  motion_->observe(sample);
  last_sample_ = sample;
  ++observe_gen_;  // retires predict memo entries
}

geo::Orientation FusionPredictor::cached_predict(sim::Duration horizon) const {
  if (!(predict_memo_.valid && predict_memo_.gen == observe_gen_ &&
        predict_memo_.horizon == horizon)) {
    predict_memo_.value = motion_->predict(horizon);
    predict_memo_.gen = observe_gen_;
    predict_memo_.horizon = horizon;
    predict_memo_.valid = true;
  }
  return predict_memo_.value;
}

const std::vector<double>& FusionPredictor::cached_distances(
    DistanceMemo& memo, const geo::Orientation& view) const {
  if (!(memo.valid && same_orientation(memo.key, view))) {
    geometry_->tile_distances_deg(view, memo.dist);
    memo.key = view;
    memo.valid = true;
  }
  return memo.dist;
}

geo::Orientation FusionPredictor::predict_orientation(sim::Duration horizon) const {
  return cached_predict(horizon);
}

std::vector<double> FusionPredictor::tile_probabilities(
    sim::Duration horizon, media::ChunkIndex chunk) const {
  std::vector<double> prob;
  tile_probabilities_into(horizon, chunk, prob);
  return prob;
}

void FusionPredictor::tile_probabilities_into(sim::Duration horizon,
                                              media::ChunkIndex chunk,
                                              std::vector<double>& out) const {
  out.resize(static_cast<std::size_t>(geometry_->grid().tile_count()));
  tile_probabilities_into(horizon, chunk, std::span<double>(out));
}

void FusionPredictor::tile_probabilities_into(sim::Duration horizon,
                                              media::ChunkIndex chunk,
                                              std::span<double> out) const {
  const int n = geometry_->grid().tile_count();
  SPERKE_CHECK(out.size() == static_cast<std::size_t>(n),
               "FusionPredictor: output span size ", out.size(),
               " != tile count ", n);
  const double h = std::max(sim::to_seconds(horizon), 0.0);

  // (1) Motion component: Gaussian kernel (in angular distance) around the
  // predicted view center, widened by the horizon-dependent error model.
  // Memoized on (predicted orientation, sigma) over the cached distance map.
  const geo::Orientation predicted = cached_predict(horizon);
  // Engaged viewers wander less: scale error growth by (1.5 - engagement).
  const double engagement = std::clamp(context_.engagement, 0.0, 1.0);
  const double sigma =
      config_.sigma_base_deg +
      config_.sigma_growth_dps * (1.5 - engagement) * h;
  // Tiles inside the viewport at the predicted center count fully; beyond
  // the viewport edge the Gaussian tail takes over.
  const double fov_radius =
      std::min(viewport_.width_deg, viewport_.height_deg) / 2.0;
  if (!(motion_memo_.valid && same_orientation(motion_memo_.key, predicted) &&
        motion_memo_.sigma == sigma)) {
    const std::vector<double>& dist =
        cached_distances(predicted_dist_memo_, predicted);
    auto& motion = motion_memo_.weights;
    motion.resize(static_cast<std::size_t>(n));
    double motion_total = 0.0;
    for (int i = 0; i < n; ++i) {
      const double excess =
          std::max(0.0, dist[static_cast<std::size_t>(i)] - fov_radius);
      motion[static_cast<std::size_t>(i)] =
          std::exp(-(excess * excess) / (2.0 * sigma * sigma));
      motion_total += motion[static_cast<std::size_t>(i)];
    }
    motion_memo_.total = motion_total;
    motion_memo_.key = predicted;
    motion_memo_.sigma = sigma;
    motion_memo_.valid = true;
  }
  const std::vector<double>& motion = motion_memo_.weights;
  const double motion_total = motion_memo_.total;

  // (2) Crowd prior for this chunk, if available; memoized on the heatmap
  // version so repeated per-chunk calls stop re-materializing vectors.
  const bool have_crowd = crowd_ != nullptr && crowd_->total(chunk) > 0.0;
  const std::vector<double>* crowd_prob = nullptr;
  if (have_crowd) {
    if (!(crowd_memo_.valid && crowd_memo_.chunk == chunk &&
          crowd_memo_.version == crowd_->version())) {
      crowd_->probabilities_into(chunk, crowd_memo_.probs);
      crowd_memo_.chunk = chunk;
      crowd_memo_.version = crowd_->version();
      crowd_memo_.valid = true;
    }
    crowd_prob = &crowd_memo_.probs;
  }

  // Blend: motion weight decays with horizon beyond the grace period.
  const double w_motion_raw =
      std::exp(-std::max(0.0, h - config_.motion_grace_s) / config_.motion_tau_s);
  const double w_motion = have_crowd ? w_motion_raw : 1.0;
  const double w_crowd = 1.0 - w_motion;
  const double uniform = 1.0 / static_cast<double>(n);
  const double floor_scale = 1.0 - config_.uniform_floor;
  const double floor_term = config_.uniform_floor * uniform;

  // (3) Context pruning inputs: zero tiles that are unreachable within the
  // horizon (speed bound) or outside the pose's yaw band.
  const bool prune = last_sample_.has_value();
  bool prune_speed = false;
  bool prune_pose = false;
  double reach = 0.0;
  double band = 0.0;
  const std::vector<double>* cur_dist = nullptr;
  if (prune) {
    prune_speed = context_.max_speed_dps.has_value();
    if (prune_speed) {
      const double fov_diag =
          std::hypot(viewport_.width_deg, viewport_.height_deg) / 2.0;
      reach = *context_.max_speed_dps * h + fov_diag;
      cur_dist = &cached_distances(current_dist_memo_, last_sample_->orientation);
    }
    prune_pose = context_.pose.has_value();
    if (prune_pose) {
      band = pose_yaw_half_range_deg(*context_.pose) + viewport_.width_deg / 2.0;
    }
  }

  // Fused pass: blend + floor + prune + total in one sweep. Each tile sees
  // the identical operation sequence the former four passes applied, so the
  // results (and the index-ordered total) are bit-identical.
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto s = static_cast<std::size_t>(i);
    double p = w_motion * (motion[s] / motion_total);
    if (have_crowd) p += w_crowd * (*crowd_prob)[s];
    p = floor_scale * p + floor_term;
    if (prune_speed && (*cur_dist)[s] > reach) p = 0.0;
    if (prune_pose &&
        std::abs(angle_diff_deg(center_lon_deg_[s], context_.home_yaw_deg)) > band) {
      p = 0.0;
    }
    out[s] = p;
    total += p;
  }

  // Renormalize (fall back to uniform if pruning removed everything).
  if (total <= 0.0) {
    std::fill(out.begin(), out.end(), uniform);
  } else {
    for (double& p : out) p /= total;
  }
}

}  // namespace sperke::hmp
