#include "hmp/heatmap.h"

#include <stdexcept>

#include "hmp/head_trace.h"

namespace sperke::hmp {

ViewingHeatmap::ViewingHeatmap(int tile_count, media::ChunkIndex chunk_count)
    : tile_count_(tile_count), chunk_count_(chunk_count) {
  if (tile_count <= 0 || chunk_count <= 0) {
    throw std::invalid_argument("ViewingHeatmap: non-positive dims");
  }
  counts_.assign(static_cast<std::size_t>(tile_count) * chunk_count, 0.0);
  totals_.assign(static_cast<std::size_t>(chunk_count), 0.0);
}

std::size_t ViewingHeatmap::at(media::ChunkIndex chunk, geo::TileId tile) const {
  if (chunk < 0 || chunk >= chunk_count_ || tile < 0 || tile >= tile_count_) {
    throw std::out_of_range("ViewingHeatmap: chunk/tile out of range");
  }
  return static_cast<std::size_t>(chunk) * tile_count_ + tile;
}

void ViewingHeatmap::add_view(media::ChunkIndex chunk,
                              std::span<const geo::TileId> visible) {
  for (geo::TileId tile : visible) {
    counts_[at(chunk, tile)] += 1.0;
    totals_[static_cast<std::size_t>(chunk)] += 1.0;
  }
  ++version_;
}

void ViewingHeatmap::add_trace(const HeadTrace& trace,
                               const geo::TileGeometry& geometry,
                               const geo::Viewport& viewport,
                               sim::Duration chunk_duration, int samples_per_chunk) {
  if (samples_per_chunk <= 0) {
    throw std::invalid_argument("add_trace: samples_per_chunk <= 0");
  }
  for (media::ChunkIndex chunk = 0; chunk < chunk_count_; ++chunk) {
    const sim::Time start = chunk_duration * chunk;
    if (start > trace.duration()) break;
    for (int s = 0; s < samples_per_chunk; ++s) {
      const sim::Time t =
          start + chunk_duration * s / samples_per_chunk;
      const auto visible =
          geometry.visible_tiles(trace.orientation_at(t), viewport);
      add_view(chunk, visible);
    }
  }
}

std::vector<double> ViewingHeatmap::probabilities(media::ChunkIndex chunk) const {
  std::vector<double> out;
  probabilities_into(chunk, out);
  return out;
}

void ViewingHeatmap::probabilities_into(media::ChunkIndex chunk,
                                        std::vector<double>& out) const {
  out.resize(static_cast<std::size_t>(tile_count_));
  double total = 0.0;
  for (geo::TileId tile = 0; tile < tile_count_; ++tile) {
    out[static_cast<std::size_t>(tile)] = counts_[at(chunk, tile)] + 1.0;  // Laplace
    total += out[static_cast<std::size_t>(tile)];
  }
  for (double& p : out) p /= total;
}

double ViewingHeatmap::count(media::ChunkIndex chunk, geo::TileId tile) const {
  return counts_[at(chunk, tile)];
}

double ViewingHeatmap::total(media::ChunkIndex chunk) const {
  if (chunk < 0 || chunk >= chunk_count_) {
    throw std::out_of_range("ViewingHeatmap: chunk out of range");
  }
  return totals_[static_cast<std::size_t>(chunk)];
}

void ViewingHeatmap::merge(const ViewingHeatmap& other) {
  if (other.tile_count_ != tile_count_ || other.chunk_count_ != chunk_count_) {
    throw std::invalid_argument("ViewingHeatmap::merge: shape mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  for (std::size_t c = 0; c < totals_.size(); ++c) totals_[c] += other.totals_[c];
  ++version_;
}

}  // namespace sperke::hmp
