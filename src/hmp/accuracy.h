// Predictor evaluation: angular error and tile-level precision/recall at a
// given prediction horizon, measured by replaying a head trace.
#pragma once

#include <span>
#include <vector>

#include "geo/visibility.h"
#include "hmp/head_trace.h"
#include "hmp/predictor.h"

namespace sperke::hmp {

struct AccuracyReport {
  double mean_error_deg = 0.0;   // great-circle error of the point prediction
  double p90_error_deg = 0.0;
  double tile_precision = 0.0;   // |predicted FoV ∩ actual FoV| / |predicted FoV|
  double tile_recall = 0.0;      // |predicted FoV ∩ actual FoV| / |actual FoV|
  int evaluations = 0;
};

// Replay `trace` through `predictor`: at every sample, predict `horizon`
// ahead and compare with the trace's actual orientation/visible set.
// Resets the predictor first.
[[nodiscard]] AccuracyReport evaluate_predictor(OrientationPredictor& predictor,
                                                const HeadTrace& trace,
                                                sim::Duration horizon,
                                                const geo::TileGeometry& geometry,
                                                const geo::Viewport& viewport);

// Fraction of the actually-visible tiles contained in the `budget` most
// probable tiles of `probabilities` — how well a probability map covers the
// true FoV when the player can afford to fetch `budget` tiles.
[[nodiscard]] double tile_hit_rate(std::span<const double> probabilities,
                                   std::span<const geo::TileId> actual_visible,
                                   int budget);

}  // namespace sperke::hmp
