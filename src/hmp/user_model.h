// Per-user long-term behaviour (§3.2's second data dimension): "a user's
// head movement speed can be learned to bound the latency requirement for
// fetching a distant tile (e.g., elderly people tend to move their heads
// slower than teenagers)".
//
// A UserModel accumulates a user's head traces across many videos and
// produces the learned speed bound (plus a pose habit) that ViewingContext
// feeds into fusion pruning.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "hmp/fusion.h"
#include "hmp/head_trace.h"

namespace sperke::hmp {

class UserModel {
 public:
  // `speed_percentile` picks how aggressive the learned bound is: the
  // p-th percentile of observed instantaneous speeds, inflated by
  // `safety_margin` (bounds must rarely be exceeded or pruning hurts).
  explicit UserModel(double speed_percentile = 99.0, double safety_margin = 1.25);

  // Fold in one watched video's head trace.
  void observe_trace(const HeadTrace& trace);

  [[nodiscard]] int traces_observed() const { return traces_; }
  [[nodiscard]] std::size_t samples_observed() const { return speeds_dps_.size(); }

  // Learned speed bound (deg/s); empty until at least one trace is seen.
  [[nodiscard]] std::optional<double> speed_bound_dps() const;

  // ViewingContext carrying the learned bound, ready for FusionPredictor.
  [[nodiscard]] ViewingContext context() const;

 private:
  double speed_percentile_;
  double safety_margin_;
  int traces_ = 0;
  std::vector<double> speeds_dps_;  // instantaneous speeds across all traces
};

}  // namespace sperke::hmp
