// Point (single-orientation) head-movement predictors.
//
// These implement the "learning past head movement readings" family the
// paper cites from [16,37]: accurate at sub-second horizons, degrading
// quickly beyond. They are the motion component of the fusion predictor
// (hmp/fusion.h); the crowd/context components live in heatmap.h/context.h.
#pragma once

#include <deque>
#include <memory>
#include <string_view>

#include "hmp/head_trace.h"

namespace sperke::hmp {

class OrientationPredictor {
 public:
  virtual ~OrientationPredictor() = default;

  // Feed one sensor reading (must be non-decreasing in time).
  virtual void observe(const HeadSample& sample) = 0;

  // Predict the orientation `horizon` after the last observed sample.
  // Returns the last observation if there is not enough history.
  [[nodiscard]] virtual geo::Orientation predict(sim::Duration horizon) const = 0;

  virtual void reset() = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

// Predicts no motion: the FoV stays where it is. The baseline every HMP
// paper compares against.
class StaticPredictor final : public OrientationPredictor {
 public:
  void observe(const HeadSample& sample) override;
  [[nodiscard]] geo::Orientation predict(sim::Duration horizon) const override;
  void reset() override;
  [[nodiscard]] std::string_view name() const override { return "static"; }

 private:
  bool primed_ = false;
  HeadSample last_;
};

// Constant-velocity extrapolation from the trailing window, with the
// velocity damped toward zero for long horizons (heads do not spin
// indefinitely).
class DeadReckoningPredictor final : public OrientationPredictor {
 public:
  explicit DeadReckoningPredictor(sim::Duration window = sim::milliseconds(250),
                                  double damping_tau_s = 0.7);

  void observe(const HeadSample& sample) override;
  [[nodiscard]] geo::Orientation predict(sim::Duration horizon) const override;
  void reset() override;
  [[nodiscard]] std::string_view name() const override { return "dead-reckoning"; }

 private:
  sim::Duration window_;
  double damping_tau_s_;
  std::deque<HeadSample> history_;
};

// Least-squares linear fit of (unwrapped) yaw and pitch over the trailing
// window, evaluated at t + horizon — the approach of [16, 37].
class LinearRegressionPredictor final : public OrientationPredictor {
 public:
  explicit LinearRegressionPredictor(sim::Duration window = sim::milliseconds(400));

  void observe(const HeadSample& sample) override;
  [[nodiscard]] geo::Orientation predict(sim::Duration horizon) const override;
  void reset() override;
  [[nodiscard]] std::string_view name() const override { return "linear-regression"; }

 private:
  sim::Duration window_;
  std::deque<HeadSample> history_;
  double unwrapped_last_yaw_ = 0.0;  // continuous yaw tracking across +-180
  std::deque<double> unwrapped_yaws_;
};

[[nodiscard]] std::unique_ptr<OrientationPredictor> make_orientation_predictor(
    std::string_view name);

}  // namespace sperke::hmp
