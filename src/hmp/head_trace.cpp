#include "hmp/head_trace.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"
#include "util/math.h"

namespace sperke::hmp {

HeadTrace::HeadTrace(std::vector<HeadSample> samples, double sample_rate_hz)
    : samples_(std::move(samples)), sample_rate_hz_(sample_rate_hz) {
  if (samples_.empty()) throw std::invalid_argument("HeadTrace: empty");
  if (sample_rate_hz_ <= 0.0) throw std::invalid_argument("HeadTrace: bad rate");
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (samples_[i].t <= samples_[i - 1].t) {
      throw std::invalid_argument("HeadTrace: samples not time-ordered");
    }
  }
}

sim::Time HeadTrace::duration() const { return samples_.back().t; }

geo::Orientation HeadTrace::orientation_at(sim::Time t) const {
  if (t <= samples_.front().t) return samples_.front().orientation;
  if (t >= samples_.back().t) return samples_.back().orientation;
  // Binary search for the segment containing t.
  const auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](sim::Time value, const HeadSample& s) { return value < s.t; });
  const HeadSample& b = *it;
  const HeadSample& a = *std::prev(it);
  const double span = sim::to_seconds(b.t - a.t);
  const double f = span > 0.0 ? sim::to_seconds(t - a.t) / span : 0.0;
  geo::Orientation o;
  o.yaw_deg = wrap_deg180(a.orientation.yaw_deg +
                          f * angle_diff_deg(b.orientation.yaw_deg,
                                             a.orientation.yaw_deg));
  o.pitch_deg = lerp(a.orientation.pitch_deg, b.orientation.pitch_deg, f);
  o.roll_deg = wrap_deg180(a.orientation.roll_deg +
                           f * angle_diff_deg(b.orientation.roll_deg,
                                              a.orientation.roll_deg));
  return o;
}

double HeadTrace::mean_speed_dps() const {
  if (samples_.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const double dt = sim::to_seconds(samples_[i].t - samples_[i - 1].t);
    total += geo::angular_distance_deg(samples_[i - 1].orientation,
                                       samples_[i].orientation) /
             std::max(dt, 1e-9);
  }
  return total / static_cast<double>(samples_.size() - 1);
}

double pose_yaw_half_range_deg(Pose pose) {
  switch (pose) {
    case Pose::kSitting: return 150.0;   // can swivel, rarely straight behind
    case Pose::kStanding: return 180.0;  // free to turn fully around
    case Pose::kLying: return 75.0;      // cannot look behind (§3.2)
  }
  return 180.0;
}

UserProfile UserProfile::teenager() {
  return {.name = "teenager", .max_speed_dps = 180.0, .fixation_mean_s = 1.2,
          .attractor_affinity = 0.6, .pose = Pose::kSitting, .jitter_dps = 5.0};
}
UserProfile UserProfile::adult() { return {}; }
UserProfile UserProfile::elderly() {
  return {.name = "elderly", .max_speed_dps = 60.0, .fixation_mean_s = 3.5,
          .attractor_affinity = 0.8, .pose = Pose::kSitting, .jitter_dps = 2.0};
}
UserProfile UserProfile::lying() {
  return {.name = "lying", .max_speed_dps = 80.0, .fixation_mean_s = 2.5,
          .attractor_affinity = 0.7, .pose = Pose::kLying, .jitter_dps = 2.0};
}

namespace {

// Clamp a target orientation into the pose's reachable yaw band around home.
geo::Orientation clamp_to_pose(const geo::Orientation& target, double home_yaw,
                               Pose pose) {
  const double half = pose_yaw_half_range_deg(pose);
  geo::Orientation out = target.normalized();
  const double off = sperke::angle_diff_deg(out.yaw_deg, home_yaw);
  if (std::abs(off) > half) {
    out.yaw_deg = sperke::wrap_deg180(home_yaw + std::clamp(off, -half, half));
  }
  out.pitch_deg = std::clamp(out.pitch_deg, -75.0, 75.0);
  return out;
}

}  // namespace

HeadTrace generate_head_trace(const HeadTraceConfig& config) {
  if (config.duration_s <= 0.0 || config.sample_rate_hz <= 0.0) {
    throw std::invalid_argument("generate_head_trace: bad duration/rate");
  }
  Rng rng(config.seed);
  const double dt = 1.0 / config.sample_rate_hz;
  const auto n = static_cast<std::size_t>(config.duration_s * config.sample_rate_hz) + 1;
  const UserProfile& prof = config.profile;
  const double home_yaw = config.start.normalized().yaw_deg;

  geo::Orientation current = config.start.normalized();
  geo::Orientation target = current;
  double next_saccade_s = rng.exponential(prof.fixation_mean_s);

  std::vector<HeadSample> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double now_s = static_cast<double>(i) * dt;
    samples.push_back(
        {sim::seconds(now_s), current});

    if (now_s >= next_saccade_s) {
      next_saccade_s = now_s + rng.exponential(prof.fixation_mean_s);
      // Pick a new gaze target: an active shared ROI, or a random direction.
      const Attractor* roi = nullptr;
      std::vector<const Attractor*> active;
      for (const auto& a : config.attractors) {
        if (now_s >= a.start_s && now_s < a.end_s) active.push_back(&a);
      }
      if (!active.empty() && rng.bernoulli(prof.attractor_affinity)) {
        roi = active[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(active.size()) - 1))];
      }
      if (roi != nullptr) {
        target = geo::Orientation{
            roi->center.yaw_deg + rng.normal(0.0, roi->spread_deg),
            roi->center.pitch_deg + rng.normal(0.0, roi->spread_deg / 2.0), 0.0};
      } else {
        target = geo::Orientation{current.yaw_deg + rng.normal(0.0, 60.0),
                                  rng.normal(0.0, 25.0), 0.0};
      }
      target = clamp_to_pose(target, home_yaw, prof.pose);
    }

    // Move toward the target at bounded speed, with fixation jitter.
    const double max_step = prof.max_speed_dps * dt;
    const double dyaw = sperke::angle_diff_deg(target.yaw_deg, current.yaw_deg);
    const double dpitch = target.pitch_deg - current.pitch_deg;
    const double dist = std::hypot(dyaw, dpitch);
    double step_yaw = dyaw, step_pitch = dpitch;
    if (dist > max_step && dist > 0.0) {
      step_yaw = dyaw / dist * max_step;
      step_pitch = dpitch / dist * max_step;
    }
    current.yaw_deg = sperke::wrap_deg180(
        current.yaw_deg + step_yaw + rng.normal(0.0, prof.jitter_dps * dt));
    current.pitch_deg = std::clamp(
        current.pitch_deg + step_pitch + rng.normal(0.0, prof.jitter_dps * dt),
        -75.0, 75.0);
    current = clamp_to_pose(current, home_yaw, prof.pose);
  }
  return HeadTrace(std::move(samples), config.sample_rate_hz);
}

std::string to_csv(const HeadTrace& trace) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row({"seconds", "yaw_deg", "pitch_deg", "roll_deg"});
  for (const HeadSample& sample : trace.samples()) {
    writer.write_row({std::to_string(sim::to_seconds(sample.t)),
                      std::to_string(sample.orientation.yaw_deg),
                      std::to_string(sample.orientation.pitch_deg),
                      std::to_string(sample.orientation.roll_deg)});
  }
  return os.str();
}

HeadTrace head_trace_from_csv(const std::string& text, double sample_rate_hz) {
  const auto rows = parse_csv(text);
  if (rows.size() < 2) throw std::runtime_error("head trace CSV: too short");
  std::vector<HeadSample> samples;
  samples.reserve(rows.size() - 1);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].size() != 4) throw std::runtime_error("head trace CSV: bad row");
    HeadSample sample;
    sample.t = sim::seconds(std::stod(rows[i][0]));
    sample.orientation = geo::Orientation{std::stod(rows[i][1]),
                                          std::stod(rows[i][2]),
                                          std::stod(rows[i][3])}
                             .normalized();
    samples.push_back(sample);
  }
  return HeadTrace(std::move(samples), sample_rate_hz);
}

std::vector<Attractor> default_attractors(double duration_s, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Attractor> out;
  // A new ROI every ~8 s; occasionally two overlap (split attention).
  double t = 0.0;
  while (t < duration_s) {
    const double hold = rng.uniform(5.0, 12.0);
    Attractor a;
    a.start_s = t;
    a.end_s = std::min(t + hold, duration_s);
    a.center = geo::Orientation{rng.uniform(-120.0, 120.0), rng.uniform(-25.0, 25.0), 0.0};
    a.spread_deg = rng.uniform(10.0, 25.0);
    out.push_back(a);
    if (rng.bernoulli(0.3)) {
      Attractor b = a;
      b.center = geo::Orientation{rng.uniform(-180.0, 180.0), rng.uniform(-20.0, 20.0), 0.0};
      out.push_back(b);
    }
    t += hold;
  }
  return out;
}

}  // namespace sperke::hmp
