#include "hmp/predictor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/math.h"

namespace sperke::hmp {

void StaticPredictor::observe(const HeadSample& sample) {
  last_ = sample;
  primed_ = true;
}

geo::Orientation StaticPredictor::predict(sim::Duration) const {
  return primed_ ? last_.orientation : geo::Orientation{};
}

void StaticPredictor::reset() { primed_ = false; }

DeadReckoningPredictor::DeadReckoningPredictor(sim::Duration window,
                                               double damping_tau_s)
    : window_(window), damping_tau_s_(damping_tau_s) {
  if (window <= sim::Duration{0}) throw std::invalid_argument("DeadReckoning: bad window");
  if (damping_tau_s <= 0.0) throw std::invalid_argument("DeadReckoning: bad tau");
}

void DeadReckoningPredictor::observe(const HeadSample& sample) {
  history_.push_back(sample);
  while (history_.size() > 1 && history_.back().t - history_.front().t > window_) {
    history_.pop_front();
  }
}

geo::Orientation DeadReckoningPredictor::predict(sim::Duration horizon) const {
  if (history_.empty()) return geo::Orientation{};
  const HeadSample& last = history_.back();
  if (history_.size() < 2) return last.orientation;
  const HeadSample& first = history_.front();
  const double span_s = sim::to_seconds(last.t - first.t);
  if (span_s <= 0.0) return last.orientation;
  const double vyaw =
      angle_diff_deg(last.orientation.yaw_deg, first.orientation.yaw_deg) / span_s;
  const double vpitch = (last.orientation.pitch_deg - first.orientation.pitch_deg) / span_s;
  // Effective travel time with exponential damping of the velocity.
  const double h = sim::to_seconds(horizon);
  const double effective = damping_tau_s_ * (1.0 - std::exp(-h / damping_tau_s_));
  geo::Orientation out = last.orientation;
  out.yaw_deg = wrap_deg180(out.yaw_deg + vyaw * effective);
  out.pitch_deg = std::clamp(out.pitch_deg + vpitch * effective, -90.0, 90.0);
  return out;
}

void DeadReckoningPredictor::reset() { history_.clear(); }

LinearRegressionPredictor::LinearRegressionPredictor(sim::Duration window)
    : window_(window) {
  if (window <= sim::Duration{0}) throw std::invalid_argument("LinearRegression: bad window");
}

void LinearRegressionPredictor::observe(const HeadSample& sample) {
  if (history_.empty()) {
    unwrapped_last_yaw_ = sample.orientation.yaw_deg;
  } else {
    unwrapped_last_yaw_ +=
        angle_diff_deg(sample.orientation.yaw_deg,
                       wrap_deg180(unwrapped_last_yaw_));
  }
  history_.push_back(sample);
  unwrapped_yaws_.push_back(unwrapped_last_yaw_);
  while (history_.size() > 1 && history_.back().t - history_.front().t > window_) {
    history_.pop_front();
    unwrapped_yaws_.pop_front();
  }
}

geo::Orientation LinearRegressionPredictor::predict(sim::Duration horizon) const {
  if (history_.empty()) return geo::Orientation{};
  if (history_.size() < 3) return history_.back().orientation;

  // Least-squares slope/intercept for yaw (unwrapped) and pitch vs time,
  // with time measured from the last sample (so prediction is at t = h).
  const sim::Time t0 = history_.back().t;
  double sx = 0, sxx = 0, sy_yaw = 0, sxy_yaw = 0, sy_pitch = 0, sxy_pitch = 0;
  const auto n = static_cast<double>(history_.size());
  for (std::size_t i = 0; i < history_.size(); ++i) {
    const double x = sim::to_seconds(history_[i].t - t0);  // <= 0
    sx += x;
    sxx += x * x;
    sy_yaw += unwrapped_yaws_[i];
    sxy_yaw += x * unwrapped_yaws_[i];
    sy_pitch += history_[i].orientation.pitch_deg;
    sxy_pitch += x * history_[i].orientation.pitch_deg;
  }
  const double denom = n * sxx - sx * sx;
  geo::Orientation out = history_.back().orientation;
  if (std::abs(denom) < 1e-12) return out;
  // Damp the extrapolation horizon: heads do not hold a velocity for
  // seconds, so the fitted slope is only trusted for a bounded travel time.
  constexpr double kDampingTauS = 0.8;
  const double h =
      kDampingTauS * (1.0 - std::exp(-sim::to_seconds(horizon) / kDampingTauS));
  const double slope_yaw = (n * sxy_yaw - sx * sy_yaw) / denom;
  const double icept_yaw = (sy_yaw - slope_yaw * sx) / n;
  const double slope_pitch = (n * sxy_pitch - sx * sy_pitch) / denom;
  const double icept_pitch = (sy_pitch - slope_pitch * sx) / n;
  out.yaw_deg = wrap_deg180(icept_yaw + slope_yaw * h);
  out.pitch_deg = std::clamp(icept_pitch + slope_pitch * h, -90.0, 90.0);
  return out;
}

void LinearRegressionPredictor::reset() {
  history_.clear();
  unwrapped_yaws_.clear();
}

std::unique_ptr<OrientationPredictor> make_orientation_predictor(
    std::string_view name) {
  if (name == "static") return std::make_unique<StaticPredictor>();
  if (name == "dead-reckoning") return std::make_unique<DeadReckoningPredictor>();
  if (name == "linear-regression") return std::make_unique<LinearRegressionPredictor>();
  throw std::invalid_argument("unknown predictor: " + std::string(name));
}

}  // namespace sperke::hmp
