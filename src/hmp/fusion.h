// The paper's "data fusion" HMP (§3.2): joint use of
//   (1) a motion predictor over the user's own recent head movement,
//   (2) crowd-sourced per-video viewing statistics (ViewingHeatmap),
//   (3) contextual constraints (pose reachability, per-user speed bound).
//
// Output is a per-tile viewing probability map for a future playback time —
// exactly what the OOS chunk selector (§3.1.2) consumes: crowd data *adds*
// candidate tiles, context *prunes* them.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "geo/visibility.h"
#include "hmp/heatmap.h"
#include "hmp/predictor.h"

namespace sperke::hmp {

// Per-user / per-session context (§3.2's third data dimension).
struct ViewingContext {
  std::optional<Pose> pose;               // constrains reachable yaw band
  std::optional<double> max_speed_dps;    // learned per-user speed bound
  double home_yaw_deg = 0.0;              // pose band center
  // Engagement level from reaction sensing / gaze tracking ([15], §3.2):
  // 1 = locked onto the content (small prediction spread, sharp saccades
  // unlikely), 0 = disengaged/scanning (spread widens). Scales the motion
  // error model's growth term by (1.5 - engagement), so the default 0.5
  // leaves the calibrated model untouched.
  double engagement = 0.5;
};

struct FusionConfig {
  // Angular error model of the motion predictor: sigma(h) = base + growth*h.
  double sigma_base_deg = 12.0;
  double sigma_growth_dps = 25.0;
  // Motion weight decays with horizon beyond a grace period:
  // w(h) = exp(-max(0, h - grace) / tau); the remainder goes to the crowd
  // prior (or a uniform floor without crowd data). Below the grace horizon
  // the user's own motion is near-certain and must not be diluted.
  double motion_tau_s = 1.5;
  double motion_grace_s = 0.5;
  // Floor probability mass spread uniformly (keeps every tile fetchable).
  double uniform_floor = 0.02;
};

class FusionPredictor {
 public:
  FusionPredictor(std::shared_ptr<const geo::TileGeometry> geometry,
                  geo::Viewport viewport,
                  std::unique_ptr<OrientationPredictor> motion,
                  const ViewingHeatmap* crowd,  // may be null; not owned
                  ViewingContext context = {}, FusionConfig config = {});

  // Feed a sensor reading.
  void observe(const HeadSample& sample);

  // Point prediction from the motion component only.
  [[nodiscard]] geo::Orientation predict_orientation(sim::Duration horizon) const;

  // Per-tile viewing probability for the chunk played `horizon` from now
  // (`chunk` selects the crowd prior row). Sums to 1.
  [[nodiscard]] std::vector<double> tile_probabilities(sim::Duration horizon,
                                                       media::ChunkIndex chunk) const;
  void tile_probabilities_into(sim::Duration horizon, media::ChunkIndex chunk,
                               std::vector<double>& out) const;
  // Same fused pass writing into caller storage of exactly tile_count()
  // doubles — typically a core::SessionBatch probability slot, so batched
  // sessions share one contiguous slab (DESIGN.md §13).
  void tile_probabilities_into(sim::Duration horizon, media::ChunkIndex chunk,
                               std::span<double> out) const;

  [[nodiscard]] const geo::TileGeometry& geometry() const { return *geometry_; }
  [[nodiscard]] const geo::Viewport& viewport() const { return viewport_; }
  [[nodiscard]] const ViewingContext& context() const { return context_; }
  [[nodiscard]] const FusionConfig& config() const { return config_; }

 private:
  // The probability map is computed in a single fused pass (DESIGN.md §8)
  // over memoized inputs. Every cache below is a one-entry memo keyed by
  // exact values, so a hit returns bit-identical results to recomputing;
  // observe() advances observe_gen_, which retires stale predictions, and
  // orientation-keyed entries retire themselves when the key changes.
  struct PredictMemo {
    bool valid = false;
    std::uint64_t gen = 0;
    sim::Duration horizon{};
    geo::Orientation value{};
  };
  struct DistanceMemo {
    bool valid = false;
    geo::Orientation key{};
    std::vector<double> dist;
  };
  struct MotionMemo {
    bool valid = false;
    geo::Orientation key{};
    double sigma = 0.0;
    std::vector<double> weights;
    double total = 0.0;
  };
  struct CrowdMemo {
    bool valid = false;
    media::ChunkIndex chunk = 0;
    std::uint64_t version = 0;
    std::vector<double> probs;
  };

  [[nodiscard]] geo::Orientation cached_predict(sim::Duration horizon) const;
  [[nodiscard]] const std::vector<double>& cached_distances(
      DistanceMemo& memo, const geo::Orientation& view) const;

  std::shared_ptr<const geo::TileGeometry> geometry_;
  geo::Viewport viewport_;
  std::unique_ptr<OrientationPredictor> motion_;
  const ViewingHeatmap* crowd_;
  ViewingContext context_;
  FusionConfig config_;
  std::optional<HeadSample> last_sample_;
  std::vector<double> center_lon_deg_;  // per-tile center longitude (pruning)

  std::uint64_t observe_gen_ = 0;
  // thread-safety: these memos make the const prediction/probability calls
  // write-on-read caches, so a FusionPredictor is NOT const-shareable across
  // threads. Each predictor lives inside exactly one StreamingSession, which
  // lives inside exactly one engine::Shard (one thread) — shard confinement,
  // not locking, is what makes the engine race-free.
  mutable PredictMemo predict_memo_;
  mutable DistanceMemo predicted_dist_memo_;
  mutable DistanceMemo current_dist_memo_;
  mutable MotionMemo motion_memo_;
  mutable CrowdMemo crowd_memo_;
};

}  // namespace sperke::hmp
