#include "hmp/user_model.h"

#include <algorithm>
#include <stdexcept>

#include "util/stats.h"

namespace sperke::hmp {

UserModel::UserModel(double speed_percentile, double safety_margin)
    : speed_percentile_(speed_percentile), safety_margin_(safety_margin) {
  if (speed_percentile <= 0.0 || speed_percentile > 100.0) {
    throw std::invalid_argument("UserModel: bad percentile");
  }
  if (safety_margin < 1.0) {
    throw std::invalid_argument("UserModel: margin must be >= 1");
  }
}

void UserModel::observe_trace(const HeadTrace& trace) {
  const auto& samples = trace.samples();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double dt = sim::to_seconds(samples[i].t - samples[i - 1].t);
    if (dt <= 0.0) continue;
    speeds_dps_.push_back(geo::angular_distance_deg(samples[i - 1].orientation,
                                                    samples[i].orientation) /
                          dt);
  }
  ++traces_;
}

std::optional<double> UserModel::speed_bound_dps() const {
  if (speeds_dps_.empty()) return std::nullopt;
  return percentile(speeds_dps_, speed_percentile_) * safety_margin_;
}

ViewingContext UserModel::context() const {
  ViewingContext out;
  if (const auto bound = speed_bound_dps()) out.max_speed_dps = *bound;
  return out;
}

}  // namespace sperke::hmp
