// Head-movement traces: the raw material of head movement prediction (HMP).
//
// Substitutes for the 50 Hz sensor recordings the paper's crowd-sourcing app
// would collect (DESIGN.md §4): a fixation/saccade generator with per-user
// speed profiles, pose constraints and per-video shared attention attractors
// ("regions of interest"). Published HMP results rely on (a) short-horizon
// continuity of head motion and (b) cross-user attention correlation; the
// generator reproduces both with controllable strength.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/orientation.h"
#include "sim/time.h"
#include "util/rng.h"

namespace sperke::hmp {

struct HeadSample {
  sim::Time t{sim::kTimeZero};
  geo::Orientation orientation;
};

// A fixed-rate sequence of head orientations.
class HeadTrace {
 public:
  HeadTrace(std::vector<HeadSample> samples, double sample_rate_hz);

  [[nodiscard]] const std::vector<HeadSample>& samples() const { return samples_; }
  [[nodiscard]] double sample_rate_hz() const { return sample_rate_hz_; }
  [[nodiscard]] sim::Time duration() const;

  // Orientation at time t: nearest earlier sample, with yaw/pitch linearly
  // interpolated toward the next one (yaw via shortest arc). Clamps to the
  // trace's ends.
  [[nodiscard]] geo::Orientation orientation_at(sim::Time t) const;

  // Mean absolute angular speed over the whole trace (deg/s).
  [[nodiscard]] double mean_speed_dps() const;

 private:
  std::vector<HeadSample> samples_;
  double sample_rate_hz_;
};

// Body pose constrains reachable orientations (§3.2: someone lying on a
// couch can hardly look 180° behind).
enum class Pose { kSitting, kStanding, kLying };

// Reachable yaw half-range around the user's "home" yaw for a pose.
[[nodiscard]] double pose_yaw_half_range_deg(Pose pose);

struct UserProfile {
  std::string name = "adult";
  double max_speed_dps = 120.0;       // peak head angular velocity
  double fixation_mean_s = 2.0;       // mean dwell between saccades
  double attractor_affinity = 0.7;    // probability a saccade targets a shared ROI
  Pose pose = Pose::kSitting;
  double jitter_dps = 3.0;            // small continuous wander while fixating

  [[nodiscard]] static UserProfile teenager();
  [[nodiscard]] static UserProfile adult();
  [[nodiscard]] static UserProfile elderly();
  [[nodiscard]] static UserProfile lying();
};

// A shared region of interest in a video: users are drawn toward it while
// it is active. Gives traces the cross-user correlation crowd-sourced HMP
// exploits (§3.2, §3.4.2).
struct Attractor {
  double start_s = 0.0;
  double end_s = 1e9;
  geo::Orientation center;
  double spread_deg = 20.0;  // per-user aim dispersion around the center
};

struct HeadTraceConfig {
  double duration_s = 60.0;
  double sample_rate_hz = 25.0;
  UserProfile profile;
  std::vector<Attractor> attractors;  // the video's shared ROIs
  geo::Orientation start;             // initial (home) orientation
  std::uint64_t seed = 1;
};

// Generate one user's head trace for one video.
[[nodiscard]] HeadTrace generate_head_trace(const HeadTraceConfig& config);

// A default "interesting video" script: a handful of ROIs that move around
// the sphere over `duration_s`. Deterministic in `seed`.
[[nodiscard]] std::vector<Attractor> default_attractors(double duration_s,
                                                        std::uint64_t seed);

// CSV round-trip, four columns: seconds,yaw_deg,pitch_deg,roll_deg.
// Compatible with common public head-movement dataset exports, so real
// traces can stand in for the synthetic generator.
[[nodiscard]] std::string to_csv(const HeadTrace& trace);
[[nodiscard]] HeadTrace head_trace_from_csv(const std::string& text,
                                            double sample_rate_hz);

}  // namespace sperke::hmp
