// Cross-user viewing statistics (§3.2's first data dimension): for every
// temporal chunk, how often each tile fell inside some viewer's FoV.
// Built offline from collected traces (VOD) or online from low-latency
// viewers (live crowd-sourced HMP, §3.4.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "geo/visibility.h"
#include "media/chunk.h"
#include "sim/time.h"

namespace sperke::hmp {

class HeadTrace;

class ViewingHeatmap {
 public:
  ViewingHeatmap(int tile_count, media::ChunkIndex chunk_count);

  [[nodiscard]] int tile_count() const { return tile_count_; }
  [[nodiscard]] media::ChunkIndex chunk_count() const { return chunk_count_; }

  // Record that one viewer saw `visible` tiles during chunk `chunk`.
  void add_view(media::ChunkIndex chunk, std::span<const geo::TileId> visible);

  // Fold a whole head trace in: samples the trace `samples_per_chunk` times
  // per chunk and records the visible set each time.
  void add_trace(const HeadTrace& trace, const geo::TileGeometry& geometry,
                 const geo::Viewport& viewport, sim::Duration chunk_duration,
                 int samples_per_chunk = 4);

  // Laplace-smoothed viewing probability per tile for a chunk; sums to 1.
  [[nodiscard]] std::vector<double> probabilities(media::ChunkIndex chunk) const;
  void probabilities_into(media::ChunkIndex chunk, std::vector<double>& out) const;

  // Raw observation count.
  [[nodiscard]] double count(media::ChunkIndex chunk, geo::TileId tile) const;

  // Total observations recorded for a chunk (0 = no crowd data yet).
  // O(1): per-chunk totals are maintained incrementally (exact, since the
  // counts are sums of 1.0s — integers well below 2^53).
  [[nodiscard]] double total(media::ChunkIndex chunk) const;

  // Pool another heatmap's observations into this one (same shape).
  void merge(const ViewingHeatmap& other);

  // Bumped on every mutation; lets consumers (hmp/fusion.h) memoize
  // probabilities() results keyed by (chunk, version).
  [[nodiscard]] std::uint64_t version() const { return version_; }

 private:
  [[nodiscard]] std::size_t at(media::ChunkIndex chunk, geo::TileId tile) const;

  int tile_count_;
  media::ChunkIndex chunk_count_;
  std::vector<double> counts_;  // [chunk * tile_count + tile]
  std::vector<double> totals_;  // per-chunk sum of counts_
  std::uint64_t version_ = 0;
};

}  // namespace sperke::hmp
