#include "hmp/accuracy.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/stats.h"

namespace sperke::hmp {

AccuracyReport evaluate_predictor(OrientationPredictor& predictor,
                                  const HeadTrace& trace, sim::Duration horizon,
                                  const geo::TileGeometry& geometry,
                                  const geo::Viewport& viewport) {
  if (horizon < sim::Duration{0}) throw std::invalid_argument("evaluate: negative horizon");
  predictor.reset();
  std::vector<double> errors;
  double precision_sum = 0.0, recall_sum = 0.0;
  int evals = 0;
  for (const HeadSample& sample : trace.samples()) {
    predictor.observe(sample);
    const sim::Time target = sample.t + horizon;
    if (target > trace.duration()) break;
    const geo::Orientation predicted = predictor.predict(horizon);
    const geo::Orientation actual = trace.orientation_at(target);
    errors.push_back(geo::angular_distance_deg(predicted, actual));

    const auto pred_tiles = geometry.visible_tiles(predicted, viewport);
    const auto actual_tiles = geometry.visible_tiles(actual, viewport);
    std::vector<geo::TileId> inter;
    std::set_intersection(pred_tiles.begin(), pred_tiles.end(),
                          actual_tiles.begin(), actual_tiles.end(),
                          std::back_inserter(inter));
    if (!pred_tiles.empty()) {
      precision_sum += static_cast<double>(inter.size()) / pred_tiles.size();
    }
    if (!actual_tiles.empty()) {
      recall_sum += static_cast<double>(inter.size()) / actual_tiles.size();
    }
    ++evals;
  }
  AccuracyReport report;
  report.evaluations = evals;
  if (evals > 0) {
    report.mean_error_deg = mean_of(errors);
    report.p90_error_deg = percentile(errors, 90.0);
    report.tile_precision = precision_sum / evals;
    report.tile_recall = recall_sum / evals;
  }
  return report;
}

double tile_hit_rate(std::span<const double> probabilities,
                     std::span<const geo::TileId> actual_visible, int budget) {
  if (budget <= 0) throw std::invalid_argument("tile_hit_rate: non-positive budget");
  if (actual_visible.empty()) return 1.0;
  std::vector<std::size_t> order(probabilities.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return probabilities[a] > probabilities[b];
  });
  const auto take = std::min<std::size_t>(order.size(), static_cast<std::size_t>(budget));
  std::vector<char> chosen(probabilities.size(), 0);
  for (std::size_t i = 0; i < take; ++i) chosen[order[i]] = 1;
  int hits = 0;
  for (geo::TileId tile : actual_visible) {
    if (tile >= 0 && static_cast<std::size_t>(tile) < chosen.size() &&
        chosen[static_cast<std::size_t>(tile)]) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(actual_visible.size());
}

}  // namespace sperke::hmp
