// The quality ladder: per-level bitrate for the full panorama, plus a
// perceptual utility mapping used by QoE accounting and rate adaptation.
#pragma once

#include <stdexcept>
#include <vector>

#include "media/chunk.h"

namespace sperke::media {

class QualityLadder {
 public:
  // `panorama_kbps[i]` is the bitrate of the whole panoramic view at
  // quality level i; must be strictly increasing and non-empty.
  explicit QualityLadder(std::vector<double> panorama_kbps);

  [[nodiscard]] int levels() const { return static_cast<int>(kbps_.size()); }
  [[nodiscard]] QualityLevel max_level() const { return levels() - 1; }
  [[nodiscard]] double panorama_kbps(QualityLevel q) const;

  // Perceptual utility of a quality level, normalized so that
  // utility(0) == 0 and utility(max) == 1. Logarithmic in bitrate,
  // matching the diminishing returns of encoded video quality.
  [[nodiscard]] double utility(QualityLevel q) const;

  // Highest level whose panorama bitrate does not exceed `kbps`
  // (level 0 if even the base exceeds it).
  [[nodiscard]] QualityLevel level_for_kbps(double kbps) const;

  [[nodiscard]] bool valid_level(QualityLevel q) const {
    return q >= 0 && q < levels();
  }

  // A conventional ladder loosely following YouTube's 360 ladder shape.
  [[nodiscard]] static QualityLadder default_ladder();

 private:
  std::vector<double> kbps_;
  std::vector<double> utility_;  // precomputed normalized utilities
};

}  // namespace sperke::media
