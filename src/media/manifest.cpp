#include "media/manifest.h"

#include <sstream>
#include <stdexcept>

namespace sperke::media {

Manifest::Manifest(std::shared_ptr<const VideoModel> model)
    : model_(std::move(model)) {
  if (!model_) throw std::invalid_argument("Manifest: null video model");
}

std::string Manifest::describe() const {
  const auto& cfg = model_->config();
  std::ostringstream os;
  os << "360 video: " << cfg.duration_s << " s, " << cfg.projection
     << " projection, " << cfg.tile_rows << "x" << cfg.tile_cols << " tiles, "
     << model_->chunk_count() << " chunks of " << cfg.chunk_duration_s << " s\n";
  os << "quality ladder (panorama kbps):";
  for (QualityLevel q = 0; q < ladder().levels(); ++q) {
    os << ' ' << ladder().panorama_kbps(q);
  }
  os << "\nSVC overhead: " << cfg.svc_overhead * 100.0 << "%\n";
  return os.str();
}

}  // namespace sperke::media
