#include "media/quality_ladder.h"

#include <cmath>

namespace sperke::media {

QualityLadder::QualityLadder(std::vector<double> panorama_kbps)
    : kbps_(std::move(panorama_kbps)) {
  if (kbps_.empty()) throw std::invalid_argument("QualityLadder: empty ladder");
  for (std::size_t i = 0; i < kbps_.size(); ++i) {
    if (kbps_[i] <= 0.0) throw std::invalid_argument("QualityLadder: non-positive bitrate");
    if (i > 0 && kbps_[i] <= kbps_[i - 1]) {
      throw std::invalid_argument("QualityLadder: bitrates must be strictly increasing");
    }
  }
  utility_.reserve(kbps_.size());
  const double lo = std::log(kbps_.front());
  const double hi = std::log(kbps_.back());
  for (double k : kbps_) {
    utility_.push_back(hi > lo ? (std::log(k) - lo) / (hi - lo) : 1.0);
  }
}

double QualityLadder::panorama_kbps(QualityLevel q) const {
  if (!valid_level(q)) throw std::out_of_range("QualityLadder: bad level");
  return kbps_[static_cast<std::size_t>(q)];
}

double QualityLadder::utility(QualityLevel q) const {
  if (!valid_level(q)) throw std::out_of_range("QualityLadder: bad level");
  return utility_[static_cast<std::size_t>(q)];
}

QualityLevel QualityLadder::level_for_kbps(double kbps) const {
  QualityLevel best = 0;
  for (QualityLevel q = 0; q < levels(); ++q) {
    if (kbps_[static_cast<std::size_t>(q)] <= kbps) best = q;
  }
  return best;
}

QualityLadder QualityLadder::default_ladder() {
  // Full-panorama bitrates (kbps): 360p-ish base up to 4K-ish top rung.
  // 360° video needs ~5x the bitrate of a regular video at the same
  // perceived quality (§1), which is why even the mid rungs are heavy.
  return QualityLadder({1000.0, 2500.0, 5000.0, 10000.0, 20000.0});
}

}  // namespace sperke::media
