// DASH-style manifest (MPD analogue): everything a client may know about a
// video before fetching chunks — ladder, tiling, chunking, per-chunk sizes.
//
// In a deployed system this arrives as an MPD plus segment indexes; here it
// is a read-only view over the server's VideoModel, which carries exactly
// that metadata.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "media/video_model.h"

namespace sperke::media {

class Manifest {
 public:
  explicit Manifest(std::shared_ptr<const VideoModel> model);

  [[nodiscard]] const VideoModel& video() const { return *model_; }
  [[nodiscard]] const QualityLadder& ladder() const { return model_->ladder(); }
  [[nodiscard]] const geo::TileGeometry& geometry() const { return model_->geometry(); }
  [[nodiscard]] int tile_count() const { return model_->tile_count(); }
  [[nodiscard]] ChunkIndex chunk_count() const { return model_->chunk_count(); }
  [[nodiscard]] sim::Duration chunk_duration() const { return model_->chunk_duration(); }

  [[nodiscard]] std::int64_t size_bytes(const ChunkAddress& address) const {
    return model_->size_bytes(address);
  }

  // Human-readable summary of the content organization (Figure 2).
  [[nodiscard]] std::string describe() const;

 private:
  std::shared_ptr<const VideoModel> model_;
};

}  // namespace sperke::media
