// Synthetic encoded-video model.
//
// Substitutes for real H.264/H.265/SVC bitstreams (see DESIGN.md §4): rate
// adaptation, prefetching and upgrade policies consume chunk *sizes*,
// *qualities* and *layer structure*, not pixels, so the model synthesizes
// exactly those. Sizes combine:
//   * the ladder bitrate of the quality level,
//   * the tile's share of the panorama (mix of plane area and solid angle —
//     equirect pole tiles compress far below their plane area),
//   * per-(tile, chunk) content complexity, temporally correlated (AR(1))
//     the way real scene complexity is.
//
// SVC layering (§3.1.1): the cumulative size of layers 0..q equals the AVC
// size at quality q times (1 + svc_overhead); layer i's size is the delta
// between consecutive cumulative sizes — the "delta encoding" of Figure 3.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "geo/visibility.h"
#include "media/chunk.h"
#include "media/quality_ladder.h"
#include "sim/time.h"

namespace sperke::media {

struct VideoModelConfig {
  double duration_s = 120.0;
  double chunk_duration_s = 1.0;
  int tile_rows = 4;
  int tile_cols = 6;
  std::string projection = "equirectangular";
  QualityLadder ladder = QualityLadder::default_ladder();
  double svc_overhead = 0.10;      // SVC bitstream overhead vs AVC (per [31])
  double complexity_sigma = 0.25;  // lognormal spread of content complexity
  double complexity_rho = 0.7;     // AR(1) temporal correlation of complexity
  double area_mix = 0.5;           // 0 = pure plane-area share, 1 = pure solid angle
  std::uint64_t seed = 1;
};

class VideoModel {
 public:
  explicit VideoModel(VideoModelConfig config);

  [[nodiscard]] const VideoModelConfig& config() const { return config_; }
  [[nodiscard]] const QualityLadder& ladder() const { return config_.ladder; }
  [[nodiscard]] const geo::TileGeometry& geometry() const { return *geometry_; }
  [[nodiscard]] std::shared_ptr<const geo::TileGeometry> geometry_ptr() const {
    return geometry_;
  }

  [[nodiscard]] int tile_count() const { return geometry_->grid().tile_count(); }
  [[nodiscard]] ChunkIndex chunk_count() const { return chunk_count_; }
  [[nodiscard]] sim::Duration chunk_duration() const {
    return sim::seconds(config_.chunk_duration_s);
  }
  [[nodiscard]] sim::Time chunk_start_time(ChunkIndex index) const;
  [[nodiscard]] ChunkIndex chunk_at_time(sim::Time t) const;

  // Size of the complete AVC chunk at quality q.
  [[nodiscard]] std::int64_t avc_size_bytes(QualityLevel q, const ChunkKey& key) const;

  // Size of SVC layer `layer` alone (the incremental delta).
  [[nodiscard]] std::int64_t svc_layer_size_bytes(LayerIndex layer,
                                                  const ChunkKey& key) const;

  // Total size of SVC layers 0..q (== avc_size * (1 + overhead)).
  [[nodiscard]] std::int64_t svc_cumulative_size_bytes(QualityLevel q,
                                                       const ChunkKey& key) const;

  // Size of any downloadable object.
  [[nodiscard]] std::int64_t size_bytes(const ChunkAddress& address) const;

  // Fraction of the panorama's bits carried by each tile (sums to 1).
  [[nodiscard]] const std::vector<double>& tile_shares() const { return tile_shares_; }

  // Content complexity multiplier of a chunk cell (mean ~1).
  [[nodiscard]] double complexity(const ChunkKey& key) const;

 private:
  void check_key(const ChunkKey& key) const;

  VideoModelConfig config_;
  std::shared_ptr<const geo::TileGeometry> geometry_;
  ChunkIndex chunk_count_;
  std::vector<double> tile_shares_;          // index = TileId
  std::vector<std::vector<double>> complexity_;  // [tile][chunk]
};

}  // namespace sperke::media
