#include "media/video_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace sperke::media {

VideoModel::VideoModel(VideoModelConfig config) : config_(std::move(config)) {
  if (config_.duration_s <= 0.0) throw std::invalid_argument("VideoModel: duration <= 0");
  if (config_.chunk_duration_s <= 0.0) {
    throw std::invalid_argument("VideoModel: chunk duration <= 0");
  }
  if (config_.svc_overhead < 0.0) throw std::invalid_argument("VideoModel: negative SVC overhead");
  if (config_.complexity_rho < 0.0 || config_.complexity_rho >= 1.0) {
    throw std::invalid_argument("VideoModel: complexity_rho must be in [0,1)");
  }
  if (config_.area_mix < 0.0 || config_.area_mix > 1.0) {
    throw std::invalid_argument("VideoModel: area_mix must be in [0,1]");
  }

  geometry_ = std::make_shared<geo::TileGeometry>(
      geo::make_projection(config_.projection),
      geo::TileGrid(config_.tile_rows, config_.tile_cols));
  chunk_count_ = static_cast<ChunkIndex>(
      std::ceil(config_.duration_s / config_.chunk_duration_s));

  // Tile share of panorama bits: blend of uniform plane area (pixels) and
  // solid angle (how much scene the tile actually covers).
  const auto& omega = geometry_->solid_angle_fractions();
  const double uniform = 1.0 / static_cast<double>(tile_count());
  tile_shares_.reserve(omega.size());
  double total = 0.0;
  for (double w : omega) {
    const double share = (1.0 - config_.area_mix) * uniform + config_.area_mix * w;
    tile_shares_.push_back(share);
    total += share;
  }
  for (double& s : tile_shares_) s /= total;

  // Per-tile AR(1) complexity process in the log domain.
  Rng rng(config_.seed);
  complexity_.resize(static_cast<std::size_t>(tile_count()));
  const double sigma = config_.complexity_sigma;
  const double rho = config_.complexity_rho;
  const double innovation = sigma * std::sqrt(1.0 - rho * rho);
  for (auto& series : complexity_) {
    series.reserve(static_cast<std::size_t>(chunk_count_));
    double log_c = rng.normal(0.0, sigma);
    for (ChunkIndex t = 0; t < chunk_count_; ++t) {
      series.push_back(std::exp(log_c));
      log_c = rho * log_c + rng.normal(0.0, innovation);
    }
  }
}

sim::Time VideoModel::chunk_start_time(ChunkIndex index) const {
  return sim::seconds(config_.chunk_duration_s * index);
}

ChunkIndex VideoModel::chunk_at_time(sim::Time t) const {
  const auto idx = static_cast<ChunkIndex>(sim::to_seconds(t) / config_.chunk_duration_s);
  return std::clamp(idx, ChunkIndex{0}, chunk_count_ - 1);
}

void VideoModel::check_key(const ChunkKey& key) const {
  if (key.tile < 0 || key.tile >= tile_count()) {
    throw std::out_of_range("VideoModel: tile out of range");
  }
  if (key.index < 0 || key.index >= chunk_count_) {
    throw std::out_of_range("VideoModel: chunk index out of range");
  }
}

double VideoModel::complexity(const ChunkKey& key) const {
  check_key(key);
  return complexity_[static_cast<std::size_t>(key.tile)]
                    [static_cast<std::size_t>(key.index)];
}

std::int64_t VideoModel::avc_size_bytes(QualityLevel q, const ChunkKey& key) const {
  check_key(key);
  if (!ladder().valid_level(q)) throw std::out_of_range("VideoModel: bad quality level");
  const double bits = ladder().panorama_kbps(q) * 1000.0 * config_.chunk_duration_s;
  const double tile_bits = bits * tile_shares_[static_cast<std::size_t>(key.tile)] *
                           complexity(key);
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(tile_bits / 8.0));
}

std::int64_t VideoModel::svc_cumulative_size_bytes(QualityLevel q,
                                                   const ChunkKey& key) const {
  const double factor = 1.0 + config_.svc_overhead;
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             static_cast<double>(avc_size_bytes(q, key)) * factor));
}

std::int64_t VideoModel::svc_layer_size_bytes(LayerIndex layer,
                                              const ChunkKey& key) const {
  if (layer == 0) return svc_cumulative_size_bytes(0, key);
  return svc_cumulative_size_bytes(layer, key) -
         svc_cumulative_size_bytes(layer - 1, key);
}

std::int64_t VideoModel::size_bytes(const ChunkAddress& address) const {
  switch (address.encoding) {
    case Encoding::kAvc:
      return avc_size_bytes(address.level, address.key);
    case Encoding::kSvc:
      return svc_layer_size_bytes(address.level, address.key);
  }
  throw std::logic_error("VideoModel: unknown encoding");
}

}  // namespace sperke::media
