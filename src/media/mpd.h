// MPD-style manifest serialization.
//
// Sperke follows the DASH paradigm (§3 / Figure 2), so the content
// description travels as a Media Presentation Description. Because chunk
// sizes are a deterministic function of VideoModelConfig (seeded), the MPD
// carries the full config plus the ladder; a client reconstructs an exact
// replica of the server's VideoModel from it.
//
// The format is a small XML dialect:
//
//   <MPD duration="120" chunkDuration="1" projection="equirectangular"
//        tileRows="4" tileCols="6" svcOverhead="0.1" complexitySigma="0.25"
//        complexityRho="0.7" areaMix="0.5" seed="7">
//     <Representation kbps="1000"/>
//     <Representation kbps="2500"/>
//   </MPD>
#pragma once

#include <string>

#include "media/video_model.h"

namespace sperke::media {

// Serialize a video's configuration as an MPD document.
[[nodiscard]] std::string write_mpd(const VideoModelConfig& config);

// Parse an MPD document back into a config. Throws std::runtime_error on
// malformed documents (unknown root, missing/duplicate attributes, no
// representations, non-numeric values).
[[nodiscard]] VideoModelConfig parse_mpd(const std::string& text);

}  // namespace sperke::media
