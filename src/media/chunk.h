// Chunk addressing, exactly the paper's Figure 2 model: a panoramic video is
// encoded at multiple qualities, each quality is spatially cut into tiles,
// and each tile is temporally cut into chunks. The smallest downloadable
// unit is C(q, l, t): quality level q, tile l, chunk start time t.
//
// With SVC (§3.1.1) the quality axis becomes *layers*: one base layer plus
// enhancement layers, where playing at layer i requires layers 0..i.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "geo/tile_grid.h"

namespace sperke::media {

using QualityLevel = std::int32_t;  // 0 = lowest playable quality
using LayerIndex = std::int32_t;    // 0 = SVC base layer
using ChunkIndex = std::int32_t;    // temporal index: start time = index * chunk_duration

// Spatial-temporal coordinate of a chunk (the "cell" of Figure 2, without
// the quality axis).
struct ChunkKey {
  geo::TileId tile = 0;
  ChunkIndex index = 0;

  friend auto operator<=>(const ChunkKey&, const ChunkKey&) = default;
};

enum class Encoding : std::uint8_t {
  kAvc,  // conventional single-layer encoding: one full bitstream per quality
  kSvc,  // scalable layered encoding: base + enhancement layers
};

// A concrete downloadable object.
//  * Encoding::kAvc  — the complete chunk at quality `level`.
//  * Encoding::kSvc  — the single layer `level` of the chunk (the delta).
struct ChunkAddress {
  ChunkKey key;
  Encoding encoding = Encoding::kAvc;
  std::int32_t level = 0;

  friend auto operator<=>(const ChunkAddress&, const ChunkAddress&) = default;
};

}  // namespace sperke::media

template <>
struct std::hash<sperke::media::ChunkKey> {
  std::size_t operator()(const sperke::media::ChunkKey& k) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.tile)) << 32) |
        static_cast<std::uint32_t>(k.index));
  }
};
