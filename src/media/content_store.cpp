#include "media/content_store.h"

#include <stdexcept>

namespace sperke::media {

ContentStore::ContentStore(std::shared_ptr<const VideoModel> model)
    : model_(std::move(model)) {
  if (!model_) throw std::invalid_argument("ContentStore: null video model");
}

std::int64_t ContentStore::serve(const ChunkAddress& address) {
  const std::int64_t size = model_->size_bytes(address);
  bytes_served_ += size;
  ++requests_served_;
  return size;
}

std::int64_t ContentStore::storage_bytes_tiling(bool with_svc) const {
  std::int64_t total = 0;
  const auto& ladder = model_->ladder();
  for (geo::TileId tile = 0; tile < model_->tile_count(); ++tile) {
    for (ChunkIndex t = 0; t < model_->chunk_count(); ++t) {
      const ChunkKey key{tile, t};
      for (QualityLevel q = 0; q < ladder.levels(); ++q) {
        total += model_->avc_size_bytes(q, key);
        if (with_svc) total += model_->svc_layer_size_bytes(q, key);
      }
    }
  }
  return total;
}

std::int64_t ContentStore::storage_bytes_versioning(int version_count) const {
  if (version_count <= 0) throw std::invalid_argument("versioning: non-positive count");
  // Each version stores the full panorama per quality (high-quality region
  // plus downgraded remainder); approximate each version's size as one full
  // panorama copy across the ladder.
  std::int64_t one_version = 0;
  const auto& ladder = model_->ladder();
  for (geo::TileId tile = 0; tile < model_->tile_count(); ++tile) {
    for (ChunkIndex t = 0; t < model_->chunk_count(); ++t) {
      const ChunkKey key{tile, t};
      for (QualityLevel q = 0; q < ladder.levels(); ++q) {
        one_version += model_->avc_size_bytes(q, key);
      }
    }
  }
  return one_version * version_count;
}

}  // namespace sperke::media
