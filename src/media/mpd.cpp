#include "media/mpd.h"

#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace sperke::media {
namespace {

// --- tiny XML subset -------------------------------------------------------
// Supports: one root element, self-closing children, double-quoted
// attributes, and whitespace. No text nodes, comments, or namespaces.

struct Element {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<Element> children;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Element parse_document() {
    skip_whitespace();
    Element root = parse_element();
    skip_whitespace();
    if (pos_ != text_.size()) throw std::runtime_error("MPD: trailing content");
    return root;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) throw std::runtime_error("MPD: unexpected end");
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) {
      throw std::runtime_error(std::string("MPD: expected '") + ch + "'");
    }
    ++pos_;
  }

  std::string parse_name() {
    std::string name;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-')) {
      name += text_[pos_++];
    }
    if (name.empty()) throw std::runtime_error("MPD: expected a name");
    return name;
  }

  Element parse_element() {
    expect('<');
    Element element;
    element.name = parse_name();
    // Attributes.
    for (;;) {
      skip_whitespace();
      const char ch = peek();
      if (ch == '/' || ch == '>') break;
      const std::string key = parse_name();
      skip_whitespace();
      expect('=');
      skip_whitespace();
      expect('"');
      std::string value;
      while (peek() != '"') value += text_[pos_++];
      expect('"');
      if (!element.attributes.emplace(key, value).second) {
        throw std::runtime_error("MPD: duplicate attribute " + key);
      }
    }
    if (peek() == '/') {  // self-closing
      ++pos_;
      expect('>');
      return element;
    }
    expect('>');
    // Children until the closing tag.
    for (;;) {
      skip_whitespace();
      if (peek() == '<' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        pos_ += 2;
        const std::string closing = parse_name();
        if (closing != element.name) {
          throw std::runtime_error("MPD: mismatched closing tag " + closing);
        }
        skip_whitespace();
        expect('>');
        return element;
      }
      element.children.push_back(parse_element());
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double require_number(const Element& element, const std::string& key) {
  const auto it = element.attributes.find(key);
  if (it == element.attributes.end()) {
    throw std::runtime_error("MPD: missing attribute " + key);
  }
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("MPD: non-numeric attribute " + key);
  }
}

std::string require_string(const Element& element, const std::string& key) {
  const auto it = element.attributes.find(key);
  if (it == element.attributes.end()) {
    throw std::runtime_error("MPD: missing attribute " + key);
  }
  return it->second;
}

std::string format_number(double value) {
  std::ostringstream os;
  os.precision(12);
  os << value;
  return os.str();
}

}  // namespace

std::string write_mpd(const VideoModelConfig& config) {
  std::ostringstream os;
  os << "<MPD duration=\"" << format_number(config.duration_s)
     << "\" chunkDuration=\"" << format_number(config.chunk_duration_s)
     << "\" projection=\"" << config.projection
     << "\" tileRows=\"" << config.tile_rows
     << "\" tileCols=\"" << config.tile_cols
     << "\" svcOverhead=\"" << format_number(config.svc_overhead)
     << "\" complexitySigma=\"" << format_number(config.complexity_sigma)
     << "\" complexityRho=\"" << format_number(config.complexity_rho)
     << "\" areaMix=\"" << format_number(config.area_mix)
     << "\" seed=\"" << config.seed << "\">\n";
  for (QualityLevel q = 0; q < config.ladder.levels(); ++q) {
    os << "  <Representation kbps=\""
       << format_number(config.ladder.panorama_kbps(q)) << "\"/>\n";
  }
  os << "</MPD>\n";
  return os.str();
}

VideoModelConfig parse_mpd(const std::string& text) {
  const Element root = Parser(text).parse_document();
  if (root.name != "MPD") throw std::runtime_error("MPD: root must be <MPD>");

  std::vector<double> ladder;
  for (const Element& child : root.children) {
    if (child.name != "Representation") {
      throw std::runtime_error("MPD: unexpected element <" + child.name + ">");
    }
    ladder.push_back(require_number(child, "kbps"));
  }
  if (ladder.empty()) throw std::runtime_error("MPD: no representations");

  VideoModelConfig config;
  config.duration_s = require_number(root, "duration");
  config.chunk_duration_s = require_number(root, "chunkDuration");
  config.projection = require_string(root, "projection");
  config.tile_rows = static_cast<int>(require_number(root, "tileRows"));
  config.tile_cols = static_cast<int>(require_number(root, "tileCols"));
  config.svc_overhead = require_number(root, "svcOverhead");
  config.complexity_sigma = require_number(root, "complexitySigma");
  config.complexity_rho = require_number(root, "complexityRho");
  config.area_mix = require_number(root, "areaMix");
  config.seed = static_cast<std::uint64_t>(require_number(root, "seed"));
  config.ladder = QualityLadder(std::move(ladder));
  return config;
}

}  // namespace sperke::media
