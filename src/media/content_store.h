// Server-side content store: holds the encoded representations of one video
// (Figure 2's server-side organization) and serves chunk requests.
//
// Also answers storage-accounting questions, which is how the paper frames
// the tiling-vs-versioning tradeoff (§2): tiling keeps one copy per quality,
// versioning keeps up to 88 FoV-specific copies.
#pragma once

#include <cstdint>
#include <memory>

#include "media/manifest.h"
#include "media/video_model.h"

namespace sperke::media {

class ContentStore {
 public:
  explicit ContentStore(std::shared_ptr<const VideoModel> model);

  [[nodiscard]] Manifest manifest() const { return Manifest(model_); }
  [[nodiscard]] const VideoModel& video() const { return *model_; }

  // Serve a chunk request; returns the object's size in bytes and records
  // served-byte accounting. Throws on addresses outside the catalog.
  std::int64_t serve(const ChunkAddress& address);

  [[nodiscard]] std::int64_t bytes_served() const { return bytes_served_; }
  [[nodiscard]] std::int64_t requests_served() const { return requests_served_; }

  // Total stored bytes for the tiling approach (all qualities, AVC + SVC
  // copies when `with_svc`).
  [[nodiscard]] std::int64_t storage_bytes_tiling(bool with_svc) const;

  // Hypothetical storage for the versioning approach with `version_count`
  // FoV-specific versions of every quality (e.g. 88 for Oculus 360 [46]).
  [[nodiscard]] std::int64_t storage_bytes_versioning(int version_count) const;

 private:
  std::shared_ptr<const VideoModel> model_;
  std::int64_t bytes_served_ = 0;
  std::int64_t requests_served_ = 0;
};

}  // namespace sperke::media
