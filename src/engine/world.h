// Declarative workload description for the sharded session engine.
//
// A WorldSpec says *what* to simulate — video model, head-trace pool, link
// topology, session configs, partitioning — without wiring any of it up.
// The same spec that used to be duplicated imperatively across
// bench_scale_sessions, examples/vod_streaming and the integration test is
// now one struct; engine::Shard materializes a shard's slice of it and
// engine::ShardedEngine runs all slices across threads.
//
// Identity rules (what makes sharding deterministic):
//   * Global session ids are 0..sessions-1. Everything a session is made of
//     derives from its *global* id — its head trace (id % trace_pool), its
//     start time (id * start_stagger), its config (session_for(id)) — never
//     from its position within a shard.
//   * Sessions couple only through shared infrastructure (Hosseini &
//     Swaminathan's divide-and-conquer tiling): consecutive global ids share
//     links in groups of sessions_per_link, and — with the CDN tier enabled
//     (cdn.sessions_per_edge > 0) — consecutive groups share an edge cache.
//     The partition unit is whatever sessions couple through: the link
//     group without a CDN tier (group g -> shard g % shards), the whole
//     edge with one (edge e -> shard e % shards), so a unit's dynamics are
//     identical no matter how many shards (or threads) run.
//   * The shard count is part of the WORLD, not of the runtime: merged
//     metrics depend on `shards` (partial-sum order), while the thread
//     count executing those shards never changes a single byte.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cdn/topology.h"
#include "core/session.h"
#include "hmp/head_trace.h"
#include "hmp/heatmap.h"
#include "media/video_model.h"
#include "net/link.h"
#include "obs/slo.h"
#include "sim/time.h"

namespace sperke::engine {

struct WorldSpec {
  // Content. Every shard builds its own VideoModel from this config: the
  // model is logically immutable, but its TileGeometry carries a lazily
  // filled visibility LUT (a mutable cache), so sharing one instance across
  // threads is not const-safe. Construction is deterministic in the config,
  // so per-shard copies are identical.
  media::VideoModelConfig video;

  // Head traces: a pool of `trace_pool` traces generated once on the
  // calling thread (seed trace_template.seed + k for pool index k) and
  // shared read-only by every shard — HeadTrace is genuinely const.
  // Session i plays trace i % trace_pool.
  hmp::HeadTraceConfig trace_template;
  int trace_pool = 1;

  // Link topology: global sessions [g*sessions_per_link, (g+1)*...) share
  // one access link, built from `link` — or from link_for_group(g) when
  // set, e.g. to give each group a decorrelated bandwidth-trace seed. The
  // hook is called from shard threads and must be thread-safe (pure).
  net::LinkConfig link;
  std::function<net::LinkConfig(int group)> link_for_group;
  int sessions_per_link = 16;
  int transport_max_concurrent = 16;

  // Fault schedule (DESIGN.md §10). When faults_for_group is set, group g's
  // link runs the returned plan verbatim (same thread-safety rule as
  // link_for_group). Otherwise every group runs the template `faults` plan
  // with its seed decorrelated per group (plan.seed + g) — so a chaos world
  // merges byte-identically at any thread count, exactly like the link
  // topology. The template/hook overrides any plan inside `link` /
  // link_for_group(g) only when non-empty.
  net::FaultPlan faults;
  std::function<net::FaultPlan(int group)> faults_for_group;
  // Retry/timeout/failover policy injected into every shard transport.
  core::RecoveryPolicy transport_recovery;

  // Sessions. `session` is the template config; session_for(i), when set,
  // overrides it per global session id (same thread-safety rule as
  // link_for_group). Any telemetry pointer inside is ignored — shards
  // inject their own sink when session_telemetry is on.
  int sessions = 1;
  core::SessionConfig session;
  std::function<core::SessionConfig(int session)> session_for;

  // CDN tier (DESIGN.md §15): when cdn.sessions_per_edge > 0, consecutive
  // link groups covering that many sessions fetch through a shared edge
  // cache with a coalescing origin behind it, and the edge becomes the
  // partition unit (see shard_of_group). Left at its default (disabled),
  // every group fetches over a direct net::LinkSource and the world is
  // byte-identical to the pre-CDN engine.
  cdn::TopologySpec cdn;

  // Cross-user crowd prior shared read-only by every session (may be null).
  // Must be a frozen snapshot: its version() must not change while running.
  // Also feeds CDN cache warming when cdn.warm_tiles_per_chunk > 0.
  const hmp::ViewingHeatmap* crowd = nullptr;

  // Consecutive global sessions start this far apart.
  sim::Duration start_stagger{sim::milliseconds(10)};

  // Each shard runs its simulator until this virtual time.
  sim::Time horizon{sim::seconds(600.0)};

  // Partitioning and reproducibility. Shard k derives its private RNG
  // stream as Rng(seed ^ k).
  int shards = 1;
  std::uint64_t seed = 1;

  // Observability: per-session metrics/trace into the shard's Telemetry,
  // and/or a per-shard SimMonitor watching the shard's event loop.
  bool session_telemetry = false;
  bool monitor = false;

  // Run-scope time series: when positive, each shard samples its registry
  // into an obs::TimeSeriesStore every sample_period of virtual time
  // (intervals land at exact period multiples, so every shard closes the
  // same floor(horizon/period) intervals and the merged series is
  // byte-identical at any thread count).
  sim::Duration sample_period{0};
  // SLOs evaluated on the sampled series after every interval (requires
  // sample_period > 0). Each shard evaluates the full list against its own
  // series; EngineResult carries the shard-id-ordered merged rollup.
  std::vector<obs::SloSpec> slos;
};

// Number of link groups the spec induces.
[[nodiscard]] int group_count(const WorldSpec& spec);

// CDN mapping (enabled tier only): link groups per edge and the edge a
// group belongs to. edge_of_group returns -1 when the tier is disabled —
// the "fetch directly" signal cdn::Topology::add_group understands.
[[nodiscard]] int groups_per_edge(const WorldSpec& spec);
[[nodiscard]] int edge_of_group(const WorldSpec& spec, int group);

// Stable identity mapping: global session -> link group -> shard. The
// partition unit is the link group, or the whole edge when the CDN tier is
// enabled (all of an edge's groups land on one shard, so a cache's
// dynamics never depend on thread placement).
[[nodiscard]] int group_of_session(const WorldSpec& spec, int session);
[[nodiscard]] int shard_of_group(const WorldSpec& spec, int group);

// The fault plan group g's link runs: faults_for_group(g) verbatim when the
// hook is set, else the template `faults` reseeded per group (seed + g),
// else an empty plan (the group's LinkConfig keeps whatever it carries).
[[nodiscard]] net::FaultPlan faults_of_group(const WorldSpec& spec, int group);

// Throws std::invalid_argument on nonsensical specs (no sessions, bad
// group size, shards < 1, empty trace pool).
void validate(const WorldSpec& spec);

// Generate the shared head-trace pool (trace_template with seed + k).
[[nodiscard]] std::vector<hmp::HeadTrace> build_trace_pool(const WorldSpec& spec);

}  // namespace sperke::engine
