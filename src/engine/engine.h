// ShardedEngine: run a WorldSpec's shards across a thread pool and merge
// the results deterministically.
//
// Execution model: the spec fixes S = spec.shards independent shards;
// `threads` only bounds how many run concurrently. Workers pull shard ids
// from an atomic counter, construct each Shard on the worker thread (so
// world building parallelizes too) and run it to the horizon. Because
// shards share nothing mutable and results merge in shard-id order, the
// merged metrics for a given (spec, seed) are byte-identical whether run
// with 1 thread or 16 — the determinism contract engine_test enforces.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/session.h"
#include "engine/world.h"
#include "obs/slo.h"
#include "obs/telemetry.h"
#include "obs/timeseries.h"

namespace sperke::engine {

struct EngineOptions {
  // Worker threads; 0 = std::thread::hardware_concurrency(). Clamped to
  // [1, spec.shards]. Never affects results, only wall time.
  int threads = 1;
};

struct EngineResult {
  // Shard metrics merged via MetricsRegistry::merge_from in shard-id order.
  obs::MetricsRegistry metrics;
  // Shard time series merged in shard-id order (inactive/empty unless
  // spec.sample_period > 0). Shards close identical interval boundaries,
  // so the merged series is byte-identical at any thread count.
  obs::TimeSeriesStore series;
  // Merged SLO rollup, one row per spec.slos entry in spec order: budget
  // burns and breach events sum across shards, breached_at_end ORs.
  std::vector<obs::SloStatus> slos;
  // Each shard's own telemetry (metrics + trace timeline), by shard id.
  // Traces are not merged: a trace is a per-simulator timeline and shards
  // run on separate clocks.
  std::vector<std::unique_ptr<obs::Telemetry>> shard_telemetry;
  // Per-session reports indexed by global session id.
  std::vector<core::SessionReport> reports;
  std::uint64_t events_executed = 0;  // summed over shards
  int completed = 0;                  // sessions finished before the horizon
  int shards = 0;
  int threads_used = 0;
};

class ShardedEngine {
 public:
  // Validates the spec (throws std::invalid_argument on a bad one).
  explicit ShardedEngine(WorldSpec spec);

  [[nodiscard]] const WorldSpec& spec() const { return spec_; }

  // Build and run every shard; blocks until all shards finish. A shard
  // that throws aborts the run: the first error (by shard id) is rethrown
  // after all workers join.
  [[nodiscard]] EngineResult run(const EngineOptions& options = {});

 private:
  WorldSpec spec_;
};

// Convenience: one-shot run of a spec.
[[nodiscard]] EngineResult run_world(WorldSpec spec, EngineOptions options = {});

}  // namespace sperke::engine
