#include "engine/shard.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"

namespace sperke::engine {

Shard::Shard(const WorldSpec& spec, int shard_id,
             std::span<const hmp::HeadTrace> traces)
    : spec_(spec),
      shard_id_(shard_id),
      rng_(spec.seed ^ static_cast<std::uint64_t>(shard_id)),
      telemetry_(std::make_unique<obs::Telemetry>()),
      video_(std::make_shared<media::VideoModel>(spec.video)) {
  // The engine validates the spec before fanning out; a shard constructed
  // outside those bounds would silently own the wrong session slice.
  SPERKE_CHECK(shard_id >= 0 && shard_id < spec.shards,
               "Shard: id ", shard_id, " outside [0, ", spec.shards, ")");
  SPERKE_CHECK(!traces.empty(), "Shard: empty head-trace pool");
  SPERKE_CHECK(spec.sessions_per_link > 0,
               "Shard: sessions_per_link must be positive");
  const int groups = group_count(spec);
  // Pre-count this shard's sessions so one SoA batch holds every session's
  // hot state contiguously (no per-session allocation in the loop below).
  int shard_sessions = 0;
  for (int g = 0; g < groups; ++g) {
    if (shard_of_group(spec, g) != shard_id_) continue;
    const int first = g * spec.sessions_per_link;
    shard_sessions +=
        std::max(0, std::min(first + spec.sessions_per_link, spec.sessions) - first);
  }
  if (shard_sessions > 0) {
    batch_ = std::make_unique<core::SessionBatch>(video_, shard_sessions);
  }
  // The topology owns every link this shard's fetches can touch; with the
  // CDN tier enabled it also builds one warmed edge (cache + backhaul) per
  // edge_of_group cluster, all of whose groups land on this shard.
  topology_ = std::make_unique<cdn::Topology>(
      simulator_, spec.cdn, spec.session_telemetry ? telemetry_.get() : nullptr,
      video_.get(), spec.crowd);
  for (int g = 0; g < groups; ++g) {
    if (shard_of_group(spec, g) != shard_id_) continue;
    net::LinkConfig link_config =
        spec.link_for_group ? spec.link_for_group(g) : spec.link;
    net::FaultPlan faults = faults_of_group(spec, g);
    if (!faults.empty()) link_config.faults = std::move(faults);
    link_has_faults_.push_back(!link_config.faults.empty());
    net::ChunkSource& source =
        topology_->add_group(edge_of_group(spec, g), std::move(link_config));
    core::TransportOptions transport_options;
    transport_options.max_concurrent = spec.transport_max_concurrent;
    transport_options.telemetry =
        spec.session_telemetry ? telemetry_.get() : nullptr;
    transport_options.recovery = spec.transport_recovery;
    transports_.push_back(
        std::make_unique<core::SingleLinkTransport>(source, transport_options));
    core::SingleLinkTransport& transport = *transports_.back();

    const int first = g * spec.sessions_per_link;
    const int last = std::min(first + spec.sessions_per_link, spec.sessions);
    for (int i = first; i < last; ++i) {
      core::SessionConfig config =
          spec.session_for ? spec.session_for(i) : spec.session;
      config.telemetry = spec.session_telemetry ? telemetry_.get() : nullptr;
      sessions_.push_back(std::make_unique<core::StreamingSession>(
          simulator_, video_, transport,
          traces[static_cast<std::size_t>(i) % traces.size()],
          std::move(config), spec.crowd, batch_.get()));
      session_ids_.push_back(i);
    }
  }
  if (spec.monitor) monitor_.emplace(simulator_, *telemetry_);
  if (spec.sample_period > sim::Duration{0}) {
    series_ = obs::TimeSeriesStore(spec.sample_period);
    if (!spec.slos.empty()) {
      slo_eval_.emplace(spec.slos, series_, *telemetry_);
    }
    // Interval boundaries land at exact period multiples; run_until
    // executes events scheduled exactly at the horizon, so every shard
    // closes the same floor(horizon/period) intervals regardless of its
    // session slice — the precondition for a byte-identical merge.
    sampler_.emplace(simulator_, spec.sample_period, [this] {
      series_.sample(telemetry_->metrics());
      if (slo_eval_) slo_eval_->evaluate();
    });
  }

  if constexpr (SPERKE_DCHECK_IS_ON) {
    // session_ids_ ascending is what makes the merged report order (and
    // therefore every merged metric) independent of shard count.
    for (std::size_t s = 1; s < session_ids_.size(); ++s) {
      SPERKE_DCHECK(session_ids_[s - 1] < session_ids_[s],
                    "Shard: session ids not strictly ascending");
    }
  }

  // Starts are staggered by *global* id, so a group's timeline is the same
  // whether it shares a simulator with every other group or runs alone.
  for (std::size_t s = 0; s < sessions_.size(); ++s) {
    core::StreamingSession* session = sessions_[s].get();
    simulator_.schedule_at(spec.start_stagger * session_ids_[s],
                           [session] { session->start(); });
  }
}

void Shard::run() {
  if (ran_) throw std::logic_error("Shard::run: already ran");
  if (telemetry_ == nullptr) {
    throw std::logic_error("Shard::run: telemetry already released");
  }
  ran_ = true;
  simulator_.run_until(spec_.horizon);
  // Fault observability (DESIGN.md §10): each faulted link group's outage
  // exposure, observed once at the horizon. Links are visited in ascending
  // group order, so the merged histogram is deterministic; fault-free
  // worlds register nothing.
  if (spec_.session_telemetry) {
    for (int i = 0; i < topology_->access_link_count(); ++i) {
      if (!link_has_faults_[static_cast<std::size_t>(i)]) continue;
      telemetry_->metrics().histogram("net.outage_s")
          .observe(topology_->access_link(i).outage_seconds());
    }
  }
}

int Shard::completed() const {
  int done = 0;
  for (const auto& session : sessions_) {
    if (session->finished()) ++done;
  }
  return done;
}

}  // namespace sperke::engine
