#include "engine/engine.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <span>
#include <thread>
#include <utility>

#include "engine/shard.h"
#include "util/check.h"

namespace sperke::engine {

ShardedEngine::ShardedEngine(WorldSpec spec) : spec_(std::move(spec)) {
  validate(spec_);
}

EngineResult ShardedEngine::run(const EngineOptions& options) {
  const std::vector<hmp::HeadTrace> traces = build_trace_pool(spec_);
  const int shard_count = spec_.shards;
  int threads = options.threads;
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::clamp(threads, 1, shard_count);

  std::vector<std::unique_ptr<Shard>> shards(
      static_cast<std::size_t>(shard_count));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(shard_count));
  std::atomic<int> next{0};
  const auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= shard_count) return;
      const auto idx = static_cast<std::size_t>(i);
      try {
        shards[idx] = std::make_unique<Shard>(
            spec_, i, std::span<const hmp::HeadTrace>(traces));
        shards[idx]->run();
      } catch (...) {
        errors[idx] = std::current_exception();
      }
    }
  };
  {
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  }  // jthreads join here
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  EngineResult result;
  result.shards = shard_count;
  result.threads_used = threads;
  result.reports.resize(static_cast<std::size_t>(spec_.sessions));
  result.shard_telemetry.reserve(static_cast<std::size_t>(shard_count));
  // Merge preconditions: every shard fills a disjoint, in-range slice of
  // the report vector — exactly once across all shards.
  std::vector<bool> filled;
  if constexpr (SPERKE_DCHECK_IS_ON) {
    filled.assign(static_cast<std::size_t>(spec_.sessions), false);
  }
  for (auto& shard : shards) {
    result.events_executed += shard->events_executed();
    result.completed += shard->completed();
    const std::vector<int>& ids = shard->session_ids();
    for (std::size_t local = 0; local < ids.size(); ++local) {
      const int id = ids[local];
      SPERKE_CHECK(id >= 0 && id < spec_.sessions,
                   "ShardedEngine: shard ", shard->id(),
                   " reports out-of-range session ", id);
      if constexpr (SPERKE_DCHECK_IS_ON) {
        SPERKE_DCHECK(!filled[static_cast<std::size_t>(id)],
                      "ShardedEngine: session ", id,
                      " reported by two shards");
        filled[static_cast<std::size_t>(id)] = true;
      }
      result.reports[static_cast<std::size_t>(id)] =
          shard->report(static_cast<int>(local));
    }
    result.metrics.merge_from(shard->telemetry().metrics());
    result.series.merge_from(shard->series());
    obs::merge_slo_status(result.slos, shard->slo_status());
    result.shard_telemetry.push_back(shard->release_telemetry());
  }
  if constexpr (SPERKE_DCHECK_IS_ON) {
    for (std::size_t i = 0; i < filled.size(); ++i) {
      SPERKE_DCHECK(filled[i], "ShardedEngine: session ", i,
                    " reported by no shard");
    }
  }
  return result;
}

EngineResult run_world(WorldSpec spec, EngineOptions options) {
  ShardedEngine engine(std::move(spec));
  return engine.run(options);
}

}  // namespace sperke::engine
