#include "engine/world.h"

#include <stdexcept>

#include "abr/factory.h"

namespace sperke::engine {

int group_count(const WorldSpec& spec) {
  return (spec.sessions + spec.sessions_per_link - 1) / spec.sessions_per_link;
}

int group_of_session(const WorldSpec& spec, int session) {
  return session / spec.sessions_per_link;
}

int groups_per_edge(const WorldSpec& spec) {
  // validate() guarantees divisibility when the tier is enabled.
  return spec.cdn.sessions_per_edge / spec.sessions_per_link;
}

int edge_of_group(const WorldSpec& spec, int group) {
  if (!spec.cdn.enabled()) return -1;
  return group / groups_per_edge(spec);
}

int shard_of_group(const WorldSpec& spec, int group) {
  // With a CDN tier the edge is the partition unit: every group of an edge
  // must land on one shard, or its cache would be touched from two
  // threads and the hit sequence would depend on scheduling. Without one,
  // the link group partitions exactly as before (byte-identity).
  if (spec.cdn.enabled()) return edge_of_group(spec, group) % spec.shards;
  return group % spec.shards;
}

net::FaultPlan faults_of_group(const WorldSpec& spec, int group) {
  if (spec.faults_for_group) return spec.faults_for_group(group);
  net::FaultPlan plan = spec.faults;
  if (!plan.empty()) {
    // Decorrelate the per-transfer failure stream across groups while
    // keeping it independent of shard/thread placement.
    plan.seed = spec.faults.seed + static_cast<std::uint64_t>(group);
  }
  return plan;
}

void validate(const WorldSpec& spec) {
  if (spec.sessions < 1) {
    throw std::invalid_argument("WorldSpec: sessions < 1");
  }
  if (spec.sessions_per_link < 1) {
    throw std::invalid_argument("WorldSpec: sessions_per_link < 1");
  }
  if (spec.transport_max_concurrent < 1) {
    throw std::invalid_argument("WorldSpec: transport_max_concurrent < 1");
  }
  if (spec.trace_pool < 1) {
    throw std::invalid_argument("WorldSpec: trace_pool < 1");
  }
  if (spec.shards < 1) {
    throw std::invalid_argument("WorldSpec: shards < 1");
  }
  if (spec.horizon <= sim::kTimeZero) {
    throw std::invalid_argument("WorldSpec: horizon <= 0");
  }
  if (spec.sample_period < sim::Duration{0}) {
    throw std::invalid_argument("WorldSpec: sample_period < 0");
  }
  if (!spec.slos.empty() && spec.sample_period <= sim::Duration{0}) {
    throw std::invalid_argument("WorldSpec: slos require sample_period > 0");
  }
  for (const obs::SloSpec& slo : spec.slos) obs::validate_slo(slo);
  net::validate(spec.faults);
  // CDN topology section: every error lists the section's field names
  // (cdn::topology_field_names), mirroring validate_policy_name below.
  cdn::validate(spec.cdn, spec.sessions_per_link, spec.crowd != nullptr);
  // Fail fast on a bad policy name in the template spec; per-session
  // overrides from session_for() are still checked at construction inside
  // the shard (abr::make_policy throws the same error).
  abr::validate_policy_name(spec.session.abr.policy);
}

std::vector<hmp::HeadTrace> build_trace_pool(const WorldSpec& spec) {
  std::vector<hmp::HeadTrace> pool;
  pool.reserve(static_cast<std::size_t>(spec.trace_pool));
  for (int k = 0; k < spec.trace_pool; ++k) {
    hmp::HeadTraceConfig cfg = spec.trace_template;
    cfg.seed = spec.trace_template.seed + static_cast<std::uint64_t>(k);
    pool.push_back(hmp::generate_head_trace(cfg));
  }
  return pool;
}

}  // namespace sperke::engine
