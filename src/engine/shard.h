// One shard of a sharded world: a self-contained, mono-threaded slice.
//
// A Shard owns everything its sessions can touch while running — its own
// sim::Simulator, its own fetch fabric (a cdn::Topology holding the access
// links, and the edge caches + backhauls when the CDN tier is enabled,
// DESIGN.md §15) and transports, its own VideoModel
// (the TileGeometry visibility LUT is a mutable cache, so the model is
// shard-confined rather than shared), its own obs::Telemetry sink and
// SimMonitor, and a private RNG stream derived as spec.seed ^ shard_id.
// The only state reaching across the shard boundary is genuinely const:
// the WorldSpec, the shared head-trace pool, and the optional crowd
// heatmap snapshot. Construction and run() both happen on whichever
// worker thread the engine assigns; nothing here is synchronized because
// nothing here is shared.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "cdn/topology.h"
#include "core/session.h"
#include "core/session_batch.h"
#include "core/transport.h"
#include "engine/world.h"
#include "net/link.h"
#include "obs/sim_monitor.h"
#include "obs/slo.h"
#include "obs/telemetry.h"
#include "obs/timeseries.h"
#include "sim/periodic.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace sperke::engine {

class Shard {
 public:
  // Builds the shard's slice of `spec`: link groups g with
  // shard_of_group(g) == shard_id, and every session belonging to them.
  // `spec` and `traces` must outlive the shard and stay unmodified.
  Shard(const WorldSpec& spec, int shard_id,
        std::span<const hmp::HeadTrace> traces);

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  // Run the shard's simulator to spec.horizon. Call at most once.
  void run();

  [[nodiscard]] int id() const { return shard_id_; }
  [[nodiscard]] int sessions() const { return static_cast<int>(sessions_.size()); }
  [[nodiscard]] int completed() const;
  [[nodiscard]] std::uint64_t events_executed() const {
    return simulator_.events_executed();
  }

  // Global session ids owned by this shard, ascending; parallel to the
  // order reports are returned in.
  [[nodiscard]] const std::vector<int>& session_ids() const { return session_ids_; }
  [[nodiscard]] core::SessionReport report(int local_index) const {
    return sessions_[static_cast<std::size_t>(local_index)]->report();
  }

  [[nodiscard]] const obs::Telemetry& telemetry() const { return *telemetry_; }
  // Hand the shard-local telemetry (metrics + trace) to the caller; the
  // shard must not run afterwards.
  [[nodiscard]] std::unique_ptr<obs::Telemetry> release_telemetry() {
    return std::move(telemetry_);
  }

  // The shard's sampled time series (empty unless spec.sample_period > 0)
  // and per-shard SLO rollup (empty unless spec.slos is non-empty).
  [[nodiscard]] const obs::TimeSeriesStore& series() const { return series_; }
  [[nodiscard]] std::vector<obs::SloStatus> slo_status() const {
    return slo_eval_ ? slo_eval_->status() : std::vector<obs::SloStatus>{};
  }

  // The shard's private entropy stream (spec.seed ^ shard_id), for
  // shard-local stochastic extensions. Unused by the default world build,
  // which is fully deterministic in the spec.
  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  const WorldSpec& spec_;
  int shard_id_;
  Rng rng_;
  sim::Simulator simulator_;
  std::unique_ptr<obs::Telemetry> telemetry_;
  std::shared_ptr<const media::VideoModel> video_;
  // Fetch fabric: owns every link (access + backhaul), edge and ChunkSource
  // the shard's transports consume. Declared before transports_, which hold
  // references into it.
  std::unique_ptr<cdn::Topology> topology_;
  // Which access links carry a non-empty FaultPlan: gates the post-run
  // outage metric so fault-free worlds register nothing (byte-identity).
  std::vector<bool> link_has_faults_;
  std::vector<std::unique_ptr<core::SingleLinkTransport>> transports_;
  // SoA arena for the shard's session hot state (DESIGN.md §13): sized by
  // a pre-count pass, claimed slot by slot as sessions are constructed.
  // Declared before sessions_, which hold spans into its slabs.
  std::unique_ptr<core::SessionBatch> batch_;
  std::vector<std::unique_ptr<core::StreamingSession>> sessions_;
  std::vector<int> session_ids_;  // global ids, ascending
  std::optional<obs::SimMonitor> monitor_;
  // Run-scope time series + SLO evaluation (spec.sample_period > 0). The
  // evaluator holds references to series_ and *telemetry_; the sampler is
  // declared last so it can never fire before they exist.
  obs::TimeSeriesStore series_;
  std::optional<obs::SloEvaluator> slo_eval_;
  std::optional<sim::PeriodicTask> sampler_;
  bool ran_ = false;
};

}  // namespace sperke::engine
