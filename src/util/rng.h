// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component in Sperke takes an explicit seed (or an Rng&),
// never ambient global state, so that benches and property tests replay
// identically across runs and platforms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace sperke {

// A seeded pseudo-random source wrapping std::mt19937_64 with convenience
// distributions. Copyable: copying forks the stream state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Derive a child RNG with a decorrelated seed; use to give each
  // subcomponent an independent stream from one master seed.
  [[nodiscard]] Rng fork() {
    return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL);
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Gaussian with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Exponential with the given mean (NOT rate).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Log-normal such that the *resulting* distribution has roughly the given
  // median and spread sigma (sigma is the stddev of the underlying normal).
  double lognormal(double median, double sigma) {
    return std::lognormal_distribution<double>(std::log(median), sigma)(engine_);
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Sample an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(std::span<const double> weights) {
    if (weights.empty()) throw std::invalid_argument("weighted_index: empty weights");
    std::discrete_distribution<std::size_t> dist(weights.begin(), weights.end());
    return dist(engine_);
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    if (items.empty()) throw std::invalid_argument("pick: empty vector");
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sperke
