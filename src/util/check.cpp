#include "util/check.h"

#include <cstdlib>
#include <iostream>

namespace sperke::detail {

void check_failed_abort(const char* expr, const char* file, int line,
                        const std::string& message) {
  std::cerr << "SPERKE_CHECK failed: " << expr << " at " << file << ":"
            << line;
  if (!message.empty()) std::cerr << ": " << message;
  std::cerr << std::endl;
  std::abort();
}

}  // namespace sperke::detail
