// Minimal CSV writing/reading for exporting bench series and loading traces.
// Handles quoting of cells containing commas, quotes or newlines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sperke {

class CsvWriter {
 public:
  // Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& cells);

  static std::string escape(const std::string& cell);

 private:
  std::ostream& out_;
};

// Parses CSV text into rows of cells. Supports quoted cells with embedded
// commas/quotes/newlines. Throws std::runtime_error on malformed input.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace sperke
