// Compiled invariant checks (DESIGN.md §11).
//
// SPERKE_CHECK(cond, msg...)  — always on, in every build type. For cheap
//   load-bearing invariants whose violation would silently corrupt results:
//   event-time monotonicity, shard-merge preconditions, completion
//   single-fire. A failed CHECK prints expression/file/line plus the
//   optional streamed message and aborts; a wrong number is worse than a
//   dead process.
//
// SPERKE_DCHECK(cond, msg...) — compiled in only under the "check" preset
//   (-DSPERKE_DCHECKS=ON -> SPERKE_ENABLE_DCHECKS). For O(n) or hot-path
//   invariants too expensive to carry in release builds: per-reflow rate
//   conservation, active-index consistency, buffer cell legality. In
//   release builds the condition is *unevaluated* (sizeof of an
//   unevaluated operand), so it cannot perturb codegen, timing, or
//   byte-identical goldens — but it still must compile.
//
// Both forms accept optional stream-style message arguments:
//   SPERKE_CHECK(dt >= 0, "time ran backwards: dt=", dt);
// The message is only materialized on failure, so a passing CHECK costs
// one predictable branch.
#pragma once

#include <sstream>
#include <string>

namespace sperke::detail {

// Prints "CHECK failed: <expr> at <file>:<line>: <msg>" to stderr and
// aborts. Out of line so the cold path stays out of callers' code.
[[noreturn]] void check_failed_abort(const char* expr, const char* file,
                                     int line, const std::string& message);

template <typename... Args>
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  check_failed_abort(expr, file, line, os.str());
}

}  // namespace sperke::detail

#define SPERKE_CHECK(cond, ...)                                      \
  (static_cast<bool>(cond)                                           \
       ? (void)0                                                     \
       : ::sperke::detail::check_failed(#cond, __FILE__, __LINE__,   \
                                        "" __VA_OPT__(, ) __VA_ARGS__))

#if defined(SPERKE_ENABLE_DCHECKS)
#define SPERKE_DCHECK(cond, ...) SPERKE_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
// True in builds where DCHECK bodies run; lets call sites guard O(n)
// verification loops that would be dead code in release.
#define SPERKE_DCHECK_IS_ON 1
#else
// Unevaluated: sizeof's operand never executes, so release codegen is
// untouched, but `cond` still has to name real variables and compile.
#define SPERKE_DCHECK(cond, ...) ((void)sizeof(static_cast<bool>(cond)))
#define SPERKE_DCHECK_IS_ON 0
#endif
