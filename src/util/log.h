// Lightweight leveled logging. Off (Warn) by default so simulations stay
// quiet; examples and debugging sessions can raise the level.
#pragma once

#include <sstream>
#include <string_view>

namespace sperke {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

// Emit a message at the given level (already formatted).
void log_message(LogLevel level, std::string_view msg);

// Stream-concatenating log call: log(LogLevel::Info, "fetched ", n, " chunks").
template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  log_message(level, os.str());
}

#define SPERKE_LOG_TRACE(...) ::sperke::log(::sperke::LogLevel::Trace, __VA_ARGS__)
#define SPERKE_LOG_INFO(...) ::sperke::log(::sperke::LogLevel::Info, __VA_ARGS__)
#define SPERKE_LOG_DEBUG(...) ::sperke::log(::sperke::LogLevel::Debug, __VA_ARGS__)
#define SPERKE_LOG_WARN(...) ::sperke::log(::sperke::LogLevel::Warn, __VA_ARGS__)
#define SPERKE_LOG_ERROR(...) ::sperke::log(::sperke::LogLevel::Error, __VA_ARGS__)

}  // namespace sperke
