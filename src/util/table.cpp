#include "util/table.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace sperke {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace sperke
