#include "util/log.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <string_view>

namespace sperke {
namespace {

// SPERKE_LOG={trace,debug,info,warn,error,off} overrides the default, so any
// binary can be made chatty without a recompile.
LogLevel initial_level() {
  const char* env = std::getenv("SPERKE_LOG");
  if (env == nullptr) return LogLevel::Warn;
  const std::string_view v(env);
  if (v == "trace") return LogLevel::Trace;
  if (v == "debug") return LogLevel::Debug;
  if (v == "info") return LogLevel::Info;
  if (v == "warn") return LogLevel::Warn;
  if (v == "error") return LogLevel::Error;
  if (v == "off") return LogLevel::Off;
  return LogLevel::Warn;
}

std::atomic<LogLevel> g_level{initial_level()};

constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, std::string_view msg) {
  if (level < log_level()) return;
  std::clog << '[' << level_name(level) << "] " << msg << '\n';
}

}  // namespace sperke
