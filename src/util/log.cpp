#include "util/log.h"

#include <atomic>
#include <iostream>

namespace sperke {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, std::string_view msg) {
  if (level < log_level()) return;
  std::clog << '[' << level_name(level) << "] " << msg << '\n';
}

}  // namespace sperke
