#include "util/csv.h"

#include <ostream>
#include <stdexcept>

namespace sperke {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;

  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    cell_started = false;
  };
  auto end_row = [&] {
    end_cell();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += ch;
      }
      continue;
    }
    switch (ch) {
      case '"':
        if (!cell.empty()) throw std::runtime_error("CSV: quote inside unquoted cell");
        in_quotes = true;
        cell_started = true;
        break;
      case ',':
        end_cell();
        cell_started = false;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        cell += ch;
        cell_started = true;
        break;
    }
  }
  if (in_quotes) throw std::runtime_error("CSV: unterminated quoted cell");
  if (cell_started || !cell.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace sperke
