// Aligned plain-text tables: used by bench binaries to print rows in the
// same shape as the paper's tables and figure series.
#pragma once

#include <string>
#include <vector>

namespace sperke {

// Builds a left-aligned text table with a header row and a separator.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Append a row; it must have the same number of cells as the header.
  void add_row(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sperke
