// Angle and interpolation helpers shared across geometry and prediction code.
#pragma once

#include <algorithm>
#include <cmath>
#include <numbers>

namespace sperke {

inline constexpr double kPi = std::numbers::pi;

[[nodiscard]] constexpr double deg_to_rad(double deg) { return deg * kPi / 180.0; }
[[nodiscard]] constexpr double rad_to_deg(double rad) { return rad * 180.0 / kPi; }

// Wrap an angle in degrees to [-180, 180).
[[nodiscard]] inline double wrap_deg180(double deg) {
  double r = std::fmod(deg + 180.0, 360.0);
  if (r < 0.0) r += 360.0;
  return r - 180.0;
}

// Wrap an angle in degrees to [0, 360).
[[nodiscard]] inline double wrap_deg360(double deg) {
  double r = std::fmod(deg, 360.0);
  if (r < 0.0) r += 360.0;
  return r;
}

// Signed shortest angular difference a-b in degrees, result in [-180, 180).
[[nodiscard]] inline double angle_diff_deg(double a, double b) {
  return wrap_deg180(a - b);
}

[[nodiscard]] constexpr double lerp(double a, double b, double t) {
  return a + (b - a) * t;
}

[[nodiscard]] constexpr double clamp01(double x) {
  return std::clamp(x, 0.0, 1.0);
}

}  // namespace sperke
