#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sperke {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double mean_of(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean();
}

double stddev_of(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.stddev();
}

}  // namespace sperke
