// Small statistics helpers used by QoE accounting and bench reporting.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace sperke {

// Incrementally accumulates count/mean/variance/min/max (Welford).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Percentile with linear interpolation; p in [0,100]. Copies and sorts.
[[nodiscard]] double percentile(std::span<const double> values, double p);

[[nodiscard]] double mean_of(std::span<const double> values);
[[nodiscard]] double stddev_of(std::span<const double> values);

}  // namespace sperke
