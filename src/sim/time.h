// Virtual simulation time. All of Sperke runs on a single discrete-event
// clock; time is integral microseconds to keep event ordering exact.
#pragma once

#include <chrono>
#include <cstdint>

namespace sperke::sim {

using Duration = std::chrono::microseconds;
using Time = std::chrono::microseconds;  // time since simulation start

inline constexpr Time kTimeZero{0};

[[nodiscard]] constexpr Duration microseconds(std::int64_t us) { return Duration{us}; }
[[nodiscard]] constexpr Duration milliseconds(std::int64_t ms) { return Duration{ms * 1000}; }

// Fractional seconds -> Duration (rounded to the nearest microsecond).
[[nodiscard]] constexpr Duration seconds(double s) {
  return Duration{static_cast<std::int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5))};
}

[[nodiscard]] constexpr double to_seconds(Duration d) {
  return static_cast<double>(d.count()) / 1e6;
}

[[nodiscard]] constexpr double to_milliseconds(Duration d) {
  return static_cast<double>(d.count()) / 1e3;
}

}  // namespace sperke::sim
