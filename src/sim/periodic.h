// Periodic task helper: re-arms itself on the simulator until stopped.
#pragma once

#include <functional>
#include <memory>

#include "sim/simulator.h"

namespace sperke::sim {

// Runs `fn` every `period` starting at `start` (default: one period from
// now). Stops when stop() is called or when the owner is destroyed.
class PeriodicTask {
 public:
  PeriodicTask(Simulator& simulator, Duration period, std::function<void()> fn);
  PeriodicTask(Simulator& simulator, Time start, Duration period,
               std::function<void()> fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void arm(Time at);

  Simulator& simulator_;
  Duration period_;
  std::function<void()> fn_;
  EventId pending_{};
  bool running_ = true;
  // Guards against the callback firing after destruction.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sperke::sim
