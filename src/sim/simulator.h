// Discrete-event simulation kernel.
//
// Single-threaded and deterministic: events scheduled for the same instant
// fire in scheduling order. Everything in Sperke — network transfers,
// playback deadlines, head-movement sampling, live broadcast pipelines —
// is driven by one Simulator instance.
//
// The pending set is a calendar queue (DESIGN.md §13): power-of-two bucket
// array indexed by (time / width) & mask, each bucket a (time, seq)-sorted
// intrusive list of slab-allocated nodes. schedule and pop are O(1)
// amortized — the queue resizes to keep roughly one event per bucket and
// recomputes the bucket width from the live event spread — and cancel is
// O(bucket occupancy): it hashes straight to the event's bucket and walks
// only that list. The pop rule is the exact (time, seq) minimum, so firing
// order is byte-identical to the former std::map implementation, including
// FIFO ties. Event closures live in EventFn inline storage inside the
// nodes, so steady-state scheduling performs no heap allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_fn.h"
#include "sim/time.h"

namespace sperke::sim {

// Handle for a scheduled event; valid until the event fires or is cancelled.
struct EventId {
  Time at{kTimeZero};
  std::uint64_t seq = 0;

  friend auto operator<=>(const EventId&, const EventId&) = default;
};

class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  // Schedule `fn` to run at absolute time `at` (clamped to now()).
  EventId schedule_at(Time at, EventFn fn);

  // Schedule `fn` to run `delay` from now (negative delays clamp to now()).
  EventId schedule_after(Duration delay, EventFn fn);

  // Cancel a pending event. Returns false if it already fired or was
  // cancelled before. Cost: O(occupancy of the event's bucket) — the id
  // addresses the bucket directly and the sorted list walk stops early.
  bool cancel(EventId id);

  // Run events until the queue empties or `deadline` passes. The clock ends
  // at min(deadline, last event time); with no events it jumps to deadline.
  void run_until(Time deadline);

  // Run until the event queue is empty.
  void run();

  // Drop every pending event (the clock keeps its value).
  void clear();

  [[nodiscard]] std::size_t pending_events() const { return size_; }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct Node {
    Time at{kTimeZero};
    std::uint64_t seq = 0;
    EventFn fn;
    Node* next = nullptr;
  };

  // Strict (time, seq) order — the pop rule and the within-bucket sort.
  static bool precedes(const Node& a, const Node& b) {
    return a.at < b.at || (a.at == b.at && a.seq < b.seq);
  }

  [[nodiscard]] std::size_t bucket_of(Time at) const {
    return static_cast<std::size_t>(at.count() / width_) & mask_;
  }

  Node* alloc_node();
  void release_node(Node* node);
  void insert(Node* node);
  // Locate (without unlinking) the global (time, seq) minimum and advance
  // the calendar cursor to its slot. Requires size_ > 0. Returns the bucket
  // index; the minimum is that bucket's head.
  std::size_t find_min_bucket();
  // Unlink and return the head of `bucket`, maintaining the tail pointer.
  Node* unlink_head(std::size_t bucket);
  // Rebuild with `nbuckets` buckets (clamped to a power-of-two floor) and a
  // bucket width recomputed from the live event spread.
  void resize(std::size_t nbuckets);
  void maybe_shrink();

  Time now_ = kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;

  std::size_t size_ = 0;            // pending events
  std::int64_t width_ = 0;          // bucket width in Time ticks
  std::size_t mask_ = 0;            // nbuckets - 1 (nbuckets is a power of 2)
  std::vector<Node*> buckets_;      // heads, (time, seq)-sorted lists
  std::vector<Node*> tails_;        // per-bucket tails for O(1) append
  std::size_t cursor_ = 0;          // bucket of the current calendar slot
  std::int64_t cursor_upper_ = 0;   // exclusive time bound of that slot

  // Slab storage: nodes are carved from fixed arrays and recycled through a
  // free list, so the queue stops allocating once it reaches steady state.
  std::vector<std::unique_ptr<Node[]>> slabs_;
  Node* free_ = nullptr;
};

}  // namespace sperke::sim
