// Discrete-event simulation kernel.
//
// Single-threaded and deterministic: events scheduled for the same instant
// fire in scheduling order. Everything in Sperke — network transfers,
// playback deadlines, head-movement sampling, live broadcast pipelines —
// is driven by one Simulator instance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "sim/time.h"

namespace sperke::sim {

// Handle for a scheduled event; valid until the event fires or is cancelled.
struct EventId {
  Time at{kTimeZero};
  std::uint64_t seq = 0;

  friend auto operator<=>(const EventId&, const EventId&) = default;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  // Schedule `fn` to run at absolute time `at` (clamped to now()).
  EventId schedule_at(Time at, std::function<void()> fn);

  // Schedule `fn` to run `delay` from now (negative delays clamp to now()).
  EventId schedule_after(Duration delay, std::function<void()> fn);

  // Cancel a pending event. Returns false if it already fired or was
  // cancelled before.
  bool cancel(EventId id);

  // Run events until the queue empties or `deadline` passes. The clock ends
  // at min(deadline, last event time); with no events it jumps to deadline.
  void run_until(Time deadline);

  // Run until the event queue is empty.
  void run();

  // Drop every pending event (the clock keeps its value).
  void clear();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  Time now_ = kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::map<EventId, std::function<void()>> queue_;
};

}  // namespace sperke::sim
