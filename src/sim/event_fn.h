// Move-only callable for simulator events (DESIGN.md §13).
//
// std::function's small-buffer optimisation (16 bytes in libstdc++) is too
// small for the event lambdas in this tree — a transport completion captures
// `this` plus two shared_ptrs plus timing, 56 bytes — so every schedule_at
// paid a heap allocation and every fire a deallocation. EventFn carries 64
// bytes of inline storage, enough for every event closure in the codebase,
// and only falls back to the heap for larger callables. It is move-only:
// events fire exactly once, so copyability buys nothing and would force
// captured state to be copyable.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sperke::sim {

class EventFn {
 public:
  // Sized for the largest event closure in the tree (56 bytes today, see
  // transport retry/timeout lambdas) with a little headroom.
  static constexpr std::size_t kInlineBytes = 64;

  EventFn() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function.
  EventFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function.
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    using D = std::remove_cvref_t<F>;
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      vtable_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      vtable_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_ != nullptr) {
      vtable_->relocate(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) {
        vtable_->relocate(storage_, other.storage_);
        other.vtable_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return vtable_ != nullptr; }

  friend bool operator==(const EventFn& fn, std::nullptr_t) {
    return fn.vtable_ == nullptr;
  }

  // Precondition: *this holds a callable.
  void operator()() { vtable_->invoke(storage_); }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    // Move-construct into dst from src, then destroy src's value.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr VTable kInlineOps{
      [](void* storage) { (*static_cast<D*>(storage))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* storage) noexcept { static_cast<D*>(storage)->~D(); }};

  template <typename D>
  static constexpr VTable kHeapOps{
      [](void* storage) { (**static_cast<D**>(storage))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* storage) noexcept { delete *static_cast<D**>(storage); }};

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const VTable* vtable_ = nullptr;
};

}  // namespace sperke::sim
