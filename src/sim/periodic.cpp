#include "sim/periodic.h"

#include <stdexcept>

namespace sperke::sim {

PeriodicTask::PeriodicTask(Simulator& simulator, Duration period,
                           std::function<void()> fn)
    : PeriodicTask(simulator, simulator.now() + period, period, std::move(fn)) {}

PeriodicTask::PeriodicTask(Simulator& simulator, Time start, Duration period,
                           std::function<void()> fn)
    : simulator_(simulator), period_(period), fn_(std::move(fn)) {
  if (period_ <= Duration{0}) throw std::invalid_argument("PeriodicTask: period must be positive");
  arm(start);
}

PeriodicTask::~PeriodicTask() {
  *alive_ = false;
  stop();
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  simulator_.cancel(pending_);
}

void PeriodicTask::arm(Time at) {
  pending_ = simulator_.schedule_at(at, [this, alive = alive_] {
    if (!*alive || !running_) return;
    fn_();
    if (*alive && running_) arm(simulator_.now() + period_);
  });
}

}  // namespace sperke::sim
