#include "sim/simulator.h"

#include <algorithm>

namespace sperke::sim {

EventId Simulator::schedule_at(Time at, std::function<void()> fn) {
  const EventId id{std::max(at, now_), next_seq_++};
  queue_.emplace(id, std::move(fn));
  return id;
}

EventId Simulator::schedule_after(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + std::max(delay, Duration{0}), std::move(fn));
}

bool Simulator::cancel(EventId id) { return queue_.erase(id) > 0; }

void Simulator::run_until(Time deadline) {
  while (!queue_.empty()) {
    const auto it = queue_.begin();
    if (it->first.at > deadline) break;
    now_ = it->first.at;
    auto fn = std::move(it->second);
    queue_.erase(it);
    ++executed_;
    fn();
  }
  now_ = std::max(now_, deadline);
}

void Simulator::run() {
  while (!queue_.empty()) {
    const auto it = queue_.begin();
    now_ = it->first.at;
    auto fn = std::move(it->second);
    queue_.erase(it);
    ++executed_;
    fn();
  }
}

void Simulator::clear() { queue_.clear(); }

}  // namespace sperke::sim
