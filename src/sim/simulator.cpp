#include "sim/simulator.h"

#include <algorithm>

#include "util/check.h"

namespace sperke::sim {

EventId Simulator::schedule_at(Time at, std::function<void()> fn) {
  // A null event would only be discovered when it fires, far from the
  // scheduling bug that produced it.
  SPERKE_CHECK(fn != nullptr, "Simulator: scheduling a null event");
  const EventId id{std::max(at, now_), next_seq_++};
  queue_.emplace(id, std::move(fn));
  return id;
}

EventId Simulator::schedule_after(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + std::max(delay, Duration{0}), std::move(fn));
}

bool Simulator::cancel(EventId id) { return queue_.erase(id) > 0; }

void Simulator::run_until(Time deadline) {
  while (!queue_.empty()) {
    const auto it = queue_.begin();
    if (it->first.at > deadline) break;
    // Event-time monotonicity: the clock never runs backwards. schedule_at
    // clamps to now(), so a violation here means the queue ordering itself
    // broke — every downstream timestamp would be silently wrong.
    SPERKE_CHECK(it->first.at >= now_,
                 "Simulator: event time precedes now; clock would reverse");
    now_ = it->first.at;
    auto fn = std::move(it->second);
    queue_.erase(it);
    ++executed_;
    fn();
  }
  now_ = std::max(now_, deadline);
}

void Simulator::run() {
  while (!queue_.empty()) {
    const auto it = queue_.begin();
    SPERKE_CHECK(it->first.at >= now_,
                 "Simulator: event time precedes now; clock would reverse");
    now_ = it->first.at;
    auto fn = std::move(it->second);
    queue_.erase(it);
    ++executed_;
    fn();
  }
}

void Simulator::clear() { queue_.clear(); }

}  // namespace sperke::sim
