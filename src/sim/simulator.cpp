#include "sim/simulator.h"

#include <algorithm>

#include "util/check.h"

namespace sperke::sim {

namespace {

constexpr std::size_t kMinBuckets = 16;  // power of two
constexpr std::size_t kSlabNodes = 256;
// Starting width before the first resize has seen any real event spread;
// most Sperke timers are in the millisecond range.
constexpr std::int64_t kDefaultWidth = 1000;

}  // namespace

Simulator::Simulator() { resize(kMinBuckets); }

Simulator::Node* Simulator::alloc_node() {
  if (free_ == nullptr) {
    auto slab = std::make_unique<Node[]>(kSlabNodes);
    for (std::size_t i = 0; i < kSlabNodes; ++i) {
      slab[i].next = free_;
      free_ = &slab[i];
    }
    slabs_.push_back(std::move(slab));
  }
  Node* node = free_;
  free_ = node->next;
  node->next = nullptr;
  return node;
}

void Simulator::release_node(Node* node) {
  node->fn.reset();
  node->next = free_;
  free_ = node;
}

void Simulator::insert(Node* node) {
  // Calendar invariant: the cursor slot start never exceeds any pending
  // event's time. An event scheduled behind the cursor (possible after a
  // peek jumped it to a far-future timer) steps the cursor back to the new
  // event's slot; without this, the lap scan would meet earlier-year events
  // in bucket order rather than time order.
  if (node->at.count() < cursor_upper_ - width_) {
    cursor_ = bucket_of(node->at);
    cursor_upper_ = (node->at.count() / width_ + 1) * width_;
  }
  const std::size_t b = bucket_of(node->at);
  Node* tail = tails_[b];
  if (tail == nullptr) {
    buckets_[b] = tails_[b] = node;
    node->next = nullptr;
    return;
  }
  // Steady state appends: seq grows monotonically and event times trend
  // forward, so the new node usually belongs after the current tail.
  if (precedes(*tail, *node)) {
    tail->next = node;
    node->next = nullptr;
    tails_[b] = node;
    return;
  }
  Node** slot = &buckets_[b];
  while (*slot != nullptr && precedes(**slot, *node)) slot = &(*slot)->next;
  node->next = *slot;
  *slot = node;
}

std::size_t Simulator::find_min_bucket() {
  std::size_t i = cursor_;
  std::int64_t upper = cursor_upper_;
  const std::size_t nbuckets = mask_ + 1;
  for (std::size_t scanned = 0; scanned < nbuckets; ++scanned) {
    const Node* head = buckets_[i];
    if (head != nullptr && head->at.count() < upper) {
      // Within the current calendar year, bucket order is time order and
      // same-time events share a bucket, so this head is the global
      // (time, seq) minimum.
      cursor_ = i;
      cursor_upper_ = upper;
      return i;
    }
    i = (i + 1) & mask_;
    upper += width_;
  }
  // Sparse tail: nothing fires within the next whole year. Direct-search
  // the bucket heads for the minimum and jump the calendar to its slot.
  const Node* best = nullptr;
  std::size_t best_bucket = 0;
  for (std::size_t b = 0; b < nbuckets; ++b) {
    const Node* head = buckets_[b];
    if (head == nullptr) continue;
    if (best == nullptr || precedes(*head, *best)) {
      best = head;
      best_bucket = b;
    }
  }
  SPERKE_CHECK(best != nullptr, "Simulator: find_min on an empty queue");
  cursor_ = best_bucket;
  cursor_upper_ = (best->at.count() / width_ + 1) * width_;
  return best_bucket;
}

Simulator::Node* Simulator::unlink_head(std::size_t bucket) {
  Node* node = buckets_[bucket];
  buckets_[bucket] = node->next;
  if (node->next == nullptr) tails_[bucket] = nullptr;
  --size_;
  return node;
}

void Simulator::resize(std::size_t nbuckets) {
  nbuckets = std::max(nbuckets, kMinBuckets);
  // Collect every pending node into one chain before the arrays move.
  Node* all = nullptr;
  Time lo = Time::max();
  Time hi = Time::min();
  for (Node*& head : buckets_) {
    while (head != nullptr) {
      Node* node = head;
      head = node->next;
      lo = std::min(lo, node->at);
      hi = std::max(hi, node->at);
      node->next = all;
      all = node;
    }
  }
  buckets_.assign(nbuckets, nullptr);
  tails_.assign(nbuckets, nullptr);
  mask_ = nbuckets - 1;
  // Aim for ~one event per occupied bucket: width ≈ spread / size. A zero
  // spread (burst of identical timestamps) degenerates to one bucket, where
  // the tail-append path keeps inserts O(1) anyway.
  width_ = size_ == 0 ? kDefaultWidth
                      : std::max<std::int64_t>(
                            (hi - lo).count() /
                                static_cast<std::int64_t>(size_ + 1),
                            1);
  cursor_ = bucket_of(now_);
  cursor_upper_ = (now_.count() / width_ + 1) * width_;
  std::size_t redistributed = 0;
  while (all != nullptr) {
    Node* node = all;
    all = node->next;
    insert(node);
    ++redistributed;
  }
  SPERKE_CHECK(redistributed == size_,
               "Simulator: resize lost events: ", redistributed, " of ", size_);
#if SPERKE_DCHECK_IS_ON
  // pending_events() must equal the nodes actually reachable from the new
  // bucket array — a miscount here means a future pop fires the wrong event
  // or a cancel silently misses.
  std::size_t reachable = 0;
  for (const Node* head : buckets_) {
    for (const Node* node = head; node != nullptr; node = node->next) {
      ++reachable;
    }
  }
  SPERKE_DCHECK(reachable == size_,
                "Simulator: resize bucket walk found ", reachable,
                " events, size_ says ", size_);
#endif
}

void Simulator::maybe_shrink() {
  if (mask_ + 1 > kMinBuckets && size_ * 2 < mask_ + 1) {
    resize((mask_ + 1) / 2);
  }
}

EventId Simulator::schedule_at(Time at, EventFn fn) {
  // A null event would only be discovered when it fires, far from the
  // scheduling bug that produced it.
  SPERKE_CHECK(fn != nullptr, "Simulator: scheduling a null event");
  const EventId id{std::max(at, now_), next_seq_++};
  Node* node = alloc_node();
  node->at = id.at;
  node->seq = id.seq;
  node->fn = std::move(fn);
  ++size_;
  insert(node);
  if (size_ > 2 * (mask_ + 1)) resize(2 * (mask_ + 1));
  return id;
}

EventId Simulator::schedule_after(Duration delay, EventFn fn) {
  return schedule_at(now_ + std::max(delay, Duration{0}), std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (size_ == 0) return false;
  const std::size_t b = bucket_of(id.at);
  Node* prev = nullptr;
  for (Node* node = buckets_[b]; node != nullptr;
       prev = node, node = node->next) {
    if (node->at == id.at && node->seq == id.seq) {
      if (prev == nullptr) {
        buckets_[b] = node->next;
      } else {
        prev->next = node->next;
      }
      if (tails_[b] == node) tails_[b] = prev;
      release_node(node);
      --size_;
      maybe_shrink();
      return true;
    }
    // Sorted list: once past (at, seq) the id cannot appear further on.
    if (node->at > id.at || (node->at == id.at && node->seq > id.seq)) {
      return false;
    }
  }
  return false;
}

void Simulator::run_until(Time deadline) {
  while (size_ > 0) {
    const std::size_t b = find_min_bucket();
    Node* node = buckets_[b];
    if (node->at > deadline) break;
    // Event-time monotonicity: the clock never runs backwards. schedule_at
    // clamps to now(), so a violation here means the queue ordering itself
    // broke — every downstream timestamp would be silently wrong.
    SPERKE_CHECK(node->at >= now_,
                 "Simulator: event time precedes now; clock would reverse");
    now_ = node->at;
    unlink_head(b);
    EventFn fn = std::move(node->fn);
    release_node(node);
    ++executed_;
    fn();
    maybe_shrink();
  }
  now_ = std::max(now_, deadline);
}

void Simulator::run() {
  while (size_ > 0) {
    const std::size_t b = find_min_bucket();
    Node* node = buckets_[b];
    SPERKE_CHECK(node->at >= now_,
                 "Simulator: event time precedes now; clock would reverse");
    now_ = node->at;
    unlink_head(b);
    EventFn fn = std::move(node->fn);
    release_node(node);
    ++executed_;
    fn();
    maybe_shrink();
  }
}

void Simulator::clear() {
  for (Node*& head : buckets_) {
    while (head != nullptr) {
      Node* node = head;
      head = node->next;
      release_node(node);
    }
  }
  std::fill(tails_.begin(), tails_.end(), nullptr);
  size_ = 0;
  resize(kMinBuckets);
}

}  // namespace sperke::sim
