// Multipath streaming support (§3.3).
//
// A MultipathTransport runs one queue per network path (e.g. WiFi + LTE);
// paths are fully decoupled, so there is no cross-path head-of-line
// blocking by construction (the transport-layer benefit the paper notes).
// The pluggable PathScheduler decides which path serves each request:
//
//   * MinRttScheduler    — content-agnostic splitting: earliest-available
//                          path by queue drain time (the MPTCP baseline);
//   * RoundRobinScheduler— naive alternation;
//   * SinglePathScheduler— pin everything to one path;
//   * ContentAwareScheduler — the paper's proposal: FoV/urgent chunks ride
//                          the best path with reliable delivery; OOS chunks
//                          ride the secondary path *best-effort* — if an
//                          OOS chunk misses its deadline it is dropped
//                          rather than allowed to clog the path.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/transport.h"
#include "mp/priority.h"
#include "net/link.h"
#include "net/throughput_estimator.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"

namespace sperke::mp {

// Live view of one path, offered to the scheduler.
struct PathState {
  const net::Link* link = nullptr;
  double estimated_kbps = 0.0;   // per-path goodput estimate
  std::int64_t queued_bytes = 0; // waiting + in-flight bytes
  int queued_requests = 0;
  // Static quality score: higher is better (bandwidth-, loss-, rtt-aware).
  double quality_score = 0.0;
};

class PathScheduler {
 public:
  virtual ~PathScheduler() = default;
  // Return the index of the path that should carry `request`.
  [[nodiscard]] virtual std::size_t pick(const core::ChunkRequest& request,
                                         const std::vector<PathState>& paths) = 0;
  // Should this request be treated best-effort (droppable at deadline)?
  [[nodiscard]] virtual bool best_effort(const core::ChunkRequest& request) const {
    (void)request;
    return false;
  }
  [[nodiscard]] virtual std::string_view name() const = 0;
};

class MinRttScheduler final : public PathScheduler {
 public:
  [[nodiscard]] std::size_t pick(const core::ChunkRequest& request,
                                 const std::vector<PathState>& paths) override;
  [[nodiscard]] std::string_view name() const override { return "minrtt"; }
};

class RoundRobinScheduler final : public PathScheduler {
 public:
  [[nodiscard]] std::size_t pick(const core::ChunkRequest& request,
                                 const std::vector<PathState>& paths) override;
  [[nodiscard]] std::string_view name() const override { return "round-robin"; }

 private:
  std::size_t next_ = 0;
};

class SinglePathScheduler final : public PathScheduler {
 public:
  explicit SinglePathScheduler(std::size_t path_index) : index_(path_index) {}
  [[nodiscard]] std::size_t pick(const core::ChunkRequest& request,
                                 const std::vector<PathState>& paths) override;
  [[nodiscard]] std::string_view name() const override { return "single-path"; }

 private:
  std::size_t index_;
};

class ContentAwareScheduler final : public PathScheduler {
 public:
  [[nodiscard]] std::size_t pick(const core::ChunkRequest& request,
                                 const std::vector<PathState>& paths) override;
  [[nodiscard]] bool best_effort(const core::ChunkRequest& request) const override;
  [[nodiscard]] std::string_view name() const override { return "content-aware"; }
};

[[nodiscard]] std::unique_ptr<PathScheduler> make_path_scheduler(std::string_view name);

struct MultipathStats {
  std::vector<std::int64_t> bytes_per_path;
  std::vector<int> requests_per_path;
  int dropped_best_effort = 0;
  // Table 1 accounting: requests observed per priority class, indexed by
  // rank() (0..3).
  std::array<int, 4> class_counts{};
  // Failure-recovery accounting (zero unless RecoveryPolicy::enabled).
  int failovers = 0;         // requests moved to a surviving path
  int path_down_events = 0;  // times a path was declared down
  double path_downtime_s = 0.0;  // total down-time across paths (recovered)
};

class MultipathTransport final : public core::ChunkTransport {
 public:
  // Links must outlive the transport; all links must share one simulator.
  // `options.max_concurrent` is the per-path concurrency (default 2 per
  // path, tighter than the single-link default of 4); the optional
  // telemetry sink receives per-path assignment traces and per-class/
  // per-path counters. With options.recovery.enabled the transport detects
  // failed paths (consecutive failures or an outage signal), fails queued
  // and in-flight FoV/urgent work over to the best surviving path, and
  // probes down paths back into service (DESIGN.md §10).
  MultipathTransport(sim::Simulator& simulator, std::vector<net::Link*> links,
                     std::unique_ptr<PathScheduler> scheduler,
                     core::TransportOptions options = {.max_concurrent = 2,
                                                       .telemetry = nullptr,
                                                       .recovery = {}});
  ~MultipathTransport() override;

  void fetch(core::ChunkRequest request) override;
  [[nodiscard]] double estimated_kbps() const override;
  [[nodiscard]] int in_flight() const override;
  [[nodiscard]] std::int64_t bytes_fetched() const override { return bytes_fetched_; }

  [[nodiscard]] const MultipathStats& stats() const { return stats_; }
  [[nodiscard]] const PathScheduler& scheduler() const { return *scheduler_; }
  [[nodiscard]] const core::TransportOptions& options() const { return options_; }
  [[nodiscard]] bool path_down(std::size_t path_index) const {
    return paths_.at(path_index).down;
  }

 private:
  struct Pending {
    core::ChunkRequest request;
    std::uint64_t seq = 0;
    bool best_effort = false;
    int attempts = 0;  // completed (failed) dispatch attempts so far
    sim::Time first_dispatched{sim::kTimeZero};
    bool settled = false;  // guards the timeout event against re-fire
  };
  struct Path {
    net::Link* link = nullptr;
    net::AggregateWindowEstimator estimator;
    std::vector<Pending> queue;
    int active = 0;
    std::int64_t in_flight_bytes = 0;
    obs::Counter* requests_metric = nullptr;  // set iff telemetry attached
    obs::Counter* bytes_metric = nullptr;
    // Path-failure detection state (RecoveryPolicy::enabled only).
    int consecutive_failures = 0;
    bool down = false;
    sim::Time down_since{sim::kTimeZero};
    obs::Counter* down_events_metric = nullptr;
  };

  [[nodiscard]] std::vector<PathState> snapshot() const;
  void pump(std::size_t path_index);
  void finish_without_delivery(core::ChunkRequest& request, sim::Time when,
                               core::FetchOutcome outcome);
  // Declare `path_index` down, fail queued FoV/urgent work over to the best
  // surviving path, and start probing for recovery.
  void mark_down(std::size_t path_index);
  void probe_path(std::size_t path_index);
  // Best up path by quality score, or paths_.size() if every path is down.
  [[nodiscard]] std::size_t best_up_path() const;
  // Requeue a failed request after backoff, rerouting away from down paths.
  void requeue_retry(std::shared_ptr<Pending> flight, std::size_t path_index);

  sim::Simulator& simulator_;
  std::vector<Path> paths_;
  std::unique_ptr<PathScheduler> scheduler_;
  core::TransportOptions options_;
  std::uint64_t next_seq_ = 0;
  int retry_waiting_ = 0;  // retries parked in a backoff wait
  std::int64_t bytes_fetched_ = 0;
  MultipathStats stats_;
  obs::Telemetry* telemetry_ = nullptr;
  // Table 1 class counters, indexed by rank(); mirror stats_.class_counts.
  std::array<obs::Counter*, 4> class_metrics_{};
  obs::Counter* dropped_metric_ = nullptr;
  // Recovery metrics, bound iff telemetry && recovery.enabled.
  core::RecoveryMetrics recovery_metrics_;
  obs::Counter* failovers_metric_ = nullptr;
  obs::Histogram* path_downtime_metric_ = nullptr;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sperke::mp
