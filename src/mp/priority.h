// The paper's Table 1: spatial priority (FoV > OOS) and temporal priority
// (urgent > regular) of tiled 360° video chunks, as first-class values the
// multipath scheduler dispatches on.
#pragma once

#include <cstdint>
#include <string>

#include "abr/plan.h"
#include "core/transport.h"

namespace sperke::mp {

enum class TemporalClass : std::uint8_t {
  kUrgent,   // very short playback deadline (e.g. after an HMP correction)
  kRegular,  // normal prefetch
};

struct PriorityClass {
  abr::SpatialClass spatial = abr::SpatialClass::kFov;
  TemporalClass temporal = TemporalClass::kRegular;

  friend bool operator==(const PriorityClass&, const PriorityClass&) = default;
};

[[nodiscard]] PriorityClass classify(const core::ChunkRequest& request);

// Dispatch rank, 0 = most important: urgent-FoV, urgent-OOS, FoV, OOS.
[[nodiscard]] int rank(const PriorityClass& priority);

[[nodiscard]] std::string to_string(const PriorityClass& priority);

}  // namespace sperke::mp
