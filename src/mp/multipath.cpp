#include "mp/multipath.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace sperke::mp {
namespace {

// Static path quality used by the content-aware policy: usable rate
// (capacity tempered by the Mathis cap), discounted by latency.
double quality_of(const net::Link& link) {
  const double rate = std::min(link.capacity_kbps_now(), link.mathis_cap_kbps());
  const double rtt_penalty = 1.0 + sim::to_seconds(link.rtt()) * 5.0;
  return rate / rtt_penalty;
}

}  // namespace

std::size_t MinRttScheduler::pick(const core::ChunkRequest& request,
                                  const std::vector<PathState>& paths) {
  (void)request;  // content-agnostic by definition
  // Earliest-available path: smallest drain time of the queued bytes.
  std::size_t best = 0;
  double best_drain = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const double rate =
        std::max(paths[i].estimated_kbps,
                 std::min(paths[i].link->capacity_kbps_now(),
                          paths[i].link->mathis_cap_kbps()));
    const double drain =
        rate > 0.0
            ? static_cast<double>(paths[i].queued_bytes) * 8.0 / (rate * 1000.0) +
                  sim::to_seconds(paths[i].link->rtt())
            : std::numeric_limits<double>::infinity();
    if (drain < best_drain) {
      best_drain = drain;
      best = i;
    }
  }
  return best;
}

std::size_t RoundRobinScheduler::pick(const core::ChunkRequest& request,
                                      const std::vector<PathState>& paths) {
  (void)request;
  const std::size_t pick = next_ % paths.size();
  ++next_;
  return pick;
}

std::size_t SinglePathScheduler::pick(const core::ChunkRequest& request,
                                      const std::vector<PathState>& paths) {
  (void)request;
  if (index_ >= paths.size()) throw std::out_of_range("SinglePathScheduler: bad index");
  return index_;
}

namespace {

// Earliest-available path by queue drain time (the aggregation choice).
std::size_t earliest_available(const std::vector<PathState>& paths) {
  std::size_t best = 0;
  double best_drain = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const double rate = std::max(paths[i].estimated_kbps, paths[i].quality_score);
    const double drain =
        rate > 0.0
            ? static_cast<double>(paths[i].queued_bytes) * 8.0 / (rate * 1000.0) +
                  sim::to_seconds(paths[i].link->rtt())
            : std::numeric_limits<double>::infinity();
    if (drain < best_drain) {
      best_drain = drain;
      best = i;
    }
  }
  return best;
}

}  // namespace

std::size_t ContentAwareScheduler::pick(const core::ChunkRequest& request,
                                        const std::vector<PathState>& paths) {
  // Strategic assignment (§3.3):
  //  * urgent chunks ride the single best path — lowest delivery risk;
  //  * regular FoV chunks aggregate across all paths (earliest available),
  //    still with reliable delivery;
  //  * OOS prefetch is sacrificed to the worst path, best-effort, so it
  //    can never delay FoV traffic.
  std::size_t best = 0, worst = 0;
  for (std::size_t i = 1; i < paths.size(); ++i) {
    if (paths[i].quality_score > paths[best].quality_score) best = i;
    if (paths[i].quality_score < paths[worst].quality_score) worst = i;
  }
  const PriorityClass priority = classify(request);
  if (priority.temporal == TemporalClass::kUrgent) return best;
  if (priority.spatial == abr::SpatialClass::kFov) {
    return earliest_available(paths);
  }
  return worst;
}

bool ContentAwareScheduler::best_effort(const core::ChunkRequest& request) const {
  // OOS prefetches are delivered best-effort: if they cannot make their
  // deadline they are dropped instead of delaying later chunks (§3.3).
  return request.spatial == abr::SpatialClass::kOos && !request.urgent;
}

std::unique_ptr<PathScheduler> make_path_scheduler(std::string_view name) {
  if (name == "minrtt") return std::make_unique<MinRttScheduler>();
  if (name == "round-robin") return std::make_unique<RoundRobinScheduler>();
  if (name == "content-aware") return std::make_unique<ContentAwareScheduler>();
  throw std::invalid_argument("unknown path scheduler: " + std::string(name));
}

MultipathTransport::MultipathTransport(sim::Simulator& simulator,
                                       std::vector<net::Link*> links,
                                       std::unique_ptr<PathScheduler> scheduler,
                                       core::TransportOptions options)
    : simulator_(simulator),
      scheduler_(std::move(scheduler)),
      options_(std::move(options)),
      telemetry_(options_.telemetry) {
  if (links.empty()) throw std::invalid_argument("MultipathTransport: no links");
  if (!scheduler_) throw std::invalid_argument("MultipathTransport: null scheduler");
  if (options_.max_concurrent < 1) {
    throw std::invalid_argument("MultipathTransport: max_concurrent < 1");
  }
  if (options_.recovery.enabled) {
    if (options_.recovery.max_retries < 0) {
      throw std::invalid_argument("RecoveryPolicy: negative retry budget");
    }
    if (options_.recovery.path_failure_threshold < 1) {
      throw std::invalid_argument("RecoveryPolicy: path_failure_threshold < 1");
    }
  }
  for (net::Link* link : links) {
    if (link == nullptr) throw std::invalid_argument("MultipathTransport: null link");
    Path path;
    path.link = link;
    if (telemetry_ != nullptr) {
      // "mp.pathN.*": a fixed suffix set under a path-indexed prefix, still
      // within the [a-z0-9_.]+ name style sperke_lint enforces.
      const std::string prefix = "mp.path" + std::to_string(paths_.size());
      path.requests_metric = &telemetry_->metrics().counter(prefix + ".requests");  // sperke-lint: allow(metric-name)
      path.bytes_metric = &telemetry_->metrics().counter(prefix + ".bytes");  // sperke-lint: allow(metric-name)
      if (options_.recovery.enabled) {
        path.down_events_metric =
            &telemetry_->metrics().counter(prefix + ".down_events");  // sperke-lint: allow(metric-name)
      }
    }
    paths_.push_back(std::move(path));
  }
  if (telemetry_ != nullptr) {
    for (std::size_t r = 0; r < class_metrics_.size(); ++r) {
      class_metrics_[r] =
          &telemetry_->metrics().counter("mp.class" + std::to_string(r) +
                                         ".requests");
    }
    dropped_metric_ = &telemetry_->metrics().counter("mp.dropped_best_effort");
    // Recovery metrics exist iff recovery is on, so fault-free worlds keep
    // their exact pre-fault metric set.
    if (options_.recovery.enabled) {
      recovery_metrics_.bind(*telemetry_, "mp");
      failovers_metric_ = &telemetry_->metrics().counter("mp.failovers");
      path_downtime_metric_ = &telemetry_->metrics().histogram("mp.path_downtime_s");
    }
  }
  stats_.bytes_per_path.assign(paths_.size(), 0);
  stats_.requests_per_path.assign(paths_.size(), 0);
}

MultipathTransport::~MultipathTransport() { *alive_ = false; }

std::vector<PathState> MultipathTransport::snapshot() const {
  std::vector<PathState> out;
  out.reserve(paths_.size());
  for (const Path& path : paths_) {
    PathState state;
    state.link = path.link;
    state.estimated_kbps = path.estimator.estimate_kbps();
    state.queued_bytes = path.in_flight_bytes;
    for (const Pending& p : path.queue) state.queued_bytes += p.request.bytes;
    state.queued_requests = path.active + static_cast<int>(path.queue.size());
    state.quality_score = quality_of(*path.link);
    out.push_back(state);
  }
  return out;
}

void MultipathTransport::fetch(core::ChunkRequest request) {
  if (request.bytes <= 0) throw std::invalid_argument("fetch: non-positive bytes");
  if (telemetry_ != nullptr && request.request_id == 0) {
    // Sessions assign ids at dispatch; a bare transport assigns here so
    // attempt spans always have a request to nest under.
    request.request_id = telemetry_->next_request_id();
  }
  const PriorityClass priority = classify(request);
  ++stats_.class_counts[static_cast<std::size_t>(rank(priority))];
  std::size_t index = scheduler_->pick(request, snapshot());
  if (index >= paths_.size()) throw std::out_of_range("scheduler picked bad path");
  // Route around a path currently declared down (recovery only; without
  // recovery no path is ever down).
  if (paths_[index].down) {
    const std::size_t up = best_up_path();
    if (up < paths_.size()) index = up;
  }
  ++stats_.requests_per_path[index];
  if (telemetry_ != nullptr) {
    class_metrics_[static_cast<std::size_t>(rank(priority))]->increment();
    paths_[index].requests_metric->increment();
    telemetry_->trace().record(
        {.type = obs::TraceEventType::kPathAssigned,
         .ts = simulator_.now(),
         .tile = request.id.tile,
         .chunk = request.id.chunk,
         .quality = request.id.level(),
         .path = static_cast<std::int32_t>(index),
         .bytes = request.bytes,
         .urgent = request.urgent,
         .value = static_cast<double>(rank(priority)),
         .request = request.request_id,
         .parent = request.parent_id});
  }
  Pending pending;
  pending.best_effort = scheduler_->best_effort(request);
  pending.request = std::move(request);
  pending.seq = next_seq_++;
  paths_[index].queue.push_back(std::move(pending));
  pump(index);
}

void MultipathTransport::finish_without_delivery(core::ChunkRequest& request,
                                                 sim::Time when,
                                                 core::FetchOutcome outcome) {
  if (outcome == core::FetchOutcome::kFailed &&
      recovery_metrics_.failed_requests != nullptr) {
    recovery_metrics_.failed_requests->increment();
  }
  if (outcome == core::FetchOutcome::kTimedOut &&
      recovery_metrics_.timeouts != nullptr) {
    recovery_metrics_.timeouts->increment();
  }
  if (request.on_done) request.on_done(when, outcome);
}

std::size_t MultipathTransport::best_up_path() const {
  std::size_t best = paths_.size();
  double best_score = -1.0;
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    if (paths_[i].down) continue;
    const double score = quality_of(*paths_[i].link);
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

void MultipathTransport::mark_down(std::size_t path_index) {
  Path& path = paths_[path_index];
  path.down = true;
  path.down_since = simulator_.now();
  ++stats_.path_down_events;
  if (path.down_events_metric != nullptr) path.down_events_metric->increment();
  // Fail queued FoV/urgent work over to the best surviving path; queued OOS
  // prefetch waits for recovery (abandon OOS first).
  const std::size_t up = best_up_path();
  if (up < paths_.size()) {
    auto& q = path.queue;
    for (auto it = q.begin(); it != q.end();) {
      const bool critical =
          it->request.urgent || it->request.spatial == abr::SpatialClass::kFov;
      if (critical) {
        ++stats_.failovers;
        if (failovers_metric_ != nullptr) failovers_metric_->increment();
        paths_[up].queue.push_back(std::move(*it));
        it = q.erase(it);
      } else {
        ++it;
      }
    }
    pump(up);
  }
  simulator_.schedule_after(options_.recovery.probe_interval,
                            [this, alive = alive_, path_index] {
                              if (!*alive) return;
                              probe_path(path_index);
                            });
}

void MultipathTransport::probe_path(std::size_t path_index) {
  Path& path = paths_[path_index];
  if (!path.down) return;
  if (path.link->in_outage()) {
    // Still dark; probe again later.
    simulator_.schedule_after(options_.recovery.probe_interval,
                              [this, alive = alive_, path_index] {
                                if (!*alive) return;
                                probe_path(path_index);
                              });
    return;
  }
  path.down = false;
  // Probation: one more failure sends the path straight back down.
  path.consecutive_failures =
      std::max(0, options_.recovery.path_failure_threshold - 1);
  const double downtime_s = sim::to_seconds(simulator_.now() - path.down_since);
  stats_.path_downtime_s += downtime_s;
  if (path_downtime_metric_ != nullptr) path_downtime_metric_->observe(downtime_s);
  pump(path_index);
}

void MultipathTransport::requeue_retry(std::shared_ptr<Pending> flight,
                                       std::size_t path_index) {
  std::size_t target = path_index;
  if (paths_[target].down) {
    const std::size_t up = best_up_path();
    if (up < paths_.size()) {
      target = up;
      ++stats_.failovers;
      if (failovers_metric_ != nullptr) failovers_metric_->increment();
    }
  }
  paths_[target].queue.push_back(std::move(*flight));
  pump(target);
}

void MultipathTransport::pump(std::size_t path_index) {
  Path& path = paths_[path_index];
  if (path.down) return;  // queued work waits for probe recovery
  while (path.active < options_.max_concurrent && !path.queue.empty()) {
    // Highest priority first (rank ascending), FIFO within a rank.
    auto best = path.queue.begin();
    for (auto it = std::next(path.queue.begin()); it != path.queue.end(); ++it) {
      const int r_it = rank(classify(it->request));
      const int r_best = rank(classify(best->request));
      if (r_it < r_best || (r_it == r_best && it->seq < best->seq)) best = it;
    }
    Pending pending = std::move(*best);
    path.queue.erase(best);

    // Best-effort requests that already blew their deadline are dropped
    // before wasting path capacity.
    if (pending.best_effort && pending.request.deadline <= simulator_.now()) {
      ++stats_.dropped_best_effort;
      if (telemetry_ != nullptr) dropped_metric_->increment();
      if (pending.request.on_done) {
        pending.request.on_done(simulator_.now(), core::FetchOutcome::kDropped);
      }
      continue;
    }
    // A retry never starts at or past the playback deadline.
    if (pending.attempts > 0 && pending.request.deadline <= simulator_.now()) {
      finish_without_delivery(pending.request, simulator_.now(),
                              core::FetchOutcome::kTimedOut);
      continue;
    }

    ++path.active;
    path.in_flight_bytes += pending.request.bytes;
    const sim::Time started = simulator_.now();
    const std::int64_t bytes = pending.request.bytes;
    // Stream weights mirror the Table 1 ranking within a path.
    const double weight =
        (pending.request.urgent ? 4.0 : 1.0) *
        (pending.request.spatial == abr::SpatialClass::kFov ? 2.0 : 1.0);
    if (pending.attempts == 0) pending.first_dispatched = started;
    pending.settled = false;
    auto holder = std::make_shared<Pending>(std::move(pending));
    if (telemetry_ != nullptr) {
      telemetry_->trace().record(
          {.type = obs::TraceEventType::kFetchAttemptStart,
           .ts = started,
           .tile = holder->request.id.tile,
           .chunk = holder->request.id.chunk,
           .quality = holder->request.id.level(),
           .path = static_cast<std::int32_t>(path_index),
           .bytes = bytes,
           .urgent = holder->request.urgent,
           .value = static_cast<double>(holder->attempts),
           .request = holder->request.request_id,
           .parent = holder->request.parent_id});
    }
    const net::TransferId id = path.link->start_transfer(
        bytes,
        [this, alive = alive_, path_index, holder, started,
         bytes](const net::TransferResult& r) {
          if (!*alive) return;
          holder->settled = true;
          Path& p = paths_[path_index];
          --p.active;
          p.in_flight_bytes -= bytes;
          if (telemetry_ != nullptr) {
            telemetry_->trace().record(
                {.type = obs::TraceEventType::kFetchAttemptEnd,
                 .ts = r.time,
                 .tile = holder->request.id.tile,
                 .chunk = holder->request.id.chunk,
                 .quality = holder->request.id.level(),
                 .path = static_cast<std::int32_t>(path_index),
                 .bytes = r.completed() ? bytes : 0,
                 .urgent = holder->request.urgent,
                 .value = static_cast<double>(holder->attempts),
                 .request = holder->request.request_id,
                 .parent = holder->request.parent_id});
          }
          if (r.completed()) {
            p.consecutive_failures = 0;
            // Aggregate-wise goodput from the start of data flow.
            p.estimator.record(started + p.link->rtt(), r.time, bytes);
            bytes_fetched_ += bytes;
            stats_.bytes_per_path[path_index] += bytes;
            if (p.bytes_metric != nullptr) p.bytes_metric->add(bytes);
            if (holder->attempts > 0 &&
                recovery_metrics_.recovered_requests != nullptr) {
              recovery_metrics_.recovered_requests->increment();
              recovery_metrics_.recovery_latency_ms->observe(
                  sim::to_milliseconds(r.time - holder->first_dispatched));
            }
            if (holder->request.on_done) {
              holder->request.on_done(r.time, core::FetchOutcome::kDelivered);
            }
            pump(path_index);
            return;
          }
          if (r.status == net::TransferStatus::kCancelled) {
            // Only our own deadline timeout cancels transfers.
            finish_without_delivery(holder->request, r.time,
                                    core::FetchOutcome::kTimedOut);
            pump(path_index);
            return;
          }
          // Injected fault (kFailed): feed path-failure detection, then
          // retry under the shared budget/deadline gates.
          ++p.consecutive_failures;
          if (options_.recovery.enabled && !p.down &&
              (p.consecutive_failures >=
                   options_.recovery.path_failure_threshold ||
               p.link->in_outage())) {
            mark_down(path_index);
          }
          const sim::Duration backoff =
              core::retry_backoff(options_.recovery, holder->attempts + 1);
          const bool budget_left = core::retry_allowed(
              options_.recovery, holder->request, holder->attempts);
          const bool deadline_left = r.time + backoff < holder->request.deadline;
          if (budget_left && deadline_left) {
            ++holder->attempts;
            if (recovery_metrics_.retries != nullptr) {
              recovery_metrics_.retries->increment();
            }
            ++retry_waiting_;
            simulator_.schedule_after(
                backoff, [this, alive2 = alive_, holder, path_index] {
                  if (!*alive2) return;
                  --retry_waiting_;
                  requeue_retry(holder, path_index);
                });
          } else {
            finish_without_delivery(holder->request, r.time,
                                    budget_left ? core::FetchOutcome::kTimedOut
                                                : core::FetchOutcome::kFailed);
          }
          pump(path_index);
        },
        weight);
    if (options_.recovery.enabled) {
      // Deadline-derived timeout on the in-flight transfer.
      const sim::Time timeout_at = std::max(
          holder->request.deadline, started + options_.recovery.min_timeout);
      net::Link* link = path.link;
      simulator_.schedule_at(timeout_at, [alive = alive_, holder, link, id] {
        if (!*alive || holder->settled) return;
        link->cancel(id);  // fires the kCancelled completion synchronously
      });
    }
  }
}

double MultipathTransport::estimated_kbps() const {
  // Aggregate: sum of per-path estimates, falling back to link capacity for
  // paths that have not carried traffic yet.
  double total = 0.0;
  for (const Path& path : paths_) {
    const double est = path.estimator.estimate_kbps();
    total += est > 0.0 ? est
                       : std::min(path.link->capacity_kbps_now(),
                                  path.link->mathis_cap_kbps());
  }
  return total;
}

int MultipathTransport::in_flight() const {
  int total = retry_waiting_;
  for (const Path& path : paths_) {
    total += path.active + static_cast<int>(path.queue.size());
  }
  return total;
}

}  // namespace sperke::mp
