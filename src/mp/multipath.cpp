#include "mp/multipath.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace sperke::mp {
namespace {

// Static path quality used by the content-aware policy: usable rate
// (capacity tempered by the Mathis cap), discounted by latency.
double quality_of(const net::Link& link) {
  const double rate = std::min(link.capacity_kbps_now(), link.mathis_cap_kbps());
  const double rtt_penalty = 1.0 + sim::to_seconds(link.rtt()) * 5.0;
  return rate / rtt_penalty;
}

}  // namespace

std::size_t MinRttScheduler::pick(const core::ChunkRequest& request,
                                  const std::vector<PathState>& paths) {
  (void)request;  // content-agnostic by definition
  // Earliest-available path: smallest drain time of the queued bytes.
  std::size_t best = 0;
  double best_drain = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const double rate =
        std::max(paths[i].estimated_kbps,
                 std::min(paths[i].link->capacity_kbps_now(),
                          paths[i].link->mathis_cap_kbps()));
    const double drain =
        rate > 0.0
            ? static_cast<double>(paths[i].queued_bytes) * 8.0 / (rate * 1000.0) +
                  sim::to_seconds(paths[i].link->rtt())
            : std::numeric_limits<double>::infinity();
    if (drain < best_drain) {
      best_drain = drain;
      best = i;
    }
  }
  return best;
}

std::size_t RoundRobinScheduler::pick(const core::ChunkRequest& request,
                                      const std::vector<PathState>& paths) {
  (void)request;
  const std::size_t pick = next_ % paths.size();
  ++next_;
  return pick;
}

std::size_t SinglePathScheduler::pick(const core::ChunkRequest& request,
                                      const std::vector<PathState>& paths) {
  (void)request;
  if (index_ >= paths.size()) throw std::out_of_range("SinglePathScheduler: bad index");
  return index_;
}

namespace {

// Earliest-available path by queue drain time (the aggregation choice).
std::size_t earliest_available(const std::vector<PathState>& paths) {
  std::size_t best = 0;
  double best_drain = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const double rate = std::max(paths[i].estimated_kbps, paths[i].quality_score);
    const double drain =
        rate > 0.0
            ? static_cast<double>(paths[i].queued_bytes) * 8.0 / (rate * 1000.0) +
                  sim::to_seconds(paths[i].link->rtt())
            : std::numeric_limits<double>::infinity();
    if (drain < best_drain) {
      best_drain = drain;
      best = i;
    }
  }
  return best;
}

}  // namespace

std::size_t ContentAwareScheduler::pick(const core::ChunkRequest& request,
                                        const std::vector<PathState>& paths) {
  // Strategic assignment (§3.3):
  //  * urgent chunks ride the single best path — lowest delivery risk;
  //  * regular FoV chunks aggregate across all paths (earliest available),
  //    still with reliable delivery;
  //  * OOS prefetch is sacrificed to the worst path, best-effort, so it
  //    can never delay FoV traffic.
  std::size_t best = 0, worst = 0;
  for (std::size_t i = 1; i < paths.size(); ++i) {
    if (paths[i].quality_score > paths[best].quality_score) best = i;
    if (paths[i].quality_score < paths[worst].quality_score) worst = i;
  }
  const PriorityClass priority = classify(request);
  if (priority.temporal == TemporalClass::kUrgent) return best;
  if (priority.spatial == abr::SpatialClass::kFov) {
    return earliest_available(paths);
  }
  return worst;
}

bool ContentAwareScheduler::best_effort(const core::ChunkRequest& request) const {
  // OOS prefetches are delivered best-effort: if they cannot make their
  // deadline they are dropped instead of delaying later chunks (§3.3).
  return request.spatial == abr::SpatialClass::kOos && !request.urgent;
}

std::unique_ptr<PathScheduler> make_path_scheduler(std::string_view name) {
  if (name == "minrtt") return std::make_unique<MinRttScheduler>();
  if (name == "round-robin") return std::make_unique<RoundRobinScheduler>();
  if (name == "content-aware") return std::make_unique<ContentAwareScheduler>();
  throw std::invalid_argument("unknown path scheduler: " + std::string(name));
}

MultipathTransport::MultipathTransport(sim::Simulator& simulator,
                                       std::vector<net::Link*> links,
                                       std::unique_ptr<PathScheduler> scheduler,
                                       int max_concurrent_per_path,
                                       obs::Telemetry* telemetry)
    : simulator_(simulator),
      scheduler_(std::move(scheduler)),
      max_concurrent_per_path_(max_concurrent_per_path),
      telemetry_(telemetry) {
  if (links.empty()) throw std::invalid_argument("MultipathTransport: no links");
  if (!scheduler_) throw std::invalid_argument("MultipathTransport: null scheduler");
  if (max_concurrent_per_path_ < 1) {
    throw std::invalid_argument("MultipathTransport: max_concurrent < 1");
  }
  for (net::Link* link : links) {
    if (link == nullptr) throw std::invalid_argument("MultipathTransport: null link");
    Path path;
    path.link = link;
    if (telemetry_ != nullptr) {
      const std::string prefix = "mp.path" + std::to_string(paths_.size());
      path.requests_metric = &telemetry_->metrics().counter(prefix + ".requests");
      path.bytes_metric = &telemetry_->metrics().counter(prefix + ".bytes");
    }
    paths_.push_back(std::move(path));
  }
  if (telemetry_ != nullptr) {
    for (std::size_t r = 0; r < class_metrics_.size(); ++r) {
      class_metrics_[r] =
          &telemetry_->metrics().counter("mp.class" + std::to_string(r) +
                                         ".requests");
    }
    dropped_metric_ = &telemetry_->metrics().counter("mp.dropped_best_effort");
  }
  stats_.bytes_per_path.assign(paths_.size(), 0);
  stats_.requests_per_path.assign(paths_.size(), 0);
}

MultipathTransport::~MultipathTransport() { *alive_ = false; }

std::vector<PathState> MultipathTransport::snapshot() const {
  std::vector<PathState> out;
  out.reserve(paths_.size());
  for (const Path& path : paths_) {
    PathState state;
    state.link = path.link;
    state.estimated_kbps = path.estimator.estimate_kbps();
    state.queued_bytes = path.in_flight_bytes;
    for (const Pending& p : path.queue) state.queued_bytes += p.request.bytes;
    state.queued_requests = path.active + static_cast<int>(path.queue.size());
    state.quality_score = quality_of(*path.link);
    out.push_back(state);
  }
  return out;
}

void MultipathTransport::fetch(core::ChunkRequest request) {
  if (request.bytes <= 0) throw std::invalid_argument("fetch: non-positive bytes");
  const PriorityClass priority = classify(request);
  ++stats_.class_counts[static_cast<std::size_t>(rank(priority))];
  const std::size_t index = scheduler_->pick(request, snapshot());
  if (index >= paths_.size()) throw std::out_of_range("scheduler picked bad path");
  ++stats_.requests_per_path[index];
  if (telemetry_ != nullptr) {
    class_metrics_[static_cast<std::size_t>(rank(priority))]->increment();
    paths_[index].requests_metric->increment();
    telemetry_->trace().record(
        {.type = obs::TraceEventType::kPathAssigned,
         .ts = simulator_.now(),
         .tile = request.address.key.tile,
         .chunk = request.address.key.index,
         .quality = request.address.level,
         .path = static_cast<std::int32_t>(index),
         .bytes = request.bytes,
         .urgent = request.urgent,
         .value = static_cast<double>(rank(priority))});
  }
  Pending pending;
  pending.best_effort = scheduler_->best_effort(request);
  pending.request = std::move(request);
  pending.seq = next_seq_++;
  paths_[index].queue.push_back(std::move(pending));
  pump(index);
}

void MultipathTransport::pump(std::size_t path_index) {
  Path& path = paths_[path_index];
  while (path.active < max_concurrent_per_path_ && !path.queue.empty()) {
    // Highest priority first (rank ascending), FIFO within a rank.
    auto best = path.queue.begin();
    for (auto it = std::next(path.queue.begin()); it != path.queue.end(); ++it) {
      const int r_it = rank(classify(it->request));
      const int r_best = rank(classify(best->request));
      if (r_it < r_best || (r_it == r_best && it->seq < best->seq)) best = it;
    }
    Pending pending = std::move(*best);
    path.queue.erase(best);

    // Best-effort requests that already blew their deadline are dropped
    // before wasting path capacity.
    if (pending.best_effort && pending.request.deadline <= simulator_.now()) {
      ++stats_.dropped_best_effort;
      if (telemetry_ != nullptr) dropped_metric_->increment();
      if (pending.request.on_done) pending.request.on_done(simulator_.now(), false);
      continue;
    }

    ++path.active;
    path.in_flight_bytes += pending.request.bytes;
    const sim::Time started = simulator_.now();
    const std::int64_t bytes = pending.request.bytes;
    // Stream weights mirror the Table 1 ranking within a path.
    const double weight =
        (pending.request.urgent ? 4.0 : 1.0) *
        (pending.request.spatial == abr::SpatialClass::kFov ? 2.0 : 1.0);
    auto holder = std::make_shared<Pending>(std::move(pending));
    path.link->start_transfer(
        bytes,
        [this, alive = alive_, path_index, holder, started,
         bytes](sim::Time finished) {
          if (!*alive) return;
          Path& p = paths_[path_index];
          --p.active;
          p.in_flight_bytes -= bytes;
          // Aggregate-wise goodput from the start of data flow.
          p.estimator.record(started + p.link->rtt(), finished, bytes);
          bytes_fetched_ += bytes;
          stats_.bytes_per_path[path_index] += bytes;
          if (p.bytes_metric != nullptr) p.bytes_metric->add(bytes);
          if (holder->request.on_done) holder->request.on_done(finished, true);
          pump(path_index);
        },
        weight);
  }
}

double MultipathTransport::estimated_kbps() const {
  // Aggregate: sum of per-path estimates, falling back to link capacity for
  // paths that have not carried traffic yet.
  double total = 0.0;
  for (const Path& path : paths_) {
    const double est = path.estimator.estimate_kbps();
    total += est > 0.0 ? est
                       : std::min(path.link->capacity_kbps_now(),
                                  path.link->mathis_cap_kbps());
  }
  return total;
}

int MultipathTransport::in_flight() const {
  int total = 0;
  for (const Path& path : paths_) {
    total += path.active + static_cast<int>(path.queue.size());
  }
  return total;
}

}  // namespace sperke::mp
