#include "mp/priority.h"

namespace sperke::mp {

PriorityClass classify(const core::ChunkRequest& request) {
  return PriorityClass{
      .spatial = request.spatial,
      .temporal = request.urgent ? TemporalClass::kUrgent : TemporalClass::kRegular,
  };
}

int rank(const PriorityClass& priority) {
  const int temporal = priority.temporal == TemporalClass::kUrgent ? 0 : 1;
  const int spatial = priority.spatial == abr::SpatialClass::kFov ? 0 : 1;
  return temporal * 2 + spatial;
}

std::string to_string(const PriorityClass& priority) {
  std::string out =
      priority.spatial == abr::SpatialClass::kFov ? "FoV" : "OOS";
  out += '/';
  out += priority.temporal == TemporalClass::kUrgent ? "urgent" : "regular";
  return out;
}

}  // namespace sperke::mp
