// Experiment T1 — reproduces Table 1: the spatial (FoV vs OOS) and temporal
// (urgent vs regular) priority classes of tiled 360° chunks, as *observed*
// in a real adaptive session with imperfect HMP, plus the path/QoS mapping
// the content-aware multipath scheduler (§3.3) applies to each class.
//
// The figures come from the telemetry the pipeline records about itself
// (mp.class<r>.requests, mp.path<i>.*, session.*) rather than bench-side
// counters, so the table and a session's exported metrics always agree.
#include <iostream>
#include <memory>

#include "common.h"
#include "mp/multipath.h"
#include "obs/export.h"
#include "util/table.h"

int main() {
  using namespace sperke;
  using namespace sperke::bench;

  obs::Telemetry telemetry;
  sim::Simulator simulator;
  net::Link wifi(simulator,
                 net::LinkConfig{.name = "wifi",
                                 .bandwidth = net::BandwidthTrace::constant(15'000.0),
                                 .rtt = sim::milliseconds(20),
                                 .loss_rate = 0.0, .faults = {}});
  net::Link lte(simulator,
                net::LinkConfig{.name = "lte",
                                .bandwidth = net::BandwidthTrace::constant(8'000.0),
                                .rtt = sim::milliseconds(60),
                                .loss_rate = 0.005, .faults = {}});
  mp::MultipathTransport transport(
      simulator, {&wifi, &lte}, std::make_unique<mp::ContentAwareScheduler>(),
      {.max_concurrent = 2, .telemetry = &telemetry, .recovery = {}});
  auto video = standard_video();
  const auto trace = standard_trace(17);
  core::SessionConfig config;
  config.telemetry = &telemetry;
  core::StreamingSession session(simulator, video, transport, trace, config);
  session.start();
  simulator.run_until(sim::seconds(kVideoSeconds + 300.0));

  const obs::MetricsRegistry& m = telemetry.metrics();
  auto counter = [&m](const std::string& name) {
    const obs::Counter* c = m.find_counter(name);
    return c != nullptr ? c->value() : 0;
  };

  std::cout << "Table 1: spatial & temporal priorities in 360 videos\n"
            << "(chunk requests observed in one FoV-guided session over\n"
            << " WiFi+LTE with the content-aware multipath scheduler)\n\n";
  TextTable table({"Priority", "Spatial", "Temporal", "Requests",
                   "Path / QoS (content-aware, SS3.3)"});
  const char* mapping[4] = {
      "best path, reliable", "best path, reliable",
      "best path, reliable", "secondary path, best-effort"};
  const char* spatial[4] = {"FoV chunks", "OOS chunks", "FoV chunks", "OOS chunks"};
  const char* temporal[4] = {"urgent", "urgent", "regular", "regular"};
  const char* level[4] = {"High/High", "Low/High", "High/Low", "Low/Low"};
  for (int rank = 0; rank < 4; ++rank) {
    table.add_row({level[rank], spatial[rank], temporal[rank],
                   std::to_string(counter("mp.class" + std::to_string(rank) +
                                          ".requests")),
                   mapping[rank]});
  }
  std::cout << table.str() << '\n';
  std::cout << "Session: " << counter("session.chunks_played")
            << " chunks played, " << counter("session.urgent_fetches")
            << " urgent fetches, " << counter("mp.dropped_best_effort")
            << " best-effort OOS drops\n"
            << "Path split: wifi " << counter("mp.path0.bytes") / 1024
            << " KiB, lte " << counter("mp.path1.bytes") / 1024 << " KiB\n\n";
  std::cout << "Full metrics (CSV):\n";
  obs::write_metrics_csv(std::cout, m);
  return 0;
}
