// Experiment T1 — reproduces Table 1: the spatial (FoV vs OOS) and temporal
// (urgent vs regular) priority classes of tiled 360° chunks, as *observed*
// in a real adaptive session with imperfect HMP, plus the path/QoS mapping
// the content-aware multipath scheduler (§3.3) applies to each class.
#include <iostream>
#include <memory>

#include "common.h"
#include "mp/multipath.h"
#include "util/table.h"

int main() {
  using namespace sperke;
  using namespace sperke::bench;

  sim::Simulator simulator;
  net::Link wifi(simulator,
                 net::LinkConfig{.name = "wifi",
                                 .bandwidth = net::BandwidthTrace::constant(15'000.0),
                                 .rtt = sim::milliseconds(20),
                                 .loss_rate = 0.0});
  net::Link lte(simulator,
                net::LinkConfig{.name = "lte",
                                .bandwidth = net::BandwidthTrace::constant(8'000.0),
                                .rtt = sim::milliseconds(60),
                                .loss_rate = 0.005});
  mp::MultipathTransport transport(simulator, {&wifi, &lte},
                                   std::make_unique<mp::ContentAwareScheduler>());
  auto video = standard_video();
  const auto trace = standard_trace(17);
  core::StreamingSession session(simulator, video, transport, trace,
                                 core::SessionConfig{});
  session.start();
  simulator.run_until(sim::seconds(kVideoSeconds + 300.0));
  const auto report = session.report();
  const auto& stats = transport.stats();

  std::cout << "Table 1: spatial & temporal priorities in 360 videos\n"
            << "(chunk requests observed in one FoV-guided session over\n"
            << " WiFi+LTE with the content-aware multipath scheduler)\n\n";
  TextTable table({"Priority", "Spatial", "Temporal", "Requests",
                   "Path / QoS (content-aware, SS3.3)"});
  const char* mapping[4] = {
      "best path, reliable", "best path, reliable",
      "best path, reliable", "secondary path, best-effort"};
  const char* spatial[4] = {"FoV chunks", "OOS chunks", "FoV chunks", "OOS chunks"};
  const char* temporal[4] = {"urgent", "urgent", "regular", "regular"};
  const char* level[4] = {"High/High", "Low/High", "High/Low", "Low/Low"};
  for (int rank = 0; rank < 4; ++rank) {
    table.add_row({level[rank], spatial[rank], temporal[rank],
                   std::to_string(stats.class_counts[static_cast<std::size_t>(rank)]),
                   mapping[rank]});
  }
  std::cout << table.str() << '\n';
  std::cout << "Session: " << report.qoe.chunks_played << " chunks played, "
            << report.urgent_fetches << " urgent fetches, "
            << stats.dropped_best_effort << " best-effort OOS drops\n"
            << "Path split: wifi " << stats.bytes_per_path[0] / 1024 << " KiB, lte "
            << stats.bytes_per_path[1] / 1024 << " KiB\n";
  return 0;
}
