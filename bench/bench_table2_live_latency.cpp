// Experiment T2 — reproduces Table 2 of the paper: end-to-end latency of
// live 360° broadcast on Facebook / Periscope / YouTube under five network
// conditions (mean of 3 runs, like the paper's 3 experiments per cell).
//
// Paper values (seconds):
//   condition          FB     Periscope  YouTube
//   No limit           9.2    12.4       22.2
//   2 Mbps up          11     22.3       22.3
//   2 Mbps down        9.3    20         22.2
//   0.5 Mbps up        22.2   53.4       31.5
//   0.5 Mbps down      45.4   61.8       38.6
#include <iostream>
#include <vector>

#include "live/broadcast.h"
#include "live/platform.h"
#include "obs/telemetry.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace sperke;
using namespace sperke::live;

double mean_latency(const PlatformProfile& platform, NetworkConditions network) {
  RunningStats stats;
  // Three runs with slightly different measurement windows, mirroring the
  // paper's three repetitions per cell. Each run reports through its own
  // telemetry sink; the figure is read from the live pipeline's own
  // live.e2e_latency_s histogram, the same metric a production exporter
  // would scrape.
  for (int run = 0; run < 3; ++run) {
    obs::Telemetry telemetry;
    LiveBroadcastSession::Config cfg;
    cfg.platform = platform;
    cfg.network = network;
    cfg.measure_from = sim::seconds(40.0 + 5.0 * run);
    cfg.measure_to = sim::seconds(140.0 + 5.0 * run);
    cfg.telemetry = &telemetry;
    (void)LiveBroadcastSession(cfg).run();
    const obs::Histogram* latency =
        telemetry.metrics().find_histogram("live.e2e_latency_s");
    if (latency != nullptr && latency->count() > 0) stats.add(latency->mean());
  }
  return stats.count() > 0 ? stats.mean() : -1.0;
}

}  // namespace

int main() {
  std::cout << "Table 2: E2E latency (seconds) under different network conditions\n"
            << "(paper: FB 9.2/11/9.3/22.2/45.4, Periscope 12.4/22.3/20/53.4/61.8,\n"
            << " YouTube 22.2/22.3/22.2/31.5/38.6)\n\n";
  const std::vector<PlatformProfile> platforms = {
      PlatformProfile::facebook(), PlatformProfile::periscope(),
      PlatformProfile::youtube()};
  TextTable table({"Upload BW", "Download BW", "Facebook", "Periscope", "YouTube"});
  for (const auto& condition : table2_conditions()) {
    std::vector<std::string> row;
    auto fmt = [](double kbps) -> std::string {
      if (kbps <= 0.0) return "No limit";
      return TextTable::num(kbps / 1000.0, 1) + "Mbps";
    };
    row.push_back(fmt(condition.up_kbps));
    row.push_back(fmt(condition.down_kbps));
    for (const auto& platform : platforms) {
      row.push_back(TextTable::num(mean_latency(platform, condition), 1));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.str() << '\n';
  return 0;
}
