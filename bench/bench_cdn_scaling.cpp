// CDN edge-cache scaling sweep (DESIGN.md §15, EXPERIMENTS.md R4): how the
// shared edge behaves as the user population behind it grows, and what
// crowd-driven warming buys in the first minute.
//
// Arm 1 — population sweep: one edge, N ∈ {8, 16, 32} sessions behind it
// (4 per access link). As N grows the sessions' request streams overlap
// more, so the edge hit-rate rises and the per-user origin egress falls —
// the multi-tier claim the cdn/ module exists to demonstrate.
//
// Arm 2 — warming: the same world cold vs pre-warmed from a crowd heatmap
// built from the exact trace pool the sessions play (a best-case prior),
// measured over the first minute only — the window where a cold cache pays
// its compulsory misses.
//
// Everything is a deterministic simulation: hit/miss/egress counts are
// bit-stable across machines, so bench/baselines/cdn_scaling.json is gated
// by tools/bench_compare.py — *hit_rate rows via --higher-better (a drop
// beyond threshold = the cache tier regressed), egress rows in the default
// lower-is-better direction.
//
// Usage: bench_cdn_scaling [--smoke] [--json PATH]
//
//   --smoke      smallest population + the warming pair only
//   --json PATH  google-benchmark-compatible JSON for bench_compare.py
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/world.h"
#include "hmp/head_trace.h"
#include "hmp/heatmap.h"
#include "media/video_model.h"
#include "net/bandwidth_trace.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace {

using namespace sperke;

constexpr double kVideoSeconds = 16.0;
constexpr double kHorizonSeconds = 180.0;

engine::WorldSpec edge_world(int sessions) {
  engine::WorldSpec spec;
  spec.video.duration_s = kVideoSeconds;
  spec.video.chunk_duration_s = 1.0;
  spec.video.tile_rows = 4;
  spec.video.tile_cols = 6;
  spec.video.seed = 7;

  spec.trace_template.duration_s = kHorizonSeconds;
  spec.trace_template.sample_rate_hz = 25.0;
  spec.trace_template.attractors = hmp::default_attractors(kHorizonSeconds, 77);
  spec.trace_template.seed = 33;
  spec.trace_pool = 4;

  spec.link.name = "dl";
  spec.link.bandwidth = net::BandwidthTrace::constant(20'000.0);
  spec.link.rtt = sim::milliseconds(30);
  spec.sessions_per_link = 4;
  spec.transport_max_concurrent = 8;

  spec.sessions = sessions;
  spec.horizon = sim::seconds(kHorizonSeconds);
  spec.shards = 1;  // one edge => one partition unit
  spec.seed = 5;
  spec.session_telemetry = true;

  // One edge for the whole fleet, whatever its size.
  spec.cdn.sessions_per_edge = sessions;
  spec.cdn.backhaul.name = "backhaul";
  spec.cdn.backhaul.bandwidth = net::BandwidthTrace::constant(100'000.0);
  spec.cdn.backhaul.rtt = sim::milliseconds(20);
  spec.cdn.cache_capacity_bytes = 64LL << 20;
  return spec;
}

struct CellResult {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t coalesced = 0;
  std::int64_t warmed = 0;
  double egress_mb = 0.0;
  int completed = 0;

  [[nodiscard]] double hit_rate() const {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

CellResult run_cell(const engine::WorldSpec& spec) {
  engine::EngineResult result = engine::run_world(spec, {.threads = 1});
  CellResult cell;
  const auto counter = [&result](const char* name) {
    const obs::Counter* c = result.metrics.find_counter(name);
    return c == nullptr ? std::int64_t{0} : c->value();
  };
  cell.hits = counter("cdn.edge.hits");
  cell.misses = counter("cdn.edge.misses");
  cell.coalesced = counter("cdn.edge.coalesced");
  cell.warmed = counter("cdn.edge.warmed");
  cell.egress_mb =
      static_cast<double>(counter("cdn.origin.egress_bytes")) / 1e6;
  cell.completed = result.completed;
  return cell;
}

struct JsonRow {
  std::string name;
  double value = 0.0;
};

void write_json(const std::string& path, const std::vector<JsonRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"context\": {\"executable\": \"bench_cdn_scaling\"},\n"
      << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"run_type\": \"iteration\", "
                  "\"real_time\": %.6f, \"time_unit\": \"s\"}%s\n",
                  rows[i].name.c_str(), rows[i].value,
                  i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::vector<JsonRow> rows;

  // Arm 1: population sweep behind one shared edge.
  const std::vector<int> populations = smoke ? std::vector<int>{8}
                                             : std::vector<int>{8, 16, 32};
  std::printf("CDN edge scaling: one edge, 4 sessions per access link\n");
  std::printf("  %5s %8s %8s %9s %7s %10s %12s %6s\n", "users", "hits",
              "misses", "coalesce", "hit %", "egress MB", "MB per user",
              "done");
  for (const int users : populations) {
    const CellResult cell = run_cell(edge_world(users));
    const double mb_per_user = cell.egress_mb / users;
    std::printf("  %5d %8lld %8lld %9lld %6.1f%% %10.1f %12.2f %4d/%d\n",
                users, static_cast<long long>(cell.hits),
                static_cast<long long>(cell.misses),
                static_cast<long long>(cell.coalesced), 100.0 * cell.hit_rate(),
                cell.egress_mb, mb_per_user, cell.completed, users);
    const std::string prefix = "CdnScaling/users=" + std::to_string(users);
    rows.push_back({prefix + "/hit_rate", cell.hit_rate()});
    rows.push_back({prefix + "/origin_mb_per_user", mb_per_user});
  }

  // Arm 2: crowd-warmed vs cold cache over the first minute.
  engine::WorldSpec cold = edge_world(8);
  cold.horizon = sim::seconds(60.0);
  const media::VideoModel video(cold.video);
  hmp::ViewingHeatmap crowd(video.tile_count(), video.chunk_count());
  for (const hmp::HeadTrace& trace : engine::build_trace_pool(cold)) {
    crowd.add_trace(trace, video.geometry(), {100.0, 90.0},
                    video.chunk_duration());
  }
  engine::WorldSpec warm = cold;
  warm.crowd = &crowd;
  warm.cdn.warm_tiles_per_chunk = video.tile_count();
  warm.cdn.warm_level = 0;

  const CellResult cold_cell = run_cell(cold);
  const CellResult warm_cell = run_cell(warm);
  std::printf("\nFirst-minute warming (8 users, top-%d tiles per chunk):\n",
              warm.cdn.warm_tiles_per_chunk);
  std::printf("  cold  hit-rate %5.1f%%  egress %6.1f MB\n",
              100.0 * cold_cell.hit_rate(), cold_cell.egress_mb);
  std::printf("  warm  hit-rate %5.1f%%  egress %6.1f MB  (%lld warmed)\n",
              100.0 * warm_cell.hit_rate(), warm_cell.egress_mb,
              static_cast<long long>(warm_cell.warmed));
  rows.push_back({"CdnScaling/cold/first_minute_hit_rate",
                  cold_cell.hit_rate()});
  rows.push_back({"CdnScaling/warm/first_minute_hit_rate",
                  warm_cell.hit_rate()});

  if (!json_path.empty()) write_json(json_path, rows);
  return 0;
}
