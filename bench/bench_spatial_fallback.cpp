// Experiment C5 — §3.4.2's broadcaster-side proposal: when the uplink
// degrades, *spatial fallback* (shrink the uploaded horizon, keep pixel
// quality) can beat quality fallback (keep 360°, drop bitrate) for events
// whose horizon of interest is narrower than 360° (concerts, sports).
//
// Sweep the uplink capacity and the audience's interest concentration;
// score each upload policy by expected viewer utility (coverage x quality).
#include <iostream>
#include <vector>

#include "live/broadcast.h"
#include "live/upload_vra.h"
#include "util/table.h"

int main() {
  using namespace sperke;
  using namespace sperke::live;

  constexpr double kTargetKbps = 4000.0;  // full-quality full-360 upload
  FixedQualityPolicy fixed(kTargetKbps);
  QualityAdaptivePolicy quality(kTargetKbps, 250.0);
  SpatialFallbackPolicy spatial(kTargetKbps, 120.0);

  std::cout << "C5: spatial fallback vs quality fallback for live upload (SS3.4.2)\n"
            << "(expected shape: spatial fallback wins when interest is\n"
            << " concentrated; plain quality adaptation wins for 360-wide interest)\n\n";

  for (double sigma : {30.0, 60.0, 120.0}) {
    std::cout << "--- audience interest concentration sigma = " << sigma
              << " deg ---\n";
    TextTable table({"Uplink kbps", "fixed (status quo)", "quality-adaptive",
                     "spatial-fallback", "fallback horizon deg"});
    for (double capacity : {4000.0, 3000.0, 2000.0, 1500.0, 1000.0, 500.0}) {
      // The status-quo fixed policy cannot actually deliver above capacity:
      // its effective utility collapses by the fraction of frames dropped.
      const auto d_fixed = fixed.decide(capacity);
      const double deliverable = std::min(1.0, capacity / d_fixed.upload_kbps);
      const double u_fixed =
          expected_viewer_utility(d_fixed, kTargetKbps, sigma) * deliverable;
      const auto d_quality = quality.decide(capacity);
      const auto d_spatial = spatial.decide(capacity);
      table.add_row({TextTable::num(capacity, 0), TextTable::num(u_fixed, 3),
                     TextTable::num(
                         expected_viewer_utility(d_quality, kTargetKbps, sigma), 3),
                     TextTable::num(
                         expected_viewer_utility(d_spatial, kTargetKbps, sigma), 3),
                     TextTable::num(d_spatial.horizon_deg, 0)});
    }
    std::cout << table.str() << '\n';
  }

  // Pipeline-level check: run the actual broadcast pipeline with each
  // policy on a throttled uplink. Adaptation (either kind) eliminates the
  // encoder drops and the queueing latency the fixed pipeline suffers;
  // spatial fallback does so while *holding per-degree quality*.
  std::cout << "Broadcast pipeline with each policy (Facebook profile):\n";
  TextTable pipe({"Uplink kbps", "Policy", "E2E latency s", "Drops",
                  "Uploaded kbps", "Horizon deg"});
  for (double up : {2000.0, 1000.0, 500.0}) {
    for (int which = 0; which < 3; ++which) {
      LiveBroadcastSession::Config cfg;
      cfg.platform = PlatformProfile::facebook();
      cfg.platform.upload_kbps = kTargetKbps;  // a 4 Mbps 360 camera feed
      cfg.network = {.up_kbps = up, .down_kbps = 0.0};
      const UploadPolicy* policy = nullptr;
      const char* label = "fixed (none)";
      if (which == 1) {
        policy = &quality;
        label = "quality-adaptive";
      } else if (which == 2) {
        policy = &spatial;
        label = "spatial-fallback";
      }
      cfg.upload_policy = policy;
      const auto result = LiveBroadcastSession(cfg).run();
      pipe.add_row({TextTable::num(up, 0), label,
                    TextTable::num(result.mean_e2e_latency_s, 1),
                    std::to_string(result.segments_dropped_at_broadcaster),
                    TextTable::num(result.mean_uploaded_kbps, 0),
                    TextTable::num(result.mean_uploaded_horizon_deg, 0)});
    }
  }
  std::cout << pipe.str();
  return 0;
}
