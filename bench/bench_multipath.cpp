// Experiment C4 — §3.3: content-aware multipath vs content-agnostic
// (MPTCP-style) splitting and single-path baselines.
//
// Scenario: WiFi (fast, clean, occasionally collapsing) + LTE (slower,
// lossy, steady). The content-aware scheduler rides FoV/urgent chunks on
// the better path with reliable delivery and sacrifices OOS prefetch on
// the weaker path (best-effort, deadline-dropped) — trading OOS quality
// for FoV protection.
#include <iostream>
#include <memory>
#include <vector>

#include "common.h"
#include "mp/multipath.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace sperke;
using namespace sperke::bench;

struct Outcome {
  double utility = 0.0;
  double score = 0.0;
  double stall_s = 0.0;
  double waste_pct = 0.0;
  double dropped = 0.0;
  bool completed = true;
};

Outcome run_with(const char* scheduler_name, std::uint64_t seed) {
  sim::Simulator simulator;
  // WiFi: nominally 15 Mbps but periodically collapses (coverage holes).
  net::Link wifi(simulator,
                 net::LinkConfig{
                     .name = "wifi",
                     .bandwidth = net::BandwidthTrace::markov_two_state(
                         15'000.0, 2'500.0, 12.0, 4.0, kVideoSeconds + 600.0, seed),
                     .rtt = sim::milliseconds(20),
                     .loss_rate = 0.0, .faults = {}});
  // LTE: steady 7 Mbps, some loss, longer RTT.
  net::Link lte(simulator,
                net::LinkConfig{.name = "lte",
                                .bandwidth = net::BandwidthTrace::constant(7'000.0),
                                .rtt = sim::milliseconds(55),
                                .loss_rate = 0.002, .faults = {}});
  std::unique_ptr<mp::PathScheduler> scheduler;
  if (std::string_view(scheduler_name) == "wifi-only") {
    scheduler = std::make_unique<mp::SinglePathScheduler>(0);
  } else if (std::string_view(scheduler_name) == "lte-only") {
    scheduler = std::make_unique<mp::SinglePathScheduler>(1);
  } else {
    scheduler = mp::make_path_scheduler(scheduler_name);
  }
  mp::MultipathTransport transport(simulator, {&wifi, &lte}, std::move(scheduler));
  auto video = standard_video();
  const auto trace = standard_trace(700 + seed);
  core::StreamingSession session(simulator, video, transport, trace,
                                 core::SessionConfig{});
  session.start();
  simulator.run_until(sim::seconds(kVideoSeconds + 600.0));
  const auto report = session.report();
  Outcome out;
  out.utility = report.qoe.mean_viewport_utility;
  out.score = report.qoe.score;
  out.stall_s = report.qoe.stall_seconds;
  out.waste_pct = 100.0 * static_cast<double>(report.qoe.bytes_wasted) /
                  std::max<std::int64_t>(1, report.qoe.bytes_downloaded);
  out.dropped = transport.stats().dropped_best_effort;
  out.completed = report.completed;
  return out;
}

}  // namespace

int main() {
  std::cout << "C4: content-aware multipath vs MPTCP-style splitting (SS3.3)\n"
            << "(expected shape: content-aware protects FoV chunks -> fewer\n"
            << " stalls at comparable quality; single paths suffer)\n\n";
  TextTable table({"Scheduler", "Viewport utility", "Stall s", "QoE score",
                   "Waste %", "OOS drops", "Completed"});
  for (const char* name :
       {"wifi-only", "lte-only", "round-robin", "minrtt", "content-aware"}) {
    RunningStats utility, score, stall, waste, dropped;
    bool all_completed = true;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const Outcome out = run_with(name, seed);
      utility.add(out.utility);
      score.add(out.score);
      stall.add(out.stall_s);
      waste.add(out.waste_pct);
      dropped.add(out.dropped);
      all_completed = all_completed && out.completed;
    }
    table.add_row({name, TextTable::num(utility.mean(), 3),
                   TextTable::num(stall.mean(), 2), TextTable::num(score.mean(), 1),
                   TextTable::num(waste.mean(), 1), TextTable::num(dropped.mean(), 0),
                   all_completed ? "yes" : "NO"});
  }
  std::cout << table.str() << '\n';
  return 0;
}
