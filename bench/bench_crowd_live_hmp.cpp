// Experiment C6 — §3.4.2's viewer-side proposal: crowd-sourced HMP for
// live 360°. Viewers of the same live stream sit at very different E2E
// latencies (Table 2); the head movements of *low-latency* viewers on
// chunk c are already known by the time a high-latency viewer has to
// prefetch c. The higher the viewer's latency, the more crowd data is
// usable — exactly the population that needs FoV-guided streaming most.
//
// Method: 16 low-latency viewers (3..12 s) report displayed tiles into a
// time-gated LiveCrowdHmp. A laggard viewer prefetches each chunk 2 s
// before display using motion-only vs motion+crowd probabilities; we
// report tile hit-rate under a 10-of-24-tile budget and the tile budget
// needed to reach 95% hit-rate (a direct bandwidth proxy).
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "common.h"
#include "hmp/accuracy.h"
#include "hmp/fusion.h"
#include "live/crowd.h"
#include "live/tiled_viewer.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace sperke;
using namespace sperke::bench;

constexpr double kPrefetchLeadS = 2.0;
constexpr double kReportDelayS = 0.3;
constexpr int kBudgetTiles = 10;

// Blend motion fusion output with the live crowd snapshot the same way the
// VOD fusion blends its offline heatmap.
std::vector<double> blend(const std::vector<double>& motion,
                          const std::vector<double>& crowd, double horizon_s) {
  const double w = std::exp(-horizon_s / 1.5);
  std::vector<double> out(motion.size());
  double total = 0.0;
  for (std::size_t i = 0; i < motion.size(); ++i) {
    out[i] = w * motion[i] + (1.0 - w) * crowd[i];
    total += out[i];
  }
  for (double& p : out) p /= total;
  return out;
}

struct LaggardResult {
  double hit_rate_motion = 0.0;
  double hit_rate_crowd = 0.0;
  double budget95_motion = 0.0;  // tiles needed for 95% hit-rate
  double budget95_crowd = 0.0;
  double crowd_observations = 0.0;
};

LaggardResult evaluate_laggard(const media::VideoModel& video,
                               const live::LiveCrowdHmp& crowd_map,
                               double latency_s) {
  const auto trace = standard_trace(901);
  hmp::FusionPredictor fusion(video.geometry_ptr(), {100.0, 90.0},
                              std::make_unique<hmp::LinearRegressionPredictor>(),
                              nullptr, {});
  const auto horizon = sim::seconds(kPrefetchLeadS);
  const double chunk_s = sim::to_seconds(video.chunk_duration());

  RunningStats hit_motion, hit_crowd, b95_motion, b95_crowd, observations;
  std::size_t sample_index = 0;
  for (media::ChunkIndex c = 2; c < video.chunk_count(); ++c) {
    // Content time when the prefetch decision is made.
    const sim::Time decision_content = video.chunk_start_time(c) - horizon;
    // Feed the motion predictor all samples up to the decision point.
    while (sample_index < trace.samples().size() &&
           trace.samples()[sample_index].t <= decision_content) {
      fusion.observe(trace.samples()[sample_index]);
      ++sample_index;
    }
    // Wall time of the decision: live edge + viewer latency - lead.
    const sim::Time decision_wall =
        video.chunk_start_time(c) + sim::seconds(latency_s - kPrefetchLeadS);
    const auto motion = fusion.tile_probabilities(horizon, c);
    const auto crowd = crowd_map.probabilities(c, decision_wall);
    const auto blended = blend(motion, crowd, kPrefetchLeadS);

    const auto actual = video.geometry().visible_tiles(
        trace.orientation_at(video.chunk_start_time(c)), {100.0, 90.0});
    hit_motion.add(hmp::tile_hit_rate(motion, actual, kBudgetTiles));
    hit_crowd.add(hmp::tile_hit_rate(blended, actual, kBudgetTiles));
    observations.add(crowd_map.observations(c, decision_wall));

    auto budget_for = [&](const std::vector<double>& probs) {
      for (int budget = 1; budget <= video.tile_count(); ++budget) {
        if (hmp::tile_hit_rate(probs, actual, budget) >= 0.95) return budget;
      }
      return video.tile_count();
    };
    b95_motion.add(budget_for(motion));
    b95_crowd.add(budget_for(blended));
    (void)chunk_s;
  }
  return {hit_motion.mean(), hit_crowd.mean(), b95_motion.mean(),
          b95_crowd.mean(), observations.mean()};
}

}  // namespace

int main() {
  auto video = standard_video();

  // Low-latency viewers populate the live crowd map as they watch.
  live::LiveCrowdHmp crowd_map(video->tile_count(), video->chunk_count());
  const int kLowLatencyViewers = 16;
  for (int v = 0; v < kLowLatencyViewers; ++v) {
    const double latency_s = 3.0 + 9.0 * v / kLowLatencyViewers;
    const auto trace = standard_trace(800 + v);
    for (media::ChunkIndex c = 0; c < video->chunk_count(); ++c) {
      const auto visible = video->geometry().visible_tiles(
          trace.orientation_at(video->chunk_start_time(c)), {100.0, 90.0});
      const sim::Time report_wall = video->chunk_start_time(c) +
                                    sim::seconds(latency_s + kReportDelayS);
      crowd_map.record(c, visible, report_wall);
    }
  }

  std::cout << "C6: crowd-sourced live HMP for high-latency viewers (SS3.4.2)\n"
            << "(expected shape: the more the viewer lags the live edge, the\n"
            << " more crowd data is usable and the bigger the HMP gain)\n\n";
  TextTable table({"Viewer E2E latency s", "Crowd obs usable",
                   "Hit-rate motion", "Hit-rate +crowd",
                   "Tiles for 95% (motion)", "Tiles for 95% (+crowd)"});
  for (double latency_s : {4.0, 8.0, 15.0, 25.0, 45.0}) {
    const auto r = evaluate_laggard(*video, crowd_map, latency_s);
    table.add_row({TextTable::num(latency_s, 0), TextTable::num(r.crowd_observations, 1),
                   TextTable::num(r.hit_rate_motion, 3),
                   TextTable::num(r.hit_rate_crowd, 3),
                   TextTable::num(r.budget95_motion, 1),
                   TextTable::num(r.budget95_crowd, 1)});
  }
  std::cout << table.str() << '\n'
            << "Bandwidth proxy: fewer tiles for the same 95% coverage = direct\n"
            << "byte saving for FoV-guided live delivery.\n\n";

  // End-to-end: a shared live world. Eight low-latency viewers (4..11 s)
  // populate the crowd map *as they watch*; a bandwidth-constrained laggard
  // streams FoV-guided with or without that prior.
  std::cout << "End-to-end tiled live sessions (8 low-latency feeders, laggard\n"
            << "on a 2.2 Mbps link):\n";
  TextTable e2e({"Laggard latency s", "Utility (motion)", "Utility (+crowd)",
                 "Blank% (motion)", "Blank% (+crowd)", "Skips m/c"});
  auto run_world = [&](double laggard_latency_s, bool use_crowd) {
    sim::Simulator simulator;
    auto world_video = standard_video();
    live::LiveCrowdHmp world_crowd(world_video->tile_count(),
                                   world_video->chunk_count());
    std::vector<std::unique_ptr<net::Link>> links;
    std::vector<std::unique_ptr<core::SingleLinkTransport>> transports;
    std::vector<std::unique_ptr<hmp::HeadTrace>> traces;
    std::vector<std::unique_ptr<live::TiledLiveSession>> sessions;
    auto add_viewer = [&](double latency_s, double kbps, std::uint64_t seed,
                          live::LiveCrowdHmp* crowd_ptr) {
      links.push_back(std::make_unique<net::Link>(
          simulator,
          net::LinkConfig{.bandwidth = net::BandwidthTrace::constant(kbps),
                          .rtt = sim::milliseconds(30), .faults = {}}));
      transports.push_back(
          std::make_unique<core::SingleLinkTransport>(*links.back(),
                                                      core::TransportOptions{.max_concurrent = 12, .recovery = {}}));
      traces.push_back(std::make_unique<hmp::HeadTrace>(standard_trace(seed)));
      live::TiledLiveConfig cfg;
      cfg.e2e_target_s = latency_s;
      sessions.push_back(std::make_unique<live::TiledLiveSession>(
          simulator, world_video, *transports.back(), *traces.back(), cfg,
          crowd_ptr));
      sessions.back()->start();
    };
    for (int v = 0; v < 8; ++v) {
      add_viewer(4.0 + v, 30'000.0, 820 + v, &world_crowd);
    }
    add_viewer(laggard_latency_s, 2'200.0, 901,
               use_crowd ? &world_crowd : nullptr);
    simulator.run_until(sim::seconds(kVideoSeconds + 120.0));
    return sessions.back()->report();
  };
  for (double latency_s : {8.0, 15.0, 30.0}) {
    const auto motion = run_world(latency_s, false);
    const auto crowd_run = run_world(latency_s, true);
    e2e.add_row({TextTable::num(latency_s, 0),
                 TextTable::num(motion.qoe.mean_viewport_utility, 3),
                 TextTable::num(crowd_run.qoe.mean_viewport_utility, 3),
                 TextTable::num(100.0 * motion.mean_blank_fraction, 1),
                 TextTable::num(100.0 * crowd_run.mean_blank_fraction, 1),
                 std::to_string(motion.chunks_skipped) + "/" +
                     std::to_string(crowd_run.chunks_skipped)});
  }
  std::cout << e2e.str();
  return 0;
}
