// Experiment C2 — §3.1's core argument (Figure 3 economics): conventional
// AVC encodings cannot upgrade an already-fetched chunk, so under HMP error
// the player either displays low-quality OOS tiles (AVC, no upgrade) or
// re-downloads whole chunks (AVC refetch); SVC upgrades fetch only the
// delta. The hybrid SVC/AVC mode avoids SVC overhead for confident tiles.
//
// Sweep: user head-movement speed (a proxy for HMP error level) x encoding
// mode; report displayed viewport quality, wasted bytes and upgrades.
#include <iostream>
#include <vector>

#include "common.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace sperke;
  using namespace sperke::bench;

  std::cout << "C2: incremental chunk upgrades under HMP error (SS3.1)\n"
            << "(expected shape: SVC/hybrid hold viewport quality with fewer\n"
            << " wasted bytes; AVC-no-upgrade degrades; AVC-refetch wastes)\n\n";

  struct ModeRow {
    const char* label;
    abr::EncodingMode mode;
  };
  const std::vector<ModeRow> modes = {
      {"AVC, no upgrade", abr::EncodingMode::kAvcNoUpgrade},
      {"AVC, refetch", abr::EncodingMode::kAvcRefetch},
      {"SVC delta", abr::EncodingMode::kSvc},
      {"Hybrid SVC/AVC", abr::EncodingMode::kHybrid},
  };
  struct UserRow {
    const char* label;
    hmp::UserProfile profile;
  };
  const std::vector<UserRow> users = {
      {"slow head (elderly)", hmp::UserProfile::elderly()},
      {"medium head (adult)", hmp::UserProfile::adult()},
      {"fast head (teenager)", hmp::UserProfile::teenager()},
  };

  const auto bandwidth = net::BandwidthTrace::constant(18'000.0);

  // Part A: the SVC-overhead axis. SVC pays its bitstream tax on *every*
  // byte but upgrades with cheap deltas; AVC-refetch pays nothing upfront
  // but re-downloads whole chunks. The crossover as the overhead grows is
  // precisely why §3.1.2 proposes the hybrid SVC/AVC scheme.
  std::cout << "A. Viewport utility vs SVC bitstream overhead (adult head)\n";
  TextTable overhead_table({"SVC overhead", "refetch util", "svc util",
                            "hybrid util", "refetch MB", "svc MB", "hybrid MB"});
  for (double overhead : {0.0, 0.1, 0.25}) {
    media::VideoModelConfig vcfg;
    vcfg.duration_s = kVideoSeconds;
    vcfg.svc_overhead = overhead;
    vcfg.seed = 7;
    auto video = std::make_shared<media::VideoModel>(vcfg);
    auto run_mode = [&](abr::EncodingMode mode) {
      core::SessionConfig config;
      config.abr.sperke.mode = mode;
      RunningStats utility, mb;
      for (std::uint64_t seed = 0; seed < 3; ++seed) {
        const auto r = run_vod(bandwidth, config, 300 + seed, nullptr, video);
        utility.add(r.qoe.mean_viewport_utility);
        mb.add(static_cast<double>(r.qoe.bytes_downloaded) / 1e6);
      }
      return std::pair{utility.mean(), mb.mean()};
    };
    const auto refetch = run_mode(abr::EncodingMode::kAvcRefetch);
    const auto svc = run_mode(abr::EncodingMode::kSvc);
    const auto hybrid = run_mode(abr::EncodingMode::kHybrid);
    overhead_table.add_row(
        {TextTable::num(overhead * 100.0, 0) + "%", TextTable::num(refetch.first, 3),
         TextTable::num(svc.first, 3), TextTable::num(hybrid.first, 3),
         TextTable::num(refetch.second, 1), TextTable::num(svc.second, 1),
         TextTable::num(hybrid.second, 1)});
  }
  std::cout << overhead_table.str() << '\n';

  std::cout << "B. Encoding modes across head-movement speed (10% overhead)\n";
  for (const auto& user : users) {
    std::cout << "--- " << user.label << " ---\n";
    TextTable table({"Encoding mode", "Viewport utility", "Stall s", "MB total",
                     "Waste %", "Upgrades", "Late fixes"});
    for (const auto& mode : modes) {
      RunningStats utility, stall, mb, waste, upgrades, late;
      for (std::uint64_t seed = 0; seed < 3; ++seed) {
        core::SessionConfig config;
        config.abr.sperke.mode = mode.mode;
        sim::Simulator simulator;
        net::Link link(simulator, net::LinkConfig{.bandwidth = bandwidth,
                                                  .rtt = sim::milliseconds(30), .faults = {}});
        core::SingleLinkTransport transport(link, {.max_concurrent = 16, .recovery = {}});
        auto video = standard_video();
        const auto trace = standard_trace(300 + seed, user.profile);
        core::StreamingSession session(simulator, video, transport, trace, config);
        session.start();
        simulator.run_until(sim::seconds(kVideoSeconds + 600.0));
        const auto r = session.report();
        utility.add(r.qoe.mean_viewport_utility);
        stall.add(r.qoe.stall_seconds);
        mb.add(static_cast<double>(r.qoe.bytes_downloaded) / 1e6);
        waste.add(100.0 * static_cast<double>(r.qoe.bytes_wasted) /
                  std::max<std::int64_t>(1, r.qoe.bytes_downloaded));
        upgrades.add(r.upgrades);
        late.add(r.late_corrections);
      }
      table.add_row({mode.label, TextTable::num(utility.mean(), 3),
                     TextTable::num(stall.mean(), 2), TextTable::num(mb.mean(), 1),
                     TextTable::num(waste.mean(), 1),
                     TextTable::num(upgrades.mean(), 0),
                     TextTable::num(late.mean(), 0)});
    }
    std::cout << table.str() << '\n';
  }
  return 0;
}
