// Many-session scale bench: N concurrent StreamingSessions multiplexed on
// shared links inside ONE simulator, timed wall-clock. This is the guard
// for the hot-path work in DESIGN.md §8 — per-session costs that look fine
// in isolation (allocation churn, O(all-transfers) reflows, re-derived
// geometry) compound linearly here, so a regression shows up as a drop in
// sessions/sec long before any micro-kernel flags it.
//
// Usage: bench_scale_sessions [N ...]      (default: 100 1000 5000)
//
// Reports, per N: wall seconds, completed sessions, sessions/sec, simulated
// events/sec (wall), and the event-loop pressure sampled by obs::SimMonitor
// (mean + p99 pending-event queue depth).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/session.h"
#include "core/transport.h"
#include "hmp/head_trace.h"
#include "media/video_model.h"
#include "net/link.h"
#include "obs/sim_monitor.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"

namespace {

using namespace sperke;

constexpr double kVideoSeconds = 20.0;
constexpr int kSessionsPerLink = 16;
constexpr int kTracePoolSize = 32;

// Histogram p99 upper bound: the bucket ceiling under which 99% of the
// samples fall (max() when the overflow bucket is hit).
double p99_bound(const obs::Histogram& hist) {
  const auto& counts = hist.bucket_counts();
  const auto& bounds = hist.upper_bounds();
  const auto total = hist.count();
  if (total <= 0) return 0.0;
  const auto target =
      static_cast<std::int64_t>(0.99 * static_cast<double>(total));
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    cumulative += counts[i];
    if (cumulative > target) return bounds[i];
  }
  return hist.max();  // fell into the +inf overflow bucket
}

void run_scale(int n, const std::vector<hmp::HeadTrace>& traces,
               const std::shared_ptr<media::VideoModel>& video) {
  sim::Simulator simulator;

  // Sessions share links in groups, as clients share an access network:
  // the fluid link is where concurrent transfers contend.
  const int links_needed = (n + kSessionsPerLink - 1) / kSessionsPerLink;
  std::vector<std::unique_ptr<net::Link>> links;
  std::vector<std::unique_ptr<core::SingleLinkTransport>> transports;
  links.reserve(static_cast<std::size_t>(links_needed));
  transports.reserve(static_cast<std::size_t>(links_needed));
  for (int i = 0; i < links_needed; ++i) {
    links.push_back(std::make_unique<net::Link>(
        simulator,
        net::LinkConfig{.name = "link",
                        .bandwidth = net::BandwidthTrace::constant(100'000.0),
                        .rtt = sim::milliseconds(30),
                        .loss_rate = 0.0}));
    transports.push_back(std::make_unique<core::SingleLinkTransport>(
        *links.back(), /*max_concurrent=*/16));
  }

  // Sessions run without telemetry (the zero-overhead default); one
  // SimMonitor with its own registry watches the shared event loop.
  std::vector<std::unique_ptr<core::StreamingSession>> sessions;
  sessions.reserve(static_cast<std::size_t>(n));
  core::SessionConfig config;
  for (int i = 0; i < n; ++i) {
    sessions.push_back(std::make_unique<core::StreamingSession>(
        simulator, video, *transports[static_cast<std::size_t>(i / kSessionsPerLink)],
        traces[static_cast<std::size_t>(i % kTracePoolSize)], config));
  }

  obs::Telemetry telemetry;
  obs::SimMonitor monitor(simulator, telemetry);

  // Stagger the joins (10 ms apart) so startup bursts overlap the steady
  // state of earlier sessions instead of landing on one instant.
  for (int i = 0; i < n; ++i) {
    simulator.schedule_at(sim::milliseconds(10 * i),
                          [&sessions, i] { sessions[static_cast<std::size_t>(i)]->start(); });
  }

  const auto wall_start = std::chrono::steady_clock::now();
  simulator.run_until(
      sim::seconds(kVideoSeconds + 600.0 + 0.010 * static_cast<double>(n)));
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();

  int completed = 0;
  for (const auto& session : sessions) {
    if (session->finished()) ++completed;
  }
  const auto& depth_hist =
      *telemetry.metrics().find_histogram("sim.queue_depth_hist");

  std::printf("%7d  %8.2f  %9d  %12.1f  %12.0f  %10.0f  %9.0f\n", n, wall_s,
              completed, static_cast<double>(completed) / wall_s,
              static_cast<double>(simulator.events_executed()) / wall_s,
              depth_hist.mean(), p99_bound(depth_hist));
  if (completed != n) {
    std::printf("WARNING: %d/%d sessions did not finish\n", n - completed, n);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> sizes;
  for (int i = 1; i < argc; ++i) sizes.push_back(std::atoi(argv[i]));
  if (sizes.empty()) sizes = {100, 1000, 5000};

  const auto video = [] {
    media::VideoModelConfig cfg;
    cfg.duration_s = kVideoSeconds;
    cfg.chunk_duration_s = 1.0;
    cfg.tile_rows = 4;
    cfg.tile_cols = 6;
    cfg.seed = 7;
    return std::make_shared<media::VideoModel>(cfg);
  }();

  // A fixed pool of head traces reused round-robin: trace generation is
  // itself expensive (BM_HeadTraceGeneration) and is not what this bench
  // measures.
  std::vector<hmp::HeadTrace> traces;
  traces.reserve(kTracePoolSize);
  for (int i = 0; i < kTracePoolSize; ++i) {
    hmp::HeadTraceConfig cfg;
    cfg.duration_s = kVideoSeconds + 120.0;
    cfg.sample_rate_hz = 25.0;
    cfg.attractors = hmp::default_attractors(cfg.duration_s, /*seed=*/4242);
    cfg.seed = 21 + static_cast<std::uint64_t>(i);
    traces.push_back(hmp::generate_head_trace(cfg));
  }

  std::printf("Scale bench: N concurrent sessions, %d per 100 Mbps link, "
              "%.0f s video\n\n",
              kSessionsPerLink, kVideoSeconds);
  std::printf("%7s  %8s  %9s  %12s  %12s  %10s  %9s\n", "N", "wall s",
              "completed", "sessions/s", "events/s", "depth mean", "depth p99");
  for (const int n : sizes) run_scale(n, traces, video);
  return 0;
}
