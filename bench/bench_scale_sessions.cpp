// Many-session scale bench: N concurrent StreamingSessions multiplexed on
// shared links, built and run through engine::ShardedEngine. This is the
// guard for both the hot-path work in DESIGN.md §8 (per-session costs
// compound linearly here) and the sharded engine in DESIGN.md §9: the world
// is partitioned one shard per link group, so --threads T spreads the
// shards over T cores while the merged metrics stay byte-identical to the
// --threads 1 run (the engine determinism contract).
//
// Usage: bench_scale_sessions [N ...] [--threads T] [--json PATH]
//
//   N ...        session counts (default: 100 1000 5000)
//   --threads T  run each N with exactly T worker threads; without the
//                flag each N runs at threads=1 and threads=hardware
//                concurrency (skipped when that is also 1)
//   --json PATH  google-benchmark-compatible JSON for bench_compare.py;
//                the hardware-concurrency row is labeled "threads=hw" so
//                baselines stay machine-portable
//
// Reports, per (N, threads): wall seconds, completed sessions,
// sessions/sec, simulated events/sec (wall), and event-loop pressure from
// the merged per-shard obs::SimMonitor histograms (mean + p99 pending-event
// queue depth via obs::histogram_quantile_bound).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/world.h"
#include "hmp/head_trace.h"
#include "net/link.h"
#include "obs/metrics.h"

namespace {

using namespace sperke;

constexpr double kVideoSeconds = 20.0;
constexpr int kSessionsPerLink = 16;
constexpr int kTracePoolSize = 32;

engine::WorldSpec make_spec(int n) {
  engine::WorldSpec spec;
  spec.video.duration_s = kVideoSeconds;
  spec.video.chunk_duration_s = 1.0;
  spec.video.tile_rows = 4;
  spec.video.tile_cols = 6;
  spec.video.seed = 7;

  // A fixed pool of head traces reused round-robin (by global session id):
  // trace generation is itself expensive (BM_HeadTraceGeneration) and is
  // not what this bench measures.
  spec.trace_template.duration_s = kVideoSeconds + 120.0;
  spec.trace_template.sample_rate_hz = 25.0;
  spec.trace_template.attractors =
      hmp::default_attractors(spec.trace_template.duration_s, /*seed=*/4242);
  spec.trace_template.seed = 21;
  spec.trace_pool = kTracePoolSize;

  spec.link.name = "link";
  spec.link.bandwidth = net::BandwidthTrace::constant(100'000.0);
  spec.link.rtt = sim::milliseconds(30);
  spec.link.loss_rate = 0.0;
  spec.sessions_per_link = kSessionsPerLink;
  spec.transport_max_concurrent = 16;

  spec.sessions = n;
  spec.start_stagger = sim::milliseconds(10);
  spec.horizon =
      sim::seconds(kVideoSeconds + 600.0 + 0.010 * static_cast<double>(n));
  spec.seed = 7;

  // One shard per link group: session->link mapping follows the global id
  // (i / kSessionsPerLink), so contention groups are identical at any
  // shard/thread count, and the partition exposes maximum parallelism.
  spec.shards = engine::group_count(spec);

  // Sessions run without telemetry (the zero-overhead default); each
  // shard's SimMonitor watches its own event loop and the histograms merge.
  spec.monitor = true;
  return spec;
}

struct Row {
  int n = 0;
  int threads = 0;
  double wall_s = 0.0;
  int completed = 0;
};

Row run_scale(int n, int threads) {
  const engine::WorldSpec spec = make_spec(n);
  engine::ShardedEngine engine(spec);

  const auto wall_start = std::chrono::steady_clock::now();
  const engine::EngineResult result = engine.run({.threads = threads});
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();

  const auto& depth_hist = *result.metrics.find_histogram("sim.queue_depth_hist");
  std::printf("%7d  %7d  %8.2f  %9d  %12.1f  %12.0f  %10.0f  %9.0f\n", n,
              result.threads_used, wall_s, result.completed,
              static_cast<double>(result.completed) / wall_s,
              static_cast<double>(result.events_executed) / wall_s,
              depth_hist.mean(), obs::histogram_quantile_bound(depth_hist, 0.99));
  if (result.completed != n) {
    std::printf("WARNING: %d/%d sessions did not finish\n",
                n - result.completed, n);
  }
  return {n, threads, wall_s, result.completed};
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                int hw_threads, bool alias_hw_to_serial) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  // Each row gets a machine-portable label: the hardware-concurrency run is
  // "threads=hw", absolute counts otherwise. On a single-core machine
  // (default mode) the threads=1 run *is* the hardware-concurrency run, so
  // it is emitted twice — once under each label — keeping the baseline's
  // shape identical across machines so bench_compare.py can always derive
  // the threads=1 / threads=hw speedup row.
  struct Entry {
    int n;
    std::string label;
    double wall_s;
  };
  std::vector<Entry> entries;
  for (const Row& row : rows) {
    const bool is_hw = row.threads == hw_threads;
    entries.push_back({row.n,
                       is_hw && row.threads != 1 ? std::string("hw")
                                                 : std::to_string(row.threads),
                       row.wall_s});
    if (alias_hw_to_serial && row.threads == 1 && hw_threads == 1) {
      entries.push_back({row.n, "hw", row.wall_s});
    }
  }
  out << "{\n  \"context\": {\"executable\": \"bench_scale_sessions\", "
      << "\"num_cpus\": " << hw_threads << "},\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"ScaleSessions/N=%d/threads=%s\", "
                  "\"run_type\": \"iteration\", \"real_time\": %.6f, "
                  "\"time_unit\": \"s\"}%s\n",
                  entries[i].n, entries[i].label.c_str(), entries[i].wall_s,
                  i + 1 < entries.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> sizes;
  int forced_threads = 0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      forced_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      sizes.push_back(std::atoi(argv[i]));
    }
  }
  if (sizes.empty()) sizes = {100, 1000, 5000};

  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  std::vector<int> thread_counts;
  if (forced_threads > 0) {
    thread_counts = {forced_threads};
  } else {
    thread_counts = {1};
    if (hw > 1) thread_counts.push_back(hw);
  }

  std::printf("Scale bench: N concurrent sessions, %d per 100 Mbps link, "
              "%.0f s video, one shard per link\n\n",
              kSessionsPerLink, kVideoSeconds);
  std::printf("%7s  %7s  %8s  %9s  %12s  %12s  %10s  %9s\n", "N", "threads",
              "wall s", "completed", "sessions/s", "events/s", "depth mean",
              "depth p99");
  std::vector<Row> rows;
  for (const int n : sizes) {
    for (const int threads : thread_counts) {
      rows.push_back(run_scale(n, threads));
    }
  }
  if (!json_path.empty()) {
    write_json(json_path, rows, hw, /*alias_hw_to_serial=*/forced_threads == 0);
  }
  return 0;
}
