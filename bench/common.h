// Shared workload construction for the experiment benches (DESIGN.md §3).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/session.h"
#include "core/transport.h"
#include "hmp/head_trace.h"
#include "hmp/heatmap.h"
#include "media/video_model.h"
#include "net/bandwidth_trace.h"
#include "net/link.h"
#include "obs/sim_monitor.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"

namespace sperke::bench {

inline constexpr double kVideoSeconds = 60.0;

// The canonical VOD workload: 60 s equirect video, 4x6 tiles, 1 s chunks,
// default 5-rung ladder.
inline std::shared_ptr<media::VideoModel> standard_video(std::uint64_t seed = 7) {
  media::VideoModelConfig cfg;
  cfg.duration_s = kVideoSeconds;
  cfg.chunk_duration_s = 1.0;
  cfg.tile_rows = 4;
  cfg.tile_cols = 6;
  cfg.seed = seed;
  return std::make_shared<media::VideoModel>(cfg);
}

// One synthetic user watching the standard video (shared ROI attractors
// give traces the cross-user correlation crowd features exploit).
inline hmp::HeadTrace standard_trace(std::uint64_t user_seed,
                                     hmp::UserProfile profile = hmp::UserProfile::adult(),
                                     double duration_s = kVideoSeconds + 120.0) {
  hmp::HeadTraceConfig cfg;
  cfg.duration_s = duration_s;
  cfg.sample_rate_hz = 25.0;
  cfg.profile = profile;
  cfg.attractors = hmp::default_attractors(duration_s, /*seed=*/4242);
  cfg.seed = user_seed;
  return hmp::generate_head_trace(cfg);
}

// Crowd heatmap built from `users` synthetic viewers of the same video.
inline hmp::ViewingHeatmap standard_crowd(const media::VideoModel& video,
                                          int users, std::uint64_t seed_base = 1000) {
  hmp::ViewingHeatmap crowd(video.tile_count(), video.chunk_count());
  for (int u = 0; u < users; ++u) {
    crowd.add_trace(standard_trace(seed_base + u), video.geometry(),
                    {100.0, 90.0}, video.chunk_duration());
  }
  return crowd;
}

// Run one VOD session over a single link and return the report. With a
// telemetry sink the session, transport, and sim monitor all record into
// it, so benches can print figures straight from the shared metrics
// instead of keeping parallel hand-rolled counters.
inline core::SessionReport run_vod(const net::BandwidthTrace& bandwidth,
                                   core::SessionConfig config,
                                   std::uint64_t trace_seed = 21,
                                   const hmp::ViewingHeatmap* crowd = nullptr,
                                   std::shared_ptr<media::VideoModel> video = nullptr,
                                   obs::Telemetry* telemetry = nullptr) {
  sim::Simulator simulator;
  net::Link link(simulator, net::LinkConfig{.name = "link",
                                            .bandwidth = bandwidth,
                                            .rtt = sim::milliseconds(30),
                                            .loss_rate = 0.0, .faults = {}});
  // HTTP/2-style multiplexing: fine tile grids issue hundreds of small
  // requests per chunk, which would otherwise serialize on the RTT.
  core::SingleLinkTransport transport(
      link, {.max_concurrent = 16, .telemetry = telemetry, .recovery = {}});
  if (!video) video = standard_video();
  const auto trace = standard_trace(trace_seed);
  config.telemetry = telemetry;
  core::StreamingSession session(simulator, video, transport, trace, config, crowd);
  std::optional<obs::SimMonitor> monitor;
  if (telemetry != nullptr) monitor.emplace(simulator, *telemetry);
  session.start();
  simulator.run_until(sim::seconds(kVideoSeconds + 600.0));
  return session.report();
}

}  // namespace sperke::bench
