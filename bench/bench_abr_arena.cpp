// ABR policy arena: the QoE tournament across every factory tile-ABR
// policy (abr/factory.h), swept over bandwidth regimes × head-motion
// populations through the sharded engine (engine/run_world).
//
// Each cell runs a small fleet — 8 sessions, 4 link groups, 2 shards —
// with one policy, one bandwidth family on every group link, and one
// viewer population; QoE score comes from the per-session reports, stall
// seconds and wasted bytes from the merged obs/ metrics registry (the
// session.stall_s histogram and the session.bytes_wasted counter the
// sessions mirror their QoE accounting into). The league table ranks
// policies per cell by mean QoE score.
//
// Everything is a deterministic simulation: the numbers are bit-stable
// across machines, so bench/baselines/abr_arena.json is gated by
// tools/bench_compare.py — qoe_score rows via --higher-better (a drop
// beyond threshold = the policy regressed), stall/wasted rows in the
// default lower-is-better direction.
//
// Usage: bench_abr_arena [--smoke] [--json PATH]
//
//   --smoke      one cell per policy (steady bandwidth, calm viewers)
//   --json PATH  google-benchmark-compatible JSON for bench_compare.py
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "abr/factory.h"
#include "engine/engine.h"
#include "engine/world.h"
#include "hmp/head_trace.h"
#include "net/bandwidth_trace.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace {

using namespace sperke;

constexpr double kVideoSeconds = 16.0;
constexpr double kHorizonSeconds = 180.0;

struct BandwidthFamily {
  const char* name;
  net::BandwidthTrace trace;
};

std::vector<BandwidthFamily> bandwidth_families(bool smoke) {
  std::vector<BandwidthFamily> families;
  // Steady broadband: the §3.4.1 fixed-cap regime.
  families.push_back({"steady", net::BandwidthTrace::constant(12'000.0)});
  if (smoke) return families;
  // LTE-like fluctuation around the same mean.
  families.push_back(
      {"lte", net::BandwidthTrace::random_walk(12'000.0, 0.3, 1.0,
                                               kHorizonSeconds, 4242)});
  // Bursty coverage: good/bad two-state Markov holding times.
  families.push_back(
      {"flaky", net::BandwidthTrace::markov_two_state(
                    16'000.0, 2'500.0, 8.0, 3.0, kHorizonSeconds, 777)});
  return families;
}

struct HeadFamily {
  const char* name;
  hmp::UserProfile profile;
};

std::vector<HeadFamily> head_families(bool smoke) {
  std::vector<HeadFamily> families;
  // Calm viewers: slow saccades, long fixations — HMP's best case.
  families.push_back({"calm", hmp::UserProfile::elderly()});
  if (smoke) return families;
  // Restless viewers: fast, frequent saccades — misprediction stress.
  families.push_back({"restless", hmp::UserProfile::teenager()});
  return families;
}

struct CellResult {
  double qoe_score = 0.0;  // mean per-session QoE score
  double stall_s = 0.0;    // total stall seconds across the fleet
  double wasted_mb = 0.0;  // bytes fetched but never displayed
  double utility = 0.0;    // mean per-chunk viewport utility
  int completed = 0;
};

CellResult run_cell(const std::string& policy, const net::BandwidthTrace& bw,
                    const hmp::UserProfile& profile) {
  engine::WorldSpec spec;
  spec.video.duration_s = kVideoSeconds;
  spec.video.chunk_duration_s = 1.0;
  spec.video.tile_rows = 4;
  spec.video.tile_cols = 6;
  spec.video.seed = 7;

  spec.trace_template.duration_s = kHorizonSeconds;
  spec.trace_template.sample_rate_hz = 25.0;
  spec.trace_template.profile = profile;
  spec.trace_template.attractors = hmp::default_attractors(kHorizonSeconds, 77);
  spec.trace_template.seed = 33;
  spec.trace_pool = 4;

  spec.link.name = "dl";
  spec.link.bandwidth = bw;
  spec.link.rtt = sim::milliseconds(30);
  spec.sessions_per_link = 2;
  spec.transport_max_concurrent = 8;

  spec.sessions = 8;
  spec.session.abr.policy = policy;
  spec.horizon = sim::seconds(kHorizonSeconds);
  spec.shards = 2;
  spec.seed = 5;
  spec.session_telemetry = true;

  engine::EngineResult result = engine::run_world(spec, {.threads = 2});

  CellResult cell;
  for (const core::SessionReport& report : result.reports) {
    cell.qoe_score += report.qoe.score;
  }
  cell.qoe_score /= static_cast<double>(result.reports.size());
  cell.completed = result.completed;
  if (const obs::Histogram* stall =
          result.metrics.find_histogram("session.stall_s")) {
    cell.stall_s = stall->sum();
  }
  if (const obs::Histogram* utility =
          result.metrics.find_histogram("session.viewport_utility")) {
    cell.utility = utility->mean();
  }
  if (const obs::Counter* wasted =
          result.metrics.find_counter("session.bytes_wasted")) {
    cell.wasted_mb = static_cast<double>(wasted->value()) / 1e6;
  }
  return cell;
}

struct JsonRow {
  std::string name;
  double value = 0.0;
};

void write_json(const std::string& path, const std::vector<JsonRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"context\": {\"executable\": \"bench_abr_arena\"},\n"
      << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"run_type\": \"iteration\", "
                  "\"real_time\": %.6f, \"time_unit\": \"s\"}%s\n",
                  rows[i].name.c_str(), rows[i].value,
                  i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

std::string row_name(const std::string& policy, const char* bw,
                     const char* head, const char* metric) {
  return "AbrArena/" + policy + "/bw=" + bw + "/head=" + head + "/" + metric;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const auto& policies = abr::policy_names();
  const auto bw_families = bandwidth_families(smoke);
  const auto hd_families = head_families(smoke);

  std::printf("ABR policy arena: %zu policies x %zu bandwidth x %zu head "
              "families, 8 sessions / 2 shards per cell\n",
              policies.size(), bw_families.size(), hd_families.size());

  std::vector<JsonRow> rows;
  for (const auto& bw : bw_families) {
    for (const auto& head : hd_families) {
      // Rank the cell's policies by mean QoE score (the league table).
      std::multimap<double, std::pair<std::string, CellResult>,
                    std::greater<>> league;
      for (std::string_view policy_name : policies) {
        const std::string policy(policy_name);
        const CellResult cell = run_cell(policy, bw.trace, head.profile);
        league.insert({cell.qoe_score, {policy, cell}});
        rows.push_back(
            {row_name(policy, bw.name, head.name, "qoe_score"), cell.qoe_score});
        rows.push_back(
            {row_name(policy, bw.name, head.name, "stall_s"), cell.stall_s});
        rows.push_back(
            {row_name(policy, bw.name, head.name, "wasted_mb"), cell.wasted_mb});
      }

      std::printf("\nbw=%s head=%s\n", bw.name, head.name);
      std::printf("  %4s %-12s %10s %9s %10s %9s %6s\n", "rank", "policy",
                  "qoe", "stall s", "wasted MB", "utility", "done");
      int rank = 0;
      for (const auto& [score, entry] : league) {
        const auto& [policy, cell] = entry;
        std::printf("  %4d %-12s %10.3f %9.2f %10.1f %9.3f %4d/8\n", ++rank,
                    policy.c_str(), score, cell.stall_s, cell.wasted_mb,
                    cell.utility, cell.completed);
      }
    }
  }

  if (!json_path.empty()) write_json(json_path, rows);
  return 0;
}
