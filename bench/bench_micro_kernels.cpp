// Microbenchmarks (google-benchmark) for the hot paths of the streaming
// stack: FoV visibility sampling, fusion probability maps, VRA planning,
// and the fluid link's reflow under concurrent transfers. These guard
// against performance regressions — the client-side logic must stay far
// cheaper than the 4-10 ms frame budget it models.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "abr/factory.h"
#include "geo/visibility.h"
#include "hmp/fusion.h"
#include "hmp/head_trace.h"
#include "media/video_model.h"
#include "net/link.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"

namespace {

using namespace sperke;

std::shared_ptr<geo::TileGeometry> geometry_for(int rows, int cols) {
  return std::make_shared<geo::TileGeometry>(
      geo::make_projection("equirectangular"), geo::TileGrid(rows, cols));
}

void BM_VisibleTiles(benchmark::State& state) {
  const auto geometry = geometry_for(static_cast<int>(state.range(0)),
                                     static_cast<int>(state.range(1)));
  const geo::Viewport viewport{100.0, 90.0};
  double yaw = 0.0;
  for (auto _ : state) {
    yaw += 7.3;
    benchmark::DoNotOptimize(
        geometry->visible_tiles({yaw, 10.0, 0.0}, viewport));
  }
}
BENCHMARK(BM_VisibleTiles)->Args({4, 6})->Args({8, 12});

void BM_VisibleTilesLut(benchmark::State& state) {
  // Same sweep through the LUT-accelerated path (roll 0): after the first
  // lap over the quantized grid every query is a cache hit.
  const auto geometry = geometry_for(static_cast<int>(state.range(0)),
                                     static_cast<int>(state.range(1)));
  const geo::Viewport viewport{100.0, 90.0};
  double yaw = 0.0;
  for (auto _ : state) {
    yaw += 7.3;
    benchmark::DoNotOptimize(
        geometry->visible_tiles_lut({yaw, 10.0, 0.0}, viewport));
  }
}
BENCHMARK(BM_VisibleTilesLut)->Args({4, 6})->Args({8, 12});

void BM_OosRings(benchmark::State& state) {
  const auto geometry = geometry_for(8, 12);
  const auto visible = geometry->visible_tiles({0.0, 0.0, 0.0}, {100.0, 90.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry->oos_rings(visible));
  }
}
BENCHMARK(BM_OosRings);

void BM_FusionProbabilities(benchmark::State& state) {
  const auto geometry = geometry_for(4, 6);
  hmp::FusionPredictor fusion(geometry, {100.0, 90.0},
                              hmp::make_orientation_predictor("linear-regression"),
                              nullptr, {});
  for (int i = 0; i < 25; ++i) {
    fusion.observe({sim::milliseconds(40 * i), {i * 1.0, 0.0, 0.0}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fusion.tile_probabilities(sim::seconds(1.0), 0));
  }
}
BENCHMARK(BM_FusionProbabilities);

void BM_PlanChunk(benchmark::State& state) {
  media::VideoModelConfig cfg;
  cfg.duration_s = 30.0;
  cfg.tile_rows = 4;
  cfg.tile_cols = 6;
  auto video = std::make_shared<media::VideoModel>(cfg);
  const auto policy = abr::make_policy(video, {});
  const auto fov = video->geometry().visible_tiles({0.0, 0.0, 0.0}, {100.0, 90.0});
  std::vector<double> probs(static_cast<std::size_t>(video->tile_count()),
                            1.0 / video->tile_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        policy->plan_chunk(3, fov, probs, 15'000.0, sim::seconds(2.0), 2));
  }
}
BENCHMARK(BM_PlanChunk);

void BM_LinkReflowUnderLoad(benchmark::State& state) {
  // Cost of running a full simulated second with N concurrent transfers
  // churning on one link.
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    net::Link link(simulator,
                   net::LinkConfig{.bandwidth = net::BandwidthTrace::constant(50'000.0),
                                   .rtt = sim::milliseconds(10), .faults = {}});
    for (int i = 0; i < n; ++i) {
      // Staggered small transfers keep the active set changing.
      simulator.schedule_at(sim::milliseconds(i * 7), [&link] {
        link.start_transfer(60'000, [&link](const net::TransferResult&) {
          link.start_transfer(60'000, [](const net::TransferResult&) {});
        });
      });
    }
    simulator.run_until(sim::seconds(1.0));
    benchmark::DoNotOptimize(link.bytes_delivered());
  }
}
BENCHMARK(BM_LinkReflowUnderLoad)->Arg(8)->Arg(64);

void BM_SimulatorEventQueue(benchmark::State& state) {
  // Calendar-queue throughput: a schedule/cancel/pop mix over 1e6 events.
  // Arg 0 selects the timestamp distribution: 0 = uniform over a wide
  // horizon (events spread across many buckets), 1 = bursty (batches
  // land on shared instants, stressing the per-bucket FIFO chains and the
  // width heuristic). Roughly one in eight events is cancelled instead of
  // fired, exercising the O(bucket) cancel path.
  const bool bursty = state.range(0) != 0;
  constexpr int kEvents = 1'000'000;
  constexpr int kWindow = 4096;  // live events the driver keeps in flight
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;  // splitmix64 stream
    auto next = [&rng] {
      std::uint64_t z = (rng += 0x9e3779b97f4a7c15ull);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    std::uint64_t fired = 0;
    std::vector<sim::EventId> window;
    window.reserve(kWindow);
    int scheduled = 0;
    auto schedule_one = [&] {
      const std::uint64_t r = next();
      const sim::Duration delay =
          bursty ? sim::milliseconds(static_cast<std::int64_t>(r % 16) * 10)
                 : sim::Duration{static_cast<std::int64_t>(r % 10'000'000)};
      window.push_back(
          simulator.schedule_after(delay, [&fired] { ++fired; }));
      ++scheduled;
    };
    for (int i = 0; i < kWindow; ++i) schedule_one();
    while (scheduled < kEvents) {
      // Pop a batch, then refill; cancel one of every eight refills.
      simulator.run_until(simulator.now());  // drain everything due now
      const std::size_t pending = simulator.pending_events();
      while (scheduled < kEvents &&
             simulator.pending_events() < pending + kWindow / 4) {
        schedule_one();
        if ((scheduled & 7) == 0 && !window.empty()) {
          simulator.cancel(window[next() % window.size()]);
        }
      }
      simulator.run();
      window.clear();
    }
    simulator.run();
    benchmark::DoNotOptimize(fired);
    benchmark::DoNotOptimize(simulator.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_SimulatorEventQueue)->Arg(0)->Arg(1);

void BM_MetricsUpdate(benchmark::State& state) {
  // Cost of one counter bump + one histogram observation through stable
  // handles — what an instrumented hot path pays with telemetry attached.
  obs::Telemetry telemetry;
  obs::Counter& counter = telemetry.metrics().counter("bench.counter");
  obs::Histogram& histogram = telemetry.metrics().histogram("bench.histogram");
  double x = 0.0;
  for (auto _ : state) {
    counter.increment();
    histogram.observe(x += 1.5);
    benchmark::DoNotOptimize(counter.value());
  }
}
BENCHMARK(BM_MetricsUpdate);

void BM_TraceRecord(benchmark::State& state) {
  // Cost of appending one typed timeline event to an attached recorder.
  obs::Telemetry telemetry;
  std::int64_t ts = 0;
  for (auto _ : state) {
    telemetry.trace().record({.type = obs::TraceEventType::kFetchDone,
                              .ts = sim::Time{++ts},
                              .tile = 3,
                              .chunk = 7,
                              .quality = 2,
                              .bytes = 100'000});
    if (telemetry.trace().size() >= (std::size_t{1} << 20)) telemetry.trace().clear();
  }
  benchmark::DoNotOptimize(telemetry.trace().size());
}
BENCHMARK(BM_TraceRecord);

void BM_HeadTraceGeneration(benchmark::State& state) {
  hmp::HeadTraceConfig cfg;
  cfg.duration_s = 60.0;
  cfg.attractors = hmp::default_attractors(60.0, 3);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    cfg.seed = ++seed;
    benchmark::DoNotOptimize(hmp::generate_head_trace(cfg));
  }
}
BENCHMARK(BM_HeadTraceGeneration);

}  // namespace

BENCHMARK_MAIN();
