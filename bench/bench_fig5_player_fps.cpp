// Experiment F5 — reproduces Figure 5: FPS of the Sperke player on a 2K
// video with 2x4 tiles and 8 parallel H.264-class decoders, in the paper's
// three configurations, plus the ablation rows our model makes possible.
//
// Paper values (SGS7): (1) 11 FPS, (2) 53 FPS, (3) 120 FPS (display cap).
// Both the analytic model and the event-driven pipeline simulation are
// reported; the event-driven numbers include FoV movement from a real
// synthetic head trace.
#include <iostream>
#include <memory>

#include "geo/visibility.h"
#include "hmp/head_trace.h"
#include "player/decoder_model.h"
#include "player/pipeline.h"
#include "sim/simulator.h"
#include "util/table.h"

namespace {

using namespace sperke;

struct Measured {
  double fps = 0.0;
  int misses = 0;
};

Measured measure(std::shared_ptr<const geo::TileGeometry> geometry,
                 const hmp::HeadTrace& trace, player::PipelineConfig pipeline,
                 bool margin_ring = false) {
  sim::Simulator simulator;
  player::PlayerSimulation::Config cfg;
  cfg.pipeline = pipeline;
  cfg.cache_margin_ring = margin_ring;
  player::PlayerSimulation sim_player(simulator, geometry, trace, cfg);
  sim_player.start();
  simulator.run_until(sim::seconds(20.0));
  return {sim_player.measured_fps(), sim_player.render_misses()};
}

}  // namespace

int main() {
  // The paper's setup: 2K video, 2x4 tiles, 8 decoders, SGS7 display.
  auto geometry = std::make_shared<geo::TileGeometry>(
      geo::make_projection("equirectangular"), geo::TileGrid(2, 4));
  hmp::HeadTraceConfig trace_cfg;
  trace_cfg.duration_s = 30.0;
  trace_cfg.sample_rate_hz = 25.0;
  trace_cfg.profile = hmp::UserProfile::adult();
  trace_cfg.seed = 5;
  const auto trace = hmp::generate_head_trace(trace_cfg);

  const player::DecoderModelConfig model;
  const int all_tiles = geometry->grid().tile_count();
  const int fov_tiles = static_cast<int>(
      geometry->visible_tiles({0.0, 0.0, 0.0}, {100.0, 90.0}).size());

  std::cout << "Figure 5: Sperke player FPS (2K video, 2x4 tiles, 8 decoders)\n"
            << "(paper: config1 = 11, config2 = 53, config3 = 120 FPS)\n\n";
  TextTable table({"Configuration", "Analytic FPS", "Event-sim FPS"});

  struct Row {
    const char* name;
    player::PipelineConfig pipeline;
    int tiles;
  };
  const Row rows[] = {
      {"1. Render all tiles w/o optimization", {false, false, false}, all_tiles},
      {"   (ablation) parallel decode only", {true, false, false}, all_tiles},
      {"2. Render all tiles with optimization", {true, true, false}, all_tiles},
      {"3. Render only FoV tiles with optimization", {true, true, true}, fov_tiles},
  };
  for (const Row& row : rows) {
    table.add_row({row.name,
                   TextTable::num(player::analytic_fps(model, row.pipeline, row.tiles), 1),
                   TextTable::num(measure(geometry, trace, row.pipeline).fps, 1)});
  }
  std::cout << table.str() << '\n'
            << "FoV tiles at front-center: " << fov_tiles << " of " << all_tiles
            << "\n\n";

  // §3.5 cache-margin ablation: decoding one ring of margin tiles lets a
  // FoV shift reuse cached neighbours ("changing only the delta tiles")
  // instead of surprising the render loop. Evaluated where it matters — a
  // fast-moving head on a finer grid (margin cost is small, shifts common).
  auto fine_geometry = std::make_shared<geo::TileGeometry>(
      geo::make_projection("equirectangular"), geo::TileGrid(4, 8));
  hmp::HeadTraceConfig fast_cfg;
  fast_cfg.duration_s = 30.0;
  fast_cfg.profile = hmp::UserProfile::teenager();
  fast_cfg.seed = 6;
  const auto fast_trace = hmp::generate_head_trace(fast_cfg);
  std::cout << "Decoded-frame-cache margin ablation (FoV-only, fast head, 4x8):\n";
  TextTable margin({"Margin ring", "FPS", "FoV-shift surprises / 20 s"});
  const auto without = measure(fine_geometry, fast_trace, {true, true, true}, false);
  const auto with = measure(fine_geometry, fast_trace, {true, true, true}, true);
  margin.add_row({"off", TextTable::num(without.fps, 1),
                  std::to_string(without.misses)});
  margin.add_row({"on", TextTable::num(with.fps, 1), std::to_string(with.misses)});
  std::cout << margin.str();
  return 0;
}
