// Experiment C3 — §3.2's data-fusion claim: combining (1) the user's own
// motion, (2) cross-user viewing statistics, and (3) context (pose, speed
// bound) improves head-movement prediction, especially at long horizons
// where pure motion extrapolation collapses.
//
// Part A: point-prediction accuracy of the motion predictors vs horizon.
// Part B: tile hit-rate of the probability maps (motion-only vs +crowd vs
//         +crowd+context) under a fixed tile budget, vs horizon.
// Part C: end-to-end session QoE with and without the crowd prior.
#include <iostream>
#include <memory>
#include <vector>

#include "common.h"
#include "hmp/accuracy.h"
#include "hmp/fusion.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace sperke;
using namespace sperke::bench;

// Tile hit-rate of a fusion configuration at one horizon, averaged over a
// replayed trace.
double fusion_hit_rate(const media::VideoModel& video, const hmp::HeadTrace& trace,
                       const hmp::ViewingHeatmap* crowd, hmp::ViewingContext context,
                       sim::Duration horizon, int budget_tiles) {
  hmp::FusionPredictor fusion(video.geometry_ptr(), {100.0, 90.0},
                              std::make_unique<hmp::LinearRegressionPredictor>(),
                              crowd, context);
  RunningStats hits;
  for (const auto& sample : trace.samples()) {
    fusion.observe(sample);
    const sim::Time target = sample.t + horizon;
    if (target > trace.duration() ||
        target >= video.chunk_duration() * video.chunk_count()) {
      break;
    }
    const auto chunk = video.chunk_at_time(target);
    const auto probs = fusion.tile_probabilities(horizon, chunk);
    const auto actual = video.geometry().visible_tiles(
        trace.orientation_at(target), {100.0, 90.0});
    hits.add(hmp::tile_hit_rate(probs, actual, budget_tiles));
  }
  return hits.mean();
}

}  // namespace

int main() {
  auto video = standard_video();
  const auto crowd = standard_crowd(*video, /*users=*/12);
  const std::vector<double> horizons_s = {0.2, 0.5, 1.0, 2.0, 3.0};

  std::cout << "C3: big-data-assisted HMP (SS3.2)\n\n";

  // Part A: point predictors.
  std::cout << "A. Point-prediction mean angular error (deg) vs horizon\n";
  TextTable point({"Horizon s", "static", "dead-reckoning", "linear-regression"});
  const auto eval_trace = standard_trace(501);
  for (double h : horizons_s) {
    std::vector<std::string> row{TextTable::num(h, 1)};
    for (const char* name : {"static", "dead-reckoning", "linear-regression"}) {
      auto predictor = hmp::make_orientation_predictor(name);
      const auto report = hmp::evaluate_predictor(
          *predictor, eval_trace, sim::seconds(h), video->geometry(), {100.0, 90.0});
      row.push_back(TextTable::num(report.mean_error_deg, 1));
    }
    point.add_row(std::move(row));
  }
  std::cout << point.str() << '\n';

  // Part B: probability-map hit rate under a 10-tile budget (24-tile grid).
  std::cout << "B. Tile hit-rate (budget 10 of 24 tiles) vs horizon\n";
  TextTable fusion_table(
      {"Horizon s", "motion only", "+crowd", "+crowd+context"});
  hmp::ViewingContext speed_context;
  speed_context.max_speed_dps = 130.0;  // learned per-user bound
  const auto test_trace = standard_trace(502);
  for (double h : horizons_s) {
    const auto horizon = sim::seconds(h);
    fusion_table.add_row(
        {TextTable::num(h, 1),
         TextTable::num(
             fusion_hit_rate(*video, test_trace, nullptr, {}, horizon, 10), 3),
         TextTable::num(
             fusion_hit_rate(*video, test_trace, &crowd, {}, horizon, 10), 3),
         TextTable::num(fusion_hit_rate(*video, test_trace, &crowd, speed_context,
                                        horizon, 10),
                        3)});
  }
  std::cout << fusion_table.str() << '\n';

  // Part C: end-to-end QoE. The paper's claim is that crowd statistics
  // make *long-term* prefetch feasible: with motion-only HMP the planner
  // must stay within a short horizon (predictions collapse beyond ~2 s),
  // while crowd priors let it prefetch deep — which is what survives
  // bandwidth dips. Evaluate under a fluctuating (two-state) link.
  std::cout << "C. Session QoE under fluctuating bandwidth (18 Mbps <-> 1.5 Mbps)\n";
  TextTable qoe({"Configuration", "Prefetch horizon", "Viewport utility",
                 "Stall s", "Waste %"});
  struct Setup {
    const char* label;
    bool use_crowd;
    int horizon;
  };
  for (const Setup& setup : {Setup{"motion only, short", false, 4},
                             Setup{"motion only, deep", false, 10},
                             Setup{"fusion + crowd, deep", true, 10}}) {
    RunningStats utility, stall, waste;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const auto bandwidth = net::BandwidthTrace::markov_two_state(
          18'000.0, 1'500.0, 10.0, 4.0, kVideoSeconds + 600.0, 42 + seed);
      core::SessionConfig config;
      config.prefetch_horizon_chunks = setup.horizon;
      const auto report = run_vod(bandwidth, config, 600 + seed,
                                  setup.use_crowd ? &crowd : nullptr, video);
      utility.add(report.qoe.mean_viewport_utility);
      stall.add(report.qoe.stall_seconds);
      waste.add(100.0 * static_cast<double>(report.qoe.bytes_wasted) /
                std::max<std::int64_t>(1, report.qoe.bytes_downloaded));
    }
    qoe.add_row({setup.label, std::to_string(setup.horizon),
                 TextTable::num(utility.mean(), 3), TextTable::num(stall.mean(), 2),
                 TextTable::num(waste.mean(), 1)});
  }
  std::cout << qoe.str() << '\n';
  return 0;
}
