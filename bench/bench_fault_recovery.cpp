// Fault-recovery QoE bench (DESIGN.md §10): does the recovery layer —
// transport retries with backoff, deadline-derived timeouts, base-tier
// degradation — actually buy QoE when the last mile misbehaves?
//
// Two arms share one seeded fault schedule per sweep point (a mid-stream
// outage of D seconds plus a background per-transfer failure probability),
// each run twice, with recovery off and on:
//
//   * VOD: a StreamingSession on a faulted 12 Mbps link. Headline metric:
//     stall seconds (paper §3.1's QoE killer).
//   * Tiled live: a TiledLiveSession on a faulted 20 Mbps link. Live never
//     stalls — losses surface as blank FoV tiles, so the headline metric is
//     the mean blank-tile fraction.
//
// Everything is a deterministic simulation: the numbers are bit-stable
// across machines, which is why bench/baselines/fault_recovery.json can be
// gated by tools/bench_compare.py (a rise in stall seconds or blank
// fraction beyond threshold = the recovery layer regressed).
//
// The VOD arms additionally run the observability stack (DESIGN.md §12):
// a 0.5 s time-series sampler plus a stall-ratio SLO on the live
// session.stalled gauge. The printed breach windows should track the
// injected outage — the SLO breaches inside [6, 6+D] and clears once
// recovery catches the playhead up. Telemetry only records, so the QoE
// numbers gated by bench/baselines/fault_recovery.json are unchanged.
//
// Usage: bench_fault_recovery [--smoke] [--json PATH] [--trace PATH]
//
//   --smoke      single sweep point (outage = 2 s) for ctest
//   --json PATH  google-benchmark-compatible JSON for bench_compare.py;
//                "real_time" carries stall seconds (VOD) or blank
//                percentage (live), lower is better for both
//   --trace PATH Chrome trace of the last recovery-on VOD run (nested
//                fetch -> retry spans; open in ui.perfetto.dev)
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/session.h"
#include "core/transport.h"
#include "hmp/head_trace.h"
#include "live/tiled_viewer.h"
#include "net/link.h"
#include "obs/export.h"
#include "obs/slo.h"
#include "obs/telemetry.h"
#include "obs/timeseries.h"
#include "sim/periodic.h"
#include "sim/simulator.h"

namespace {

using namespace sperke;

constexpr double kVodVideoSeconds = 20.0;
constexpr double kLiveVideoSeconds = 30.0;

std::shared_ptr<media::VideoModel> make_video(double duration_s) {
  media::VideoModelConfig cfg;
  cfg.duration_s = duration_s;
  cfg.chunk_duration_s = 1.0;
  cfg.tile_rows = 4;
  cfg.tile_cols = 6;
  cfg.seed = 7;
  return std::make_shared<media::VideoModel>(cfg);
}

hmp::HeadTrace make_trace(std::uint64_t seed) {
  hmp::HeadTraceConfig cfg;
  cfg.duration_s = 120.0;
  cfg.sample_rate_hz = 25.0;
  cfg.attractors = hmp::default_attractors(120.0, 77);
  cfg.seed = seed;
  return hmp::generate_head_trace(cfg);
}

// One storm per sweep point: an outage of `outage_s` starting mid-stream
// plus a constant background failure probability. Identical (same seed)
// for the recovery and no-recovery arms.
net::FaultPlan storm(double outage_s, double failure_prob) {
  net::FaultPlan plan;
  if (outage_s > 0.0) {
    plan.outages.push_back({.start_s = 6.0, .duration_s = outage_s});
  }
  plan.transfer_failure_prob = failure_prob;
  plan.seed = 42;
  return plan;
}

// Stall-ratio SLO on the VOD arms: session.stalled is a 0/1 level gauge
// (one session), sampled every 0.5 s — an interval breaches when the
// session spent its sample point stalled.
constexpr double kSamplePeriodS = 0.5;

std::vector<obs::SloSpec> vod_slos() {
  return {{.name = "vod.stall_ratio",
           .metric = "session.stalled",
           .signal = obs::SloSignal::kGaugeValue,
           .threshold = 0.5,
           .window_intervals = 1}};
}

struct BreachWindow {
  double start_s = 0.0;
  double end_s = 0.0;  // horizon if still breached at the end
};

struct VodRun {
  core::SessionReport report;
  std::vector<obs::SloStatus> slos;
  std::vector<BreachWindow> breaches;
  std::unique_ptr<obs::Telemetry> telemetry;
};

std::vector<BreachWindow> breach_windows(const obs::Telemetry& telemetry,
                                         double horizon_s) {
  std::vector<BreachWindow> windows;
  for (const obs::TraceEvent& e : telemetry.trace().events()) {
    if (e.type == obs::TraceEventType::kSloBreach) {
      windows.push_back({sim::to_seconds(e.ts), horizon_s});
    } else if (e.type == obs::TraceEventType::kSloClear && !windows.empty()) {
      windows.back().end_s = sim::to_seconds(e.ts);
    }
  }
  return windows;
}

VodRun run_vod(double outage_s, bool recovery) {
  sim::Simulator simulator;
  auto telemetry = std::make_unique<obs::Telemetry>();
  net::Link link(simulator,
                 net::LinkConfig{.name = "dl",
                                 .bandwidth = net::BandwidthTrace::constant(12'000.0),
                                 .rtt = sim::milliseconds(30),
                                 .loss_rate = 0.0,
                                 .faults = storm(outage_s, 0.05)});
  core::TransportOptions options;
  options.recovery.enabled = recovery;
  options.telemetry = telemetry.get();
  core::SingleLinkTransport transport(link, options);
  core::SessionConfig config;
  config.fetch_recovery = recovery;
  config.telemetry = telemetry.get();
  auto video = make_video(kVodVideoSeconds);
  const auto trace = make_trace(33);
  core::StreamingSession session(simulator, video, transport, trace, config);

  obs::TimeSeriesStore series(sim::seconds(kSamplePeriodS));
  obs::SloEvaluator evaluator(vod_slos(), series, *telemetry);
  sim::PeriodicTask sampler(simulator, sim::seconds(kSamplePeriodS), [&] {
    series.sample(telemetry->metrics());
    evaluator.evaluate();
  });

  session.start();
  const double horizon_s = kVodVideoSeconds + 300.0;
  simulator.run_until(sim::seconds(horizon_s));

  VodRun out;
  out.report = session.report();
  out.slos = evaluator.status();
  out.breaches = breach_windows(*telemetry, horizon_s);
  out.telemetry = std::move(telemetry);
  return out;
}

live::TiledLiveReport run_live(double outage_s, bool recovery) {
  sim::Simulator simulator;
  net::Link link(simulator,
                 net::LinkConfig{.name = "dl",
                                 .bandwidth = net::BandwidthTrace::constant(20'000.0),
                                 .rtt = sim::milliseconds(30),
                                 .loss_rate = 0.0,
                                 .faults = storm(outage_s, 0.10)});
  core::TransportOptions options;
  options.max_concurrent = 12;
  options.recovery.enabled = recovery;
  core::SingleLinkTransport transport(link, options);
  live::TiledLiveConfig config;
  config.fetch_recovery = recovery;
  auto video = make_video(kLiveVideoSeconds);
  const auto trace = make_trace(5);
  live::TiledLiveSession session(simulator, video, transport, trace, config);
  session.start();
  simulator.run_until(sim::seconds(kLiveVideoSeconds + 120.0));
  return session.report();
}

struct JsonRow {
  std::string name;
  double value = 0.0;
};

void write_json(const std::string& path, const std::vector<JsonRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"context\": {\"executable\": \"bench_fault_recovery\"},\n"
      << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"run_type\": \"iteration\", "
                  "\"real_time\": %.6f, \"time_unit\": \"s\"}%s\n",
                  rows[i].name.c_str(), rows[i].value,
                  i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

std::string row_name(const char* metric, double outage_s, bool recovery) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "FaultRecovery/%s/outage=%g/recovery=%s",
                metric, outage_s, recovery ? "on" : "off");
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    }
  }
  const std::vector<double> sweep =
      smoke ? std::vector<double>{2.0}
            : std::vector<double>{0.0, 1.0, 2.0, 3.0, 5.0, 8.0};

  std::printf("Fault recovery sweep: outage of D s at t=6 s + background "
              "transfer failures (VOD p=0.05, live p=0.10), recovery off/on\n\n");
  std::printf("%8s | %28s | %28s\n", "", "VOD stall s (score)",
              "live blank % (skips)");
  std::printf("%8s | %13s %14s | %13s %14s\n", "outage s", "off", "on", "off",
              "on");

  std::vector<JsonRow> rows;
  struct SloRow {
    double outage_s = 0.0;
    std::vector<BreachWindow> off;
    std::vector<BreachWindow> on;
  };
  std::vector<SloRow> slo_rows;
  std::vector<obs::SloStatus> last_on_slos;
  std::unique_ptr<obs::Telemetry> traced;
  bool stall_dominates = true;
  bool blank_dominates = true;
  for (const double outage_s : sweep) {
    auto vod_off = run_vod(outage_s, false);
    auto vod_on = run_vod(outage_s, true);
    const auto live_off = run_live(outage_s, false);
    const auto live_on = run_live(outage_s, true);

    std::printf("%8.1f | %6.2f (%5.1f) %6.2f (%6.1f) | %6.2f (%5d) %6.2f (%6d)\n",
                outage_s, vod_off.report.qoe.stall_seconds,
                vod_off.report.qoe.score, vod_on.report.qoe.stall_seconds,
                vod_on.report.qoe.score,
                100.0 * live_off.mean_blank_fraction, live_off.chunks_skipped,
                100.0 * live_on.mean_blank_fraction, live_on.chunks_skipped);

    if (vod_on.report.qoe.stall_seconds >= vod_off.report.qoe.stall_seconds) {
      stall_dominates = false;
    }
    if (live_on.mean_blank_fraction >= live_off.mean_blank_fraction) {
      blank_dominates = false;
    }
    rows.push_back({row_name("vod_stall_s", outage_s, false),
                    vod_off.report.qoe.stall_seconds});
    rows.push_back({row_name("vod_stall_s", outage_s, true),
                    vod_on.report.qoe.stall_seconds});
    rows.push_back({row_name("live_blank_pct", outage_s, false),
                    100.0 * live_off.mean_blank_fraction});
    rows.push_back({row_name("live_blank_pct", outage_s, true),
                    100.0 * live_on.mean_blank_fraction});
    slo_rows.push_back({outage_s, std::move(vod_off.breaches),
                        std::move(vod_on.breaches)});
    last_on_slos = std::move(vod_on.slos);
    traced = std::move(vod_on.telemetry);
  }

  std::printf("\nrecovery strictly dominates: stall time %s, blank ratio %s\n",
              stall_dominates ? "yes" : "NO", blank_dominates ? "yes" : "NO");

  // The SLO view of the same sweep: breach windows should sit inside the
  // injected outage [6, 6+D] and clear once recovery drains the backlog.
  std::printf("\nVOD stall SLO (session.stalled mean > 0.5 per %.1f s interval),"
              " breach windows [s]:\n", kSamplePeriodS);
  for (const SloRow& row : slo_rows) {
    std::printf("%8.1f |", row.outage_s);
    auto print_windows = [](const std::vector<BreachWindow>& windows) {
      if (windows.empty()) std::printf(" none");
      for (const BreachWindow& w : windows) {
        std::printf(" [%.1f, %.1f]", w.start_s, w.end_s);
      }
    };
    std::printf(" off:");
    print_windows(row.off);
    std::printf("  on:");
    print_windows(row.on);
    std::printf("\n");
  }
  std::printf("\nSLO rollup for the last recovery-on VOD run:\n%s",
              obs::slo_table(vod_slos(), last_on_slos).c_str());

  if (!json_path.empty()) write_json(json_path, rows);
  if (!trace_path.empty() && traced != nullptr) {
    try {
      obs::dump_chrome_trace(trace_path, *traced);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::printf("\nWrote %zu trace events to %s\n", traced->trace().size(),
                trace_path.c_str());
  }
  return 0;
}
