// Experiment C1 — the §1/§2 claims:
//   * FoV-agnostic delivery wastes most of its bytes (the user sees only a
//     fraction of the panorama);
//   * tiled FoV-guided streaming saves roughly 45-80% of bandwidth at the
//     same displayed quality ([16] reports ~45%, [37] 60-80%).
//
// Method: equal-quality comparison (quality pinned per row) between the
// FoV-agnostic planner and the FoV-guided planner, across several users,
// reporting downloaded bytes and the waste fraction.
#include <iostream>

#include "common.h"
#include "media/content_store.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace sperke;
  using namespace sperke::bench;

  std::cout << "C1: FoV-guided vs FoV-agnostic bandwidth at equal quality\n"
            << "(paper/SS2: tiling saves ~45% [16] to 60-80% [37])\n\n";

  TextTable table({"Quality level", "Agnostic MB", "Guided MB", "Saving %",
                   "Agnostic waste %", "Guided waste %"});
  const auto bandwidth = net::BandwidthTrace::constant(80'000.0);
  for (media::QualityLevel q = 1; q <= 3; ++q) {
    RunningStats agnostic_mb, guided_mb, agnostic_waste, guided_waste;
    for (std::uint64_t user = 0; user < 5; ++user) {
      core::SessionConfig guided;
      guided.abr.sperke.regular_vra = "fixed-" + std::to_string(q);
      core::SessionConfig agnostic;
      agnostic.planner = core::PlannerMode::kFovAgnostic;
      agnostic.abr.sperke.regular_vra = guided.abr.sperke.regular_vra;
      const auto g = run_vod(bandwidth, guided, 100 + user);
      const auto a = run_vod(bandwidth, agnostic, 100 + user);
      guided_mb.add(static_cast<double>(g.qoe.bytes_downloaded) / 1e6);
      agnostic_mb.add(static_cast<double>(a.qoe.bytes_downloaded) / 1e6);
      guided_waste.add(100.0 * static_cast<double>(g.qoe.bytes_wasted) /
                       static_cast<double>(g.qoe.bytes_downloaded));
      agnostic_waste.add(100.0 * static_cast<double>(a.qoe.bytes_wasted) /
                         static_cast<double>(a.qoe.bytes_downloaded));
    }
    const double saving =
        100.0 * (1.0 - guided_mb.mean() / agnostic_mb.mean());
    table.add_row({std::to_string(q), TextTable::num(agnostic_mb.mean(), 1),
                   TextTable::num(guided_mb.mean(), 1), TextTable::num(saving, 1),
                   TextTable::num(agnostic_waste.mean(), 1),
                   TextTable::num(guided_waste.mean(), 1)});
  }
  std::cout << table.str() << '\n';

  // Tile granularity sweep: coarse tiles force over-fetch (a partially
  // visible tile is fetched whole), so the saving grows with finer grids —
  // the knob behind the 45% [16] vs 60-80% [37] spread in the literature.
  std::cout << "Saving vs tile granularity (quality pinned to level 2):\n";
  TextTable grid_table({"Tile grid", "Agnostic MB", "Guided MB", "Saving %"});
  for (const auto& [rows, cols] : {std::pair{2, 4}, {4, 6}, {6, 8}, {8, 12}}) {
    media::VideoModelConfig vcfg;
    vcfg.duration_s = kVideoSeconds;
    vcfg.tile_rows = rows;
    vcfg.tile_cols = cols;
    vcfg.seed = 7;
    auto video = std::make_shared<media::VideoModel>(vcfg);
    core::SessionConfig guided;
    guided.abr.sperke.regular_vra = "fixed-2";
    core::SessionConfig agnostic;
    agnostic.planner = core::PlannerMode::kFovAgnostic;
    agnostic.abr.sperke.regular_vra = "fixed-2";
    const auto g = run_vod(bandwidth, guided, 150, nullptr, video);
    const auto a = run_vod(bandwidth, agnostic, 150, nullptr, video);
    const double g_mb = static_cast<double>(g.qoe.bytes_downloaded) / 1e6;
    const double a_mb = static_cast<double>(a.qoe.bytes_downloaded) / 1e6;
    grid_table.add_row({std::to_string(rows) + "x" + std::to_string(cols),
                        TextTable::num(a_mb, 1), TextTable::num(g_mb, 1),
                        TextTable::num(100.0 * (1.0 - g_mb / a_mb), 1)});
  }
  std::cout << grid_table.str() << '\n';

  // OOS-budget ablation at the finest grid: the protection margin is what
  // separates the conservative ~45% regime [16] from the aggressive
  // 60-80% regime [37] — and it buys stall protection, not waste.
  std::cout << "Saving vs OOS protection budget (8x12 tiles, quality 2):\n";
  TextTable oos_table({"OOS budget", "Guided MB", "Saving %", "Stall s", "Urgent"});
  media::VideoModelConfig vcfg;
  vcfg.duration_s = kVideoSeconds;
  vcfg.tile_rows = 8;
  vcfg.tile_cols = 12;
  vcfg.seed = 7;
  auto fine_video = std::make_shared<media::VideoModel>(vcfg);
  core::SessionConfig agnostic_cfg;
  agnostic_cfg.planner = core::PlannerMode::kFovAgnostic;
  agnostic_cfg.abr.sperke.regular_vra = "fixed-2";
  const auto agnostic_fine = run_vod(bandwidth, agnostic_cfg, 150, nullptr, fine_video);
  const double a_mb = static_cast<double>(agnostic_fine.qoe.bytes_downloaded) / 1e6;
  for (double budget : {0.5, 0.35, 0.15, 0.05}) {
    core::SessionConfig guided;
    guided.abr.sperke.regular_vra = "fixed-2";
    guided.abr.sperke.oos.budget_fraction = budget;
    const auto g = run_vod(bandwidth, guided, 150, nullptr, fine_video);
    const double g_mb = static_cast<double>(g.qoe.bytes_downloaded) / 1e6;
    oos_table.add_row({TextTable::num(budget, 2), TextTable::num(g_mb, 1),
                       TextTable::num(100.0 * (1.0 - g_mb / a_mb), 1),
                       TextTable::num(g.qoe.stall_seconds, 2),
                       std::to_string(g.urgent_fetches)});
  }
  std::cout << oos_table.str() << '\n';

  // Server-side cost (§2): tiling keeps one copy per quality (plus the SVC
  // variant); FoV-versioning keeps up to 88 per-direction versions [46].
  {
    auto video = standard_video();
    const media::ContentStore store(video);
    const double tiling = store.storage_bytes_tiling(false) / 1e6;
    const double tiling_svc = store.storage_bytes_tiling(true) / 1e6;
    const double versioning = store.storage_bytes_versioning(88) / 1e6;
    std::cout << "Server storage for this 60 s video (SS2 tradeoff):\n";
    TextTable storage({"Approach", "Storage MB", "vs tiling"});
    storage.add_row({"tiling (AVC ladder)", TextTable::num(tiling, 0), "1.0x"});
    storage.add_row({"tiling (AVC + SVC)", TextTable::num(tiling_svc, 0),
                     TextTable::num(tiling_svc / tiling, 1) + "x"});
    storage.add_row({"versioning, 88 versions (Oculus [46])",
                     TextTable::num(versioning, 0),
                     TextTable::num(versioning / tiling, 1) + "x"});
    std::cout << storage.str() << '\n';
  }

  // Secondary claim (§1): under the same perceived quality, 360 videos are
  // ~4-5x larger than conventional videos, because the panorama is ~5x the
  // viewport's solid angle. We report the panorama/viewport byte ratio.
  auto video = standard_video();
  const auto visible =
      video->geometry().visible_tiles({0.0, 0.0, 0.0}, {100.0, 90.0});
  double viewport_share = 0.0;
  for (geo::TileId t : visible) {
    viewport_share += video->tile_shares()[static_cast<std::size_t>(t)];
  }
  std::cout << "Panorama bytes / viewport-tile bytes at equal quality: "
            << TextTable::num(1.0 / viewport_share, 1)
            << "x (paper: ~5x, SS1)\n";
  return 0;
}
