#include <gtest/gtest.h>

#include <memory>

#include "core/transport.h"
#include "live/tiled_viewer.h"
#include "net/link.h"
#include "sim/simulator.h"

namespace sperke::live {
namespace {

std::shared_ptr<media::VideoModel> live_video(double duration_s = 30.0) {
  media::VideoModelConfig cfg;
  cfg.duration_s = duration_s;
  cfg.chunk_duration_s = 1.0;
  cfg.tile_rows = 4;
  cfg.tile_cols = 6;
  cfg.seed = 13;
  return std::make_shared<media::VideoModel>(cfg);
}

hmp::HeadTrace viewer_trace(std::uint64_t seed, double duration_s = 60.0) {
  hmp::HeadTraceConfig cfg;
  cfg.duration_s = duration_s;
  cfg.attractors = hmp::default_attractors(duration_s, 77);
  cfg.seed = seed;
  return hmp::generate_head_trace(cfg);
}

TiledLiveReport run_viewer(double link_kbps, TiledLiveConfig config,
                           std::uint64_t trace_seed = 5,
                           LiveCrowdHmp* crowd = nullptr) {
  sim::Simulator simulator;
  net::Link link(simulator,
                 net::LinkConfig{.name = "dl",
                                 .bandwidth = net::BandwidthTrace::constant(link_kbps),
                                 .rtt = sim::milliseconds(30), .faults = {}});
  core::SingleLinkTransport transport(link, {.max_concurrent = 12, .recovery = {}});
  auto video = live_video();
  const auto trace = viewer_trace(trace_seed);
  TiledLiveSession session(simulator, video, transport, trace, config, crowd);
  session.start();
  simulator.run_until(sim::seconds(120.0));
  return session.report();
}

TEST(TiledLive, FastLinkPlaysEverything) {
  const auto report = run_viewer(50'000.0, TiledLiveConfig{});
  EXPECT_TRUE(report.finished);
  EXPECT_EQ(report.chunks_played, 30);
  EXPECT_EQ(report.chunks_skipped, 0);
  EXPECT_LT(report.mean_blank_fraction, 0.05);
  EXPECT_GT(report.qoe.mean_viewport_utility, 0.4);
}

TEST(TiledLive, ZeroBandwidthSkipsEverything) {
  const auto report = run_viewer(0.001, TiledLiveConfig{});
  EXPECT_TRUE(report.finished);
  EXPECT_EQ(report.chunks_played, 0);
  EXPECT_EQ(report.chunks_skipped, 30);
  EXPECT_EQ(report.qoe.skipped_chunks, 30);
}

TEST(TiledLive, ConstrainedLinkDegradesGracefully) {
  const auto fast = run_viewer(50'000.0, TiledLiveConfig{});
  const auto slow = run_viewer(4'000.0, TiledLiveConfig{});
  EXPECT_TRUE(slow.finished);
  // Live never rebuffers: degradations appear as quality/blank/skips.
  EXPECT_EQ(slow.qoe.stall_events, 0);
  EXPECT_LE(slow.qoe.mean_viewport_utility, fast.qoe.mean_viewport_utility);
  EXPECT_EQ(slow.chunks_played + slow.chunks_skipped, 30);
}

TEST(TiledLive, RejectsInfeasibleLatencyTarget) {
  sim::Simulator simulator;
  net::Link link(simulator, net::LinkConfig{});
  core::SingleLinkTransport transport(link);
  auto video = live_video();
  const auto trace = viewer_trace(1);
  TiledLiveConfig config;
  config.e2e_target_s = 1.0;  // below ingest (3 s) + one chunk
  EXPECT_THROW(
      TiledLiveSession(simulator, video, transport, trace, config),
      std::invalid_argument);
}

TEST(TiledLive, DoubleStartThrows) {
  sim::Simulator simulator;
  net::Link link(simulator, net::LinkConfig{});
  core::SingleLinkTransport transport(link);
  auto video = live_video();
  const auto trace = viewer_trace(1);
  TiledLiveSession session(simulator, video, transport, trace, TiledLiveConfig{});
  session.start();
  EXPECT_THROW(session.start(), std::logic_error);
}

TEST(TiledLive, ViewerPopulatesCrowdMap) {
  auto video = live_video();
  LiveCrowdHmp crowd(video->tile_count(), video->chunk_count());
  (void)run_viewer(50'000.0, TiledLiveConfig{}, 5, &crowd);
  // A ~8 s latency viewer's views become knowable shortly after display.
  int total = 0;
  for (media::ChunkIndex c = 0; c < video->chunk_count(); ++c) {
    total += crowd.observations(c, sim::seconds(1e6));
  }
  EXPECT_EQ(total, 30);
  // Observation for chunk 0 is stamped at ~ 8 s + report delay.
  EXPECT_EQ(crowd.observations(0, sim::seconds(7.0)), 0);
  EXPECT_EQ(crowd.observations(0, sim::seconds(9.0)), 1);
}

TEST(TiledLive, CrowdMismatchThrows) {
  sim::Simulator simulator;
  net::Link link(simulator, net::LinkConfig{});
  core::SingleLinkTransport transport(link);
  auto video = live_video();
  const auto trace = viewer_trace(1);
  LiveCrowdHmp wrong(99, 10);
  EXPECT_THROW(TiledLiveSession(simulator, video, transport, trace,
                                TiledLiveConfig{}, &wrong),
               std::invalid_argument);
}

TEST(TiledLive, SvcUpgradesHappenOnGoodLinks) {
  TiledLiveConfig config;
  config.abr.sperke.mode = abr::EncodingMode::kSvc;
  const auto report = run_viewer(40'000.0, config);
  EXPECT_TRUE(report.finished);
  EXPECT_GT(report.upgrades, 0);
}

TEST(TiledLive, EndToEndCrowdHelpsLaggard) {
  // Shared world: 6 low-latency viewers feed the crowd map while one
  // laggard (25 s behind) watches with / without the crowd prior.
  auto run_population = [&](bool laggard_uses_crowd) {
    sim::Simulator simulator;
    auto video = live_video();
    LiveCrowdHmp crowd(video->tile_count(), video->chunk_count());

    std::vector<std::unique_ptr<net::Link>> links;
    std::vector<std::unique_ptr<core::SingleLinkTransport>> transports;
    std::vector<std::unique_ptr<hmp::HeadTrace>> traces;
    std::vector<std::unique_ptr<TiledLiveSession>> sessions;
    for (int v = 0; v < 6; ++v) {
      links.push_back(std::make_unique<net::Link>(
          simulator,
          net::LinkConfig{.bandwidth = net::BandwidthTrace::constant(30'000.0),
                          .rtt = sim::milliseconds(25), .faults = {}}));
      transports.push_back(
          std::make_unique<core::SingleLinkTransport>(*links.back(),
                                                      core::TransportOptions{.max_concurrent = 12, .recovery = {}}));
      traces.push_back(
          std::make_unique<hmp::HeadTrace>(viewer_trace(100 + v)));
      TiledLiveConfig cfg;
      cfg.e2e_target_s = 5.0 + v;  // 5..10 s: the low-latency crowd
      sessions.push_back(std::make_unique<TiledLiveSession>(
          simulator, video, *transports.back(), *traces.back(), cfg, &crowd));
      sessions.back()->start();
    }
    // The laggard: 25 s behind, on a tight link where FoV accuracy counts.
    links.push_back(std::make_unique<net::Link>(
        simulator,
        net::LinkConfig{.bandwidth = net::BandwidthTrace::constant(5'000.0),
                        .rtt = sim::milliseconds(40), .faults = {}}));
    transports.push_back(
        std::make_unique<core::SingleLinkTransport>(*links.back(),
                                                      core::TransportOptions{.max_concurrent = 12, .recovery = {}}));
    traces.push_back(std::make_unique<hmp::HeadTrace>(viewer_trace(200)));
    TiledLiveConfig laggard_cfg;
    laggard_cfg.e2e_target_s = 25.0;
    sessions.push_back(std::make_unique<TiledLiveSession>(
        simulator, video, *transports.back(), *traces.back(), laggard_cfg,
        laggard_uses_crowd ? &crowd : nullptr));
    sessions.back()->start();

    simulator.run_until(sim::seconds(180.0));
    return sessions.back()->report();
  };

  const auto with_crowd = run_population(true);
  const auto without = run_population(false);
  ASSERT_TRUE(with_crowd.finished);
  ASSERT_TRUE(without.finished);
  // The crowd prior should not hurt, and typically reduces blanks/skips.
  EXPECT_LE(with_crowd.chunks_skipped, without.chunks_skipped + 1);
  EXPECT_GE(with_crowd.qoe.score, without.qoe.score - 2.0);
}

}  // namespace
}  // namespace sperke::live
