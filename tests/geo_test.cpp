#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "geo/orientation.h"
#include "geo/projection.h"
#include "geo/tile_grid.h"
#include "geo/visibility.h"
#include "util/rng.h"

namespace sperke::geo {
namespace {

TEST(Orientation, DirectionOfFront) {
  const Vec3 d = Orientation{0.0, 0.0, 0.0}.direction();
  EXPECT_NEAR(d.x, 1.0, 1e-12);
  EXPECT_NEAR(d.y, 0.0, 1e-12);
  EXPECT_NEAR(d.z, 0.0, 1e-12);
}

TEST(Orientation, DirectionOfPoles) {
  const Vec3 up = Orientation{0.0, 90.0, 0.0}.direction();
  EXPECT_NEAR(up.z, 1.0, 1e-12);
  const Vec3 down = Orientation{45.0, -90.0, 0.0}.direction();
  EXPECT_NEAR(down.z, -1.0, 1e-12);
}

TEST(Orientation, NormalizedWrapsYaw) {
  const Orientation o = Orientation{270.0, 100.0, 0.0}.normalized();
  EXPECT_DOUBLE_EQ(o.yaw_deg, -90.0);
  EXPECT_DOUBLE_EQ(o.pitch_deg, 90.0);
}

TEST(Orientation, LonLatRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double lon = rng.uniform(-180.0, 180.0);
    const double lat = rng.uniform(-89.0, 89.0);
    const LonLat ll = lonlat_from_direction(direction_from_lonlat(lon, lat));
    EXPECT_NEAR(ll.lon_deg, lon, 1e-9);
    EXPECT_NEAR(ll.lat_deg, lat, 1e-9);
  }
}

TEST(Orientation, AngularDistanceProperties) {
  const Orientation a{0.0, 0.0, 0.0};
  const Orientation b{90.0, 0.0, 0.0};
  const Orientation c{180.0, 0.0, 0.0};
  EXPECT_NEAR(angular_distance_deg(a, a), 0.0, 1e-9);
  EXPECT_NEAR(angular_distance_deg(a, b), 90.0, 1e-9);
  EXPECT_NEAR(angular_distance_deg(a, c), 180.0, 1e-9);
  EXPECT_NEAR(angular_distance_deg(a, b), angular_distance_deg(b, a), 1e-12);
}

TEST(Orientation, ViewBasisIsOrthonormal) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const Orientation o{rng.uniform(-180.0, 180.0), rng.uniform(-85.0, 85.0),
                        rng.uniform(-180.0, 180.0)};
    const ViewBasis b = view_basis(o);
    EXPECT_NEAR(b.forward.norm(), 1.0, 1e-9);
    EXPECT_NEAR(b.right.norm(), 1.0, 1e-9);
    EXPECT_NEAR(b.up.norm(), 1.0, 1e-9);
    EXPECT_NEAR(b.forward.dot(b.right), 0.0, 1e-9);
    EXPECT_NEAR(b.forward.dot(b.up), 0.0, 1e-9);
    EXPECT_NEAR(b.right.dot(b.up), 0.0, 1e-9);
  }
}

TEST(Orientation, RollRotatesBasisNotDirection) {
  const Orientation flat{30.0, 10.0, 0.0};
  const Orientation rolled{30.0, 10.0, 45.0};
  const Vec3 d1 = flat.direction();
  const Vec3 d2 = rolled.direction();
  EXPECT_NEAR(angle_between(d1, d2), 0.0, 1e-12);
  const ViewBasis b1 = view_basis(flat);
  const ViewBasis b2 = view_basis(rolled);
  EXPECT_GT(angle_between(b1.up, b2.up), 0.1);
}

class ProjectionRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ProjectionRoundTrip, DirectionUvDirection) {
  const auto projection = make_projection(GetParam());
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const Vec3 dir =
        direction_from_lonlat(rng.uniform(-180.0, 180.0), rng.uniform(-88.0, 88.0));
    const Uv uv = projection->uv_from_direction(dir);
    EXPECT_GE(uv.u, 0.0);
    EXPECT_LT(uv.u, 1.0);
    EXPECT_GE(uv.v, 0.0);
    EXPECT_LT(uv.v, 1.0);
    const Vec3 back = projection->direction_from_uv(uv);
    EXPECT_NEAR(angle_between(dir, back), 0.0, 1e-6)
        << "projection=" << GetParam() << " lon/lat sample " << i;
  }
}

TEST_P(ProjectionRoundTrip, UvDirectionUvIsStable) {
  const auto projection = make_projection(GetParam());
  Rng rng(19);
  for (int i = 0; i < 300; ++i) {
    const Uv uv{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    const Vec3 dir = projection->direction_from_uv(uv);
    const Uv uv2 = projection->uv_from_direction(dir);
    const Vec3 dir2 = projection->direction_from_uv(uv2);
    EXPECT_NEAR(angle_between(dir, dir2), 0.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProjections, ProjectionRoundTrip,
                         ::testing::Values("equirectangular", "cubemap",
                                           "offset-cubemap"));

TEST(OffsetCubeMap, ZeroOffsetMatchesPlainCubeMap) {
  const CubeMapProjection plain;
  const OffsetCubeMapProjection offset(Vec3{0.0, 0.0, 0.0});
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    const Vec3 d =
        direction_from_lonlat(rng.uniform(-180.0, 180.0), rng.uniform(-85.0, 85.0));
    const Uv a = plain.uv_from_direction(d);
    const Uv b = offset.uv_from_direction(d);
    EXPECT_NEAR(a.u, b.u, 1e-9);
    EXPECT_NEAR(a.v, b.v, 1e-9);
  }
}

TEST(OffsetCubeMap, SpendsMorePlaneAreaOnTheFront) {
  // With the offset pointing away from +x, front directions spread over
  // more of the atlas: the front-center tile covers *less* solid angle
  // than its mirror at the back.
  const TileGeometry tg(make_projection("offset-cubemap"), TileGrid(4, 6));
  const auto& w = tg.solid_angle_fractions();
  const TileId front = tg.grid().tile_at(
      tg.projection().uv_from_direction(Vec3{1.0, 0.0, 0.0}));
  const TileId back = tg.grid().tile_at(
      tg.projection().uv_from_direction(Vec3{-1.0, 0.0, 0.0}));
  EXPECT_LT(w[static_cast<std::size_t>(front)], w[static_cast<std::size_t>(back)]);
}

TEST(OffsetCubeMap, RejectsOverlongOffset) {
  EXPECT_THROW(OffsetCubeMapProjection(Vec3{1.0, 0.0, 0.0}),
               std::invalid_argument);
}

TEST(Projection, EquirectMapsFrontToCenter) {
  EquirectangularProjection p;
  const Uv uv = p.uv_from_direction(Vec3{1.0, 0.0, 0.0});
  EXPECT_NEAR(uv.u, 0.5, 1e-12);
  EXPECT_NEAR(uv.v, 0.5, 1e-12);
}

TEST(Projection, UnknownNameThrows) {
  EXPECT_THROW((void)make_projection("mercator"), std::invalid_argument);
}

TEST(TileGrid, BasicIndexing) {
  const TileGrid g(4, 6);
  EXPECT_EQ(g.tile_count(), 24);
  EXPECT_EQ(g.tile_id(0, 0), 0);
  EXPECT_EQ(g.tile_id(3, 5), 23);
  EXPECT_EQ(g.row_of(13), 2);
  EXPECT_EQ(g.col_of(13), 1);
}

TEST(TileGrid, RejectsBadDimsAndIds) {
  EXPECT_THROW(TileGrid(0, 4), std::invalid_argument);
  const TileGrid g(2, 2);
  EXPECT_THROW((void)g.tile_id(2, 0), std::out_of_range);
  EXPECT_THROW((void)g.row_of(4), std::out_of_range);
}

TEST(TileGrid, TileAtCoversPlane) {
  const TileGrid g(3, 5);
  EXPECT_EQ(g.tile_at({0.0, 0.0}), g.tile_id(0, 0));
  EXPECT_EQ(g.tile_at({0.999, 0.999}), g.tile_id(2, 4));
  EXPECT_EQ(g.tile_at({0.5, 0.5}), g.tile_id(1, 2));
}

TEST(TileGrid, CenterInvertsToSameTile) {
  const TileGrid g(4, 8);
  for (TileId id = 0; id < g.tile_count(); ++id) {
    EXPECT_EQ(g.tile_at(g.tile_center(id)), id);
  }
}

TEST(TileGrid, NeighborsWrapHorizontally) {
  const TileGrid g(2, 4);
  const auto nb = g.neighbors(g.tile_id(0, 0));
  EXPECT_NE(std::find(nb.begin(), nb.end(), g.tile_id(0, 3)), nb.end());
  EXPECT_NE(std::find(nb.begin(), nb.end(), g.tile_id(0, 1)), nb.end());
  EXPECT_NE(std::find(nb.begin(), nb.end(), g.tile_id(1, 0)), nb.end());
  // No vertical wrap: row -1 absent.
  EXPECT_EQ(nb.size(), 3u);
}

class TileGeometryTest : public ::testing::Test {
 protected:
  TileGeometry make(const char* proj = "equirectangular", int rows = 4, int cols = 6) {
    return TileGeometry(make_projection(proj), TileGrid(rows, cols));
  }
};

TEST_F(TileGeometryTest, SolidAnglesSumToOne) {
  for (const char* proj : {"equirectangular", "cubemap"}) {
    const auto tg = make(proj);
    const auto& w = tg.solid_angle_fractions();
    const double sum = std::accumulate(w.begin(), w.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9) << proj;
    for (double f : w) EXPECT_GT(f, 0.0) << proj;
  }
}

TEST_F(TileGeometryTest, EquirectPoleTilesHaveSmallerSolidAngle) {
  const auto tg = make("equirectangular", 4, 6);
  const auto& w = tg.solid_angle_fractions();
  // Row 0 (top/pole) tiles cover less sphere than row 1/2 (equator) tiles.
  EXPECT_LT(w[static_cast<std::size_t>(tg.grid().tile_id(0, 0))],
            w[static_cast<std::size_t>(tg.grid().tile_id(1, 0))]);
}

TEST_F(TileGeometryTest, VisibleTilesContainCenterTile) {
  const auto tg = make();
  const Viewport vp{100.0, 90.0};
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    const Orientation o{rng.uniform(-180.0, 180.0), rng.uniform(-60.0, 60.0), 0.0};
    const auto visible = tg.visible_tiles(o, vp);
    const TileId center =
        tg.grid().tile_at(tg.projection().uv_from_direction(o.direction()));
    EXPECT_NE(std::find(visible.begin(), visible.end(), center), visible.end());
  }
}

TEST_F(TileGeometryTest, VisibleSetIsProperSubsetForNarrowFov) {
  const auto tg = make();
  const auto visible = tg.visible_tiles({0.0, 0.0, 0.0}, Viewport{90.0, 90.0});
  EXPECT_GT(visible.size(), 0u);
  EXPECT_LT(static_cast<int>(visible.size()), tg.grid().tile_count());
}

TEST_F(TileGeometryTest, WiderFovSeesAtLeastAsManyTiles) {
  const auto tg = make();
  const Orientation o{20.0, 10.0, 0.0};
  const auto narrow = tg.visible_tiles(o, Viewport{60.0, 60.0});
  const auto wide = tg.visible_tiles(o, Viewport{120.0, 100.0});
  EXPECT_GE(wide.size(), narrow.size());
  for (TileId id : narrow) {
    EXPECT_NE(std::find(wide.begin(), wide.end(), id), wide.end());
  }
}

TEST_F(TileGeometryTest, TileDistancesMatchCenters) {
  const auto tg = make();
  const Orientation o{0.0, 0.0, 0.0};
  const auto dist = tg.tile_distances_deg(o);
  ASSERT_EQ(static_cast<int>(dist.size()), tg.grid().tile_count());
  for (TileId id = 0; id < tg.grid().tile_count(); ++id) {
    const double expect =
        rad_to_deg(angle_between(o.direction(), tg.tile_center_direction(id)));
    EXPECT_NEAR(dist[static_cast<std::size_t>(id)], expect, 1e-9);
  }
}

TEST_F(TileGeometryTest, TilesByDistanceIsSortedPermutation) {
  const auto tg = make();
  const Orientation o{45.0, 20.0, 0.0};
  const auto order = tg.tiles_by_distance(o);
  const auto dist = tg.tile_distances_deg(o);
  ASSERT_EQ(static_cast<int>(order.size()), tg.grid().tile_count());
  std::vector<char> seen(order.size(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    seen[static_cast<std::size_t>(order[i])] = 1;
    if (i > 0) {
      EXPECT_LE(dist[static_cast<std::size_t>(order[i - 1])],
                dist[static_cast<std::size_t>(order[i])]);
    }
  }
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 1),
            static_cast<long>(order.size()));
}

TEST_F(TileGeometryTest, OosRingsZeroOnVisibleMonotoneOutward) {
  const auto tg = make();
  const auto visible = tg.visible_tiles({0.0, 0.0, 0.0}, Viewport{100.0, 90.0});
  const auto rings = tg.oos_rings(visible);
  for (TileId id : visible) EXPECT_EQ(rings[static_cast<std::size_t>(id)], 0);
  // Every non-visible tile has ring >= 1 and a neighbor with ring - 1.
  for (TileId id = 0; id < tg.grid().tile_count(); ++id) {
    const int r = rings[static_cast<std::size_t>(id)];
    if (r == 0) continue;
    EXPECT_GE(r, 1);
    bool has_closer = false;
    for (TileId nb : tg.grid().neighbors(id)) {
      if (rings[static_cast<std::size_t>(nb)] == r - 1) has_closer = true;
    }
    EXPECT_TRUE(has_closer) << "tile " << id << " ring " << r;
  }
}

TEST_F(TileGeometryTest, OosRingsEmptyVisibleAllUnreached) {
  const auto tg = make();
  const auto rings = tg.oos_rings({});
  for (int r : rings) EXPECT_EQ(r, tg.grid().tile_count());
}

TEST_F(TileGeometryTest, FullSphereFovSeesManyTiles) {
  // A very wide viewport on a coarse grid should cover most of the sphere.
  const auto tg = make("equirectangular", 2, 4);
  const auto visible = tg.visible_tiles({0.0, 0.0, 0.0}, Viewport{170.0, 170.0});
  EXPECT_GE(static_cast<int>(visible.size()), 4);
}

}  // namespace
}  // namespace sperke::geo
