#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "core/buffer.h"
#include "core/session.h"
#include "core/transport.h"
#include "hmp/head_trace.h"
#include "net/link.h"
#include "sim/simulator.h"

namespace sperke::core {
namespace {

using media::ChunkAddress;
using media::ChunkKey;
using media::Encoding;

std::shared_ptr<media::VideoModel> make_video(double duration_s = 20.0) {
  media::VideoModelConfig cfg;
  cfg.duration_s = duration_s;
  cfg.chunk_duration_s = 1.0;
  cfg.tile_rows = 2;
  cfg.tile_cols = 4;
  cfg.seed = 7;
  return std::make_shared<media::VideoModel>(cfg);
}

TEST(PlaybackBuffer, EmptyHasNothing) {
  PlaybackBuffer buffer(make_video());
  EXPECT_EQ(buffer.displayable_quality({0, 0}), -1);
  EXPECT_FALSE(buffer.has_displayable({0, 0}));
  EXPECT_EQ(buffer.total_bytes(), 0);
}

TEST(PlaybackBuffer, AvcBestCopyWins) {
  PlaybackBuffer buffer(make_video());
  buffer.add({{1, 2}, Encoding::kAvc, 1});
  buffer.add({{1, 2}, Encoding::kAvc, 3});
  buffer.add({{1, 2}, Encoding::kAvc, 0});
  EXPECT_EQ(buffer.displayable_quality({1, 2}), 3);
}

TEST(PlaybackBuffer, SvcNeedsContiguousLayers) {
  PlaybackBuffer buffer(make_video());
  buffer.add({{0, 0}, Encoding::kSvc, 0});
  buffer.add({{0, 0}, Encoding::kSvc, 2});  // layer 1 missing
  EXPECT_EQ(buffer.displayable_quality({0, 0}), 0);
  buffer.add({{0, 0}, Encoding::kSvc, 1});
  EXPECT_EQ(buffer.displayable_quality({0, 0}), 2);
}

TEST(PlaybackBuffer, SvcEnhancementAloneNotPlayable) {
  PlaybackBuffer buffer(make_video());
  buffer.add({{0, 0}, Encoding::kSvc, 1});
  EXPECT_EQ(buffer.displayable_quality({0, 0}), -1);
}

TEST(PlaybackBuffer, DuplicateAddsCountOnce) {
  auto video = make_video();
  PlaybackBuffer buffer(video);
  const ChunkAddress addr{{0, 0}, Encoding::kAvc, 2};
  buffer.add(addr);
  const auto once = buffer.total_bytes();
  buffer.add(addr);
  EXPECT_EQ(buffer.total_bytes(), once);
}

TEST(PlaybackBuffer, MixedEncodingsTakeMax) {
  PlaybackBuffer buffer(make_video());
  buffer.add({{0, 0}, Encoding::kAvc, 1});
  buffer.add({{0, 0}, Encoding::kSvc, 0});
  buffer.add({{0, 0}, Encoding::kSvc, 1});
  buffer.add({{0, 0}, Encoding::kSvc, 2});
  EXPECT_EQ(buffer.displayable_quality({0, 0}), 2);
}

TEST(PlaybackBuffer, CellBytesTracksDownloads) {
  auto video = make_video();
  PlaybackBuffer buffer(video);
  const ChunkAddress a{{0, 0}, Encoding::kSvc, 0};
  const ChunkAddress b{{0, 0}, Encoding::kSvc, 1};
  buffer.add(a);
  buffer.add(b);
  EXPECT_EQ(buffer.cell_bytes({0, 0}),
            video->size_bytes(a) + video->size_bytes(b));
}

TEST(PlaybackBuffer, CellBytesUsedSvcLayers) {
  auto video = make_video();
  PlaybackBuffer buffer(video);
  for (media::LayerIndex l = 0; l <= 2; ++l) {
    buffer.add({{0, 0}, Encoding::kSvc, l});
  }
  // Displaying at quality 1 uses layers 0..1 only.
  const auto used = buffer.cell_bytes_used({0, 0}, 1);
  EXPECT_EQ(used, video->svc_layer_size_bytes(0, {0, 0}) +
                      video->svc_layer_size_bytes(1, {0, 0}));
  EXPECT_LT(used, buffer.cell_bytes({0, 0}));
}

TEST(PlaybackBuffer, EvictBeforeDropsOldChunks) {
  PlaybackBuffer buffer(make_video());
  buffer.add({{0, 0}, Encoding::kAvc, 1});
  buffer.add({{0, 3}, Encoding::kAvc, 1});
  buffer.evict_before(2);
  EXPECT_FALSE(buffer.has_displayable({0, 0}));
  EXPECT_TRUE(buffer.has_displayable({0, 3}));
}

TEST(PlaybackBuffer, ContiguousChunksCountsRun) {
  PlaybackBuffer buffer(make_video());
  const std::vector<geo::TileId> tiles{0, 1};
  for (media::ChunkIndex i = 0; i < 3; ++i) {
    buffer.add({{0, i}, Encoding::kAvc, 0});
    buffer.add({{1, i}, Encoding::kAvc, 0});
  }
  buffer.add({{0, 4}, Encoding::kAvc, 0});  // gap at 3
  EXPECT_EQ(buffer.contiguous_chunks(0, tiles), 3);
  EXPECT_EQ(buffer.contiguous_chunks(1, tiles), 2);
  EXPECT_EQ(buffer.contiguous_chunks(3, tiles), 0);
}

class TransportTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  net::Link link{simulator,
                 net::LinkConfig{.name = "test",
                                 .bandwidth = net::BandwidthTrace::constant(8000.0),
                                 .rtt = sim::Duration{0},
                                 .loss_rate = 0.0, .faults = {}}};
};

TEST_F(TransportTest, DeliversAndEstimates) {
  SingleLinkTransport transport(link);
  bool done = false;
  ChunkRequest req;
  req.id = net::to_chunk_id({{0, 0}, Encoding::kAvc, 0});
  req.bytes = 1'000'000;
  req.on_done = [&](sim::Time, FetchOutcome outcome) {
    done = delivered(outcome);
  };
  transport.fetch(std::move(req));
  EXPECT_EQ(transport.in_flight(), 1);
  simulator.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(transport.in_flight(), 0);
  EXPECT_EQ(transport.bytes_fetched(), 1'000'000);
  EXPECT_NEAR(transport.estimated_kbps(), 8000.0, 100.0);
}

TEST_F(TransportTest, ConcurrencyLimitQueues) {
  SingleLinkTransport transport(link, {.max_concurrent = 1, .recovery = {}});
  std::vector<int> order;
  auto submit = [&](int id, bool urgent) {
    ChunkRequest req;
    req.id = net::to_chunk_id({{id, 0}, Encoding::kAvc, 0});
    req.bytes = 100'000;
    req.urgent = urgent;
    req.on_done = [&order, id](sim::Time, FetchOutcome) { order.push_back(id); };
    transport.fetch(std::move(req));
  };
  submit(0, false);  // starts immediately
  submit(1, false);
  submit(2, true);  // urgent: should overtake request 1
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST_F(TransportTest, RejectsBadRequests) {
  SingleLinkTransport transport(link);
  ChunkRequest req;
  req.bytes = 0;
  EXPECT_THROW(transport.fetch(std::move(req)), std::invalid_argument);
  EXPECT_THROW(SingleLinkTransport(link, {.max_concurrent = 0, .recovery = {}}),
               std::invalid_argument);
  TransportOptions bad_retries;
  bad_retries.recovery.enabled = true;
  bad_retries.recovery.max_retries = -1;
  EXPECT_THROW(SingleLinkTransport(link, bad_retries), std::invalid_argument);
}

TEST(TransportAdapter, LinkCtorMatchesExplicitLinkSource) {
  // The deprecated SingleLinkTransport(net::Link&) ctor is a thin adapter
  // over an owned net::LinkSource; a mixed-priority workload through both
  // wirings must settle byte-identically (same outcomes, same instants).
  struct Run {
    std::vector<std::pair<sim::Time, FetchOutcome>> settled;
    std::int64_t bytes = 0;
    double kbps = 0.0;
  };
  const auto run_workload = [](bool explicit_source) {
    sim::Simulator simulator;
    net::Link link{simulator,
                   net::LinkConfig{.name = "adapter",
                                   .bandwidth = net::BandwidthTrace::constant(6000.0),
                                   .rtt = sim::milliseconds(40),
                                   .loss_rate = 0.0,
                                   .faults = {}}};
    std::unique_ptr<net::LinkSource> source;
    std::unique_ptr<SingleLinkTransport> transport;
    TransportOptions options;
    options.max_concurrent = 2;
    if (explicit_source) {
      source = std::make_unique<net::LinkSource>(link);
      transport = std::make_unique<SingleLinkTransport>(*source, options);
    } else {
      transport = std::make_unique<SingleLinkTransport>(link, options);
    }
    Run run;
    for (int i = 0; i < 8; ++i) {
      ChunkRequest req;
      req.id = net::to_chunk_id({{i % 4, i / 4}, Encoding::kAvc, i % 3});
      req.bytes = 50'000 + 10'000 * i;
      req.urgent = i % 3 == 0;
      req.spatial = i % 2 == 0 ? abr::SpatialClass::kFov : abr::SpatialClass::kOos;
      req.on_done = [&run](sim::Time t, FetchOutcome outcome) {
        run.settled.emplace_back(t, outcome);
      };
      transport->fetch(std::move(req));
    }
    simulator.run();
    run.bytes = transport->bytes_fetched();
    run.kbps = transport->estimated_kbps();
    return run;
  };
  const Run adapter = run_workload(false);
  const Run explicit_wiring = run_workload(true);
  ASSERT_EQ(adapter.settled.size(), 8u);
  EXPECT_EQ(adapter.settled, explicit_wiring.settled);
  EXPECT_EQ(adapter.bytes, explicit_wiring.bytes);
  EXPECT_EQ(adapter.kbps, explicit_wiring.kbps);
}

TEST(TransportRecovery, BackoffGrowsGeometrically) {
  RecoveryPolicy policy;
  policy.base_backoff = sim::milliseconds(100);
  policy.backoff_multiplier = 2.0;
  EXPECT_EQ(retry_backoff(policy, 1), sim::milliseconds(100));
  EXPECT_EQ(retry_backoff(policy, 2), sim::milliseconds(200));
  EXPECT_EQ(retry_backoff(policy, 3), sim::milliseconds(400));
}

TEST(TransportRecovery, RetryAllowedHonoursBudgetAndOosRule) {
  RecoveryPolicy policy;
  policy.enabled = true;
  policy.max_retries = 2;
  ChunkRequest fov;
  fov.spatial = abr::SpatialClass::kFov;
  EXPECT_TRUE(retry_allowed(policy, fov, 0));
  EXPECT_TRUE(retry_allowed(policy, fov, 1));
  EXPECT_FALSE(retry_allowed(policy, fov, 2));  // budget fully consumed
  ChunkRequest oos;
  oos.spatial = abr::SpatialClass::kOos;
  EXPECT_FALSE(retry_allowed(policy, oos, 0));
  oos.urgent = true;  // urgent corrections keep their retry budget
  EXPECT_TRUE(retry_allowed(policy, oos, 0));
  policy.enabled = false;
  EXPECT_FALSE(retry_allowed(policy, fov, 0));
}

class TransportRecoveryTest : public ::testing::Test {
 protected:
  net::Link make_faulty_link(net::FaultPlan faults, double kbps = 8000.0) {
    return net::Link(simulator,
                     net::LinkConfig{.name = "chaos",
                                     .bandwidth = net::BandwidthTrace::constant(kbps),
                                     .rtt = sim::Duration{0},
                                     .loss_rate = 0.0,
                                     .faults = std::move(faults)});
  }

  static TransportOptions recovery_options(int max_retries = 2) {
    TransportOptions options;
    options.recovery.enabled = true;
    options.recovery.max_retries = max_retries;
    options.recovery.base_backoff = sim::milliseconds(100);
    options.recovery.backoff_multiplier = 2.0;
    return options;
  }

  sim::Simulator simulator;
};

TEST_F(TransportRecoveryTest, RetriesThroughOutageAndDelivers) {
  net::FaultPlan faults;
  faults.outages.push_back({.start_s = 0.2, .duration_s = 0.3});
  auto link = make_faulty_link(std::move(faults));
  SingleLinkTransport transport(link, recovery_options());
  std::optional<FetchOutcome> outcome;
  ChunkRequest req;
  req.id = net::to_chunk_id({{0, 0}, Encoding::kAvc, 0});
  req.bytes = 1'000'000;
  req.deadline = sim::seconds(30.0);
  req.on_done = [&](sim::Time, FetchOutcome o) { outcome = o; };
  transport.fetch(std::move(req));
  simulator.run();
  // Attempt 0 dies when the outage starts; retries back off until the link
  // returns, then the request completes in full.
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, FetchOutcome::kDelivered);
  EXPECT_EQ(transport.bytes_fetched(), 1'000'000);
  EXPECT_EQ(transport.in_flight(), 0);
}

TEST_F(TransportRecoveryTest, BudgetExhaustionReportsFailed) {
  net::FaultPlan faults;
  faults.outages.push_back({.start_s = 0.2, .duration_s = 60.0});
  auto link = make_faulty_link(std::move(faults));
  SingleLinkTransport transport(link, recovery_options(/*max_retries=*/1));
  std::optional<FetchOutcome> outcome;
  sim::Time settled{sim::kTimeZero};
  ChunkRequest req;
  req.id = net::to_chunk_id({{0, 0}, Encoding::kAvc, 0});
  req.bytes = 1'000'000;
  req.deadline = sim::seconds(30.0);
  req.on_done = [&](sim::Time t, FetchOutcome o) {
    outcome = o;
    settled = t;
  };
  transport.fetch(std::move(req));
  simulator.run_until(sim::seconds(5.0));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, FetchOutcome::kFailed);
  // Original attempt + one retry, both inside the outage.
  EXPECT_LT(sim::to_seconds(settled), 1.0);
  EXPECT_EQ(transport.in_flight(), 0);
}

TEST_F(TransportRecoveryTest, DeadlineDerivedTimeoutCancelsSlowTransfer) {
  // 800 kbps = 100 kB/s: a 1 MB chunk needs 10 s, far past its deadline.
  auto link = make_faulty_link({}, /*kbps=*/800.0);
  SingleLinkTransport transport(link, recovery_options());
  std::optional<FetchOutcome> outcome;
  sim::Time settled{sim::kTimeZero};
  ChunkRequest req;
  req.id = net::to_chunk_id({{0, 0}, Encoding::kAvc, 0});
  req.bytes = 1'000'000;
  req.deadline = sim::seconds(0.5);
  req.on_done = [&](sim::Time t, FetchOutcome o) {
    outcome = o;
    settled = t;
  };
  transport.fetch(std::move(req));
  simulator.run_until(sim::seconds(5.0));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, FetchOutcome::kTimedOut);
  EXPECT_NEAR(sim::to_seconds(settled), 0.5, 0.01);
  EXPECT_EQ(link.active_transfers(), 0);
  EXPECT_EQ(transport.in_flight(), 0);
}

TEST_F(TransportRecoveryTest, OosPrefetchAbandonedOnFirstFailure) {
  net::FaultPlan faults;
  faults.outages.push_back({.start_s = 0.2, .duration_s = 0.3});
  auto link = make_faulty_link(std::move(faults));
  SingleLinkTransport transport(link, recovery_options());
  std::optional<FetchOutcome> outcome;
  ChunkRequest req;
  req.id = net::to_chunk_id({{0, 0}, Encoding::kAvc, 0});
  req.bytes = 1'000'000;
  req.spatial = abr::SpatialClass::kOos;
  req.deadline = sim::seconds(30.0);
  req.on_done = [&](sim::Time, FetchOutcome o) { outcome = o; };
  transport.fetch(std::move(req));
  simulator.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, FetchOutcome::kFailed);
}

TEST_F(TransportRecoveryTest, RecoveryDisabledKeepsLegacySemantics) {
  net::FaultPlan faults;
  faults.outages.push_back({.start_s = 0.2, .duration_s = 60.0});
  auto link = make_faulty_link(std::move(faults));
  SingleLinkTransport transport(link);  // recovery off
  std::optional<FetchOutcome> outcome;
  ChunkRequest req;
  req.id = net::to_chunk_id({{0, 0}, Encoding::kAvc, 0});
  req.bytes = 1'000'000;
  req.deadline = sim::seconds(30.0);
  req.on_done = [&](sim::Time, FetchOutcome o) { outcome = o; };
  transport.fetch(std::move(req));
  simulator.run_until(sim::seconds(5.0));
  // No retries, no timeout: the link failure surfaces directly.
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, FetchOutcome::kFailed);
  EXPECT_EQ(transport.in_flight(), 0);
}

class SessionTest : public ::testing::Test {
 protected:
  static hmp::HeadTrace steady_trace(double duration_s) {
    hmp::HeadTraceConfig cfg;
    cfg.duration_s = duration_s;
    cfg.sample_rate_hz = 25.0;
    cfg.profile = hmp::UserProfile::adult();
    cfg.seed = 3;
    return hmp::generate_head_trace(cfg);
  }

  SessionReport run_session(double link_kbps, SessionConfig config,
                            double video_s = 15.0) {
    sim::Simulator simulator;
    net::Link link(
        simulator,
        net::LinkConfig{.name = "dl",
                        .bandwidth = net::BandwidthTrace::constant(link_kbps),
                        .rtt = sim::milliseconds(30),
                        .loss_rate = 0.0, .faults = {}});
    SingleLinkTransport transport(link);
    auto video = make_video(video_s);
    const auto trace = steady_trace(video_s + 40.0);
    StreamingSession session(simulator, video, transport, trace, config);
    session.start();
    simulator.run_until(sim::seconds(video_s + 120.0));
    return session.report();
  }
};

TEST_F(SessionTest, FastLinkPlaysSmoothlyAtHighQuality) {
  SessionConfig config;
  const auto report = run_session(50'000.0, config);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.qoe.chunks_played, 15);
  // HMP misses may force the occasional urgent correction, but on a fast
  // link those stalls are bounded by the RTT, not the bandwidth.
  EXPECT_LT(report.qoe.stall_seconds, 0.5);
  EXPECT_GT(report.qoe.mean_viewport_utility, 0.5);
  EXPECT_GT(report.fetches, 0);
}

TEST_F(SessionTest, SlowLinkLowersQualityButCompletes) {
  SessionConfig config;
  const auto fast = run_session(50'000.0, config);
  const auto slow = run_session(2'000.0, config);
  EXPECT_TRUE(slow.completed);
  EXPECT_EQ(slow.qoe.chunks_played, 15);
  EXPECT_LT(slow.qoe.mean_viewport_utility, fast.qoe.mean_viewport_utility);
}

TEST_F(SessionTest, FovGuidedUsesFewerBytesThanAgnostic) {
  // Equal-quality comparison: pin both to ladder level 2, then the only
  // difference is *which tiles* are fetched.
  SessionConfig guided;
  guided.abr.sperke.regular_vra = "fixed-2";
  SessionConfig agnostic;
  agnostic.planner = PlannerMode::kFovAgnostic;
  agnostic.abr.sperke.regular_vra = "fixed-2";
  const auto g = run_session(20'000.0, guided);
  const auto a = run_session(20'000.0, agnostic);
  EXPECT_TRUE(g.completed);
  EXPECT_TRUE(a.completed);
  EXPECT_LT(g.qoe.bytes_downloaded, a.qoe.bytes_downloaded);
}

TEST_F(SessionTest, AvcNoUpgradeModeRuns) {
  SessionConfig config;
  config.abr.sperke.mode = abr::EncodingMode::kAvcNoUpgrade;
  const auto report = run_session(20'000.0, config);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.upgrades, 0);
}

TEST_F(SessionTest, SvcModePerformsUpgradesOrCorrections) {
  SessionConfig config;
  config.abr.sperke.mode = abr::EncodingMode::kSvc;
  const auto report = run_session(20'000.0, config);
  EXPECT_TRUE(report.completed);
  // With a moving head some chunks should need upgrades or late fetches.
  EXPECT_GT(report.upgrades + report.late_corrections + report.urgent_fetches, 0);
}

TEST_F(SessionTest, ReportTracksPerChunkUtility) {
  SessionConfig config;
  const auto report = run_session(50'000.0, config);
  EXPECT_EQ(report.viewport_utility_per_chunk.size(), 15u);
  for (double u : report.viewport_utility_per_chunk) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST_F(SessionTest, StartupDelayIsPositiveAndBounded) {
  SessionConfig config;
  const auto report = run_session(50'000.0, config);
  EXPECT_GT(report.startup_delay, sim::Duration{0});
  EXPECT_LT(report.startup_delay, sim::seconds(5.0));
}

TEST_F(SessionTest, DataBudgetCapsSpending) {
  SessionConfig unlimited;
  const auto free_run = run_session(50'000.0, unlimited);
  ASSERT_TRUE(free_run.completed);
  // Grant roughly half of what the unconstrained session spent.
  SessionConfig capped;
  capped.data_budget_bytes = free_run.qoe.bytes_downloaded / 2;
  const auto budgeted = run_session(50'000.0, capped);
  EXPECT_TRUE(budgeted.completed);
  EXPECT_EQ(budgeted.qoe.chunks_played, 15);
  // The budget is respected within one chunk's worth of slack (plans are
  // committed before their bytes land).
  EXPECT_LT(budgeted.qoe.bytes_downloaded,
            capped.data_budget_bytes + capped.data_budget_bytes / 4);
  EXPECT_LT(budgeted.qoe.mean_viewport_utility,
            free_run.qoe.mean_viewport_utility);
}

TEST_F(SessionTest, EngagementExtremesStillComplete) {
  for (double engagement : {0.0, 1.0}) {
    SessionConfig config;
    config.context.engagement = engagement;
    const auto report = run_session(30'000.0, config);
    EXPECT_TRUE(report.completed) << engagement;
    EXPECT_EQ(report.qoe.chunks_played, 15) << engagement;
  }
}

TEST_F(SessionTest, ZeroBandwidthNeverStarts) {
  SessionConfig config;
  sim::Simulator simulator;
  net::Link link(simulator,
                 net::LinkConfig{.bandwidth = net::BandwidthTrace::constant(0.0), .faults = {}});
  SingleLinkTransport transport(link);
  auto video = make_video(5.0);
  const auto trace = steady_trace(60.0);
  StreamingSession session(simulator, video, transport, trace, config);
  session.start();
  simulator.run_until(sim::seconds(30.0));
  EXPECT_FALSE(session.finished());
  EXPECT_EQ(session.report().qoe.chunks_played, 0);
}

TEST_F(SessionTest, RejectsBadConfig) {
  sim::Simulator simulator;
  net::Link link(simulator, net::LinkConfig{});
  SingleLinkTransport transport(link);
  auto video = make_video(5.0);
  const auto trace = steady_trace(10.0);
  SessionConfig bad;
  bad.prefetch_horizon_chunks = 0;
  EXPECT_THROW(
      StreamingSession(simulator, video, transport, trace, bad),
      std::invalid_argument);
}

TEST_F(SessionTest, SessionRecoversAcrossMidStreamOutage) {
  sim::Simulator simulator;
  net::FaultPlan faults;
  faults.outages.push_back({.start_s = 4.0, .duration_s = 1.5});
  net::Link link(
      simulator,
      net::LinkConfig{.name = "dl",
                      .bandwidth = net::BandwidthTrace::constant(20'000.0),
                      .rtt = sim::milliseconds(30),
                      .loss_rate = 0.0,
                      .faults = std::move(faults)});
  TransportOptions options;
  options.recovery.enabled = true;
  SingleLinkTransport transport(link, options);
  SessionConfig config;
  config.fetch_recovery = true;
  auto video = make_video(15.0);
  const auto trace = steady_trace(60.0);
  StreamingSession session(simulator, video, transport, trace, config);
  session.start();
  simulator.run_until(sim::seconds(120.0));
  const auto report = session.report();
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.qoe.chunks_played, 15);
  // The outage killed in-flight fetches; the session saw and survived them.
  EXPECT_GT(report.fetch_failures, 0);
}

TEST_F(SessionTest, DoubleStartThrows) {
  sim::Simulator simulator;
  net::Link link(simulator, net::LinkConfig{});
  SingleLinkTransport transport(link);
  auto video = make_video(5.0);
  const auto trace = steady_trace(10.0);
  StreamingSession session(simulator, video, transport, trace, SessionConfig{});
  session.start();
  EXPECT_THROW(session.start(), std::logic_error);
}

}  // namespace
}  // namespace sperke::core
