// Sharded session engine tests: the MetricsRegistry merge semantics and the
// engine determinism contract (DESIGN.md §9) — for a given (spec, seed) the
// merged metrics are byte-identical no matter how many threads execute the
// shards, and a session's report depends only on its link group, not on the
// partitioning.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "abr/factory.h"
#include "engine/engine.h"
#include "engine/world.h"
#include "net/link.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace sperke {
namespace {

// ---------------------------------------------------------------- metrics

TEST(MetricsMerge, CountersAndGaugesAdd) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("c").add(3);
  b.counter("c").add(4);
  a.gauge("g").set(1.5);
  b.gauge("g").set(2.25);
  a.merge_from(b);
  EXPECT_EQ(a.counter("c").value(), 7);
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 3.75);
  // b is untouched.
  EXPECT_EQ(b.counter("c").value(), 4);
}

TEST(MetricsMerge, HistogramsMergeBucketwise) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  const std::vector<double> bounds{1.0, 10.0, 100.0};
  obs::Histogram& ha = a.histogram("h", bounds);
  obs::Histogram& hb = b.histogram("h", bounds);
  ha.observe(0.5);
  ha.observe(50.0);
  hb.observe(5.0);
  hb.observe(1'000.0);  // overflow bucket
  a.merge_from(b);
  EXPECT_EQ(ha.count(), 4);
  EXPECT_DOUBLE_EQ(ha.sum(), 1'055.5);
  EXPECT_DOUBLE_EQ(ha.min(), 0.5);
  EXPECT_DOUBLE_EQ(ha.max(), 1'000.0);
  const std::vector<std::int64_t> expected{1, 1, 1, 1};
  EXPECT_EQ(ha.bucket_counts(), expected);
}

TEST(MetricsMerge, EmptySidesKeepMinMaxSane) {
  obs::Histogram empty({1.0, 2.0});
  obs::Histogram full({1.0, 2.0});
  full.observe(1.5);
  empty.merge_from(full);
  EXPECT_DOUBLE_EQ(empty.min(), 1.5);
  EXPECT_DOUBLE_EQ(empty.max(), 1.5);
  full.merge_from(obs::Histogram({1.0, 2.0}));  // merging empty changes nothing
  EXPECT_EQ(full.count(), 1);
  EXPECT_DOUBLE_EQ(full.min(), 1.5);
}

TEST(MetricsMerge, MismatchedBucketLayoutsThrow) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  (void)a.histogram("h", {1.0, 2.0});
  (void)b.histogram("h", {1.0, 3.0});
  EXPECT_THROW(a.merge_from(b), std::invalid_argument);

  obs::Histogram x({1.0});
  obs::Histogram y({1.0, 2.0});
  EXPECT_THROW(x.merge_from(y), std::invalid_argument);
}

TEST(MetricsMerge, KindMismatchThrows) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  (void)a.counter("m");
  (void)b.gauge("m");
  EXPECT_THROW(a.merge_from(b), std::invalid_argument);
}

TEST(MetricsMerge, NewInstrumentsAppendInRegistrationOrder) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  (void)a.counter("a1");
  b.counter("b1").add(2);
  b.histogram("b2", {1.0}).observe(0.5);
  a.merge_from(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.entries()[0].name, "a1");
  EXPECT_EQ(a.entries()[1].name, "b1");
  EXPECT_EQ(a.entries()[2].name, "b2");
  EXPECT_EQ(a.counter("b1").value(), 2);
  EXPECT_EQ(a.histogram("b2", {1.0}).count(), 1);
}

TEST(MetricsMerge, QuantileBound) {
  obs::Histogram h({1.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(h, 0.99), 0.0);  // empty
  for (int i = 0; i < 98; ++i) h.observe(0.5);
  h.observe(1.5);
  h.observe(4.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(h, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(h, 0.99), 5.0);
  h.observe(50.0);  // overflow bucket holds the tail
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(h, 1.0), 50.0);
}

// ----------------------------------------------------------------- engine

// A small but non-trivial world: 6 link groups of 4 sessions each, every
// group on its own 20 Mbps link, full per-session telemetry.
engine::WorldSpec small_world(int shards) {
  engine::WorldSpec spec;
  spec.video.duration_s = 8.0;
  spec.video.chunk_duration_s = 1.0;
  spec.video.tile_rows = 4;
  spec.video.tile_cols = 6;
  spec.video.seed = 11;

  spec.trace_template.duration_s = 60.0;
  spec.trace_template.sample_rate_hz = 25.0;
  spec.trace_template.attractors = hmp::default_attractors(60.0, 99);
  spec.trace_template.seed = 21;
  spec.trace_pool = 5;

  spec.link.name = "link";
  spec.link.bandwidth = net::BandwidthTrace::constant(20'000.0);
  spec.link.rtt = sim::milliseconds(30);
  spec.sessions_per_link = 4;
  spec.transport_max_concurrent = 4;

  spec.sessions = 24;
  spec.horizon = sim::seconds(120.0);
  spec.shards = shards;
  spec.seed = 5;
  spec.session_telemetry = true;
  spec.monitor = true;
  return spec;
}

std::string metrics_csv(const obs::MetricsRegistry& registry) {
  std::ostringstream out;
  obs::write_metrics_csv(out, registry);
  return out.str();
}

TEST(EngineDeterminism, MergedMetricsIdenticalAcrossThreadCounts) {
  // The headline contract: threads only change wall time, never a byte of
  // the merged metrics. Compare the full CSV export — names, order, every
  // count/sum/min/max — between a serial and a heavily threaded run.
  engine::EngineResult serial = engine::run_world(small_world(6), {.threads = 1});
  engine::EngineResult threaded = engine::run_world(small_world(6), {.threads = 8});
  EXPECT_EQ(serial.threads_used, 1);
  EXPECT_EQ(threaded.threads_used, 6);  // clamped to shard count
  EXPECT_EQ(metrics_csv(serial.metrics), metrics_csv(threaded.metrics));
  EXPECT_EQ(serial.events_executed, threaded.events_executed);
  EXPECT_EQ(serial.completed, threaded.completed);
  EXPECT_EQ(serial.completed, 24);

  // Per-shard telemetry lines up too (same shard decomposition).
  ASSERT_EQ(serial.shard_telemetry.size(), threaded.shard_telemetry.size());
  for (std::size_t s = 0; s < serial.shard_telemetry.size(); ++s) {
    EXPECT_EQ(metrics_csv(serial.shard_telemetry[s]->metrics()),
              metrics_csv(threaded.shard_telemetry[s]->metrics()));
    EXPECT_EQ(serial.shard_telemetry[s]->trace().size(),
              threaded.shard_telemetry[s]->trace().size());
  }
}

TEST(EngineDeterminism, ReportsInvariantAcrossShardCounts) {
  // Sessions couple only through their link group, and the group mapping
  // follows the *global* session id — so each session's own report must be
  // bit-identical whether its group shares a simulator with every other
  // group (shards=1) or runs alone (shards=6).
  engine::EngineResult mono = engine::run_world(small_world(1), {.threads = 1});
  engine::EngineResult sharded = engine::run_world(small_world(6), {.threads = 3});
  ASSERT_EQ(mono.reports.size(), sharded.reports.size());
  for (std::size_t i = 0; i < mono.reports.size(); ++i) {
    const core::SessionReport& a = mono.reports[i];
    const core::SessionReport& b = sharded.reports[i];
    EXPECT_EQ(a.completed, b.completed) << i;
    EXPECT_EQ(a.qoe.chunks_played, b.qoe.chunks_played) << i;
    EXPECT_EQ(a.qoe.bytes_downloaded, b.qoe.bytes_downloaded) << i;
    EXPECT_EQ(a.qoe.bytes_wasted, b.qoe.bytes_wasted) << i;
    EXPECT_EQ(a.qoe.stall_seconds, b.qoe.stall_seconds) << i;
    EXPECT_EQ(a.qoe.score, b.qoe.score) << i;
    EXPECT_EQ(a.fetches, b.fetches) << i;
    EXPECT_EQ(a.upgrades, b.upgrades) << i;
    EXPECT_EQ(a.startup_delay, b.startup_delay) << i;
    EXPECT_EQ(a.viewport_utility_per_chunk, b.viewport_utility_per_chunk) << i;
  }
  // Counters are order-independent, so they survive re-partitioning too
  // (histogram double-sums may not, which is why the byte-identity
  // contract pins the shard count into the spec).
  EXPECT_EQ(mono.metrics.find_counter("session.fetches")->value(),
            sharded.metrics.find_counter("session.fetches")->value());
  EXPECT_EQ(mono.metrics.find_counter("session.chunks_played")->value(),
            sharded.metrics.find_counter("session.chunks_played")->value());
}

TEST(EngineDeterminism, FaultedWorldMergesIdenticalAcrossThreadCounts) {
  // The determinism contract must survive chaos (DESIGN.md §10): the fault
  // schedule lives in the spec, per-transfer failure streams are reseeded
  // per link group (seed + g), and retries/failovers are ordinary
  // simulation events — so a faulted world merges byte-identical metrics
  // no matter how many threads execute its shards.
  auto chaos_world = [] {
    engine::WorldSpec spec = small_world(6);
    spec.faults.outages.push_back({.start_s = 3.0, .duration_s = 2.0});
    spec.faults.capacity_collapses.push_back(
        {.start_s = 10.0, .duration_s = 5.0, .factor = 0.25});
    spec.faults.rtt_spikes.push_back(
        {.start_s = 20.0, .duration_s = 5.0, .factor = 3.0});
    spec.faults.transfer_failure_prob = 0.05;
    spec.faults.seed = 99;
    spec.transport_recovery.enabled = true;
    spec.session.fetch_recovery = true;
    spec.horizon = sim::seconds(240.0);
    return spec;
  };
  engine::EngineResult serial = engine::run_world(chaos_world(), {.threads = 1});
  engine::EngineResult threaded = engine::run_world(chaos_world(), {.threads = 8});
  EXPECT_EQ(metrics_csv(serial.metrics), metrics_csv(threaded.metrics));
  EXPECT_EQ(serial.events_executed, threaded.events_executed);
  EXPECT_EQ(serial.completed, threaded.completed);

  // The schedule actually injected faults and the recovery layer actually
  // ran — otherwise this test pins nothing beyond the fault-free one.
  const obs::Counter* failures =
      serial.metrics.find_counter("session.fetch_failures");
  ASSERT_NE(failures, nullptr);
  EXPECT_GT(failures->value(), 0);
  const obs::Counter* retries = serial.metrics.find_counter("transport.retries");
  ASSERT_NE(retries, nullptr);
  EXPECT_GT(retries->value(), 0);
}

TEST(EngineDeterminism, SeriesAndSloBreachesIdenticalAcrossThreadCounts) {
  // The observability extension of the headline contract: the sampled time
  // series and the SLO breach/clear timeline are part of the merged result,
  // so they too must be byte-identical at any thread count — under chaos,
  // where the sampler interleaves with outages, retries and stalls.
  auto observed_chaos_world = [] {
    engine::WorldSpec spec = small_world(6);
    spec.faults.outages.push_back({.start_s = 3.0, .duration_s = 2.0});
    spec.faults.transfer_failure_prob = 0.05;
    spec.faults.seed = 99;
    spec.transport_recovery.enabled = true;
    spec.session.fetch_recovery = true;
    spec.sample_period = sim::seconds(0.5);
    spec.slos = {{.name = "stall", .metric = "session.stalled",
                  .signal = obs::SloSignal::kGaugeValue, .threshold = 0.5,
                  .window_intervals = 1},
                 {.name = "retry.rate", .metric = "transport.retries",
                  .signal = obs::SloSignal::kCounterRate, .threshold = 1e9,
                  .window_intervals = 4}};
    return spec;
  };
  engine::EngineResult serial =
      engine::run_world(observed_chaos_world(), {.threads = 1});
  engine::EngineResult threaded =
      engine::run_world(observed_chaos_world(), {.threads = 8});

  // floor(horizon / period) closed intervals, no matter the partitioning.
  EXPECT_EQ(serial.series.intervals(), 240u);
  std::ostringstream series_a, series_b;
  obs::write_timeseries_csv(series_a, serial.series);
  obs::write_timeseries_csv(series_b, threaded.series);
  EXPECT_FALSE(series_a.str().empty());
  EXPECT_EQ(series_a.str(), series_b.str());

  std::ostringstream slo_a, slo_b;
  obs::write_slo_csv(slo_a, serial.slos);
  obs::write_slo_csv(slo_b, threaded.slos);
  EXPECT_EQ(slo_a.str(), slo_b.str());
  ASSERT_EQ(serial.slos.size(), 2u);
  // The outage actually tripped the stall SLO somewhere in the fleet.
  EXPECT_GT(serial.slos[0].breach_events, 0);

  // The breach/clear timelines agree shard by shard, event by event.
  std::int64_t breach_events = 0;
  ASSERT_EQ(serial.shard_telemetry.size(), threaded.shard_telemetry.size());
  for (std::size_t s = 0; s < serial.shard_telemetry.size(); ++s) {
    auto slo_timeline = [](const obs::Telemetry& telemetry) {
      std::vector<obs::TraceEvent> out;
      for (const obs::TraceEvent& e : telemetry.trace().events()) {
        if (e.type == obs::TraceEventType::kSloBreach ||
            e.type == obs::TraceEventType::kSloClear) {
          out.push_back(e);
        }
      }
      return out;
    };
    const auto timeline_a = slo_timeline(*serial.shard_telemetry[s]);
    const auto timeline_b = slo_timeline(*threaded.shard_telemetry[s]);
    ASSERT_EQ(timeline_a.size(), timeline_b.size()) << "shard " << s;
    for (std::size_t i = 0; i < timeline_a.size(); ++i) {
      EXPECT_EQ(timeline_a[i].type, timeline_b[i].type) << s << "/" << i;
      EXPECT_EQ(timeline_a[i].ts, timeline_b[i].ts) << s << "/" << i;
      EXPECT_EQ(timeline_a[i].chunk, timeline_b[i].chunk) << s << "/" << i;
      EXPECT_EQ(timeline_a[i].value, timeline_b[i].value) << s << "/" << i;
      if (timeline_a[i].type == obs::TraceEventType::kSloBreach) {
        ++breach_events;
      }
    }
  }
  EXPECT_EQ(breach_events, serial.slos[0].breach_events +
                               serial.slos[1].breach_events);
}

TEST(EngineDeterminism, EveryAbrPolicyMergesIdenticalAcrossThreadCounts) {
  // The byte-identity contract is per-policy, not a SperkeVra accident:
  // every factory policy must merge the same metrics at any thread count,
  // because each shard constructs its own instance from the shared
  // TileAbrConfig and no ABR state crosses a shard boundary.
  for (std::string_view name : abr::policy_names()) {
    engine::WorldSpec spec = small_world(6);
    spec.session.abr.policy = name;
    engine::EngineResult serial = engine::run_world(spec, {.threads = 1});
    engine::EngineResult threaded = engine::run_world(spec, {.threads = 8});
    EXPECT_EQ(metrics_csv(serial.metrics), metrics_csv(threaded.metrics))
        << name;
    EXPECT_EQ(serial.events_executed, threaded.events_executed) << name;
    EXPECT_EQ(serial.completed, 24) << name;
    // The policy-scoped plan counter surfaced in the merged registry.
    const obs::Counter* plans =
        serial.metrics.find_counter("abr." + std::string(name) + ".plans");
    ASSERT_NE(plans, nullptr) << name;
    EXPECT_GT(plans->value(), 0) << name;
    const obs::Counter* downloaded =
        serial.metrics.find_counter("session.bytes_downloaded");
    ASSERT_NE(downloaded, nullptr) << name;
    EXPECT_GT(downloaded->value(), 0) << name;
  }
}

TEST(EngineDeterminism, MixedPolicyPopulationMergesIdenticalAcrossThreadCounts) {
  // A fleet running *different* policies per session: the per-policy plan
  // counters are registered lazily by whichever session constructs first,
  // so this also exercises MetricsRegistry::merge_from's append semantics
  // across shards whose registries saw the policies in different orders.
  auto mixed_world = [] {
    engine::WorldSpec spec = small_world(6);
    spec.session_for = [base = spec.session](int i) {
      core::SessionConfig config = base;
      config.abr.policy =
          abr::policy_names()[static_cast<std::size_t>(i) %
                              abr::policy_names().size()];
      return config;
    };
    return spec;
  };
  engine::EngineResult serial = engine::run_world(mixed_world(), {.threads = 1});
  engine::EngineResult threaded =
      engine::run_world(mixed_world(), {.threads = 8});
  EXPECT_EQ(metrics_csv(serial.metrics), metrics_csv(threaded.metrics));
  EXPECT_EQ(serial.events_executed, threaded.events_executed);
  EXPECT_EQ(serial.completed, 24);
  // Every policy planned for its 6 of the 24 sessions.
  for (std::string_view name : abr::policy_names()) {
    const obs::Counter* plans =
        serial.metrics.find_counter("abr." + std::string(name) + ".plans");
    ASSERT_NE(plans, nullptr) << name;
    EXPECT_GT(plans->value(), 0) << name;
  }
}

TEST(Engine, ValidateRejectsBadPolicyName) {
  engine::WorldSpec spec = small_world(1);
  spec.session.abr.policy = "oracle";
  EXPECT_THROW(engine::validate(spec), std::invalid_argument);
}

TEST(Engine, ValidateRejectsBadObservabilitySpecs) {
  engine::WorldSpec spec = small_world(1);
  spec.sample_period = sim::Duration{-1};
  EXPECT_THROW(engine::ShardedEngine{spec}, std::invalid_argument);
  spec = small_world(1);
  spec.slos = {{.name = "x", .metric = "m"}};  // SLOs need a sampler
  EXPECT_THROW(engine::ShardedEngine{spec}, std::invalid_argument);
  spec = small_world(1);
  spec.sample_period = sim::seconds(1.0);
  spec.slos = {{.name = "Bad Name", .metric = "m"}};
  EXPECT_THROW(engine::ShardedEngine{spec}, std::invalid_argument);
  spec = small_world(1);
  spec.sample_period = sim::seconds(1.0);
  spec.slos = {{.name = "ok", .metric = "m"}};
  EXPECT_NO_THROW(engine::ShardedEngine{spec});
}

TEST(Engine, FaultsOfGroupReseedsTemplatePlanPerGroup) {
  engine::WorldSpec spec = small_world(1);
  // Empty template: groups keep whatever their LinkConfig carries.
  EXPECT_TRUE(engine::faults_of_group(spec, 0).empty());

  spec.faults.transfer_failure_prob = 0.1;
  spec.faults.seed = 40;
  EXPECT_EQ(engine::faults_of_group(spec, 0).seed, 40u);
  EXPECT_EQ(engine::faults_of_group(spec, 3).seed, 43u);

  // The hook overrides the template verbatim — no reseeding.
  spec.faults_for_group = [](int group) {
    net::FaultPlan plan;
    plan.outages.push_back({.start_s = 1.0, .duration_s = double(1 + group)});
    plan.seed = 7;
    return plan;
  };
  EXPECT_EQ(engine::faults_of_group(spec, 5).seed, 7u);
  EXPECT_DOUBLE_EQ(engine::faults_of_group(spec, 2).outages.at(0).duration_s, 3.0);
}

TEST(Engine, ValidateRejectsBadSpecs) {
  engine::WorldSpec spec = small_world(1);
  spec.sessions = 0;
  EXPECT_THROW(engine::ShardedEngine{spec}, std::invalid_argument);
  spec = small_world(1);
  spec.shards = 0;
  EXPECT_THROW(engine::ShardedEngine{spec}, std::invalid_argument);
  spec = small_world(1);
  spec.trace_pool = 0;
  EXPECT_THROW(engine::ShardedEngine{spec}, std::invalid_argument);
  spec = small_world(1);
  spec.sessions_per_link = 0;
  EXPECT_THROW(engine::ShardedEngine{spec}, std::invalid_argument);
  spec = small_world(1);
  spec.faults.transfer_failure_prob = 1.5;  // net::validate runs on the spec
  EXPECT_THROW(engine::ShardedEngine{spec}, std::invalid_argument);
}

TEST(Engine, ShardErrorsPropagateToCaller) {
  engine::WorldSpec spec = small_world(6);
  // Session 13 (group 3 -> shard 3) gets an invalid config; the worker
  // thread's exception must surface on the calling thread.
  spec.session_for = [&spec](int i) {
    core::SessionConfig config = spec.session;
    if (i == 13) config.prefetch_horizon_chunks = 0;
    return config;
  };
  engine::ShardedEngine engine(spec);
  EXPECT_THROW((void)engine.run({.threads = 4}), std::invalid_argument);
}

TEST(Engine, PerGroupLinkFactoryIsAppliedByGlobalGroupId) {
  engine::WorldSpec spec = small_world(6);
  // Give each group a distinct capacity; group 0 (sessions 0..3) gets a
  // starved link, the rest stay fast. The starved sessions must be exactly
  // the global ids 0..3, regardless of shard assignment.
  spec.link_for_group = [&spec](int group) {
    net::LinkConfig link = spec.link;
    if (group == 0) link.bandwidth = net::BandwidthTrace::constant(600.0);
    return link;
  };
  spec.horizon = sim::seconds(400.0);
  engine::EngineResult result = engine::run_world(spec, {.threads = 2});
  ASSERT_EQ(result.reports.size(), 24u);
  for (std::size_t i = 4; i < result.reports.size(); ++i) {
    EXPECT_TRUE(result.reports[i].completed) << i;
  }
  // The starved group either stalls hard or is still crawling at the
  // horizon; either way it must look worse than the fast groups.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LT(result.reports[i].qoe.score, result.reports[4].qoe.score) << i;
  }
}

// -------------------------------------------------------------- engine+CDN

// small_world with a CDN tier: 8 sessions (2 link groups) per edge, so 24
// sessions induce 3 edges, each with its own backhaul and shared cache.
engine::WorldSpec cdn_world(int shards, int sessions = 24) {
  engine::WorldSpec spec = small_world(shards);
  spec.sessions = sessions;
  spec.cdn.sessions_per_edge = 8;
  spec.cdn.backhaul.name = "backhaul";
  spec.cdn.backhaul.bandwidth = net::BandwidthTrace::constant(100'000.0);
  spec.cdn.backhaul.rtt = sim::milliseconds(20);
  spec.cdn.cache_capacity_bytes = 64LL << 20;
  return spec;
}

TEST(EngineCdn, MergedMetricsIdenticalAcrossThreadCounts) {
  // The determinism contract extends to the CDN tier: the edge is the
  // partition unit, so hit/miss/coalescing sequences — and with them every
  // merged byte, the sampled series and the SLO rollup — are independent of
  // how many threads execute the shards.
  auto observed_cdn_world = [] {
    engine::WorldSpec spec = cdn_world(3);
    spec.sample_period = sim::seconds(0.5);
    spec.slos = {{.name = "stall", .metric = "session.stalled",
                  .signal = obs::SloSignal::kGaugeValue, .threshold = 0.5,
                  .window_intervals = 1}};
    return spec;
  };
  engine::EngineResult serial =
      engine::run_world(observed_cdn_world(), {.threads = 1});
  engine::EngineResult threaded =
      engine::run_world(observed_cdn_world(), {.threads = 8});
  EXPECT_EQ(threaded.threads_used, 3);  // clamped to the edge-shard count
  EXPECT_EQ(metrics_csv(serial.metrics), metrics_csv(threaded.metrics));
  EXPECT_EQ(serial.events_executed, threaded.events_executed);
  EXPECT_EQ(serial.completed, threaded.completed);
  EXPECT_EQ(serial.completed, 24);

  std::ostringstream series_a, series_b;
  obs::write_timeseries_csv(series_a, serial.series);
  obs::write_timeseries_csv(series_b, threaded.series);
  EXPECT_FALSE(series_a.str().empty());
  EXPECT_EQ(series_a.str(), series_b.str());
  std::ostringstream slo_a, slo_b;
  obs::write_slo_csv(slo_a, serial.slos);
  obs::write_slo_csv(slo_b, threaded.slos);
  EXPECT_EQ(slo_a.str(), slo_b.str());

  // The tier actually carried traffic: sessions shared their edges.
  const obs::Counter* hits = serial.metrics.find_counter("cdn.edge.hits");
  const obs::Counter* misses = serial.metrics.find_counter("cdn.edge.misses");
  const obs::Counter* egress =
      serial.metrics.find_counter("cdn.origin.egress_bytes");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(misses, nullptr);
  ASSERT_NE(egress, nullptr);
  EXPECT_GT(hits->value(), 0);
  EXPECT_GT(misses->value(), 0);
  EXPECT_GT(egress->value(), 0);
}

TEST(EngineCdn, DisabledTierRegistersNoCdnMetrics) {
  // cdn.* counters exist only when the tier does — an empty topology stays
  // byte-identical to the pre-CDN engine, metric names included.
  engine::EngineResult result = engine::run_world(small_world(2), {.threads = 2});
  EXPECT_EQ(result.metrics.find_counter("cdn.edge.hits"), nullptr);
  EXPECT_EQ(result.metrics.find_counter("cdn.origin.egress_bytes"), nullptr);
}

TEST(EngineCdn, SharedEdgeHitRateRisesWithUserCount) {
  // The point of an edge: the more users behind it, the more their request
  // streams overlap — hit-rate rises and per-user origin egress falls.
  auto run_users = [](int sessions) {
    engine::WorldSpec spec = cdn_world(1, sessions);
    spec.cdn.sessions_per_edge = 24;  // one edge for every population size
    return engine::run_world(spec, {.threads = 2});
  };
  auto hit_rate = [](const engine::EngineResult& result) {
    const double hits =
        static_cast<double>(result.metrics.find_counter("cdn.edge.hits")->value());
    const double misses = static_cast<double>(
        result.metrics.find_counter("cdn.edge.misses")->value());
    return hits / (hits + misses);
  };
  auto egress_per_user = [](const engine::EngineResult& result, int sessions) {
    return static_cast<double>(
               result.metrics.find_counter("cdn.origin.egress_bytes")->value()) /
           sessions;
  };
  const engine::EngineResult few = run_users(8);
  const engine::EngineResult many = run_users(24);
  EXPECT_GT(hit_rate(many), hit_rate(few));
  EXPECT_LT(egress_per_user(many, 24), egress_per_user(few, 8));
}

TEST(EngineCdn, CrowdWarmedCacheBeatsColdOnEarlyHitRate) {
  // Crowd-driven warming (paper §3.2): preloading the heatmap's favourite
  // tiles converts a cold cache's compulsory misses into day-one hits.
  engine::WorldSpec cold = cdn_world(1, 8);
  cold.cdn.sessions_per_edge = 8;
  cold.horizon = sim::seconds(60.0);  // the first minute is what warming buys

  // A perfect prior: the crowd heatmap is built from the very trace pool
  // the sessions will play.
  const media::VideoModel video(cold.video);
  hmp::ViewingHeatmap crowd(video.tile_count(), video.chunk_count());
  for (const hmp::HeadTrace& trace : engine::build_trace_pool(cold)) {
    crowd.add_trace(trace, video.geometry(), {100.0, 90.0},
                    video.chunk_duration());
  }

  engine::WorldSpec warm = cold;
  warm.crowd = &crowd;
  warm.cdn.warm_tiles_per_chunk = video.tile_count();  // preload every tile
  warm.cdn.warm_level = 0;  // the baseline rung every session fetches

  const engine::EngineResult cold_result = engine::run_world(cold, {.threads = 1});
  const engine::EngineResult warm_result = engine::run_world(warm, {.threads = 1});
  auto counter = [](const engine::EngineResult& result, const char* name) {
    const obs::Counter* c = result.metrics.find_counter(name);
    return c == nullptr ? std::int64_t{0} : c->value();
  };
  EXPECT_GT(counter(warm_result, "cdn.edge.warmed"), 0);
  EXPECT_EQ(counter(cold_result, "cdn.edge.warmed"), 0);
  const auto rate = [&](const engine::EngineResult& result) {
    const double hits = static_cast<double>(counter(result, "cdn.edge.hits"));
    const double misses = static_cast<double>(counter(result, "cdn.edge.misses"));
    return hits / (hits + misses);
  };
  EXPECT_GT(rate(warm_result), rate(cold_result));
}

TEST(EngineCdn, ValidateRejectsBadTopologySections) {
  // Topology errors surface through engine::validate and list the section's
  // field names (the validate_policy_name convention).
  auto expect_cdn_error = [](engine::WorldSpec spec, const std::string& needle) {
    try {
      engine::validate(spec);
      FAIL() << "expected std::invalid_argument for " << needle;
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(needle), std::string::npos) << what;
      EXPECT_NE(what.find("valid fields: sessions_per_edge"), std::string::npos)
          << what;
    }
  };
  engine::WorldSpec indivisible = cdn_world(1);
  indivisible.cdn.sessions_per_edge = 6;  // not a multiple of 4
  expect_cdn_error(indivisible, "multiple of sessions_per_link");

  engine::WorldSpec bad_policy = cdn_world(1);
  bad_policy.cdn.cache_policy = "arc";
  expect_cdn_error(bad_policy, "valid names: lru, lfu");

  engine::WorldSpec no_crowd = cdn_world(1);
  no_crowd.cdn.warm_tiles_per_chunk = 4;  // warming needs WorldSpec::crowd
  expect_cdn_error(no_crowd, "crowd heatmap");
}

TEST(EngineCdn, EdgeIsThePartitionUnit) {
  engine::WorldSpec spec = cdn_world(2);
  // 6 groups, 3 edges: groups of one edge always share a shard.
  EXPECT_EQ(engine::groups_per_edge(spec), 2);
  for (int g = 0; g < engine::group_count(spec); ++g) {
    EXPECT_EQ(engine::edge_of_group(spec, g), g / 2);
    EXPECT_EQ(engine::shard_of_group(spec, g), (g / 2) % 2);
  }
  // Disabled tier: back to per-group partitioning, edge_of_group = -1.
  engine::WorldSpec off = small_world(2);
  EXPECT_EQ(engine::edge_of_group(off, 3), -1);
  EXPECT_EQ(engine::shard_of_group(off, 3), 1);
}

}  // namespace
}  // namespace sperke
