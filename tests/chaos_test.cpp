// Cross-layer chaos integration test (DESIGN.md §10).
//
// Every suite here runs a *seeded* fault schedule — outages, capacity
// collapses, mid-flight transfer failures — through the full stack and
// checks the two promises of the fault model end-to-end:
//   1. Recovery helps: with retries/degradation/failover enabled, sessions
//      strictly beat their no-recovery twins on stalls and blank tiles
//      under the same schedule (the bench_fault_recovery claim, pinned).
//   2. Chaos is deterministic: the same faulted WorldSpec produces
//      byte-identical merged metrics run after run, because failure draws
//      come from the plan's private seeded stream in transfer-start order.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/session.h"
#include "core/transport.h"
#include "engine/engine.h"
#include "engine/world.h"
#include "hmp/head_trace.h"
#include "live/tiled_viewer.h"
#include "mp/multipath.h"
#include "net/link.h"
#include "obs/export.h"
#include "sim/simulator.h"

namespace sperke {
namespace {

constexpr double kVideoSeconds = 20.0;

std::shared_ptr<media::VideoModel> make_video(double duration_s = kVideoSeconds) {
  media::VideoModelConfig cfg;
  cfg.duration_s = duration_s;
  cfg.chunk_duration_s = 1.0;
  cfg.tile_rows = 4;
  cfg.tile_cols = 6;
  cfg.seed = 7;
  return std::make_shared<media::VideoModel>(cfg);
}

hmp::HeadTrace make_trace(std::uint64_t seed, double duration_s = 120.0) {
  hmp::HeadTraceConfig cfg;
  cfg.duration_s = duration_s;
  cfg.sample_rate_hz = 25.0;
  cfg.attractors = hmp::default_attractors(duration_s, 77);
  cfg.seed = seed;
  return hmp::generate_head_trace(cfg);
}

// A mid-stream storm: one hard outage plus a background of seeded
// per-transfer failures. The same plan (same seed) hits the recovery and
// no-recovery arms identically. The background probability is where the
// recovery layer earns its keep: a failed *prefetch* is retried before its
// deadline instead of surfacing as a playback stall chunks later.
net::FaultPlan stormy_plan() {
  net::FaultPlan plan;
  plan.outages.push_back({.start_s = 6.0, .duration_s = 3.0});
  plan.transfer_failure_prob = 0.05;
  plan.seed = 42;
  return plan;
}

core::SessionReport run_vod(bool recovery) {
  sim::Simulator simulator;
  net::Link link(simulator,
                 net::LinkConfig{.name = "dl",
                                 .bandwidth = net::BandwidthTrace::constant(12'000.0),
                                 .rtt = sim::milliseconds(30),
                                 .loss_rate = 0.0,
                                 .faults = stormy_plan()});
  core::TransportOptions options;
  options.recovery.enabled = recovery;
  core::SingleLinkTransport transport(link, options);
  core::SessionConfig config;
  config.fetch_recovery = recovery;
  auto video = make_video();
  const auto trace = make_trace(33);
  core::StreamingSession session(simulator, video, transport, trace, config);
  session.start();
  simulator.run_until(sim::seconds(kVideoSeconds + 300.0));
  return session.report();
}

TEST(Chaos, VodRecoveryBeatsNoRecoveryUnderSameStorm) {
  const auto off = run_vod(false);
  const auto on = run_vod(true);
  ASSERT_TRUE(off.completed);
  ASSERT_TRUE(on.completed);
  // The storm was felt in both arms...
  EXPECT_GT(off.fetch_failures, 0);
  // ...but retries + base-tier degradation keep playback moving.
  EXPECT_LT(on.qoe.stall_seconds, off.qoe.stall_seconds);
  EXPECT_GE(on.qoe.score, off.qoe.score);
}

TEST(Chaos, VodChaosIsDeterministicAcrossRuns) {
  const auto a = run_vod(true);
  const auto b = run_vod(true);
  EXPECT_EQ(a.qoe.stall_seconds, b.qoe.stall_seconds);
  EXPECT_EQ(a.qoe.bytes_downloaded, b.qoe.bytes_downloaded);
  EXPECT_EQ(a.qoe.score, b.qoe.score);
  EXPECT_EQ(a.fetch_failures, b.fetch_failures);
  EXPECT_EQ(a.degraded_retries, b.degraded_retries);
  EXPECT_EQ(a.fetches, b.fetches);
}

TEST(Chaos, MultipathWifiOutageFailsOverAndProbesBack) {
  // WiFi (the better path) dies mid-stream; FoV traffic must fail over to
  // LTE and come back once the probe sees the outage end.
  sim::Simulator simulator;
  net::FaultPlan wifi_faults;
  wifi_faults.outages.push_back({.start_s = 5.0, .duration_s = 4.0});
  net::Link wifi(simulator,
                 net::LinkConfig{.name = "wifi",
                                 .bandwidth = net::BandwidthTrace::constant(12'000.0),
                                 .rtt = sim::milliseconds(20),
                                 .loss_rate = 0.0,
                                 .faults = std::move(wifi_faults)});
  net::Link lte(simulator,
                net::LinkConfig{.name = "lte",
                                .bandwidth = net::BandwidthTrace::constant(8'000.0),
                                .rtt = sim::milliseconds(60),
                                .loss_rate = 0.005, .faults = {}});
  core::TransportOptions options;
  options.max_concurrent = 2;
  options.recovery.enabled = true;
  mp::MultipathTransport transport(simulator, {&wifi, &lte},
                                   std::make_unique<mp::ContentAwareScheduler>(),
                                   options);
  core::SessionConfig config;
  config.fetch_recovery = true;
  auto video = make_video();
  const auto trace = make_trace(33);
  core::StreamingSession session(simulator, video, transport, trace, config);
  session.start();
  simulator.run_until(sim::seconds(kVideoSeconds + 300.0));

  const auto report = session.report();
  ASSERT_TRUE(report.completed);
  const mp::MultipathStats& stats = transport.stats();
  EXPECT_GT(stats.path_down_events, 0);
  EXPECT_GT(stats.failovers, 0);
  EXPECT_GT(stats.path_downtime_s, 0.0);
  // The probe brought WiFi back after the outage window.
  EXPECT_FALSE(transport.path_down(0));
  // Both paths ended up carrying bytes (LTE during the outage at minimum).
  EXPECT_GT(stats.bytes_per_path[0], 0);
  EXPECT_GT(stats.bytes_per_path[1], 0);
}

live::TiledLiveReport run_live(bool recovery) {
  sim::Simulator simulator;
  net::FaultPlan plan;
  plan.outages.push_back({.start_s = 12.0, .duration_s = 2.0});
  plan.transfer_failure_prob = 0.15;
  plan.seed = 7;
  net::Link link(simulator,
                 net::LinkConfig{.name = "dl",
                                 .bandwidth = net::BandwidthTrace::constant(20'000.0),
                                 .rtt = sim::milliseconds(30),
                                 .loss_rate = 0.0,
                                 .faults = std::move(plan)});
  core::TransportOptions options;
  options.max_concurrent = 12;
  options.recovery.enabled = recovery;
  core::SingleLinkTransport transport(link, options);
  live::TiledLiveConfig config;
  config.fetch_recovery = recovery;
  auto video = make_video(30.0);
  const auto trace = make_trace(5);
  live::TiledLiveSession session(simulator, video, transport, trace, config);
  session.start();
  simulator.run_until(sim::seconds(120.0));
  return session.report();
}

TEST(Chaos, TiledLiveDegradedRetriesReduceBlankTiles) {
  const auto off = run_live(false);
  const auto on = run_live(true);
  ASSERT_TRUE(off.finished);
  ASSERT_TRUE(on.finished);
  EXPECT_GT(off.fetch_failures, 0);
  EXPECT_GT(on.degraded_retries, 0);
  // Live never stalls — losses surface as blank tiles, and base-tier
  // re-requests shrink them.
  EXPECT_LT(on.mean_blank_fraction, off.mean_blank_fraction);
  EXPECT_GE(on.chunks_played, off.chunks_played);
}

std::string metrics_csv(const obs::MetricsRegistry& registry) {
  std::ostringstream out;
  obs::write_metrics_csv(out, registry);
  return out.str();
}

TEST(Chaos, FaultedWorldIsByteIdenticalRunToRun) {
  // The engine-level chaos contract from the consumer's side: build the
  // same faulted world twice, run both multi-threaded, and demand the full
  // CSV export match byte for byte (names, order, every count/sum/min/max
  // — including the net.outage_s exposure histogram).
  auto chaos_world = [] {
    engine::WorldSpec spec;
    spec.video.duration_s = 8.0;
    spec.video.chunk_duration_s = 1.0;
    spec.video.tile_rows = 4;
    spec.video.tile_cols = 6;
    spec.video.seed = 11;
    spec.trace_template.duration_s = 60.0;
    spec.trace_template.sample_rate_hz = 25.0;
    spec.trace_template.attractors = hmp::default_attractors(60.0, 99);
    spec.trace_template.seed = 21;
    spec.trace_pool = 5;
    spec.link.name = "link";
    spec.link.bandwidth = net::BandwidthTrace::constant(20'000.0);
    spec.link.rtt = sim::milliseconds(30);
    spec.sessions_per_link = 4;
    spec.transport_max_concurrent = 4;
    spec.sessions = 12;
    spec.horizon = sim::seconds(180.0);
    spec.shards = 3;
    spec.seed = 5;
    spec.session_telemetry = true;
    spec.faults = stormy_plan();
    spec.transport_recovery.enabled = true;
    spec.session.fetch_recovery = true;
    return spec;
  };
  engine::EngineResult a = engine::run_world(chaos_world(), {.threads = 3});
  engine::EngineResult b = engine::run_world(chaos_world(), {.threads = 3});
  EXPECT_EQ(metrics_csv(a.metrics), metrics_csv(b.metrics));
  EXPECT_EQ(a.events_executed, b.events_executed);
  // The world was genuinely chaotic: outage exposure was recorded for
  // every link group, and the recovery layer did real work.
  const obs::Histogram* outage = a.metrics.find_histogram("net.outage_s");
  ASSERT_NE(outage, nullptr);
  EXPECT_EQ(outage->count(), 3);  // one observation per link group
  EXPECT_GT(outage->sum(), 0.0);
  const obs::Counter* retries = a.metrics.find_counter("transport.retries");
  ASSERT_NE(retries, nullptr);
  EXPECT_GT(retries->value(), 0);
}

}  // namespace
}  // namespace sperke
