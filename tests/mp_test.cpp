#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "mp/multipath.h"
#include "mp/priority.h"
#include "sim/simulator.h"

namespace sperke::mp {
namespace {

core::ChunkRequest request_of(abr::SpatialClass spatial, bool urgent,
                              std::int64_t bytes = 100'000,
                              sim::Time deadline = sim::seconds(100.0)) {
  core::ChunkRequest req;
  req.address = {{0, 0}, media::Encoding::kAvc, 0};
  req.bytes = bytes;
  req.spatial = spatial;
  req.urgent = urgent;
  req.deadline = deadline;
  return req;
}

TEST(Priority, ClassifiesFromRequest) {
  const auto fov_urgent = classify(request_of(abr::SpatialClass::kFov, true));
  EXPECT_EQ(fov_urgent.spatial, abr::SpatialClass::kFov);
  EXPECT_EQ(fov_urgent.temporal, TemporalClass::kUrgent);
  const auto oos_regular = classify(request_of(abr::SpatialClass::kOos, false));
  EXPECT_EQ(oos_regular.spatial, abr::SpatialClass::kOos);
  EXPECT_EQ(oos_regular.temporal, TemporalClass::kRegular);
}

TEST(Priority, RankOrdersTable1) {
  const int fov_urgent = rank({abr::SpatialClass::kFov, TemporalClass::kUrgent});
  const int oos_urgent = rank({abr::SpatialClass::kOos, TemporalClass::kUrgent});
  const int fov_regular = rank({abr::SpatialClass::kFov, TemporalClass::kRegular});
  const int oos_regular = rank({abr::SpatialClass::kOos, TemporalClass::kRegular});
  EXPECT_LT(fov_urgent, oos_urgent);
  EXPECT_LT(oos_urgent, fov_regular);
  EXPECT_LT(fov_regular, oos_regular);
  EXPECT_EQ(fov_urgent, 0);
  EXPECT_EQ(oos_regular, 3);
}

TEST(Priority, ToStringReadable) {
  EXPECT_EQ(to_string({abr::SpatialClass::kFov, TemporalClass::kUrgent}),
            "FoV/urgent");
  EXPECT_EQ(to_string({abr::SpatialClass::kOos, TemporalClass::kRegular}),
            "OOS/regular");
}

class MultipathTest : public ::testing::Test {
 protected:
  MultipathTest() {
    // "WiFi": fast, clean. "LTE": slower, lossy, higher RTT.
    wifi = std::make_unique<net::Link>(
        simulator, net::LinkConfig{.name = "wifi",
                                   .bandwidth = net::BandwidthTrace::constant(20'000.0),
                                   .rtt = sim::milliseconds(20),
                                   .loss_rate = 0.0});
    lte = std::make_unique<net::Link>(
        simulator, net::LinkConfig{.name = "lte",
                                   .bandwidth = net::BandwidthTrace::constant(8'000.0),
                                   .rtt = sim::milliseconds(60),
                                   .loss_rate = 0.0});
  }

  MultipathTransport make(std::unique_ptr<PathScheduler> scheduler) {
    return MultipathTransport(simulator, {wifi.get(), lte.get()},
                              std::move(scheduler));
  }

  sim::Simulator simulator;
  std::unique_ptr<net::Link> wifi;
  std::unique_ptr<net::Link> lte;
};

TEST_F(MultipathTest, ContentAwareSendsFovToBestPath) {
  auto transport = make(std::make_unique<ContentAwareScheduler>());
  transport.fetch(request_of(abr::SpatialClass::kFov, false));
  transport.fetch(request_of(abr::SpatialClass::kOos, false));
  simulator.run();
  const auto& stats = transport.stats();
  // Path 0 = wifi (best), path 1 = lte (worst).
  EXPECT_EQ(stats.requests_per_path[0], 1);
  EXPECT_EQ(stats.requests_per_path[1], 1);
  EXPECT_EQ(stats.bytes_per_path[0], 100'000);
  EXPECT_EQ(stats.bytes_per_path[1], 100'000);
}

TEST_F(MultipathTest, ContentAwareUrgentAlwaysBestPath) {
  auto transport = make(std::make_unique<ContentAwareScheduler>());
  transport.fetch(request_of(abr::SpatialClass::kOos, /*urgent=*/true));
  simulator.run();
  EXPECT_EQ(transport.stats().requests_per_path[0], 1);
  EXPECT_EQ(transport.stats().requests_per_path[1], 0);
}

TEST_F(MultipathTest, ContentAwareDropsExpiredBestEffort) {
  auto transport = make(std::make_unique<ContentAwareScheduler>());
  // Saturate the LTE path so the next OOS request queues.
  for (int i = 0; i < 3; ++i) {
    transport.fetch(request_of(abr::SpatialClass::kOos, false, 2'000'000));
  }
  // This OOS fetch has a deadline that will pass while queued.
  bool delivered = true;
  auto req = request_of(abr::SpatialClass::kOos, false, 100'000,
                        sim::milliseconds(500));
  req.on_done = [&](sim::Time, bool ok) { delivered = ok; };
  transport.fetch(std::move(req));
  simulator.run();
  EXPECT_FALSE(delivered);
  EXPECT_GE(transport.stats().dropped_best_effort, 1);
}

TEST_F(MultipathTest, MinRttUsesBothPaths) {
  auto transport = make(std::make_unique<MinRttScheduler>());
  for (int i = 0; i < 8; ++i) {
    transport.fetch(request_of(abr::SpatialClass::kFov, false, 1'000'000));
  }
  simulator.run();
  const auto& stats = transport.stats();
  EXPECT_GT(stats.requests_per_path[0], 0);
  EXPECT_GT(stats.requests_per_path[1], 0);
  EXPECT_EQ(stats.requests_per_path[0] + stats.requests_per_path[1], 8);
}

TEST_F(MultipathTest, RoundRobinAlternates) {
  auto transport = make(std::make_unique<RoundRobinScheduler>());
  for (int i = 0; i < 4; ++i) {
    transport.fetch(request_of(abr::SpatialClass::kFov, false));
  }
  simulator.run();
  EXPECT_EQ(transport.stats().requests_per_path[0], 2);
  EXPECT_EQ(transport.stats().requests_per_path[1], 2);
}

TEST_F(MultipathTest, SinglePathPinsEverything) {
  auto transport = make(std::make_unique<SinglePathScheduler>(1));
  for (int i = 0; i < 3; ++i) {
    transport.fetch(request_of(abr::SpatialClass::kFov, false));
  }
  simulator.run();
  EXPECT_EQ(transport.stats().requests_per_path[0], 0);
  EXPECT_EQ(transport.stats().requests_per_path[1], 3);
}

TEST_F(MultipathTest, AggregateEstimateSumsPaths) {
  auto transport = make(std::make_unique<MinRttScheduler>());
  // Before traffic: falls back to capacities (20 + 8 Mbps).
  EXPECT_NEAR(transport.estimated_kbps(), 28'000.0, 100.0);
}

TEST_F(MultipathTest, ClassCountsTrackTable1) {
  auto transport = make(std::make_unique<ContentAwareScheduler>());
  transport.fetch(request_of(abr::SpatialClass::kFov, true));
  transport.fetch(request_of(abr::SpatialClass::kFov, false));
  transport.fetch(request_of(abr::SpatialClass::kOos, false));
  transport.fetch(request_of(abr::SpatialClass::kOos, false));
  simulator.run();
  const auto& counts = transport.stats().class_counts;
  EXPECT_EQ(counts[0], 1);  // FoV urgent
  EXPECT_EQ(counts[2], 1);  // FoV regular
  EXPECT_EQ(counts[3], 2);  // OOS regular
}

TEST_F(MultipathTest, UrgentJumpsPathQueue) {
  auto transport = MultipathTransport(simulator, {wifi.get()},
                                      std::make_unique<SinglePathScheduler>(0),
                                      /*max_concurrent_per_path=*/1);
  std::vector<int> order;
  auto submit = [&](int id, bool urgent) {
    auto req = request_of(abr::SpatialClass::kFov, urgent, 200'000);
    req.on_done = [&order, id](sim::Time, bool) { order.push_back(id); };
    transport.fetch(std::move(req));
  };
  submit(0, false);
  submit(1, false);
  submit(2, true);
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST_F(MultipathTest, CompletionsAggregateBytes) {
  auto transport = make(std::make_unique<MinRttScheduler>());
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    auto req = request_of(abr::SpatialClass::kFov, false, 250'000);
    req.on_done = [&](sim::Time, bool ok) { done += ok ? 1 : 0; };
    transport.fetch(std::move(req));
  }
  simulator.run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(transport.bytes_fetched(), 1'000'000);
  EXPECT_EQ(transport.in_flight(), 0);
}

TEST_F(MultipathTest, RejectsBadConstruction) {
  EXPECT_THROW(MultipathTransport(simulator, {},
                                  std::make_unique<MinRttScheduler>()),
               std::invalid_argument);
  EXPECT_THROW(MultipathTransport(simulator, {wifi.get()}, nullptr),
               std::invalid_argument);
  EXPECT_THROW(MultipathTransport(simulator, {wifi.get()},
                                  std::make_unique<MinRttScheduler>(), 0),
               std::invalid_argument);
}

TEST(PathSchedulerFactory, MakesKnownKinds) {
  EXPECT_EQ(make_path_scheduler("minrtt")->name(), "minrtt");
  EXPECT_EQ(make_path_scheduler("round-robin")->name(), "round-robin");
  EXPECT_EQ(make_path_scheduler("content-aware")->name(), "content-aware");
  EXPECT_THROW((void)make_path_scheduler("ecf"), std::invalid_argument);
}

}  // namespace
}  // namespace sperke::mp
