#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "mp/multipath.h"
#include "mp/priority.h"
#include "sim/simulator.h"

namespace sperke::mp {
namespace {

core::ChunkRequest request_of(abr::SpatialClass spatial, bool urgent,
                              std::int64_t bytes = 100'000,
                              sim::Time deadline = sim::seconds(100.0)) {
  core::ChunkRequest req;
  req.id = net::to_chunk_id({{0, 0}, media::Encoding::kAvc, 0});
  req.bytes = bytes;
  req.spatial = spatial;
  req.urgent = urgent;
  req.deadline = deadline;
  return req;
}

TEST(Priority, ClassifiesFromRequest) {
  const auto fov_urgent = classify(request_of(abr::SpatialClass::kFov, true));
  EXPECT_EQ(fov_urgent.spatial, abr::SpatialClass::kFov);
  EXPECT_EQ(fov_urgent.temporal, TemporalClass::kUrgent);
  const auto oos_regular = classify(request_of(abr::SpatialClass::kOos, false));
  EXPECT_EQ(oos_regular.spatial, abr::SpatialClass::kOos);
  EXPECT_EQ(oos_regular.temporal, TemporalClass::kRegular);
}

TEST(Priority, RankOrdersTable1) {
  const int fov_urgent = rank({abr::SpatialClass::kFov, TemporalClass::kUrgent});
  const int oos_urgent = rank({abr::SpatialClass::kOos, TemporalClass::kUrgent});
  const int fov_regular = rank({abr::SpatialClass::kFov, TemporalClass::kRegular});
  const int oos_regular = rank({abr::SpatialClass::kOos, TemporalClass::kRegular});
  EXPECT_LT(fov_urgent, oos_urgent);
  EXPECT_LT(oos_urgent, fov_regular);
  EXPECT_LT(fov_regular, oos_regular);
  EXPECT_EQ(fov_urgent, 0);
  EXPECT_EQ(oos_regular, 3);
}

TEST(Priority, ToStringReadable) {
  EXPECT_EQ(to_string({abr::SpatialClass::kFov, TemporalClass::kUrgent}),
            "FoV/urgent");
  EXPECT_EQ(to_string({abr::SpatialClass::kOos, TemporalClass::kRegular}),
            "OOS/regular");
}

class MultipathTest : public ::testing::Test {
 protected:
  MultipathTest() {
    // "WiFi": fast, clean. "LTE": slower, lossy, higher RTT.
    wifi = std::make_unique<net::Link>(
        simulator, net::LinkConfig{.name = "wifi",
                                   .bandwidth = net::BandwidthTrace::constant(20'000.0),
                                   .rtt = sim::milliseconds(20),
                                   .loss_rate = 0.0, .faults = {}});
    lte = std::make_unique<net::Link>(
        simulator, net::LinkConfig{.name = "lte",
                                   .bandwidth = net::BandwidthTrace::constant(8'000.0),
                                   .rtt = sim::milliseconds(60),
                                   .loss_rate = 0.0, .faults = {}});
  }

  MultipathTransport make(std::unique_ptr<PathScheduler> scheduler) {
    return MultipathTransport(simulator, {wifi.get(), lte.get()},
                              std::move(scheduler));
  }

  sim::Simulator simulator;
  std::unique_ptr<net::Link> wifi;
  std::unique_ptr<net::Link> lte;
};

TEST_F(MultipathTest, ContentAwareSendsFovToBestPath) {
  auto transport = make(std::make_unique<ContentAwareScheduler>());
  transport.fetch(request_of(abr::SpatialClass::kFov, false));
  transport.fetch(request_of(abr::SpatialClass::kOos, false));
  simulator.run();
  const auto& stats = transport.stats();
  // Path 0 = wifi (best), path 1 = lte (worst).
  EXPECT_EQ(stats.requests_per_path[0], 1);
  EXPECT_EQ(stats.requests_per_path[1], 1);
  EXPECT_EQ(stats.bytes_per_path[0], 100'000);
  EXPECT_EQ(stats.bytes_per_path[1], 100'000);
}

TEST_F(MultipathTest, ContentAwareUrgentAlwaysBestPath) {
  auto transport = make(std::make_unique<ContentAwareScheduler>());
  transport.fetch(request_of(abr::SpatialClass::kOos, /*urgent=*/true));
  simulator.run();
  EXPECT_EQ(transport.stats().requests_per_path[0], 1);
  EXPECT_EQ(transport.stats().requests_per_path[1], 0);
}

TEST_F(MultipathTest, ContentAwareDropsExpiredBestEffort) {
  auto transport = make(std::make_unique<ContentAwareScheduler>());
  // Saturate the LTE path so the next OOS request queues.
  for (int i = 0; i < 3; ++i) {
    transport.fetch(request_of(abr::SpatialClass::kOos, false, 2'000'000));
  }
  // This OOS fetch has a deadline that will pass while queued.
  std::optional<core::FetchOutcome> outcome;
  auto req = request_of(abr::SpatialClass::kOos, false, 100'000,
                        sim::milliseconds(500));
  req.on_done = [&](sim::Time, core::FetchOutcome o) { outcome = o; };
  transport.fetch(std::move(req));
  simulator.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, core::FetchOutcome::kDropped);
  EXPECT_GE(transport.stats().dropped_best_effort, 1);
}

TEST_F(MultipathTest, MinRttUsesBothPaths) {
  auto transport = make(std::make_unique<MinRttScheduler>());
  for (int i = 0; i < 8; ++i) {
    transport.fetch(request_of(abr::SpatialClass::kFov, false, 1'000'000));
  }
  simulator.run();
  const auto& stats = transport.stats();
  EXPECT_GT(stats.requests_per_path[0], 0);
  EXPECT_GT(stats.requests_per_path[1], 0);
  EXPECT_EQ(stats.requests_per_path[0] + stats.requests_per_path[1], 8);
}

TEST_F(MultipathTest, RoundRobinAlternates) {
  auto transport = make(std::make_unique<RoundRobinScheduler>());
  for (int i = 0; i < 4; ++i) {
    transport.fetch(request_of(abr::SpatialClass::kFov, false));
  }
  simulator.run();
  EXPECT_EQ(transport.stats().requests_per_path[0], 2);
  EXPECT_EQ(transport.stats().requests_per_path[1], 2);
}

TEST_F(MultipathTest, SinglePathPinsEverything) {
  auto transport = make(std::make_unique<SinglePathScheduler>(1));
  for (int i = 0; i < 3; ++i) {
    transport.fetch(request_of(abr::SpatialClass::kFov, false));
  }
  simulator.run();
  EXPECT_EQ(transport.stats().requests_per_path[0], 0);
  EXPECT_EQ(transport.stats().requests_per_path[1], 3);
}

TEST_F(MultipathTest, AggregateEstimateSumsPaths) {
  auto transport = make(std::make_unique<MinRttScheduler>());
  // Before traffic: falls back to capacities (20 + 8 Mbps).
  EXPECT_NEAR(transport.estimated_kbps(), 28'000.0, 100.0);
}

TEST_F(MultipathTest, ClassCountsTrackTable1) {
  auto transport = make(std::make_unique<ContentAwareScheduler>());
  transport.fetch(request_of(abr::SpatialClass::kFov, true));
  transport.fetch(request_of(abr::SpatialClass::kFov, false));
  transport.fetch(request_of(abr::SpatialClass::kOos, false));
  transport.fetch(request_of(abr::SpatialClass::kOos, false));
  simulator.run();
  const auto& counts = transport.stats().class_counts;
  EXPECT_EQ(counts[0], 1);  // FoV urgent
  EXPECT_EQ(counts[2], 1);  // FoV regular
  EXPECT_EQ(counts[3], 2);  // OOS regular
}

TEST_F(MultipathTest, UrgentJumpsPathQueue) {
  auto transport = MultipathTransport(simulator, {wifi.get()},
                                      std::make_unique<SinglePathScheduler>(0),
                                      {.max_concurrent = 1, .recovery = {}});
  std::vector<int> order;
  auto submit = [&](int id, bool urgent) {
    auto req = request_of(abr::SpatialClass::kFov, urgent, 200'000);
    req.on_done = [&order, id](sim::Time, core::FetchOutcome) {
      order.push_back(id);
    };
    transport.fetch(std::move(req));
  };
  submit(0, false);
  submit(1, false);
  submit(2, true);
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST_F(MultipathTest, CompletionsAggregateBytes) {
  auto transport = make(std::make_unique<MinRttScheduler>());
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    auto req = request_of(abr::SpatialClass::kFov, false, 250'000);
    req.on_done = [&](sim::Time, core::FetchOutcome o) {
      done += core::delivered(o) ? 1 : 0;
    };
    transport.fetch(std::move(req));
  }
  simulator.run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(transport.bytes_fetched(), 1'000'000);
  EXPECT_EQ(transport.in_flight(), 0);
}

TEST_F(MultipathTest, RejectsBadConstruction) {
  EXPECT_THROW(MultipathTransport(simulator, {},
                                  std::make_unique<MinRttScheduler>()),
               std::invalid_argument);
  EXPECT_THROW(MultipathTransport(simulator, {wifi.get()}, nullptr),
               std::invalid_argument);
  EXPECT_THROW(MultipathTransport(simulator, {wifi.get()},
                                  std::make_unique<MinRttScheduler>(),
                                  {.max_concurrent = 0, .recovery = {}}),
               std::invalid_argument);
}

class MultipathFailoverTest : public ::testing::Test {
 protected:
  // Wifi goes dark at t=0.5s; LTE stays clean throughout.
  MultipathFailoverTest() { rebuild(/*wifi_outage_s=*/60.0); }

  void rebuild(double wifi_outage_s) {
    net::FaultPlan faults;
    faults.outages.push_back({.start_s = 0.5, .duration_s = wifi_outage_s});
    wifi = std::make_unique<net::Link>(
        simulator, net::LinkConfig{.name = "wifi",
                                   .bandwidth = net::BandwidthTrace::constant(20'000.0),
                                   .rtt = sim::milliseconds(20),
                                   .loss_rate = 0.0,
                                   .faults = std::move(faults)});
    lte = std::make_unique<net::Link>(
        simulator, net::LinkConfig{.name = "lte",
                                   .bandwidth = net::BandwidthTrace::constant(8'000.0),
                                   .rtt = sim::milliseconds(60),
                                   .loss_rate = 0.0, .faults = {}});
  }

  MultipathTransport make_recovering(sim::Duration probe_interval =
                                         sim::seconds(0.5)) {
    core::TransportOptions options;
    options.recovery.enabled = true;
    options.recovery.max_retries = 3;
    options.recovery.base_backoff = sim::milliseconds(100);
    options.recovery.probe_interval = probe_interval;
    return MultipathTransport(simulator, {wifi.get(), lte.get()},
                              std::make_unique<ContentAwareScheduler>(),
                              options);
  }

  sim::Simulator simulator;
  std::unique_ptr<net::Link> wifi;
  std::unique_ptr<net::Link> lte;
};

TEST_F(MultipathFailoverTest, OutageFailsOverInFlightFovToSurvivingPath) {
  auto transport = make_recovering();
  int delivered_count = 0;
  // 2 MB at 2.5 MB/s: still in flight on wifi when the outage hits.
  for (int i = 0; i < 2; ++i) {
    auto req = request_of(abr::SpatialClass::kFov, false, 2'000'000,
                          sim::seconds(100.0));
    req.on_done = [&](sim::Time, core::FetchOutcome o) {
      delivered_count += core::delivered(o) ? 1 : 0;
    };
    transport.fetch(std::move(req));
  }
  simulator.run_until(sim::seconds(30.0));
  const auto& stats = transport.stats();
  EXPECT_EQ(delivered_count, 2);
  EXPECT_GE(stats.path_down_events, 1);
  EXPECT_GE(stats.failovers, 1);
  EXPECT_TRUE(transport.path_down(0));
  EXPECT_FALSE(transport.path_down(1));
}

TEST_F(MultipathFailoverTest, DownPathRecoversViaProbing) {
  rebuild(/*wifi_outage_s=*/1.0);  // outage [0.5, 1.5)
  auto transport = make_recovering(sim::seconds(0.5));
  auto req = request_of(abr::SpatialClass::kFov, false, 2'000'000,
                        sim::seconds(100.0));
  std::optional<core::FetchOutcome> outcome;
  req.on_done = [&](sim::Time, core::FetchOutcome o) { outcome = o; };
  transport.fetch(std::move(req));
  simulator.run_until(sim::seconds(30.0));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, core::FetchOutcome::kDelivered);
  EXPECT_GE(transport.stats().path_down_events, 1);
  // Probes at 1.0s (still dark) and 1.5s (clear): ~1s of downtime.
  EXPECT_FALSE(transport.path_down(0));
  EXPECT_NEAR(transport.stats().path_downtime_s, 1.0, 0.1);
}

TEST_F(MultipathFailoverTest, NewFetchesRouteAroundDownPath) {
  auto transport = make_recovering();
  // Trip the wifi path with one in-flight casualty.
  auto tripwire = request_of(abr::SpatialClass::kFov, false, 2'000'000,
                             sim::seconds(100.0));
  transport.fetch(std::move(tripwire));
  simulator.run_until(sim::seconds(2.0));
  ASSERT_TRUE(transport.path_down(0));
  const int lte_before = transport.stats().requests_per_path[1];
  // Content-aware would pick wifi for FoV; the down path forces LTE.
  std::optional<core::FetchOutcome> outcome;
  auto req = request_of(abr::SpatialClass::kFov, false, 100'000,
                        sim::seconds(100.0));
  req.on_done = [&](sim::Time, core::FetchOutcome o) { outcome = o; };
  transport.fetch(std::move(req));
  simulator.run_until(sim::seconds(10.0));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, core::FetchOutcome::kDelivered);
  EXPECT_EQ(transport.stats().requests_per_path[1], lte_before + 1);
}

TEST(PathSchedulerFactory, MakesKnownKinds) {
  EXPECT_EQ(make_path_scheduler("minrtt")->name(), "minrtt");
  EXPECT_EQ(make_path_scheduler("round-robin")->name(), "round-robin");
  EXPECT_EQ(make_path_scheduler("content-aware")->name(), "content-aware");
  EXPECT_THROW((void)make_path_scheduler("ecf"), std::invalid_argument);
}

}  // namespace
}  // namespace sperke::mp
