// The real test is that every generated per-header TU in this binary
// compiled; running it is just the ctest-visible success marker.
#include <cstdio>

int main() {
  std::puts("headers_compile: OK");
  return 0;
}
